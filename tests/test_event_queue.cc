/**
 * @file
 * Unit tests for the discrete-event kernel.
 *
 * Besides the API-level tests, this file carries the differential
 * property suite for the calendar queue: thousands of seeded random
 * schedule/deschedule/reschedule/run interleavings are replayed
 * against a trivially-correct reference model (a sorted vector), and
 * the firing order must match entry for entry in
 * (tick, priority, seq). SYSSCALE_STRESS_ITERS multiplies the trial
 * count — the CI sanitizer matrix runs the same suite 100x longer
 * than the tier-1 lane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace sysscale {
namespace {

/** Trial multiplier for nightly-style stress runs (default 1x). */
std::size_t
stressIters()
{
    const char *env = std::getenv("SYSSCALE_STRESS_ITERS");
    if (!env)
        return 1;
    const long v = std::atol(env);
    return v > 0 ? static_cast<std::size_t>(v) : 1;
}

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a("a", [&] { order.push_back(1); });
    EventFunctionWrapper b("b", [&] { order.push_back(2); });
    EventFunctionWrapper c("c", [&] { order.push_back(3); });

    q.schedule(&c, 300);
    q.schedule(&a, 100);
    q.schedule(&b, 200);

    EXPECT_EQ(q.runUntil(1000), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper lo("lo", [&] { order.push_back(1); },
                            Event::kPrioMinimum);
    EventFunctionWrapper hi("hi", [&] { order.push_back(3); },
                            Event::kPrioMaximum);
    EventFunctionWrapper first("f", [&] { order.push_back(2); });
    EventFunctionWrapper second("s", [&] { order.push_back(4); });

    q.schedule(&second, 50);
    q.schedule(&hi, 50);
    q.schedule(&first, 50);
    q.schedule(&lo, 50);

    q.runUntil(100);
    // Priority first; ties broken by insertion sequence.
    EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper late("late", [&] { ++fired; });
    q.schedule(&late, 500);

    EXPECT_EQ(q.runUntil(499), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.now(), 499u);
    EXPECT_TRUE(late.scheduled());

    q.runUntil(500);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev("ev", [&] { ++fired; });
    q.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());

    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.runUntil(1000);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired_at = 0;
    EventFunctionWrapper ev("ev", [&] { fired_at = q.now(); });
    q.schedule(&ev, 100);
    q.reschedule(&ev, 700);

    q.runUntil(1000);
    EXPECT_EQ(fired_at, 700u);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper *ptr = nullptr;
    EventFunctionWrapper ev("tick", [&] {
        if (++count < 5)
            q.schedule(ptr, q.now() + 10);
    });
    ptr = &ev;
    q.schedule(&ev, 10);

    q.runUntil(1000);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.processedCount(), 5u);
}

TEST(EventQueue, StepFiresOneEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper a("a", [&] { ++fired; });
    EventFunctionWrapper b("b", [&] { ++fired; });
    q.schedule(&a, 10);
    q.schedule(&b, 20);

    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, NextPendingTickTracksEarliestLiveEvent)
{
    EventQueue q;
    EXPECT_EQ(q.nextPendingTick(), kMaxTick);

    EventFunctionWrapper a("a", [] {});
    EventFunctionWrapper b("b", [] {});
    q.schedule(&a, 500);
    q.schedule(&b, 200);
    EXPECT_EQ(q.nextPendingTick(), 200u);

    q.deschedule(&b);
    EXPECT_EQ(q.nextPendingTick(), 500u);

    q.reschedule(&a, 900);
    EXPECT_EQ(q.nextPendingTick(), 900u);

    q.runUntil(1000);
    EXPECT_EQ(q.nextPendingTick(), kMaxTick);
}

TEST(EventQueue, AdvanceNowJumpsWithoutFiring)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev("ev", [&] { ++fired; });
    q.schedule(&ev, 1000);

    q.advanceNow(999);
    EXPECT_EQ(q.now(), 999u);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(ev.scheduled());

    // Advancing exactly onto the pending tick is allowed (the event
    // has not been skipped; it still fires next).
    q.advanceNow(1000);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, RunLimitVisibleToHandlersAndRestored)
{
    EventQueue q;
    Tick seen = 0;
    EventFunctionWrapper ev("ev", [&] { seen = q.runLimit(); });
    q.schedule(&ev, 10);

    EXPECT_EQ(q.runLimit(), 0u);
    q.runUntil(750);
    EXPECT_EQ(seen, 750u);
    EXPECT_EQ(q.runLimit(), 0u);
}

TEST(EventQueue, FarFutureEventsBeyondOneRotationFire)
{
    // Events farther out than one full calendar rotation exercise
    // the sparse-queue global scan.
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper near_ev("near", [&] { order.push_back(1); });
    EventFunctionWrapper far_ev("far", [&] { order.push_back(2); });
    EventFunctionWrapper very_far("vf", [&] { order.push_back(3); });

    const Tick day = Tick(1) << 27;
    q.schedule(&very_far, 5000 * day);
    q.schedule(&far_ev, 300 * day + 17);
    q.schedule(&near_ev, 3);

    EXPECT_EQ(q.nextPendingTick(), 3u);
    EXPECT_EQ(q.runUntil(6000 * day), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameBucketDifferentRotationOrdersByTick)
{
    // Two events exactly one calendar rotation apart alias onto the
    // same bucket; the day filter must keep the later one pending.
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper first("first", [&] { order.push_back(1); });
    EventFunctionWrapper later("later", [&] { order.push_back(2); });

    const Tick rotation = (Tick(1) << 27) * 64;
    q.schedule(&later, 100 + rotation);
    q.schedule(&first, 100);

    EXPECT_TRUE(q.step());
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(q.nextPendingTick(), 100 + rotation);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

/**
 * Reference model for the differential suite: the queue semantics
 * restated in the simplest possible form — a flat vector of
 * (when, priority, seq) records, linearly scanned for the minimum.
 */
struct ModelEntry
{
    Tick when;
    int priority;
    std::uint64_t seq;
    std::size_t id;
};

class ReferenceQueue
{
  public:
    explicit ReferenceQueue(std::size_t n) : scheduled_(n, false) {}

    bool scheduled(std::size_t id) const { return scheduled_[id]; }
    Tick now() const { return now_; }
    std::size_t pending() const { return entries_.size(); }

    void
    schedule(std::size_t id, int priority, Tick when)
    {
        entries_.push_back(ModelEntry{when, priority, nextSeq_++, id});
        scheduled_[id] = true;
    }

    void
    deschedule(std::size_t id)
    {
        entries_.erase(
            std::remove_if(entries_.begin(), entries_.end(),
                           [id](const ModelEntry &e) {
                               return e.id == id;
                           }),
            entries_.end());
        scheduled_[id] = false;
    }

    /** Fire everything through @p limit into @p log as event ids. */
    void
    runUntil(Tick limit, std::vector<std::size_t> &log)
    {
        while (true) {
            std::size_t best = entries_.size();
            for (std::size_t i = 0; i < entries_.size(); ++i) {
                if (best == entries_.size() ||
                    less(entries_[i], entries_[best]))
                    best = i;
            }
            if (best == entries_.size() ||
                entries_[best].when > limit)
                break;
            const ModelEntry e = entries_[best];
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(best));
            now_ = e.when;
            scheduled_[e.id] = false;
            log.push_back(e.id);
        }
        if (now_ < limit)
            now_ = limit;
    }

  private:
    static bool
    less(const ModelEntry &a, const ModelEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    std::vector<ModelEntry> entries_;
    std::vector<bool> scheduled_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * One seeded trial: drive the calendar queue and the reference model
 * through an identical random op sequence and require identical
 * firing logs, clocks, and pending counts throughout.
 */
void
differentialTrial(std::uint64_t seed, std::size_t num_ops)
{
    std::mt19937_64 rng(seed);
    constexpr std::size_t kNumEvents = 24;

    EventQueue q;
    ReferenceQueue model(kNumEvents);

    std::vector<std::size_t> fired;       // by the real queue
    std::vector<std::size_t> expected;    // by the model

    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    std::uniform_int_distribution<int> prio(Event::kPrioMinimum,
                                            Event::kPrioMaximum);
    for (std::size_t i = 0; i < kNumEvents; ++i) {
        events.emplace_back(new EventFunctionWrapper(
            "ev" + std::to_string(i), [&fired, i] { fired.push_back(i); },
            prio(rng)));
    }

    // Delays mix the three calendar regimes: within the current day,
    // a few days out (PMU-sample scale), and beyond one rotation
    // (the global-scan path).
    auto random_delay = [&rng]() -> Tick {
        std::uniform_int_distribution<int> regime(0, 9);
        const int r = regime(rng);
        if (r < 6) {
            return std::uniform_int_distribution<Tick>(0, 2000)(rng);
        }
        if (r < 9) {
            return std::uniform_int_distribution<Tick>(
                0, Tick(10) << 27)(rng);
        }
        return std::uniform_int_distribution<Tick>(
            0, Tick(200) << 27)(rng);
    };

    std::uniform_int_distribution<int> op_dist(0, 9);
    std::uniform_int_distribution<std::size_t> ev_dist(
        0, kNumEvents - 1);

    for (std::size_t op = 0; op < num_ops; ++op) {
        const std::size_t i = ev_dist(rng);
        Event *ev = events[i].get();
        switch (op_dist(rng)) {
          case 0: case 1: case 2: case 3:
            if (!ev->scheduled()) {
                const Tick when = q.now() + random_delay();
                q.schedule(ev, when);
                model.schedule(i, ev->priority(), when);
            }
            break;
          case 4:
            if (ev->scheduled()) {
                q.deschedule(ev);
                model.deschedule(i);
            }
            break;
          case 5: case 6:
            {
                const Tick when = q.now() + random_delay();
                if (ev->scheduled())
                    model.deschedule(i);
                q.reschedule(ev, when);
                model.schedule(i, ev->priority(), when);
            }
            break;
          default:
            {
                const Tick limit = q.now() + random_delay();
                q.runUntil(limit);
                model.runUntil(limit, expected);
                ASSERT_EQ(q.now(), model.now()) << "seed " << seed;
            }
            break;
        }
        ASSERT_EQ(q.pending(), model.pending()) << "seed " << seed;
        ASSERT_EQ(q.nextPendingTick() == kMaxTick,
                  model.pending() == 0)
            << "seed " << seed;
    }

    // Drain everything that is left and compare the full history.
    q.runUntil(kMaxTick);
    model.runUntil(kMaxTick, expected);
    // The real queue records callbacks; map through to ids directly.
    ASSERT_EQ(fired, expected) << "seed " << seed;
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, RandomizedAgainstReferenceModel)
{
    // ~200 base trials x 400 ops; the stress knob scales trials.
    const std::size_t trials = 200 * stressIters();
    for (std::size_t t = 0; t < trials; ++t)
        differentialTrial(0x5eedf00d + t, 400);
}

TEST(EventQueueDifferential, DenseSameTickTies)
{
    // Heavy same-tick collisions stress the (priority, seq)
    // tie-break: all delays collapse onto a handful of ticks.
    const std::size_t trials = 50 * stressIters();
    for (std::size_t t = 0; t < trials; ++t) {
        std::mt19937_64 rng(0xc01db00c + t);
        EventQueue q;
        ReferenceQueue model(16);
        std::vector<std::size_t> fired, expected;
        std::vector<std::unique_ptr<EventFunctionWrapper>> events;
        std::uniform_int_distribution<int> prio(0, 3);
        for (std::size_t i = 0; i < 16; ++i) {
            events.emplace_back(new EventFunctionWrapper(
                "t" + std::to_string(i),
                [&fired, i] { fired.push_back(i); }, prio(rng) * 25));
        }
        std::uniform_int_distribution<Tick> tick_dist(0, 3);
        for (std::size_t i = 0; i < 16; ++i) {
            const Tick when = q.now() + tick_dist(rng) * 100;
            q.schedule(events[i].get(), when);
            model.schedule(i, events[i]->priority(), when);
        }
        q.runUntil(1000);
        model.runUntil(1000, expected);
        ASSERT_EQ(fired, expected) << "trial " << t;
    }
}

TEST(EventQueueDeath, AdvanceNowPastPendingEventPanics)
{
    EventQueue q;
    EventFunctionWrapper ev("ev", [] {});
    q.schedule(&ev, 100);
    EXPECT_DEATH(q.advanceNow(101), "");
    q.deschedule(&ev); // leave the parent process clean
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    EventFunctionWrapper a("a", [] {});
    q.schedule(&a, 100);
    q.runUntil(200);
    EXPECT_DEATH(q.schedule(&a, 50), "");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    EventFunctionWrapper a("a", [] {});
    q.schedule(&a, 100);
    EXPECT_DEATH(q.schedule(&a, 200), "");
    q.deschedule(&a); // leave the parent process clean
}

} // namespace
} // namespace sysscale
