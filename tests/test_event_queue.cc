/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace sysscale {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a("a", [&] { order.push_back(1); });
    EventFunctionWrapper b("b", [&] { order.push_back(2); });
    EventFunctionWrapper c("c", [&] { order.push_back(3); });

    q.schedule(&c, 300);
    q.schedule(&a, 100);
    q.schedule(&b, 200);

    EXPECT_EQ(q.runUntil(1000), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper lo("lo", [&] { order.push_back(1); },
                            Event::kPrioMinimum);
    EventFunctionWrapper hi("hi", [&] { order.push_back(3); },
                            Event::kPrioMaximum);
    EventFunctionWrapper first("f", [&] { order.push_back(2); });
    EventFunctionWrapper second("s", [&] { order.push_back(4); });

    q.schedule(&second, 50);
    q.schedule(&hi, 50);
    q.schedule(&first, 50);
    q.schedule(&lo, 50);

    q.runUntil(100);
    // Priority first; ties broken by insertion sequence.
    EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper late("late", [&] { ++fired; });
    q.schedule(&late, 500);

    EXPECT_EQ(q.runUntil(499), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.now(), 499u);
    EXPECT_TRUE(late.scheduled());

    q.runUntil(500);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev("ev", [&] { ++fired; });
    q.schedule(&ev, 100);
    EXPECT_TRUE(ev.scheduled());

    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.runUntil(1000);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired_at = 0;
    EventFunctionWrapper ev("ev", [&] { fired_at = q.now(); });
    q.schedule(&ev, 100);
    q.reschedule(&ev, 700);

    q.runUntil(1000);
    EXPECT_EQ(fired_at, 700u);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper *ptr = nullptr;
    EventFunctionWrapper ev("tick", [&] {
        if (++count < 5)
            q.schedule(ptr, q.now() + 10);
    });
    ptr = &ev;
    q.schedule(&ev, 10);

    q.runUntil(1000);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.processedCount(), 5u);
}

TEST(EventQueue, StepFiresOneEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper a("a", [&] { ++fired; });
    EventFunctionWrapper b("b", [&] { ++fired; });
    q.schedule(&a, 10);
    q.schedule(&b, 20);

    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    EventFunctionWrapper a("a", [] {});
    q.schedule(&a, 100);
    q.runUntil(200);
    EXPECT_DEATH(q.schedule(&a, 50), "");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    EventFunctionWrapper a("a", [] {});
    q.schedule(&a, 100);
    EXPECT_DEATH(q.schedule(&a, 200), "");
    q.deschedule(&a); // leave the parent process clean
}

} // namespace
} // namespace sysscale
