/**
 * @file
 * Observability tests: TraceSink semantics (change-filtered
 * counters, bounded buffer, JSON shape, null-sink macro safety) and
 * the determinism contract of traced cells — the same cell writes a
 * byte-identical trace file regardless of --jobs, skip-ahead on/off
 * differ only in the "replay" category, and tracing never perturbs
 * the simulation's results.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/spec_codec.hh"
#include "obs/trace.hh"
#include "soc/soc.hh"
#include "workloads/micro.hh"
#include "workloads/scenario.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

/** Fresh per-test directory under the system tmp. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("sysscale-obs-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Pin the process-wide skip-ahead default for one test's scope. */
class SkipAheadGuard
{
  public:
    explicit SkipAheadGuard(bool on)
        : prev_(soc::Soc::skipAheadDefault())
    {
        soc::Soc::setSkipAheadDefault(on);
    }
    ~SkipAheadGuard() { soc::Soc::setSkipAheadDefault(prev_); }

  private:
    bool prev_;
};

exp::ExperimentSpec
fastSpec(const std::string &id, std::uint64_t seed = 1)
{
    exp::ExperimentSpec spec;
    spec.id = id;
    spec.workload = workloads::streamMicro();
    spec.governor = "sysscale";
    spec.seed = seed;
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    return spec;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::string
traceFileFor(const exp::ExperimentSpec &spec,
             const std::string &dir)
{
    return dir + "/" + exp::specKey(spec) + ".trace.json";
}

/** Drop every line of @p text carrying the given trace category. */
std::string
stripCategory(const std::string &text, const std::string &cat)
{
    const std::string needle = "\"cat\":\"" + cat + "\"";
    std::istringstream is(text);
    std::string out, line;
    while (std::getline(is, line)) {
        if (line.find(needle) == std::string::npos)
            out += line + "\n";
    }
    return out;
}

/** Host-timing-free CSV row, for result-identity comparisons. */
std::string
stableRow(exp::RunResult res)
{
    res.hostSeconds = 0.0;
    return exp::csvRow(res);
}

} // anonymous namespace

TEST(TraceSink, CountersAreChangeFiltered)
{
    obs::TraceSink sink;
    sink.counter(obs::kCatPower, "w", 0, 1.0);
    sink.counter(obs::kCatPower, "w", 10, 1.0);
    sink.counter(obs::kCatPower, "w", 20, 1.0);
    EXPECT_EQ(sink.size(), 1u);

    sink.counter(obs::kCatPower, "w", 30, 2.0);
    EXPECT_EQ(sink.size(), 2u);

    // Distinct series filter independently, even with equal values.
    sink.counter(obs::kCatOpPoint, "w", 40, 2.0);
    EXPECT_EQ(sink.size(), 3u);
}

TEST(TraceSink, CapacityDropsNewEventsNotOldOnes)
{
    obs::TraceSink sink(2);
    sink.instant(obs::kCatGovernor, "first", 1);
    sink.instant(obs::kCatGovernor, "second", 2);
    sink.instant(obs::kCatGovernor, "third", 3);
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);
    EXPECT_EQ(sink.events()[0].name, "first");
    EXPECT_EQ(sink.events()[1].name, "second");
}

TEST(TraceSink, DroppedCounterSampleDoesNotPoisonTheFilter)
{
    obs::TraceSink sink(1);
    sink.counter(obs::kCatPower, "w", 0, 1.0); // Buffered.
    sink.counter(obs::kCatPower, "w", 10, 2.0); // Dropped (full).
    EXPECT_EQ(sink.dropped(), 1u);
    // The dropped sample must not have updated the series' last
    // value: the filter state only tracks what the trace contains.
    sink.counter(obs::kCatPower, "w", 20, 2.0);
    EXPECT_EQ(sink.dropped(), 2u);
}

TEST(TraceSink, SpanClampsInvertedInterval)
{
    obs::TraceSink sink;
    sink.span(obs::kCatTransition, "weird", 100, 40);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.events()[0].dur, 0u);
}

TEST(TraceSink, JsonIsLineFilterableAndCommaSafe)
{
    obs::TraceSink sink;
    sink.span(obs::kCatTransition, "flow", 0, kTicksPerUs,
              obs::kv("from", "high"));
    sink.instant(obs::kCatScenario, "display_on", 2 * kTicksPerUs);
    sink.counter(obs::kCatOpPoint, "dram_bin", 0, 1.0);

    std::ostringstream os;
    sink.writeJson(os);
    const std::string text = os.str();

    EXPECT_EQ(text.rfind("{\"traceEvents\":[\n", 0), 0u);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    // Every event line leads with its comma, so dropping any subset
    // of lines leaves valid JSON.
    EXPECT_NE(text.find(",{\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find(",{\"ph\":\"i\",\"s\":\"t\""),
              std::string::npos);
    EXPECT_NE(text.find(",{\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"from\":\"high\"}"),
              std::string::npos);
    EXPECT_NE(text.find("\"otherData\""), std::string::npos);
    EXPECT_NE(text.find("\"dropped\":\"0\""), std::string::npos);
}

TEST(TraceSink, EmptySinkStillWritesValidDocument)
{
    obs::TraceSink sink;
    std::ostringstream os;
    sink.writeJson(os);
    // Metadata only; the last metadata line must not dangle a comma.
    EXPECT_NE(os.str().find("\"op-point\"}}\n],"),
              std::string::npos);
}

TEST(TraceSink, MacrosTolerateNullAndDisabledSinks)
{
    obs::TraceSink *null_sink = nullptr;
    TRACE_SPAN(null_sink, obs::kCatTransition, "x", 0, 1, "");
    TRACE_INSTANT(null_sink, obs::kCatGovernor, "x", 0, "");
    TRACE_COUNTER(null_sink, obs::kCatPower, "x", 0, 1.0);
    EXPECT_FALSE(TRACE_ACTIVE(null_sink));

    obs::TraceSink off;
    off.setEnabled(false);
    TRACE_INSTANT(&off, obs::kCatGovernor, "x", 0, "");
    EXPECT_FALSE(TRACE_ACTIVE(&off));
    EXPECT_EQ(off.size(), 0u);
}

TEST(TraceSink, KvHelpersEmitJsonFragments)
{
    EXPECT_EQ(obs::kv("a", "b\"c"), "\"a\":\"b\\\"c\"");
    EXPECT_EQ(obs::kv("n", 1.5), "\"n\":1.5");
    EXPECT_EQ(obs::kv("i", 7), "\"i\":7");
    EXPECT_EQ(obs::kv("u", std::uint64_t{9}), "\"u\":9");
}

TEST(TraceDeterminism, JobCountNeverChangesTraceBytes)
{
    std::vector<exp::ExperimentSpec> specs;
    specs.push_back(fastSpec("cell-a", 1));
    specs.push_back(fastSpec("cell-b", 7));

    const TempDir serial("serial");
    const TempDir threaded("threaded");

    exp::RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.cell.traceDir = serial.path();
    exp::ExperimentRunner(serial_opts).run(specs);

    exp::RunnerOptions threaded_opts;
    threaded_opts.jobs = 2;
    threaded_opts.cell.traceDir = threaded.path();
    exp::ExperimentRunner(threaded_opts).run(specs);

    for (const auto &spec : specs) {
        const std::string a =
            readFile(traceFileFor(spec, serial.path()));
        const std::string b =
            readFile(traceFileFor(spec, threaded.path()));
        EXPECT_FALSE(a.empty());
        EXPECT_EQ(a, b) << spec.id;
    }
}

TEST(TraceDeterminism, SkipAheadDiffersOnlyInReplayCategory)
{
    const exp::ExperimentSpec spec = fastSpec("skip-cell");

    const TempDir fast("fast");
    const TempDir slow("slow");
    exp::RunCellOptions fast_opts;
    fast_opts.traceDir = fast.path();
    exp::RunCellOptions slow_opts;
    slow_opts.traceDir = slow.path();

    std::string fast_text, slow_text;
    {
        const SkipAheadGuard guard(true);
        ASSERT_TRUE(exp::runCell(spec, fast_opts).ok);
        fast_text = readFile(traceFileFor(spec, fast.path()));
    }
    {
        const SkipAheadGuard guard(false);
        ASSERT_TRUE(exp::runCell(spec, slow_opts).ok);
        slow_text = readFile(traceFileFor(spec, slow.path()));
    }

    // The fast path batches replayed steps into "replay" spans the
    // slow path never emits; everything else is byte-identical.
    EXPECT_NE(fast_text.find("\"cat\":\"replay\""),
              std::string::npos);
    EXPECT_EQ(slow_text.find("\"cat\":\"replay\""),
              std::string::npos);
    EXPECT_EQ(stripCategory(fast_text, "replay"),
              stripCategory(slow_text, "replay"));
}

TEST(TraceDeterminism, ReplayBatchesAreSingleSpansWithStepCounts)
{
    const exp::ExperimentSpec spec = fastSpec("replay-cell");
    const TempDir dir("replay");
    exp::RunCellOptions opts;
    opts.traceDir = dir.path();

    const SkipAheadGuard guard(true);
    const exp::RunResult res = exp::runCell(spec, opts);
    ASSERT_TRUE(res.ok);

    // The replayed-step total the simulation itself recorded.
    const std::string stat = "soc.replayed_steps ";
    const auto stat_pos = res.statsDump.find(stat);
    ASSERT_NE(stat_pos, std::string::npos);
    const std::uint64_t recorded = std::strtoull(
        res.statsDump.c_str() + stat_pos + stat.size(), nullptr,
        10);
    ASSERT_GT(recorded, 0u);

    const std::string text =
        readFile(traceFileFor(spec, dir.path()));
    std::istringstream is(text);
    std::string line;
    std::uint64_t replayed = 0;
    std::size_t batches = 0;
    while (std::getline(is, line)) {
        if (line.find("\"name\":\"replay_batch\"") ==
            std::string::npos)
            continue;
        ++batches;
        EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos);
        const std::string marker = "\"steps\":";
        const auto pos = line.find(marker);
        ASSERT_NE(pos, std::string::npos);
        replayed += std::strtoull(
            line.c_str() + pos + marker.size(), nullptr, 10);
    }
    EXPECT_GT(batches, 0u);
    // One span per batch; the spans' step counts account for every
    // replayed step exactly once.
    EXPECT_EQ(replayed, recorded);
}

TEST(TraceDeterminism, TracingNeverPerturbsResults)
{
    const exp::ExperimentSpec spec = fastSpec("observer-cell");
    const TempDir dir("observer");
    exp::RunCellOptions traced_opts;
    traced_opts.traceDir = dir.path();

    const exp::RunResult plain = exp::runCell(spec);
    const exp::RunResult traced = exp::runCell(spec, traced_opts);
    ASSERT_TRUE(plain.ok);
    ASSERT_TRUE(traced.ok);
    EXPECT_EQ(stableRow(plain), stableRow(traced));
    EXPECT_EQ(plain.statsDump, traced.statsDump);
    EXPECT_FALSE(plain.statsDump.empty());
}

TEST(TraceDeterminism, StatsDumpCarriesResidencyStats)
{
    const exp::RunResult res = exp::runCell(fastSpec("stats-cell"));
    ASSERT_TRUE(res.ok);
    EXPECT_NE(res.statsDump.find("soc.dram_bin::tmean"),
              std::string::npos);
    EXPECT_NE(res.statsDump.find("soc.fabric_mhz::tmean"),
              std::string::npos);
    EXPECT_NE(res.statsDump.find("soc.vsa_v::tmean"),
              std::string::npos);
    EXPECT_NE(res.statsDump.find("soc.vio_v::tmean"),
              std::string::npos);
}
