/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace sysscale {
namespace {

using stats::Average;
using stats::Distribution;
using stats::Scalar;
using stats::StatGroup;
using stats::TimeAverage;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root(nullptr, "root");
    Scalar s(&root, "count", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMeanAndExtrema)
{
    StatGroup root(nullptr, "root");
    Average a(&root, "avg", "an average");
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, AverageHonorsWeights)
{
    StatGroup root(nullptr, "root");
    Average a(&root, "avg", "weighted");
    a.sample(1.0, 3.0);
    a.sample(5.0, 1.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Stats, TimeAverageWeightsByDuration)
{
    StatGroup root(nullptr, "root");
    TimeAverage t(&root, "util", "utilization");
    t.set(1.0, 0);
    t.set(0.0, 750);   // 1.0 held for 750 ticks
    t.finish(1000);    // 0.0 held for 250 ticks
    EXPECT_DOUBLE_EQ(t.mean(), 0.75);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    StatGroup root(nullptr, "root");
    Distribution d(&root, "dist", "histogram", 0.0, 10.0, 5);
    d.sample(1.0);  // bucket 0
    d.sample(3.0);  // bucket 1
    d.sample(9.9);  // bucket 4
    d.sample(-1.0); // underflow
    d.sample(11.0); // overflow
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.samples(), 5u);
}

TEST(Stats, GroupPathAndHierarchicalDump)
{
    StatGroup root(nullptr, "soc");
    StatGroup child(&root, "mc");
    Scalar s(&child, "bytes", "serviced bytes");
    s += 42.0;

    std::ostringstream os;
    root.dumpStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("mc.bytes"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Stats, RecursiveReset)
{
    StatGroup root(nullptr, "soc");
    StatGroup child(&root, "mc");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1.0;
    b += 2.0;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, EmptyAverageIsZero)
{
    StatGroup root(nullptr, "root");
    Average a(&root, "avg", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

} // namespace
} // namespace sysscale
