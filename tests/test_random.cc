/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

namespace sysscale {
namespace {

TEST(Random, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Random, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Random, UniformIntInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(2, 4);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 4);
        saw_lo |= v == 2;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Random, ExponentialMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, ChanceRespectsBias)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Random, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

class RandomSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomSeedSweep, UniformMeanNearHalf)
{
    Rng rng(GetParam());
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeedSweep,
                         ::testing::Values(1u, 2u, 42u, 1337u,
                                           0xdeadbeefu, 987654321u));

} // namespace
} // namespace sysscale
