/**
 * @file
 * Unit tests for the DRAM spec, timings, power model, and device.
 */

#include <gtest/gtest.h>

#include "dram/device.hh"
#include "dram/power.hh"
#include "dram/spec.hh"
#include "dram/timing.hh"
#include "sim/sim_object.hh"

namespace sysscale {
namespace dram {
namespace {

TEST(DramSpec, Lpddr3MatchesTable2)
{
    const DramSpec spec = lpddr3Spec();
    EXPECT_EQ(spec.type(), DramType::LPDDR3);
    EXPECT_EQ(spec.numBins(), 3u);
    // Bins sorted highest first: 1600, 1066, 800.
    EXPECT_DOUBLE_EQ(spec.bin(0).dataRateMTs, 1600.0);
    EXPECT_DOUBLE_EQ(spec.bin(1).dataRateMTs, 1066.0);
    EXPECT_DOUBLE_EQ(spec.bin(2).dataRateMTs, 800.0);
}

TEST(DramSpec, PeakBandwidthIs25GBs)
{
    // Paper Sec. 3: dual-channel LPDDR3-1600 peaks at 25.6 GB/s.
    const DramSpec spec = lpddr3Spec();
    EXPECT_NEAR(spec.peakBandwidth(0), 25.6e9, 1e6);
}

TEST(DramSpec, ClockRelationships)
{
    const FreqBin bin{1600.0};
    EXPECT_DOUBLE_EQ(bin.busClock(), 800.0 * kMHz);
    EXPECT_DOUBLE_EQ(bin.mcClock(), 800.0 * kMHz);
    EXPECT_DOUBLE_EQ(bin.transferRate(), 1600.0 * kMHz);
}

TEST(DramSpec, BinIndexLookup)
{
    const DramSpec spec = lpddr3Spec();
    EXPECT_EQ(spec.binIndexFor(1066.0), 1u);
    EXPECT_DEATH((void)spec.binIndexFor(1234.0), "");
}

TEST(DramSpec, Ddr4SensitivityBins)
{
    // Sec. 7.4 evaluates DDR4 1866 -> 1333.
    const DramSpec spec = ddr4Spec();
    EXPECT_DOUBLE_EQ(spec.bin(0).dataRateMTs, 1866.0);
    EXPECT_DOUBLE_EQ(spec.bin(1).dataRateMTs, 1333.0);
}

TEST(Timing, AnalogConstraintsAreClockInvariant)
{
    const DramSpec spec = lpddr3Spec();
    const TimingSet hi = optimizedTimings(spec, 0);
    const TimingSet lo = optimizedTimings(spec, 1);
    // Random-access time in ns stays roughly constant across bins
    // (the array is the same silicon).
    EXPECT_NEAR(hi.randomAccessNs(), lo.randomAccessNs(),
                hi.randomAccessNs() * 0.15);
    EXPECT_GT(lo.tCKNs, hi.tCKNs);
}

TEST(Timing, CyclesConversionRoundsUp)
{
    const DramSpec spec = lpddr3Spec();
    const TimingSet t = optimizedTimings(spec, 0);
    // A constraint shorter than one clock still costs one cycle.
    EXPECT_GE(t.cyclesOf(0.1), 1u);
}

TEST(DramPower, BackgroundScalesWithClock)
{
    const DramSpec spec = lpddr3Spec();
    const DramPowerModel model(spec);
    const auto hi = model.activePower(0, 0.0, 0.0, 1e-3);
    const auto lo = model.activePower(1, 0.0, 0.0, 1e-3);
    EXPECT_GT(hi.background, lo.background);
    // A floor remains: background does not go to zero proportionally.
    EXPECT_GT(lo.background, hi.background * (1066.0 / 1600.0) * 0.9);
}

TEST(DramPower, IoEnergyPerBitRisesAsClockDrops)
{
    // Paper Sec. 2.4: each access occupies the interface longer at a
    // lower frequency, raising read/write/termination energy.
    const DramSpec spec = lpddr3Spec();
    const DramPowerModel model(spec);
    const double bytes = 1e6;
    const auto hi = model.activePower(0, bytes, 0.0, 1e-3);
    const auto lo = model.activePower(1, bytes, 0.0, 1e-3);
    EXPECT_GT(lo.io, hi.io);
}

TEST(DramPower, TerminationFollowsUnoptimizedFactor)
{
    const DramSpec spec = ddr4Spec();
    const DramPowerModel model(spec);
    const double bytes = 5e6;
    const auto trained = model.activePower(0, bytes, bytes, 1e-3, 1.0);
    const auto unopt = model.activePower(0, bytes, bytes, 1e-3, 1.85);
    EXPECT_NEAR(unopt.termination, trained.termination * 1.85, 1e-9);
}

TEST(DramPower, SelfRefreshFarBelowActive)
{
    const DramSpec spec = lpddr3Spec();
    const DramPowerModel model(spec);
    const auto active = model.activePower(0, 0.0, 0.0, 1e-3);
    EXPECT_LT(model.selfRefreshPower(), active.total() * 0.2);
}

TEST(DramDevice, BinSwitchRequiresSelfRefresh)
{
    Simulator sim;
    DramDevice dev(sim, nullptr, lpddr3Spec());
    EXPECT_DEATH(dev.setBin(1), "");

    dev.enterSelfRefresh();
    dev.setBin(1);
    EXPECT_EQ(dev.binIndex(), 1u);
    dev.exitSelfRefresh(true);
    EXPECT_EQ(dev.mode(), DramMode::Active);
}

TEST(DramDevice, FastRelockExitUnder5us)
{
    // Paper Sec. 5: SysScale bounds self-refresh exit below 5us.
    Simulator sim;
    DramDevice dev(sim, nullptr, lpddr3Spec());
    dev.enterSelfRefresh();
    const Tick fast = dev.exitSelfRefresh(true);
    EXPECT_LT(fast, 5 * kTicksPerUs);

    dev.enterSelfRefresh();
    const Tick slow = dev.exitSelfRefresh(false);
    EXPECT_GT(slow, fast);
}

TEST(DramDevice, TrafficWhileParkedPanics)
{
    Simulator sim;
    DramDevice dev(sim, nullptr, lpddr3Spec());
    dev.enterSelfRefresh();
    EXPECT_DEATH(dev.accountTraffic(64.0, 0.0, kTicksPerUs, 1.0), "");
}

class DramBinSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(DramBinSweep, PeakBandwidthMatchesDataRate)
{
    const DramSpec spec = lpddr3Spec();
    const std::size_t bin = GetParam();
    const double expected = 2.0 * 8.0 * spec.bin(bin).dataRateMTs *
                            1e6;
    EXPECT_NEAR(spec.peakBandwidth(bin), expected, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllBins, DramBinSweep,
                         ::testing::Values(0u, 1u, 2u));

} // namespace
} // namespace dram
} // namespace sysscale
