/**
 * @file
 * Snapshot layer tests: codec round trips, corruption rejection, and
 * the randomized checkpoint/restore differential battery.
 *
 * The differential suite is the layer's ground truth: for random
 * specs and random checkpoint ticks it runs each cell three ways —
 * straight through, save-at-k/restore/continue, and as a multi-slice
 * chain — and requires byte-identical RunMetrics, stats dumps, and
 * trace files. SYSSCALE_STRESS_ITERS multiplies the trial count; the
 * CI sanitizer matrix runs the same battery 100x longer than the
 * tier-1 lane. When a trial diverges, `tools/snap_inspect` diffs the
 * two snapshots down to a named field.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/experiment.hh"
#include "exp/spec_codec.hh"
#include "sim/snapshot.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/micro.hh"
#include "workloads/scenario.hh"

namespace sysscale {
namespace {

/** Trial multiplier for nightly-style stress runs (default 1x). */
std::size_t
stressIters()
{
    const char *env = std::getenv("SYSSCALE_STRESS_ITERS");
    if (!env)
        return 1;
    const long v = std::atol(env);
    return v > 0 ? static_cast<std::size_t>(v) : 1;
}

/** Fresh per-test directory under the system tmp. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("sysscale-snap-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Pin the process-wide skip-ahead default for one test's scope. */
class SkipAheadGuard
{
  public:
    explicit SkipAheadGuard(bool on)
        : prev_(soc::Soc::skipAheadDefault())
    {
        soc::Soc::setSkipAheadDefault(on);
    }
    ~SkipAheadGuard() { soc::Soc::setSkipAheadDefault(prev_); }

  private:
    bool prev_;
};

std::uint64_t
bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** Byte-identity over every RunMetrics field (NaN/-0.0 exact). */
void
expectSameMetrics(const soc::RunMetrics &a, const soc::RunMetrics &b,
                  const std::string &what)
{
    EXPECT_EQ(bits(a.seconds), bits(b.seconds)) << what << ": seconds";
    EXPECT_EQ(bits(a.instructions), bits(b.instructions))
        << what << ": instructions";
    EXPECT_EQ(bits(a.ips), bits(b.ips)) << what << ": ips";
    EXPECT_EQ(bits(a.frames), bits(b.frames)) << what << ": frames";
    EXPECT_EQ(bits(a.fps), bits(b.fps)) << what << ": fps";
    EXPECT_EQ(bits(a.avgPower), bits(b.avgPower))
        << what << ": avgPower";
    EXPECT_EQ(bits(a.energy), bits(b.energy)) << what << ": energy";
    EXPECT_EQ(bits(a.edp), bits(b.edp)) << what << ": edp";
    for (std::size_t i = 0; i < a.railEnergy.size(); ++i) {
        EXPECT_EQ(bits(a.railEnergy[i]), bits(b.railEnergy[i]))
            << what << ": railEnergy[" << i << "]";
    }
    EXPECT_EQ(bits(a.avgMemLatencyNs), bits(b.avgMemLatencyNs))
        << what << ": avgMemLatencyNs";
    EXPECT_EQ(bits(a.avgMemBandwidth), bits(b.avgMemBandwidth))
        << what << ": avgMemBandwidth";
    EXPECT_EQ(bits(a.avgCoreFreq), bits(b.avgCoreFreq))
        << what << ": avgCoreFreq";
    EXPECT_EQ(a.qosViolations, b.qosViolations)
        << what << ": qosViolations";
    EXPECT_EQ(a.transitions, b.transitions) << what << ": transitions";
    EXPECT_EQ(a.stallTicks, b.stallTicks) << what << ": stallTicks";
    EXPECT_EQ(bits(a.lowPointResidency), bits(b.lowPointResidency))
        << what << ": lowPointResidency";
}

void
expectSameCounters(const soc::CounterSnapshot &a,
                   const soc::CounterSnapshot &b,
                   const std::string &what)
{
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        EXPECT_EQ(bits(a.values[i]), bits(b.values[i]))
            << what << ": counter " << i;
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::string
traceFileFor(const exp::ExperimentSpec &spec, const std::string &dir)
{
    return dir + "/" + exp::snapshotSpecKey(spec) + ".trace.json";
}

/**
 * A randomized fast cell: workload, governor, scenario, seed, and
 * measurement window all drawn from @p rng. Kept short (tens of
 * simulated milliseconds) so the stress battery stays cheap.
 */
exp::ExperimentSpec
randomSpec(std::mt19937_64 &rng)
{
    exp::ExperimentSpec spec;

    const int w = static_cast<int>(rng() % 4);
    switch (w) {
      case 0: spec.workload = workloads::streamMicro(); break;
      case 1: spec.workload = workloads::spinMicro(); break;
      case 2: spec.workload = workloads::pointerChaseMicro(); break;
      default: spec.workload = workloads::webBrowsing(); break;
    }

    static const std::vector<std::string> governors = {
        "fixed",        "sysscale",     "memscale", "coscale-r",
        "ondemand",     "conservative", "adaptive", "latency-budget",
        "collect",
    };
    spec.governor = governors[rng() % governors.size()];

    // Scenario actions are compressed into the short run so the
    // checkpoint can land before, between, or after them.
    if (rng() % 2 == 0) {
        workloads::Scenario s;
        s.actions.push_back(
            {4 * kTicksPerMs, workloads::ScenarioActionKind::SetTdp,
             3.5});
        s.actions.push_back(
            {18 * kTicksPerMs, workloads::ScenarioActionKind::SetTdp,
             4.5});
        if (rng() % 2 == 0) {
            s.actions.push_back(
                {9 * kTicksPerMs,
                 workloads::ScenarioActionKind::CameraOn, 0.0});
            std::sort(s.actions.begin(), s.actions.end(),
                      [](const workloads::ScenarioAction &a,
                         const workloads::ScenarioAction &b) {
                          return a.at < b.at;
                      });
        }
        spec.scenario = s;
    }

    spec.seed = 1 + rng() % 97;
    spec.warmup = (2 + rng() % 6) * kTicksPerMs;
    spec.window = (20 + rng() % 20) * kTicksPerMs;
    spec.id = "snap-diff";
    return spec;
}

/** Snapshot path helper. */
std::string
snapPath(const std::string &dir, const std::string &tag)
{
    return dir + "/" + tag + ".snap";
}

/** Re-stamp the checksum line after mutating a snapshot's text. */
std::string
restampChecksum(std::string text)
{
    const std::size_t pos = text.rfind("checksum = ");
    EXPECT_NE(pos, std::string::npos);
    text.resize(pos);
    const std::uint64_t sum = snapshotFnv1a64(text);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(sum));
    return text + "checksum = " + buf + "\n";
}

} // anonymous namespace

TEST(SnapshotCodec, ScalarRoundTrip)
{
    SnapshotWriter w("deadbeefdeadbeef", 42);
    w.putU64("u", 0xffffffffffffffffULL);
    w.putBool("yes", true);
    w.putBool("no", false);
    w.putDouble("pi", 3.141592653589793);
    w.putString("s", "line one\nline two\\with backslash");
    w.push("scope");
    w.putU64("inner", 7);
    w.pop();

    SnapshotReader r(w.str());
    EXPECT_EQ(r.specKey(), "deadbeefdeadbeef");
    EXPECT_EQ(r.tick(), 42u);
    EXPECT_EQ(r.getU64("u"), 0xffffffffffffffffULL);
    EXPECT_TRUE(r.getBool("yes"));
    EXPECT_FALSE(r.getBool("no"));
    EXPECT_EQ(bits(r.getDouble("pi")), bits(3.141592653589793));
    EXPECT_EQ(r.getString("s"),
              "line one\nline two\\with backslash");
    r.push("scope");
    EXPECT_EQ(r.getU64("inner"), 7u);
    r.pop();
    EXPECT_NO_THROW(r.finish());
}

TEST(SnapshotCodec, DoublesAreBitExact)
{
    const std::vector<double> specials = {
        0.0,
        -0.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        -1.0 / 3.0,
    };
    SnapshotWriter w("0000000000000000", 0);
    for (std::size_t i = 0; i < specials.size(); ++i)
        w.putDouble("d" + std::to_string(i), specials[i]);
    SnapshotReader r(w.str());
    for (std::size_t i = 0; i < specials.size(); ++i) {
        EXPECT_EQ(bits(r.getDouble("d" + std::to_string(i))),
                  bits(specials[i]))
            << i;
    }
    r.finish();
}

TEST(SnapshotCodec, DuplicateKeyThrows)
{
    SnapshotWriter w("0000000000000000", 0);
    w.putU64("k", 1);
    EXPECT_THROW(w.putU64("k", 2), SnapshotError);
}

TEST(SnapshotCodec, MissingAndUnconsumedKeysThrow)
{
    SnapshotWriter w("0000000000000000", 0);
    w.putU64("present", 1);
    SnapshotReader r(w.str());
    EXPECT_THROW((void)r.getU64("absent"), SnapshotError);
    // "present" was never consumed.
    EXPECT_THROW(r.finish(), SnapshotError);
}

TEST(SnapshotCodec, TruncationIsRejected)
{
    SnapshotWriter w("0000000000000000", 0);
    w.putU64("k", 1);
    const std::string text = w.str();
    // size-2 cuts into the checksum digits; a missing final *newline*
    // alone is tolerated by design (the checksum still verifies).
    for (const std::size_t cut :
         {text.size() - 2, text.size() / 2, std::size_t{10}}) {
        EXPECT_THROW(SnapshotReader r(text.substr(0, cut)),
                     SnapshotError)
            << "cut at " << cut;
    }
}

TEST(SnapshotCodec, BitFlipIsRejected)
{
    SnapshotWriter w("0000000000000000", 7);
    w.putDouble("v", 1.25);
    w.putU64("n", 3);
    const std::string text = w.str();
    for (std::size_t i = 0; i < text.size(); i += 7) {
        std::string bad = text;
        bad[i] = static_cast<char>(bad[i] ^ 0x08);
        if (bad == text)
            continue;
        EXPECT_THROW(SnapshotReader r(bad), SnapshotError)
            << "flip at " << i;
    }
}

TEST(SnapshotCodec, StaleVersionIsRejectedLoudly)
{
    SnapshotWriter w("0000000000000000", 0);
    w.putU64("k", 1);
    std::string text = w.str();
    const std::string ver =
        "sysscale-snap v" + std::to_string(kSnapFormatVersion);
    const std::size_t pos = text.find(ver);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, ver.size(), "sysscale-snap v999");
    text = restampChecksum(text);
    try {
        SnapshotReader r(text);
        FAIL() << "stale version accepted";
    } catch (const SnapshotError &e) {
        // "snapshot format v999 does not match this build's v1;
        //  stale snapshots must be re-simulated"
        EXPECT_NE(std::string(e.what()).find("stale"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFile, TmpRenameRoundTrip)
{
    const TempDir dir("file");
    const std::string path = snapPath(dir.path(), "t");
    SnapshotWriter w("0000000000000000", 0);
    w.putU64("k", 9);
    writeSnapshotFile(path, w.str());
    EXPECT_EQ(readSnapshotFile(path), w.str());
    // No tmp litter from the atomic-rename protocol.
    std::size_t entries = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(dir.path())) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    EXPECT_THROW((void)readSnapshotFile(dir.path() + "/absent.snap"),
                 SnapshotError);
}

TEST(SnapshotDifferential, SaveRestoreMatchesRunThrough)
{
    // Skip-ahead off: a slice cut inside a replay batch re-frames
    // the batched "replay" trace spans (docs/OBSERVABILITY.md), so
    // whole-file trace identity is pinned on the plain stepping
    // path. Metrics/stats identity under skip-ahead has its own
    // trial below and in test_skip_ahead.cc.
    const SkipAheadGuard guard(false);

    const std::size_t trials = 3 * stressIters();
    std::mt19937_64 rng(0xc0ffee);
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const exp::ExperimentSpec spec = randomSpec(rng);
        const Tick total = spec.warmup + spec.window;
        const Tick k = 1 + rng() % (total - 1);
        const std::string what =
            "trial " + std::to_string(trial) + " gov " +
            spec.governor + " k=" + std::to_string(k);

        const TempDir through("through-" + std::to_string(trial));
        const TempDir sliced("sliced-" + std::to_string(trial));

        exp::RunCellOptions copts;
        copts.traceDir = through.path();
        const exp::RunResult a = exp::runCell(spec, copts);
        ASSERT_TRUE(a.ok) << what << ": " << a.error;

        const std::string snap = snapPath(sliced.path(), "k");
        exp::SliceOptions first;
        first.t1 = k;
        first.outSnap = snap;
        first.traceDir = sliced.path();
        const exp::RunResult mid = exp::runCellSlice(spec, first);
        ASSERT_TRUE(mid.ok) << what << ": " << mid.error;
        EXPECT_TRUE(mid.statsDump.empty()) << what;

        exp::SliceOptions second;
        second.t0 = k;
        second.inSnap = snap;
        second.traceDir = sliced.path();
        const exp::RunResult b = exp::runCellSlice(spec, second);
        ASSERT_TRUE(b.ok) << what << ": " << b.error;

        expectSameMetrics(a.metrics, b.metrics, what);
        expectSameCounters(a.counters, b.counters, what);
        EXPECT_EQ(a.statsDump, b.statsDump) << what;
        EXPECT_EQ(readFile(traceFileFor(spec, through.path())),
                  readFile(traceFileFor(spec, sliced.path())))
            << what;
    }
}

TEST(SnapshotDifferential, MultiSliceChainMatchesRunThrough)
{
    const SkipAheadGuard guard(false);

    const std::size_t trials = 2 * stressIters();
    std::mt19937_64 rng(0xfeedface);
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const exp::ExperimentSpec spec = randomSpec(rng);
        const Tick total = spec.warmup + spec.window;
        const std::string what = "trial " + std::to_string(trial) +
                                 " gov " + spec.governor;

        // 2-4 random interior cuts, deduplicated and sorted.
        std::vector<Tick> cuts;
        const std::size_t n = 2 + rng() % 3;
        for (std::size_t i = 0; i < n; ++i)
            cuts.push_back(1 + rng() % (total - 1));
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        cuts.push_back(total);

        const TempDir through("mthrough-" + std::to_string(trial));
        const TempDir sliced("msliced-" + std::to_string(trial));

        exp::RunCellOptions copts;
        copts.traceDir = through.path();
        const exp::RunResult a = exp::runCell(spec, copts);
        ASSERT_TRUE(a.ok) << what << ": " << a.error;

        exp::RunResult b;
        Tick t0 = 0;
        std::string in;
        for (std::size_t i = 0; i < cuts.size(); ++i) {
            exp::SliceOptions sopts;
            sopts.t0 = t0;
            sopts.t1 = cuts[i];
            sopts.inSnap = in;
            sopts.outSnap =
                snapPath(sliced.path(), "c" + std::to_string(i));
            sopts.traceDir = sliced.path();
            b = exp::runCellSlice(spec, sopts);
            ASSERT_TRUE(b.ok)
                << what << " slice " << i << ": " << b.error;
            t0 = cuts[i];
            in = sopts.outSnap;
        }

        expectSameMetrics(a.metrics, b.metrics, what);
        expectSameCounters(a.counters, b.counters, what);
        EXPECT_EQ(a.statsDump, b.statsDump) << what;
        EXPECT_EQ(readFile(traceFileFor(spec, through.path())),
                  readFile(traceFileFor(spec, sliced.path())))
            << what;
    }
}

TEST(SnapshotDifferential, SkipAheadOnMetricsAndStatsMatch)
{
    // With skip-ahead on, a cut can land inside a replay batch; the
    // trace's "replay" spans re-frame around the cut but everything
    // observable — metrics, counters, the whole stats hierarchy —
    // must still match byte for byte.
    const SkipAheadGuard guard(true);

    const std::size_t trials = 2 * stressIters();
    std::mt19937_64 rng(0xabad1dea);
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const exp::ExperimentSpec spec = randomSpec(rng);
        const Tick total = spec.warmup + spec.window;
        const Tick k = 1 + rng() % (total - 1);
        const std::string what =
            "trial " + std::to_string(trial) + " gov " +
            spec.governor + " k=" + std::to_string(k);

        const exp::RunResult a = exp::runCell(spec);
        ASSERT_TRUE(a.ok) << what << ": " << a.error;

        const TempDir dir("skip-" + std::to_string(trial));
        const std::string snap = snapPath(dir.path(), "k");
        exp::SliceOptions first;
        first.t1 = k;
        first.outSnap = snap;
        ASSERT_TRUE(exp::runCellSlice(spec, first).ok) << what;
        exp::SliceOptions second;
        second.t0 = k;
        second.inSnap = snap;
        const exp::RunResult b = exp::runCellSlice(spec, second);
        ASSERT_TRUE(b.ok) << what << ": " << b.error;

        expectSameMetrics(a.metrics, b.metrics, what);
        expectSameCounters(a.counters, b.counters, what);
        EXPECT_EQ(a.statsDump, b.statsDump) << what;
    }
}

TEST(SnapshotFuzz, CorruptInputsDegradeToFreshSimulation)
{
    const SkipAheadGuard guard(false);

    std::mt19937_64 rng(0x5eed);
    const exp::ExperimentSpec spec = randomSpec(rng);
    const Tick total = spec.warmup + spec.window;
    const Tick k = total / 2;

    const exp::RunResult reference = exp::runCell(spec);
    ASSERT_TRUE(reference.ok) << reference.error;

    const TempDir dir("fuzz");
    const std::string snap = snapPath(dir.path(), "k");
    exp::SliceOptions first;
    first.t1 = k;
    first.outSnap = snap;
    ASSERT_TRUE(exp::runCellSlice(spec, first).ok);
    const std::string good = readSnapshotFile(snap);

    // Every corruption is (a) loudly rejected by the reader and (b)
    // absorbed by runCellSlice as a cache miss: the slice re-runs
    // from tick 0 and still produces the byte-identical cell.
    std::vector<std::pair<std::string, std::string>> corrupt;
    corrupt.emplace_back("truncated",
                         good.substr(0, good.size() * 2 / 3));
    {
        std::string flipped = good;
        flipped[good.size() / 2] =
            static_cast<char>(flipped[good.size() / 2] ^ 0x10);
        corrupt.emplace_back("bit-flipped", flipped);
    }
    {
        std::string bumped = good;
        const std::string ver =
            "sysscale-snap v" + std::to_string(kSnapFormatVersion);
        const std::size_t pos = bumped.find(ver);
        ASSERT_NE(pos, std::string::npos);
        bumped.replace(pos, ver.size(), "sysscale-snap v999");
        corrupt.emplace_back("version-bumped",
                             restampChecksum(bumped));
    }
    {
        // A valid snapshot of a *different* spec.
        exp::ExperimentSpec other = spec;
        other.seed += 1;
        const std::string osnap = snapPath(dir.path(), "other");
        exp::SliceOptions oopts;
        oopts.t1 = k;
        oopts.outSnap = osnap;
        ASSERT_TRUE(exp::runCellSlice(other, oopts).ok);
        corrupt.emplace_back("wrong-spec", readSnapshotFile(osnap));
    }

    for (const auto &c : corrupt) {
        if (c.first != "wrong-spec") {
            EXPECT_THROW(SnapshotReader r(c.second), SnapshotError)
                << c.first;
        }
        const std::string bad =
            snapPath(dir.path(), "bad-" + c.first);
        writeSnapshotFile(bad, c.second);
        exp::SliceOptions sopts;
        sopts.t0 = k;
        sopts.inSnap = bad;
        const exp::RunResult res = exp::runCellSlice(spec, sopts);
        ASSERT_TRUE(res.ok) << c.first << ": " << res.error;
        expectSameMetrics(reference.metrics, res.metrics, c.first);
        EXPECT_EQ(reference.statsDump, res.statsDump) << c.first;
    }

    // A missing file degrades the same way.
    exp::SliceOptions sopts;
    sopts.t0 = k;
    sopts.inSnap = dir.path() + "/never-written.snap";
    const exp::RunResult res = exp::runCellSlice(spec, sopts);
    ASSERT_TRUE(res.ok) << res.error;
    expectSameMetrics(reference.metrics, res.metrics, "missing file");
    EXPECT_EQ(reference.statsDump, res.statsDump) << "missing file";
}

TEST(SnapshotSlice, TracedSnapshotRestoresIntoUntracedCell)
{
    const SkipAheadGuard guard(false);

    std::mt19937_64 rng(0x0b5);
    const exp::ExperimentSpec spec = randomSpec(rng);
    const Tick total = spec.warmup + spec.window;
    const Tick k = total / 3;

    const exp::RunResult reference = exp::runCell(spec);
    ASSERT_TRUE(reference.ok) << reference.error;

    const TempDir dir("obs");
    // Save traced, restore untraced: the "obs" section is skipped.
    const std::string traced = snapPath(dir.path(), "traced");
    exp::SliceOptions first;
    first.t1 = k;
    first.outSnap = traced;
    first.traceDir = dir.path();
    ASSERT_TRUE(exp::runCellSlice(spec, first).ok);
    exp::SliceOptions second;
    second.t0 = k;
    second.inSnap = traced;
    const exp::RunResult untraced = exp::runCellSlice(spec, second);
    ASSERT_TRUE(untraced.ok) << untraced.error;
    expectSameMetrics(reference.metrics, untraced.metrics,
                      "traced->untraced");
    EXPECT_EQ(reference.statsDump, untraced.statsDump);

    // Save untraced, restore traced: no "obs" section to load; the
    // continuation still simulates identically (its trace only has
    // the tail, so the file itself is not compared).
    const std::string plain = snapPath(dir.path(), "plain");
    exp::SliceOptions third;
    third.t1 = k;
    third.outSnap = plain;
    ASSERT_TRUE(exp::runCellSlice(spec, third).ok);
    exp::SliceOptions fourth;
    fourth.t0 = k;
    fourth.inSnap = plain;
    fourth.traceDir = dir.path();
    const exp::RunResult traced_run =
        exp::runCellSlice(spec, fourth);
    ASSERT_TRUE(traced_run.ok) << traced_run.error;
    expectSameMetrics(reference.metrics, traced_run.metrics,
                      "untraced->traced");
    EXPECT_EQ(reference.statsDump, traced_run.statsDump);
}

TEST(SnapshotSlice, SliceArgumentValidation)
{
    std::mt19937_64 rng(0x11);
    const exp::ExperimentSpec spec = randomSpec(rng);
    const Tick total = spec.warmup + spec.window;

    exp::SliceOptions past_end;
    past_end.t1 = total + 1;
    EXPECT_FALSE(exp::runCellSlice(spec, past_end).ok);

    exp::SliceOptions empty;
    empty.t0 = total / 2;
    empty.t1 = total / 2;
    empty.inSnap = "unused.snap";
    EXPECT_FALSE(exp::runCellSlice(spec, empty).ok);

    exp::SliceOptions no_snap;
    no_snap.t0 = total / 2;
    EXPECT_FALSE(exp::runCellSlice(spec, no_snap).ok);
}

} // namespace sysscale
