/**
 * @file
 * Unit tests for the IO fabric, CSR space, display, ISP, and DMA.
 */

#include <gtest/gtest.h>

#include "interconnect/fabric.hh"
#include "io/csr.hh"
#include "io/display.hh"
#include "io/dma.hh"
#include "io/isp.hh"
#include "sim/sim_object.hh"

namespace sysscale {
namespace {

TEST(Fabric, CapacityIsWidthTimesClock)
{
    Simulator sim;
    interconnect::IoFabric fab(sim, nullptr, 0.8 * kGHz, 0.8, 32);
    EXPECT_NEAR(fab.capacity(), 32.0 * 0.8e9, 1.0);
}

TEST(Fabric, IsochronousPriority)
{
    Simulator sim;
    interconnect::IoFabric fab(sim, nullptr, 0.8 * kGHz, 0.8);
    interconnect::FabricDemand d;
    d.isochronous = 20e9;
    d.bestEffort = 20e9; // together oversubscribe 25.6 GB/s
    const auto r = fab.service(d, kTicksPerMs);
    EXPECT_NEAR(r.achievedIso, 20e9, 1.0);
    EXPECT_LT(r.achievedBestEffort, d.bestEffort);
    EXPECT_FALSE(r.qosViolation);
}

TEST(Fabric, QosViolationFlagged)
{
    Simulator sim;
    interconnect::IoFabric fab(sim, nullptr, 0.4 * kGHz, 0.64);
    interconnect::FabricDemand d;
    d.isochronous = 20e9; // above the 12.8 GB/s link
    const auto r = fab.service(d, kTicksPerMs);
    EXPECT_TRUE(r.qosViolation);
}

TEST(Fabric, RetargetRequiresBlock)
{
    Simulator sim;
    interconnect::IoFabric fab(sim, nullptr, 0.8 * kGHz, 0.8);
    EXPECT_DEATH(fab.setFrequency(0.4 * kGHz), "");

    const Tick drain = fab.blockAndDrain();
    EXPECT_LT(drain, 2 * kTicksPerUs);
    fab.setFrequency(0.4 * kGHz);
    fab.release();
    EXPECT_DOUBLE_EQ(fab.frequency(), 0.4 * kGHz);
}

TEST(Fabric, LatencyGrowsWhenClockDrops)
{
    Simulator sim;
    interconnect::IoFabric hi(sim, nullptr, 0.8 * kGHz, 0.8);
    interconnect::IoFabric lo(sim, nullptr, 0.4 * kGHz, 0.64);
    EXPECT_GT(lo.baseLatencyNs(), hi.baseLatencyNs());
}

TEST(Fabric, PowerDropsWithVoltageAndClock)
{
    EXPECT_LT(interconnect::IoFabric::powerAt(0.64, 0.4e9, 0.3),
              interconnect::IoFabric::powerAt(0.80, 0.8e9, 0.3));
}

TEST(Csr, DefineReadWriteReset)
{
    io::CsrSpace csr;
    csr.define("a", 7);
    EXPECT_TRUE(csr.defined("a"));
    EXPECT_EQ(csr.read("a"), 7u);
    csr.write("a", 9);
    EXPECT_EQ(csr.read("a"), 9u);
    csr.reset();
    EXPECT_EQ(csr.read("a"), 7u);
}

TEST(Csr, UndefinedAccessFatal)
{
    io::CsrSpace csr;
    EXPECT_DEATH((void)csr.read("nope"), "");
    EXPECT_DEATH(csr.write("nope", 1), "");
    csr.define("a");
    EXPECT_DEATH(csr.define("a"), "");
}

TEST(Display, HdPanelNearSeventeenPercentOfPeak)
{
    // Fig. 3b: one HD panel consumes ~17% of the 25.6 GB/s peak.
    const io::PanelConfig hd{io::PanelResolution::HD, 60.0, 4};
    const double share =
        io::DisplayEngine::panelBandwidth(hd) / 25.6e9;
    EXPECT_NEAR(share, 0.17, 0.02);
}

TEST(Display, UhdPanelNearSeventyPercentOfPeak)
{
    // Fig. 3b: a single 4K panel consumes ~70% of the peak.
    const io::PanelConfig uhd{io::PanelResolution::UHD4K, 60.0, 4};
    const double share =
        io::DisplayEngine::panelBandwidth(uhd) / 25.6e9;
    EXPECT_NEAR(share, 0.70, 0.05);
}

TEST(Display, ThreePanelsTripleTheDemand)
{
    // Sec. 4.2: three identical panels demand nearly 3x one panel.
    Simulator sim;
    io::CsrSpace csr;
    io::DisplayEngine disp(sim, nullptr, csr);
    const io::PanelConfig hd{io::PanelResolution::HD, 60.0, 4};
    disp.attachPanel(0, hd);
    const BytesPerSec one = disp.bandwidthDemand();
    disp.attachPanel(1, hd);
    disp.attachPanel(2, hd);
    EXPECT_NEAR(disp.bandwidthDemand(), 3.0 * one, 1.0);
    EXPECT_EQ(disp.activePanels(), 3u);
}

TEST(Display, CsrsTrackConfiguration)
{
    Simulator sim;
    io::CsrSpace csr;
    io::DisplayEngine disp(sim, nullptr, csr);
    EXPECT_EQ(csr.read(io::DisplayEngine::kCsrActivePanels), 0u);

    disp.attachPanel(1, {io::PanelResolution::QHD, 120.0, 4});
    EXPECT_EQ(csr.read(io::DisplayEngine::kCsrActivePanels), 1u);
    EXPECT_EQ(csr.read(io::DisplayEngine::csrResolution(1)), 3u);
    EXPECT_EQ(csr.read(io::DisplayEngine::csrRefresh(1)), 120u);

    disp.detachPanel(1);
    EXPECT_EQ(csr.read(io::DisplayEngine::kCsrActivePanels), 0u);
    EXPECT_EQ(csr.read(io::DisplayEngine::csrResolution(1)), 0u);
}

TEST(Display, RefreshScalesDemand)
{
    const io::PanelConfig hd60{io::PanelResolution::HD, 60.0, 4};
    const io::PanelConfig hd120{io::PanelResolution::HD, 120.0, 4};
    // The composition term doubles; the per-pipe base does not.
    EXPECT_GT(io::DisplayEngine::panelBandwidth(hd120),
              io::DisplayEngine::panelBandwidth(hd60) * 1.35);
}

TEST(Isp, StreamDemandAndCsrs)
{
    Simulator sim;
    io::CsrSpace csr;
    io::IspEngine isp(sim, nullptr, csr);
    EXPECT_DOUBLE_EQ(isp.bandwidthDemand(), 0.0);
    EXPECT_EQ(csr.read(io::IspEngine::kCsrActive), 0u);

    io::CameraConfig cam;
    cam.width = 1280;
    cam.height = 720;
    cam.fps = 30.0;
    cam.bytesPerPixel = 2;
    isp.startCamera(cam);

    const double pixel_rate = 1280.0 * 720.0 * 30.0;
    EXPECT_NEAR(isp.bandwidthDemand(),
                pixel_rate * 2.0 * io::IspEngine::kPassCount, 1.0);
    EXPECT_EQ(csr.read(io::IspEngine::kCsrActive), 1u);

    isp.stopCamera();
    EXPECT_DOUBLE_EQ(isp.bandwidthDemand(), 0.0);
}

TEST(Dma, BacklogAccumulatesUnderBackpressure)
{
    Simulator sim;
    io::DmaDevice dma(sim, nullptr, "dma", 10e9);
    dma.recordService(4e9, kTicksPerMs); // 6 GB/s shortfall for 1 ms
    EXPECT_NEAR(dma.backlogBytes(), 6e6, 1.0);

    // Full service drains the backlog.
    dma.setOfferedRate(0.0);
    dma.recordService(10e9, kTicksPerMs);
    EXPECT_NEAR(dma.backlogBytes(), 0.0, 1.0);
}

} // namespace
} // namespace sysscale
