/**
 * @file
 * Scenario subsystem tests: CompositeAgent demand-merge semantics,
 * the independent-overlay residency combine, ScenarioScript replay
 * against a live SoC (TDP stepping, display and camera toggles), the
 * named registry, and scenario validation.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "compute/cstates.hh"
#include "io/display.hh"
#include "io/isp.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/composite.hh"
#include "workloads/micro.hh"
#include "workloads/scenario.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using namespace sysscale::workloads;

namespace {

/** A one-phase profile built from explicit knobs. */
WorkloadProfile
phaseProfile(const std::string &name, double cpi,
             std::size_t threads, double io_gbps,
             const std::array<double, compute::kNumCStates> &res,
             Hertz core_req = 0.0)
{
    Phase p;
    p.duration = kTicksPerSec;
    p.work.cpiBase = cpi;
    p.activeThreads = threads;
    p.ioBestEffort = io_gbps * 1e9;
    p.residency = compute::CStateResidency(res);
    p.coreFreqRequest = core_req;
    return WorkloadProfile(name, WorkloadClass::Micro, {p});
}

} // anonymous namespace

TEST(OverlayResidency, DeepestStateIsTheIdentity)
{
    std::array<double, compute::kNumCStates> deepest{};
    deepest[compute::kNumCStates - 1] = 1.0;
    const compute::CStateResidency identity(deepest);
    const compute::CStateResidency mixed(
        {0.3, 0.3, 0.0, 0.0, 0.4});

    const compute::CStateResidency out =
        compute::overlayResidency(identity, mixed);
    for (const compute::CState c : compute::kAllCStates)
        EXPECT_DOUBLE_EQ(out.fraction(c), mixed.fraction(c));
}

TEST(OverlayResidency, PackageOnlyIdlesAsDeepAsTheShallowest)
{
    // One occupant always active: the package never leaves C0.
    const compute::CStateResidency c0; // all C0
    const compute::CStateResidency mixed(
        {0.2, 0.3, 0.0, 0.0, 0.5});
    const compute::CStateResidency out =
        compute::overlayResidency(c0, mixed);
    EXPECT_DOUBLE_EQ(out.activeFraction(), 1.0);

    // Two independent half-active occupants: active 1-0.5*0.5.
    const compute::CStateResidency half({0.5, 0.0, 0.0, 0.0, 0.5});
    const compute::CStateResidency two =
        compute::overlayResidency(half, half);
    EXPECT_DOUBLE_EQ(two.activeFraction(), 0.75);
    EXPECT_DOUBLE_EQ(two.fraction(compute::CState::C8), 0.25);

    // Fractions still sum to 1.
    double sum = 0.0;
    for (const compute::CState c : compute::kAllCStates)
        sum += two.fraction(c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(OverlayResidency, CommutesAndAssociates)
{
    const compute::CStateResidency a({0.4, 0.3, 0.1, 0.1, 0.1});
    const compute::CStateResidency b({0.1, 0.2, 0.3, 0.2, 0.2});
    const compute::CStateResidency c({0.25, 0.25, 0.25, 0.15, 0.1});

    const auto ab = compute::overlayResidency(a, b);
    const auto ba = compute::overlayResidency(b, a);
    const auto ab_c = compute::overlayResidency(ab, c);
    const auto a_bc =
        compute::overlayResidency(a, compute::overlayResidency(b, c));
    for (const compute::CState s : compute::kAllCStates) {
        EXPECT_NEAR(ab.fraction(s), ba.fraction(s), 1e-12);
        EXPECT_NEAR(ab_c.fraction(s), a_bc.fraction(s), 1e-12);
    }
}

TEST(CompositeAgent, ConcatenatesThreadsAndSumsIoDemand)
{
    const WorkloadProfile a = phaseProfile(
        "a", 1.0, 2, 1.0, {1.0, 0.0, 0.0, 0.0, 0.0});
    const WorkloadProfile b = phaseProfile(
        "b", 2.0, 1, 0.5, {0.5, 0.5, 0.0, 0.0, 0.0});
    ProfileAgent pa(a), pb(b);

    CompositeAgent comp;
    comp.addMember(pa);
    comp.addMember(pb);

    soc::IntervalDemand d;
    comp.demandAt(0, d);
    ASSERT_EQ(d.threadWork.size(), 3u);
    EXPECT_DOUBLE_EQ(d.threadWork[0].cpiBase, 1.0);
    EXPECT_DOUBLE_EQ(d.threadWork[2].cpiBase, 2.0);
    EXPECT_DOUBLE_EQ(d.ioBestEffort, 1.5e9);
    // a is always active, so the package never idles.
    EXPECT_DOUBLE_EQ(d.residency.activeFraction(), 1.0);
}

TEST(CompositeAgent, MergesGraphicsWork)
{
    // Two graphics members: frame work adds, the loosest cap binds.
    Phase g1, g2;
    g1.duration = g2.duration = kTicksPerSec;
    g1.activeThreads = g2.activeThreads = 0;
    g1.gfxWork = {1e6, 2e6, 30.0, 0.5};
    g2.gfxWork = {3e6, 1e6, 60.0, 0.9};
    ProfileAgent pa(WorkloadProfile("g1", WorkloadClass::Graphics,
                                    {g1}));
    ProfileAgent pb(WorkloadProfile("g2", WorkloadClass::Graphics,
                                    {g2}));
    CompositeAgent comp;
    comp.addMember(pa);
    comp.addMember(pb);

    soc::IntervalDemand d;
    comp.demandAt(0, d);
    EXPECT_DOUBLE_EQ(d.gfxWork.cyclesPerFrame, 4e6);
    EXPECT_DOUBLE_EQ(d.gfxWork.bytesPerFrame, 3e6);
    EXPECT_DOUBLE_EQ(d.gfxWork.targetFps, 60.0);
    // Cycle-weighted activity: (0.5*1e6 + 0.9*3e6) / 4e6.
    EXPECT_DOUBLE_EQ(d.gfxWork.activity, 0.8);
}

TEST(CompositeAgent, MaximumFreqRequestDominates)
{
    const std::array<double, compute::kNumCStates> c0 = {
        1.0, 0.0, 0.0, 0.0, 0.0};
    ProfileAgent slow(phaseProfile("slow", 1.0, 1, 0.0, c0,
                                   1.2 * kGHz));
    ProfileAgent slower(phaseProfile("slower", 1.0, 1, 0.0, c0,
                                     0.8 * kGHz));
    ProfileAgent race(phaseProfile("race", 1.0, 1, 0.0, c0, 0.0));

    {
        CompositeAgent comp;
        comp.addMember(slow);
        comp.addMember(slower);
        soc::IntervalDemand d;
        comp.demandAt(0, d);
        EXPECT_DOUBLE_EQ(d.coreFreqRequest, 1.2 * kGHz);
    }
    {
        CompositeAgent comp;
        comp.addMember(slow);
        comp.addMember(race);
        soc::IntervalDemand d;
        comp.demandAt(0, d);
        EXPECT_DOUBLE_EQ(d.coreFreqRequest, 0.0);
    }
}

TEST(CompositeAgent, MembersSeeLocalClocksAndWindows)
{
    const Tick period = spinMicro().period();
    ProfileAgent always(spinMicro());
    ProfileAgent late(streamMicro());

    CompositeAgent comp;
    comp.addMember(always);
    comp.addMember(late, /*start=*/10 * period, /*stop=*/20 * period);

    EXPECT_TRUE(comp.memberActive(0, 0));
    EXPECT_FALSE(comp.memberActive(1, 0));
    EXPECT_TRUE(comp.memberActive(1, 10 * period));
    EXPECT_FALSE(comp.memberActive(1, 20 * period));

    const std::size_t spin_threads =
        spinMicro().phase(0).activeThreads;
    const std::size_t stream_threads =
        streamMicro().phase(0).activeThreads;
    soc::IntervalDemand d;
    comp.demandAt(0, d);
    EXPECT_EQ(d.threadWork.size(), spin_threads);
    d.clear();
    comp.demandAt(10 * period, d);
    EXPECT_EQ(d.threadWork.size(), spin_threads + stream_threads);
    d.clear();
    comp.demandAt(20 * period, d);
    EXPECT_EQ(d.threadWork.size(), spin_threads);
}

TEST(CompositeAgent, FinishesWithItsMembers)
{
    const WorkloadProfile spin = spinMicro();
    ProfileAgent bounded(spin, /*repeats=*/2);
    CompositeAgent comp;
    // Departs at 10 periods, but its own work ends after 2.
    comp.addMember(bounded, 0, 10 * spin.period());
    EXPECT_FALSE(comp.finished(spin.period()));
    EXPECT_TRUE(comp.finished(2 * spin.period()));
}

TEST(ScenarioScript, StepsTdpOnSchedule)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig(4.5));
    ProfileAgent agent(spinMicro());
    chip.setWorkload(&agent);

    ScenarioScript script(
        sim, chip,
        {{50 * kTicksPerMs, ScenarioActionKind::SetTdp, 3.5},
         {100 * kTicksPerMs, ScenarioActionKind::SetTdp, 7.0}});

    chip.run(40 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(chip.config().tdp, 4.5);
    EXPECT_EQ(script.applied(), 0u);

    chip.run(20 * kTicksPerMs); // crosses 50ms
    EXPECT_DOUBLE_EQ(chip.config().tdp, 3.5);
    EXPECT_DOUBLE_EQ(chip.pbm().tdp(), 3.5);
    EXPECT_EQ(script.applied(), 1u);

    chip.run(50 * kTicksPerMs); // crosses 100ms
    EXPECT_DOUBLE_EQ(chip.config().tdp, 7.0);
    EXPECT_EQ(script.applied(), 2u);
    EXPECT_GT(chip.computeBudget(), 0.0);
}

TEST(ScenarioScript, TogglesDisplayAndCamera)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});

    ScenarioScript script(
        sim, chip,
        {{0, ScenarioActionKind::CameraOn, 0.0},
         {30 * kTicksPerMs, ScenarioActionKind::DisplayOff, 0.0},
         {60 * kTicksPerMs, ScenarioActionKind::DisplayOn, 0.0},
         {60 * kTicksPerMs, ScenarioActionKind::CameraOff, 0.0}});

    chip.run(10 * kTicksPerMs);
    EXPECT_TRUE(chip.isp().active());
    EXPECT_EQ(chip.display().activePanels(), 1u);

    chip.run(30 * kTicksPerMs);
    EXPECT_EQ(chip.display().activePanels(), 0u);

    chip.run(30 * kTicksPerMs);
    EXPECT_EQ(chip.display().activePanels(), 1u);
    EXPECT_FALSE(chip.isp().active());
    EXPECT_EQ(script.applied(), 4u);
}

TEST(Scenario, RegistryNamesResolveAndValidate)
{
    for (const std::string &name : scenarioNames()) {
        const Scenario s = scenarioByName(name);
        EXPECT_NO_THROW(validateScenario(s)) << name;
        if (name == "none")
            EXPECT_TRUE(s.empty());
        else
            EXPECT_FALSE(s.empty()) << name;
    }
    EXPECT_THROW((void)scenarioByName("no-such-scenario"),
                 std::invalid_argument);
}

TEST(Scenario, ValidationRejectsIllFormedScenarios)
{
    Scenario unsorted;
    unsorted.actions = {{100, ScenarioActionKind::SetTdp, 4.5},
                        {50, ScenarioActionKind::SetTdp, 3.5}};
    EXPECT_THROW(validateScenario(unsorted), std::invalid_argument);

    Scenario bad_tdp;
    bad_tdp.actions = {{0, ScenarioActionKind::SetTdp, 0.0}};
    EXPECT_THROW(validateScenario(bad_tdp), std::invalid_argument);

    Scenario inverted;
    inverted.layers.push_back(
        ScenarioLayer{videoPlayback(), 100, 100});
    EXPECT_THROW(validateScenario(inverted), std::invalid_argument);

    Scenario empty_layer;
    empty_layer.layers.push_back(ScenarioLayer{});
    EXPECT_THROW(validateScenario(empty_layer),
                 std::invalid_argument);
}

TEST(Scenario, AppSwitchHandsForegroundBetweenLayers)
{
    const Scenario s = scenarioByName("app-switch");
    ASSERT_EQ(s.layers.size(), 2u);
    EXPECT_TRUE(s.actions.empty());

    // The browser runs from the start and departs exactly when the
    // game arrives, which stays to the end of the run — the swap is
    // a pure arrival/departure handoff, not an overlap.
    EXPECT_EQ(s.layers[0].profile.name(), "web-browsing");
    EXPECT_EQ(s.layers[0].start, Tick{0});
    EXPECT_EQ(s.layers[0].stop, kTicksPerSec);
    EXPECT_EQ(s.layers[1].profile.name(), "light-gaming");
    EXPECT_EQ(s.layers[1].start, kTicksPerSec);
    EXPECT_EQ(s.layers[1].stop, Tick{0});

    // Exactly one of the two apps is in the foreground at any tick.
    CompositeAgent composite;
    ProfileAgent browser(webBrowsing());
    ProfileAgent game(lightGaming());
    composite.addMember(browser, s.layers[0].start,
                        s.layers[0].stop);
    composite.addMember(game, s.layers[1].start, s.layers[1].stop);
    EXPECT_TRUE(composite.memberActive(0, kTicksPerSec / 2));
    EXPECT_FALSE(composite.memberActive(1, kTicksPerSec / 2));
    EXPECT_FALSE(composite.memberActive(0, kTicksPerSec));
    EXPECT_TRUE(composite.memberActive(1, kTicksPerSec));
}
