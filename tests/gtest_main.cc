/**
 * @file
 * Shared gtest entry point.
 *
 * The default "fast" death-test style forks from a process that may
 * already own experiment-runner worker threads; the threadsafe style
 * re-executes the binary instead, which is the only fork semantics
 * that is correct in a multithreaded test process.
 */

#include <gtest/gtest.h>

int
main(int argc, char **argv)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
