/**
 * @file
 * Unit tests for the SoC layer: configs, operating points, counters,
 * PMU cadence, and the assembled Soc.
 */

#include <gtest/gtest.h>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/config.hh"
#include "soc/counters.hh"
#include "soc/op_point.hh"
#include "soc/soc.hh"
#include "workloads/micro.hh"

namespace sysscale {
namespace soc {
namespace {

TEST(SocConfig, SkylakeMatchesTable2)
{
    const SocConfig cfg = skylakeConfig();
    EXPECT_EQ(cfg.cores, 2u);
    EXPECT_EQ(cfg.threadsPerCore, 2u);
    EXPECT_DOUBLE_EQ(cfg.coreBaseFreq, 1.2 * kGHz);
    EXPECT_DOUBLE_EQ(cfg.gfxBaseFreq, 0.3 * kGHz);
    EXPECT_EQ(cfg.llcBytes, 4u * 1024 * 1024);
    EXPECT_DOUBLE_EQ(cfg.tdp, 4.5);
    EXPECT_EQ(cfg.dramSpec.type(), dram::DramType::LPDDR3);
}

TEST(SocConfig, ValidationCatchesBadCadence)
{
    SocConfig cfg = skylakeConfig();
    cfg.sampleInterval = 3 * kTicksPerUs; // not a step multiple
    cfg.stepInterval = 2 * kTicksPerUs;
    EXPECT_DEATH(cfg.validate(), "");
}

TEST(OpPoints, OnePointPerBinHighestFirst)
{
    const SocConfig cfg = skylakeConfig();
    const OpPointTable table(cfg);
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.high().dramBin, 0u);
    EXPECT_EQ(table.low().dramBin, 1u);
    EXPECT_GT(table.high().fabricFreq, table.low().fabricFreq);
}

TEST(OpPoints, VoltagesFollowTable1Direction)
{
    // Table 1: the MD-DVFS point lowers V_SA and V_IO below boot.
    const SocConfig cfg = skylakeConfig();
    const OpPointTable table(cfg);
    EXPECT_DOUBLE_EQ(table.high().vSa, cfg.vSaBoot);
    EXPECT_DOUBLE_EQ(table.high().vIo, cfg.vIoBoot);
    EXPECT_LT(table.low().vSa, table.high().vSa);
    EXPECT_NEAR(table.low().vIo, 0.85, 5e-3); // ~0.85 * V_IO
}

TEST(OpPoints, The800PointSavesLittleOver1066)
{
    // Sec. 7.4: V_SA hits Vmin at 1066, so 800 frees almost nothing.
    const SocConfig cfg = skylakeConfig();
    const OpPointTable table(cfg);
    const Watt hi = ioMemBudgetDemand(cfg, table.high());
    const Watt lo = ioMemBudgetDemand(cfg, table.point(1));
    const Watt lowest = ioMemBudgetDemand(cfg, table.point(2));
    EXPECT_LT((lo - lowest), (hi - lo) * 0.45);
}

TEST(OpPoints, UnoptimizedMrcCostsPower)
{
    const SocConfig cfg = skylakeConfig();
    const OpPointTable table(cfg);
    OperatingPoint cross = table.low();
    cross.mrcTrainedBin = 0;
    EXPECT_GT(ioMemBudgetDemand(cfg, cross, false),
              ioMemBudgetDemand(cfg, cross, true));
}

TEST(Counters, NormalizesToEventsPerMillisecond)
{
    Simulator sim;
    PerfCounterBlock blk(sim, nullptr);
    // Two half-millisecond steps of 500 misses each = 1000/ms.
    blk.accumulate(500.0, 4.0, 1000.0, 2.0, kTicksPerMs / 2);
    blk.accumulate(500.0, 4.0, 1000.0, 2.0, kTicksPerMs / 2);
    blk.sample();

    const CounterSnapshot avg = blk.windowAverage();
    EXPECT_NEAR(avg[Counter::GfxLlcMisses], 1000.0, 1e-9);
    EXPECT_NEAR(avg[Counter::LlcStalls], 2000.0, 1e-9);
    // Occupancies are time-weighted, not summed.
    EXPECT_NEAR(avg[Counter::LlcOccupancyTracer], 4.0, 1e-9);
    EXPECT_NEAR(avg[Counter::IoRpq], 2.0, 1e-9);
}

TEST(Counters, WindowAveragesAcrossSamples)
{
    Simulator sim;
    PerfCounterBlock blk(sim, nullptr);
    blk.accumulate(100.0, 1.0, 0.0, 0.0, kTicksPerMs);
    blk.sample();
    blk.accumulate(300.0, 3.0, 0.0, 0.0, kTicksPerMs);
    blk.sample();
    EXPECT_EQ(blk.windowSamples(), 2u);
    EXPECT_NEAR(blk.windowAverage()[Counter::GfxLlcMisses], 200.0,
                1e-9);
    blk.clearWindow();
    EXPECT_EQ(blk.windowSamples(), 0u);
}

TEST(Pmu, CadenceMatchesConfig)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    EXPECT_EQ(chip.pmu().sampleInterval(), 1 * kTicksPerMs);
    EXPECT_EQ(chip.pmu().evaluationInterval(), 30 * kTicksPerMs);
    EXPECT_EQ(chip.pmu().samplesPerWindow(), 30u);
}

TEST(Pmu, EvaluatesOncePerInterval)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    core::FixedGovernor gov;
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    chip.run(100 * kTicksPerMs);
    EXPECT_EQ(chip.pmu().evaluations(), 3u); // t = 30, 60, 90 ms
}

TEST(Pmu, OversizedFirmwareRejected)
{
    class FatPolicy : public PmuPolicy
    {
      public:
        const char *name() const override { return "fat"; }
        void evaluate(Soc &, const CounterSnapshot &) override {}
        std::size_t firmwareBytes() const override { return 10000; }
    };

    Simulator sim;
    Soc chip(sim, skylakeConfig());
    FatPolicy fat;
    EXPECT_DEATH(chip.pmu().setPolicy(&fat), "");
}

TEST(Soc, BootsAtHighPointWithBudget)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    EXPECT_EQ(chip.currentOpPoint().dramBin, 0u);
    EXPECT_GT(chip.computeBudget(), 0.0);
    EXPECT_LT(chip.computeBudget(), chip.config().tdp);
}

TEST(Soc, IsoDemandTracksPeripherals)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    EXPECT_DOUBLE_EQ(chip.isoBandwidthDemand(), 0.0);
    chip.display().attachPanel(0, io::PanelConfig{});
    EXPECT_GT(chip.isoBandwidthDemand(), 3e9);
}

TEST(Soc, IdleRunConsumesIdlePower)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    const RunMetrics m = chip.run(100 * kTicksPerMs);
    EXPECT_GT(m.avgPower, 0.0);
    EXPECT_LT(m.avgPower, chip.config().tdp);
    EXPECT_DOUBLE_EQ(m.instructions, 0.0);
}

TEST(Soc, RunWithWorkloadRetiresInstructions)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    workloads::ProfileAgent agent(workloads::spinMicro());
    chip.setWorkload(&agent);
    const RunMetrics m = chip.run(200 * kTicksPerMs);
    EXPECT_GT(m.instructions, 1e8);
    EXPECT_GT(m.avgCoreFreq, 1.0 * kGHz);
}

/**
 * A DVFS flow longer than one step's stall cap must carry its
 * remainder into subsequent steps: the total stall charged equals
 * the flow latency exactly, instead of silently dropping everything
 * beyond kMaxStallFraction of a single step.
 */
TEST(Soc, StallCarryOverConservesFlowLatency)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    const Tick step = chip.config().stepInterval;
    const Tick cap = static_cast<Tick>(
        Soc::kMaxStallFraction * static_cast<double>(step));

    // 2.5 steps of flow latency: needs three steps to drain.
    const Tick latency = 2 * step + step / 2;
    ASSERT_GT(latency, cap);
    chip.noteTransition(chip.opPoints().high(), latency);
    EXPECT_EQ(chip.pendingStallTicks(), latency);

    Tick remaining = latency;
    while (remaining > 0) {
        chip.run(step); // exactly one model step
        remaining -= std::min(remaining, cap);
        EXPECT_EQ(chip.pendingStallTicks(), remaining);
    }
    // Fully drained; later steps charge nothing extra.
    chip.run(step);
    EXPECT_EQ(chip.pendingStallTicks(), 0u);
}

/** Long flows actually cost execution time now that stall carries. */
TEST(Soc, LongFlowsSlowRetirementMoreThanShortFlows)
{
    const Tick step = skylakeConfig().stepInterval;
    auto instructions_with_flow_latency = [step](Tick latency) {
        Simulator sim;
        Soc chip(sim, skylakeConfig());
        workloads::ProfileAgent agent(workloads::spinMicro());
        chip.setWorkload(&agent);
        chip.run(10 * kTicksPerMs);
        chip.noteTransition(chip.opPoints().high(), latency);
        // Five steps: the long flow stalls ~3 of them, the short
        // flow only half of one.
        return chip.run(5 * step).instructions;
    };

    const double short_flow =
        instructions_with_flow_latency(step / 2);
    const double long_flow =
        instructions_with_flow_latency(3 * step);
    // Pre-fix, everything beyond 0.9 steps was dropped and the two
    // retired nearly identically; now the long flow costs ~3x.
    EXPECT_LT(long_flow, short_flow * 0.85);
}

TEST(Soc, SetTdpRebasesBudgetAndDutyCycle)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig(7.0));
    const Watt budget_hi = chip.computeBudget();
    chip.setTdp(3.5);
    EXPECT_DOUBLE_EQ(chip.config().tdp, 3.5);
    EXPECT_DOUBLE_EQ(chip.pbm().tdp(), 3.5);
    EXPECT_LT(chip.computeBudget(), budget_hi);
    chip.setTdp(7.0);
    EXPECT_DOUBLE_EQ(chip.computeBudget(), budget_hi);
}

TEST(Soc, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        Simulator sim(7);
        Soc chip(sim, skylakeConfig());
        chip.display().attachPanel(0, io::PanelConfig{});
        workloads::ProfileAgent agent(workloads::streamMicro());
        chip.setWorkload(&agent);
        core::SysScaleGovernor gov;
        core::GovernorHost host(gov);
        chip.pmu().setPolicy(&host);
        return chip.run(300 * kTicksPerMs);
    };

    const RunMetrics a = run_once();
    const RunMetrics b = run_once();
    EXPECT_DOUBLE_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
    EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Soc, PowerStaysWithinTdpEnvelope)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(workloads::streamMicro());
    chip.setWorkload(&agent);
    core::FixedGovernor gov;
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    chip.run(500 * kTicksPerMs); // let the reactive cap converge
    const RunMetrics m = chip.run(500 * kTicksPerMs);
    // Average power respects TDP plus the unmanaged platform floor.
    EXPECT_LT(m.avgPower,
              chip.config().tdp + chip.config().platformFloor);
}

class TdpSweep : public ::testing::TestWithParam<double>
{};

TEST_P(TdpSweep, ComputeBudgetGrowsWithTdp)
{
    Simulator sim;
    Soc chip(sim, skylakeConfig(GetParam()));
    EXPECT_GT(chip.computeBudget(), 0.0);

    Simulator sim_hi;
    Soc chip_hi(sim_hi, skylakeConfig(GetParam() + 1.0));
    EXPECT_GT(chip_hi.computeBudget(), chip.computeBudget());
}

INSTANTIATE_TEST_SUITE_P(Tdps, TdpSweep,
                         ::testing::Values(3.5, 4.5, 7.0, 15.0));

} // namespace
} // namespace soc
} // namespace sysscale
