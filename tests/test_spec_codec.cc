/**
 * @file
 * Spec codec tests: the parseSpec(serializeSpec(s)) == s round-trip
 * invariant across representative specs, encoding stability, golden
 * specKey values (so an accidental encoding change fails CI instead
 * of silently orphaning every existing cache directory), and strict
 * rejection of malformed documents.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/governors.hh"
#include "exp/spec_codec.hh"
#include "soc/op_point.hh"
#include "workloads/battery.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

/** A cell exercising every serialized field group. */
exp::ExperimentSpec
richSpec()
{
    exp::ExperimentSpec spec;
    spec.id = "rich/\"cell\" with\nnewline";
    spec.soc = soc::skylakeDdr4Config(7.5);
    spec.workload = workloads::videoPlayback();
    spec.governor = "ondemand";
    spec.governorParams = {{"up", "0.70"}, {"stall-gate", "1.5e6"}};
    spec.seed = 42;
    spec.warmup = 12 * kTicksPerMs;
    spec.window = 345 * kTicksPerMs;
    spec.hdPanel = false;
    spec.camera = true;
    spec.pinnedCoreFreq = 1.3 * kGHz;
    const soc::OpPointTable table(spec.soc);
    spec.pinnedOpPoint = table.low();
    spec.pinnedUnoptimizedMrc = true;
    spec.scenario = workloads::scenarioByName("videoconf");
    spec.labels = {{"workload", "video-playback"},
                   {"note", "tab\there"}};
    return spec;
}

std::vector<exp::ExperimentSpec>
roundTripCorpus()
{
    std::vector<exp::ExperimentSpec> corpus;

    exp::ExperimentSpec plain;
    plain.id = "plain";
    plain.workload = workloads::streamMicro();
    corpus.push_back(plain);

    corpus.push_back(richSpec());

    exp::ExperimentSpec broadwell;
    broadwell.id = "broadwell";
    broadwell.soc = soc::broadwellConfig();
    broadwell.workload = workloads::specBenchmark("470.lbm");
    broadwell.governor = "collect";
    broadwell.pinnedCoreFreq = 1.2 * kGHz;
    corpus.push_back(broadwell);

    // Default-constructed spec: empty workload, no labels.
    corpus.push_back(exp::ExperimentSpec{});

    // Every registered scenario, over an ordinary base workload.
    for (const std::string &name : workloads::scenarioNames()) {
        exp::ExperimentSpec cell;
        cell.id = "scenario/" + name;
        cell.workload = workloads::streamMicro();
        cell.scenario = workloads::scenarioByName(name);
        corpus.push_back(std::move(cell));
    }

    // Parameterized governors: values may carry '=' -free keys with
    // '@' payloads (the userspace schedule syntax) and must survive
    // the round trip in declaration order.
    exp::ExperimentSpec params;
    params.id = "params/userspace";
    params.workload = workloads::streamMicro();
    params.governor = "userspace";
    params.governorParams = {{"at", "0@0"},
                             {"at", "40@1"},
                             {"point", "1"}};
    corpus.push_back(std::move(params));

    // A scenario-only cell: no base workload, layers carry the work.
    exp::ExperimentSpec layered;
    layered.id = "layers-only";
    layered.scenario.layers.push_back(workloads::ScenarioLayer{
        workloads::videoPlayback(), 5 * kTicksPerMs,
        900 * kTicksPerMs});
    corpus.push_back(std::move(layered));
    return corpus;
}

} // anonymous namespace

TEST(Fnv1a64, KnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(exp::fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(exp::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(exp::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SpecCodec, RoundTripIsExact)
{
    for (const exp::ExperimentSpec &spec : roundTripCorpus()) {
        const std::string text = exp::serializeSpec(spec);
        const exp::ExperimentSpec back = exp::parseSpec(text);
        EXPECT_TRUE(back == spec) << spec.id;
        // And the reserialization is byte-identical.
        EXPECT_EQ(exp::serializeSpec(back), text) << spec.id;
    }
}

TEST(SpecCodec, EncodingIsStable)
{
    const exp::ExperimentSpec spec = richSpec();
    EXPECT_EQ(exp::serializeSpec(spec), exp::serializeSpec(spec));
    EXPECT_EQ(exp::specKey(spec), exp::specKey(spec));
}

TEST(SpecCodec, HeaderCarriesFormatVersion)
{
    const std::string text =
        exp::serializeSpec(exp::ExperimentSpec{});
    EXPECT_EQ(text.rfind("sysscale-spec v6\n", 0), 0u)
        << "bump this test AND the golden keys together with "
           "kSpecFormatVersion";
}

/**
 * Documents from every previous format version must be rejected
 * loudly — never parsed into a current spec. Through the cache this
 * means every stale entry degrades to a miss (and is re-simulated),
 * never a wrong hit.
 */
TEST(SpecCodec, RejectsStaleVersionDocuments)
{
    const std::string text =
        exp::serializeSpec(exp::ExperimentSpec{});
    const std::string header =
        "sysscale-spec v" + std::to_string(exp::kSpecFormatVersion) +
        "\n";
    ASSERT_EQ(text.rfind(header, 0), 0u);
    for (int v = 1; v < exp::kSpecFormatVersion; ++v) {
        std::string stale = text;
        stale.replace(0, header.size(),
                      "sysscale-spec v" + std::to_string(v) + "\n");
        EXPECT_THROW((void)exp::parseSpec(stale),
                     std::invalid_argument)
            << "v" << v;
    }
}

TEST(SpecCodec, KeyIgnoresPinnedOpPointName)
{
    exp::ExperimentSpec a = richSpec();
    exp::ExperimentSpec b = a;
    b.pinnedOpPoint->name = "renamed-point";
    // OperatingPoint::operator== ignores the name, so equal specs
    // must share a cache key — and the full encoding still
    // round-trips the name for auditability.
    EXPECT_TRUE(a == b);
    EXPECT_EQ(exp::specKey(a), exp::specKey(b));
    EXPECT_EQ(exp::parseSpec(exp::serializeSpec(b))
                  .pinnedOpPoint->name,
              "renamed-point");
}

TEST(SpecCodec, KeyIgnoresIdAndLabels)
{
    exp::ExperimentSpec a;
    a.id = "cell-a";
    a.workload = workloads::streamMicro();
    a.labels = {{"k", "v"}};
    exp::ExperimentSpec b = a;
    b.id = "renamed";
    b.labels = {{"other", "labels"}};
    EXPECT_EQ(exp::specKey(a), exp::specKey(b));
    EXPECT_NE(exp::serializeSpec(a), exp::serializeSpec(b));
    EXPECT_EQ(exp::canonicalSpec(a), exp::canonicalSpec(b));
}

TEST(SpecCodec, KeySeparatesSimulationInputs)
{
    exp::ExperimentSpec base;
    base.workload = workloads::streamMicro();
    const std::string key = exp::specKey(base);

    exp::ExperimentSpec seed = base;
    seed.seed = 2;
    EXPECT_NE(exp::specKey(seed), key);

    exp::ExperimentSpec tdp = base;
    tdp.soc.tdp = 7.0;
    EXPECT_NE(exp::specKey(tdp), key);

    exp::ExperimentSpec gov = base;
    gov.governor = "sysscale";
    EXPECT_NE(exp::specKey(gov), key);

    exp::ExperimentSpec window = base;
    window.window = base.window + 1;
    EXPECT_NE(exp::specKey(window), key);

    exp::ExperimentSpec wl = base;
    wl.workload = workloads::spinMicro();
    EXPECT_NE(exp::specKey(wl), key);

    // The scenario is a simulation input: layers and actions (and
    // their timing) must all separate keys.
    exp::ExperimentSpec scen = base;
    scen.scenario = workloads::scenarioByName("thermal-step");
    EXPECT_NE(exp::specKey(scen), key);

    exp::ExperimentSpec shifted = scen;
    shifted.scenario.actions[0].at += 1;
    EXPECT_NE(exp::specKey(shifted), exp::specKey(scen));

    exp::ExperimentSpec layered = base;
    layered.scenario.layers.push_back(workloads::ScenarioLayer{
        workloads::videoPlayback(), 0, 0});
    EXPECT_NE(exp::specKey(layered), key);
}

/**
 * Golden keys: these change exactly when the canonical encoding (or
 * anything it encodes) changes. That must be a deliberate act — bump
 * kSpecFormatVersion, re-bake these constants, and expect existing
 * cache directories to go stale (docs/EXPERIMENTS.md).
 */
TEST(SpecCodec, GoldenKeys)
{
    exp::ExperimentSpec stream;
    stream.id = "golden-a";
    stream.workload = workloads::streamMicro();
    EXPECT_EQ(exp::specKey(stream), "3b459bfd9e183161");

    exp::ExperimentSpec rich = richSpec();
    EXPECT_EQ(exp::specKey(rich), "77d39e8b1856434e");
}

TEST(SpecCodec, SerializableOnlyWithoutRuntimeHooks)
{
    exp::ExperimentSpec spec;
    spec.workload = workloads::streamMicro();
    EXPECT_TRUE(exp::isSerializableSpec(spec));

    exp::ExperimentSpec factory = spec;
    factory.governorFactory = [] {
        return std::unique_ptr<soc::PmuPolicy>(new core::GovernorHost(
            std::make_unique<core::FixedGovernor>()));
    };
    EXPECT_FALSE(exp::isSerializableSpec(factory));

    core::FixedGovernor gov;
    core::GovernorHost host(gov);
    exp::ExperimentSpec borrowed = spec;
    borrowed.borrowedPolicy = &host;
    EXPECT_FALSE(exp::isSerializableSpec(borrowed));
}

TEST(SpecCodec, RejectsMalformedDocuments)
{
    const std::string good =
        exp::serializeSpec(exp::ExperimentSpec{});

    EXPECT_THROW((void)exp::parseSpec(""), std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec("sysscale-spec v999\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(good + "mystery = 1\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(good + "seed = 1\n"),
                 std::invalid_argument); // duplicate key
    EXPECT_THROW((void)exp::parseSpec(good + "no separator\n"),
                 std::invalid_argument);

    // Corrupt one numeric value in place.
    std::string bad_number = good;
    const std::string needle = "seed = ";
    const std::size_t at = bad_number.find(needle);
    ASSERT_NE(at, std::string::npos);
    bad_number.replace(at + needle.size(), 1, "x");
    EXPECT_THROW((void)exp::parseSpec(bad_number),
                 std::invalid_argument);
}

namespace {

/** Replace the value of @p key in a serialized spec document. */
std::string
rewriteField(std::string text, const std::string &key,
             const std::string &value)
{
    const std::string needle = key + " = ";
    const std::size_t at = text.find(needle);
    EXPECT_NE(at, std::string::npos) << key;
    const std::size_t eol = text.find('\n', at);
    text.replace(at, eol - at, needle + value);
    return text;
}

} // anonymous namespace

/**
 * Field values the model's own constructors treat as fatal (process
 * exit) must come back as throws from parseSpec, or a corrupt cache
 * entry could take a whole sweep down instead of missing.
 */
TEST(SpecCodec, RejectsFatalFieldValuesWithThrows)
{
    exp::ExperimentSpec spec;
    spec.workload = workloads::streamMicro();
    const std::string text = exp::serializeSpec(spec);

    // Residencies that do not sum to 1.
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "phase.0.residency",
                     "0.5 0.1 0.1 0.1 0.1")),
                 std::invalid_argument);
    // Negative residency fraction (sums to 1).
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "phase.0.residency",
                     "-0.5 1.5 0 0 0")),
                 std::invalid_argument);
    // Zero-length phase.
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "phase.0.duration", "0")),
                 std::invalid_argument);
    // Perf scalability outside [0, 1] — including NaN, which fails
    // every ordinary comparison.
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "workload.perf_scalability", "1.5")),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "workload.perf_scalability", "nan")),
                 std::invalid_argument);
    // NaN residencies sail through sign and sum checks unless the
    // comparisons are written NaN-safe.
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "phase.0.residency",
                     "nan nan nan nan nan")),
                 std::invalid_argument);
    // Negative integers must not wrap through strtoull.
    EXPECT_THROW((void)exp::parseSpec(
                     rewriteField(text, "seed", "-1")),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(
                     rewriteField(text, "soc.cores", "-2")),
                 std::invalid_argument);
}

TEST(SpecCodec, RejectsMalformedScenarios)
{
    exp::ExperimentSpec spec;
    spec.workload = workloads::streamMicro();
    spec.scenario = workloads::scenarioByName("thermal-step");
    const std::string text = exp::serializeSpec(spec);

    // Unknown action kind, garbled fields, wrong arity.
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "scenario.action.0", "0 melt_chip 1")),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "scenario.action.0", "x set_tdp 3.5")),
                 std::invalid_argument);
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "scenario.action.0", "0 set_tdp 3.5 junk")),
                 std::invalid_argument);
    // Runtime-fatal values: non-positive TDP steps, unsorted times
    // (action 0 moved after action 1).
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     text, "scenario.action.0", "0 set_tdp 0")),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)exp::parseSpec(rewriteField(
            text, "scenario.action.0", "99999999999999 set_tdp 3.5")),
        std::invalid_argument);

    // A scenario layer may never be phase-less.
    exp::ExperimentSpec layered;
    layered.workload = workloads::streamMicro();
    layered.scenario.layers.push_back(workloads::ScenarioLayer{
        workloads::videoPlayback(), 0, 0});
    const std::string ltext = exp::serializeSpec(layered);
    EXPECT_THROW((void)exp::parseSpec(rewriteField(
                     ltext, "scenario.layer.0.phases", "0")),
                 std::invalid_argument);
}
