/**
 * @file
 * ResultCache tests: hit/miss/corrupt-file behavior, the
 * never-cache-error-rows rule, runner integration (a second
 * identical sweep reruns zero simulator cells and reproduces the
 * first run byte for byte), and cache bypass for specs that cannot
 * be content-addressed.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/governors.hh"
#include "exp/cache.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/spec_codec.hh"
#include "workloads/micro.hh"

using namespace sysscale;

namespace {

/** Fresh per-test cache directory under the build tree's tmp. */
class CacheDir
{
  public:
    explicit CacheDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("sysscale-cache-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
    }

    ~CacheDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

exp::ExperimentSpec
fastSpec(const std::string &id, std::uint64_t seed = 1)
{
    exp::ExperimentSpec spec;
    spec.id = id;
    spec.workload = workloads::streamMicro();
    spec.governor = "fixed";
    spec.seed = seed;
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    spec.labels = {{"cell", id}};
    return spec;
}

/** Serialize a result with the host-timing column neutralized. */
std::string
stableRow(exp::RunResult res)
{
    res.hostSeconds = 0.0;
    return exp::csvRow(res);
}

std::vector<exp::ExperimentSpec>
smallGrid()
{
    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w :
         {workloads::streamMicro(), workloads::spinMicro()}) {
        for (const std::uint64_t seed : {1ull, 7ull}) {
            exp::ExperimentSpec spec;
            spec.id = w.name() + "/seed" + std::to_string(seed);
            spec.workload = w;
            spec.governor = "sysscale";
            spec.seed = seed;
            spec.warmup = 5 * kTicksPerMs;
            spec.window = 30 * kTicksPerMs;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

} // anonymous namespace

TEST(ResultCache, MissThenHitRoundTripsResult)
{
    const CacheDir dir("roundtrip");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("unit");

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(spec, out));
    EXPECT_EQ(cache.stats().misses, 1u);

    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok) << res.error;
    cache.store(spec, res);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_TRUE(std::filesystem::exists(cache.pathFor(spec)));

    ASSERT_TRUE(cache.lookup(spec, out));
    EXPECT_EQ(cache.stats().hits, 1u);
    // Byte-identical including the recorded host timing.
    EXPECT_EQ(exp::csvRow(out), exp::csvRow(res));
    EXPECT_EQ(exp::jsonObject(out), exp::jsonObject(res));
}

TEST(ResultCache, HitTakesIdAndLabelsFromQueryingSpec)
{
    const CacheDir dir("presentation");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec original = fastSpec("original");
    cache.store(original, exp::runCell(original));

    exp::ExperimentSpec renamed = original;
    renamed.id = "renamed";
    renamed.labels = {{"cell", "renamed"}, {"extra", "1"}};
    ASSERT_EQ(exp::specKey(renamed), exp::specKey(original));

    exp::RunResult out;
    ASSERT_TRUE(cache.lookup(renamed, out));
    EXPECT_EQ(out.id, "renamed");
    EXPECT_EQ(out.labels, renamed.labels);
}

TEST(ResultCache, ErrorRowsAreNeverCached)
{
    const CacheDir dir("errors");
    exp::ResultCache cache(dir.path());
    exp::ExperimentSpec broken = fastSpec("broken");
    broken.window = 0;

    const exp::RunResult res = exp::runCell(broken);
    ASSERT_FALSE(res.ok);
    cache.store(broken, res);
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_FALSE(std::filesystem::exists(cache.pathFor(broken)));

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(broken, out));
}

TEST(ResultCache, CorruptFileIsAMissAndGetsRepaired)
{
    const CacheDir dir("corrupt");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("corrupt");
    const exp::RunResult res = exp::runCell(spec);
    cache.store(spec, res);

    for (const char *garbage :
         {"", "not json at all", "{\"format\": 1", "{}",
          "{\"format\": 99, \"key\": \"x\"}"}) {
        std::ofstream os(cache.pathFor(spec),
                         std::ios::binary | std::ios::trunc);
        os << garbage;
        os.close();
        exp::RunResult out;
        EXPECT_FALSE(cache.lookup(spec, out)) << garbage;
    }
    EXPECT_EQ(cache.stats().corrupt, 5u);

    // The next store repairs the entry in place.
    cache.store(spec, res);
    exp::RunResult out;
    EXPECT_TRUE(cache.lookup(spec, out));
    EXPECT_EQ(stableRow(out), stableRow(res));
}

TEST(ResultCache, EntryWithFatalSpecFieldIsAMissNotACrash)
{
    const CacheDir dir("fatalfield");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("fatal");
    cache.store(spec, exp::runCell(spec));

    // Tamper with the embedded spec text: a zero-length phase is
    // fatal in WorkloadProfile's constructor, so parseSpec must
    // throw (-> miss) rather than reach it.
    std::ifstream is(cache.pathFor(spec), std::ios::binary);
    std::string doc((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    is.close();
    const std::string needle = "phase.0.duration = ";
    const std::size_t at = doc.find(needle);
    ASSERT_NE(at, std::string::npos);
    std::size_t end = at + needle.size();
    while (end < doc.size() && doc[end] >= '0' && doc[end] <= '9')
        ++end;
    doc.replace(at + needle.size(), end - (at + needle.size()), "0");
    std::ofstream os(cache.pathFor(spec),
                     std::ios::binary | std::ios::trunc);
    os << doc;
    os.close();

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(spec, out));
    EXPECT_GE(cache.stats().corrupt, 1u);
}

TEST(ResultCache, TruncatedNumberTokenIsAMissNotAWrongHit)
{
    const CacheDir dir("badnumber");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("badnumber");
    cache.store(spec, exp::runCell(spec));

    // "qos_violations":0 -> 12.9: strtoull would stop at the '.'
    // and serve 12; the reader must reject the token instead.
    std::ifstream is(cache.pathFor(spec), std::ios::binary);
    std::string doc((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    is.close();
    const std::string needle = "\"qos_violations\":";
    const std::size_t at = doc.find(needle);
    ASSERT_NE(at, std::string::npos);
    std::size_t end = at + needle.size();
    while (end < doc.size() && doc[end] >= '0' && doc[end] <= '9')
        ++end;
    doc.replace(at + needle.size(), end - (at + needle.size()),
                "12.9");
    std::ofstream os(cache.pathFor(spec),
                     std::ios::binary | std::ios::trunc);
    os << doc;
    os.close();

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(spec, out));
    EXPECT_GE(cache.stats().corrupt, 1u);
}

TEST(ResultCache, StoredEntryWithForeignKeyIsRejected)
{
    const CacheDir dir("foreign");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec a = fastSpec("a", 1);
    const exp::ExperimentSpec b = fastSpec("b", 2);
    cache.store(a, exp::runCell(a));

    // Simulate a collision: b's slot holds a's (valid) entry.
    std::filesystem::copy_file(cache.pathFor(a), cache.pathFor(b));
    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(b, out));
    EXPECT_GE(cache.stats().corrupt, 1u);
}

TEST(ResultCache, RuntimeHookSpecsBypassTheCache)
{
    const CacheDir dir("bypass");
    exp::ResultCache cache(dir.path());

    core::FixedGovernor gov;
    core::GovernorHost host(gov);
    exp::ExperimentSpec borrowed = fastSpec("borrowed");
    borrowed.borrowedPolicy = &host;
    EXPECT_FALSE(exp::ResultCache::cacheable(borrowed));

    const exp::RunResult res = exp::runCell(borrowed);
    ASSERT_TRUE(res.ok) << res.error;
    cache.store(borrowed, res);
    EXPECT_EQ(cache.stats().stores, 0u);

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(borrowed, out));
    EXPECT_EQ(cache.stats().uncacheable, 1u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCache, SecondSweepRerunsZeroCellsByteIdentically)
{
    const CacheDir dir("sweep");
    const auto specs = smallGrid();

    exp::ResultCache cold(dir.path());
    exp::RunnerOptions cold_opts;
    cold_opts.jobs = 2;
    cold_opts.cache = &cold;
    const auto first =
        exp::ExperimentRunner(cold_opts).run(specs);
    EXPECT_EQ(cold.stats().misses, specs.size());
    EXPECT_EQ(cold.stats().stores, specs.size());

    exp::ResultCache warm(dir.path());
    exp::RunnerOptions warm_opts;
    warm_opts.jobs = 2;
    warm_opts.cache = &warm;
    std::size_t callbacks = 0;
    warm_opts.onResult = [&](const exp::RunResult &, std::size_t,
                             std::size_t) { ++callbacks; };
    const auto second =
        exp::ExperimentRunner(warm_opts).run(specs);

    // Zero simulator cells ran: every lookup hit, nothing stored.
    EXPECT_EQ(warm.stats().hits, specs.size());
    EXPECT_EQ(warm.stats().misses, 0u);
    EXPECT_EQ(warm.stats().stores, 0u);
    EXPECT_EQ(callbacks, specs.size());

    // And the replay is byte-identical, host timing included.
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(exp::csvRow(first[i]), exp::csvRow(second[i]));
}

TEST(ResultCache, InterruptedSweepResumesIncrementally)
{
    const CacheDir dir("resume");
    const auto specs = smallGrid();

    // "Interrupted" first sweep: only half the cells completed.
    {
        exp::ResultCache cache(dir.path());
        const std::vector<exp::ExperimentSpec> half(
            specs.begin(), specs.begin() + specs.size() / 2);
        exp::RunnerOptions opts;
        opts.jobs = 1;
        opts.cache = &cache;
        (void)exp::ExperimentRunner(opts).run(half);
    }

    exp::ResultCache cache(dir.path());
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;
    const auto results = exp::ExperimentRunner(opts).run(specs);
    EXPECT_EQ(cache.stats().hits, specs.size() / 2);
    EXPECT_EQ(cache.stats().misses,
              specs.size() - specs.size() / 2);
    for (const auto &res : results)
        EXPECT_TRUE(res.ok) << res.error;
}

/**
 * An entry written under the previous format version sitting at the
 * right path must degrade to a miss — never a wrong hit — and the
 * next store replaces it with a current entry. This is the
 * versioning policy of docs/EXPERIMENTS.md exercised end to end.
 */
TEST(ResultCache, StaleFormatEntryDegradesToAMiss)
{
    const CacheDir dir("staleentry");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("staleentry");
    const exp::RunResult res = exp::runCell(spec);
    cache.store(spec, res);

    // Rewrite the entry as a previous-version document: format field
    // and embedded spec header both claim the old version (as a real
    // pre-bump cache file would at this path).
    const std::string cur = std::to_string(exp::kSpecFormatVersion);
    const std::string old =
        std::to_string(exp::kSpecFormatVersion - 1);
    std::ifstream is(cache.pathFor(spec), std::ios::binary);
    std::string doc((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    is.close();
    const std::string fmt_cur = "\"format\": " + cur;
    const std::size_t fmt = doc.find(fmt_cur);
    ASSERT_NE(fmt, std::string::npos);
    doc.replace(fmt, fmt_cur.size(), "\"format\": " + old);
    const std::string hdr_cur = "sysscale-spec v" + cur;
    const std::size_t hdr = doc.find(hdr_cur);
    ASSERT_NE(hdr, std::string::npos);
    doc.replace(hdr, hdr_cur.size(), "sysscale-spec v" + old);
    std::ofstream os(cache.pathFor(spec),
                     std::ios::binary | std::ios::trunc);
    os << doc;
    os.close();

    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(spec, out));
    EXPECT_EQ(cache.stats().corrupt, 1u);

    // The next store repairs the slot with a current entry.
    cache.store(spec, res);
    EXPECT_TRUE(cache.lookup(spec, out));
    EXPECT_EQ(stableRow(out), stableRow(res));
}

/**
 * Scenario-bearing cells are content-addressed like any other: the
 * mixed videoconf scenario (camera + overlay layer + TDP stepping)
 * simulates once and replays from cache byte-identically, and cells
 * differing only in scenario never alias.
 */
TEST(ResultCache, ScenarioCellsAreContentAddressed)
{
    const CacheDir dir("scenario");
    exp::ResultCache cache(dir.path());

    exp::ExperimentSpec plain = fastSpec("plain");
    exp::ExperimentSpec scen = fastSpec("videoconf");
    scen.scenario = workloads::scenarioByName("videoconf");
    EXPECT_NE(exp::specKey(plain), exp::specKey(scen));

    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;
    const auto first = exp::ExperimentRunner(opts).run({plain, scen});
    ASSERT_TRUE(first[0].ok) << first[0].error;
    ASSERT_TRUE(first[1].ok) << first[1].error;
    EXPECT_EQ(cache.stats().stores, 2u);

    const auto second =
        exp::ExperimentRunner(opts).run({plain, scen});
    EXPECT_EQ(cache.stats().hits, 2u);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(exp::csvRow(first[i]), exp::csvRow(second[i]));
}

TEST(ResultCache, MixedGridCachesOnlyTheHealthyCells)
{
    const CacheDir dir("mixed");
    auto specs = smallGrid();
    specs[1].window = 0; // validation failure -> error row

    exp::ResultCache cache(dir.path());
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.cache = &cache;
    const auto results = exp::ExperimentRunner(opts).run(specs);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(cache.stats().stores, specs.size() - 1);
    EXPECT_FALSE(
        std::filesystem::exists(cache.pathFor(specs[1])));
}

TEST(ResultCache, StatsDumpRoundTripsThroughTheCache)
{
    const CacheDir dir("statsdump");
    exp::ResultCache cache(dir.path());
    const exp::ExperimentSpec spec = fastSpec("stats");

    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok);
    ASSERT_FALSE(res.statsDump.empty());
    cache.store(spec, res);

    exp::RunResult out;
    ASSERT_TRUE(cache.lookup(spec, out));
    EXPECT_EQ(out.statsDump, res.statsDump);
}
