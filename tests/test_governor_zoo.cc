/**
 * @file
 * The governor zoo: registry round-trips, the policy/driver split's
 * transition notifiers, per-governor accounting, and the
 * differential check that re-homing the paper's governors onto the
 * driver layer changed no simulation output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/governor.hh"
#include "core/governor_driver.hh"
#include "core/governor_registry.hh"
#include "core/governor_zoo.hh"
#include "core/governors.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/spec_codec.hh"
#include "sim/sim_object.hh"
#include "soc/pmu.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

#include "tests/golden_governor_refactor.inc"

using namespace sysscale;

namespace {

/** Representative valid parameters for every parameterized governor
 *  (empty for the parameterless ones). */
core::GovernorParams
sampleParams(const std::string &name)
{
    if (name == "ondemand")
        return {{"up", "0.75"}, {"stall-gate", "2e6"}};
    if (name == "conservative")
        return {{"up", "0.60"}, {"down", "0.25"}};
    if (name == "userspace")
        return {{"at", "0@0"}, {"at", "60@1"}};
    if (name == "latency-budget")
        return {{"budget-us", "25"}, {"burst", "3"}};
    if (name == "adaptive")
        return {{"margin", "0.8"}, {"bound", "0.03"},
                {"min-samples", "4"}};
    return {};
}

/** A small-but-real cell for smoke-running a governor. */
exp::ExperimentSpec
smokeSpec(const std::string &gov, const core::GovernorParams &params)
{
    exp::ExperimentSpec spec;
    spec.id = "zoo/" + gov;
    spec.workload = workloads::pointerChaseMicro();
    spec.governor = gov;
    spec.governorParams = params;
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 120 * kTicksPerMs;
    return spec;
}

} // namespace

// ------------------------------------------------------------------
// Registry
// ------------------------------------------------------------------

TEST(GovernorRegistry, ExposesTheWholeZoo)
{
    const auto names = core::governorNames();
    for (const char *expect :
         {"fixed", "sysscale", "memscale", "memscale-r", "coscale",
          "coscale-r", "ondemand", "conservative", "userspace",
          "latency-budget", "adaptive"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect << " missing from the registry";
    }
    EXPECT_GE(names.size(), 7u);
}

TEST(GovernorRegistry, EveryEntryConstructsDecidesAndSerializes)
{
    for (const core::GovernorEntry &entry : core::governorRegistry()) {
        SCOPED_TRACE(entry.name);
        const core::GovernorParams params = sampleParams(entry.name);

        // Constructs, with a meaningful identity and a firmware
        // footprint inside the PMU budget (Sec. 5).
        auto gov = core::makeGovernor(entry.name, params);
        ASSERT_NE(gov, nullptr);
        EXPECT_FALSE(std::string(gov->name()).empty());
        EXPECT_LE(gov->firmwareBytes(),
                  soc::Pmu::kFirmwareBudgetBytes);
        EXPECT_FALSE(entry.summary.empty());

        // Serializes through spec codec v5 and round-trips,
        // parameters included, in order.
        exp::ExperimentSpec spec = smokeSpec(entry.name, params);
        const exp::ExperimentSpec back =
            exp::parseSpec(exp::serializeSpec(spec));
        EXPECT_EQ(back, spec);
        EXPECT_EQ(back.governorParams, spec.governorParams);

        // Decides: the full cell path runs clean.
        const exp::RunResult res = exp::runCell(spec);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_GT(res.metrics.energy, 0.0);
    }
}

TEST(GovernorRegistry, UnknownNameEnumeratesTheRegistry)
{
    try {
        (void)core::makeGovernor("schedutil");
        FAIL() << "unknown governor accepted";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        // The error is the discovery surface: every registered name
        // must be in it.
        for (const std::string &name : core::governorNames())
            EXPECT_NE(msg.find(name), std::string::npos)
                << name << " missing from: " << msg;
    }
}

TEST(GovernorRegistry, BadParametersFailAtConstruction)
{
    EXPECT_THROW((void)core::makeGovernor("fixed", {{"up", "0.5"}}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)core::makeGovernor("ondemand", {{"frob", "1"}}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)core::makeGovernor("ondemand", {{"up", "not-a-num"}}),
        std::invalid_argument);
    EXPECT_THROW((void)core::makeGovernor(
                     "conservative", {{"up", "0.3"}, {"down", "0.6"}}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)core::makeGovernor("userspace", {{"at", "60"}}),
        std::invalid_argument);
    EXPECT_THROW((void)core::makeGovernor(
                     "userspace", {{"at", "60@1"}, {"at", "10@0"}}),
                 std::invalid_argument);
    EXPECT_THROW((void)core::makeGovernor("latency-budget",
                                          {{"budget-us", "-3"}}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)core::makeGovernor("adaptive", {{"margin", "1.5"}}),
        std::invalid_argument);
}

// ------------------------------------------------------------------
// Driver layer: transition notifiers
// ------------------------------------------------------------------

TEST(GovernorDriver, PreFiresBeforeApplyAndPostAfter)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::GovernorDriver drv(chip, core::FlowOptions{},
                             /*redistribute=*/true);

    std::vector<std::string> order;
    drv.subscribePre([&](const core::TransitionRecord &rec) {
        order.push_back("pre");
        // Pre observes the intent: the hardware has not moved yet
        // and the outcome fields are still blank.
        EXPECT_TRUE(chip.currentOpPoint() == rec.from);
        EXPECT_EQ(rec.latency, 0u);
        EXPECT_FALSE(rec.executed);
    });
    drv.subscribePost([&](const core::TransitionRecord &rec) {
        order.push_back("post");
        // Post observes the outcome: the flow applied.
        EXPECT_TRUE(chip.currentOpPoint() == rec.to);
        EXPECT_TRUE(rec.executed);
        EXPECT_GT(rec.latency, 0u);
    });

    ASSERT_TRUE(chip.currentOpPoint() == chip.opPoints().high());
    EXPECT_TRUE(drv.requestOpPoint(chip.opPoints().low()));
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "pre");
    EXPECT_EQ(order[1], "post");

    // A same-point request is not a transition: nobody is notified.
    order.clear();
    EXPECT_TRUE(drv.requestOpPoint(chip.opPoints().low()));
    EXPECT_TRUE(order.empty());
}

TEST(GovernorDriver, NotifiersRunInSubscriptionOrder)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::GovernorDriver drv(chip, core::FlowOptions{}, true);

    std::vector<int> order;
    drv.subscribePre([&](const core::TransitionRecord &) {
        order.push_back(1);
    });
    drv.subscribePre([&](const core::TransitionRecord &) {
        order.push_back(2);
    });
    drv.subscribePost([&](const core::TransitionRecord &) {
        order.push_back(3);
    });
    drv.subscribePost([&](const core::TransitionRecord &) {
        order.push_back(4);
    });

    EXPECT_TRUE(drv.requestOpPoint(chip.opPoints().low()));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(GovernorDriver, LatencyConstraintDeniesSlowFlows)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::GovernorDriver drv(chip, core::FlowOptions{}, true);

    const soc::OperatingPoint &low = chip.opPoints().low();
    const Tick est = drv.estimateTransitionLatency(low);
    ASSERT_GT(est, 0u);

    bool notified = false;
    drv.subscribePre(
        [&](const core::TransitionRecord &) { notified = true; });

    // A limit below the estimate denies the flow before any notifier
    // fires or the hardware moves.
    drv.setTransitionLatencyLimit(est - 1);
    EXPECT_FALSE(drv.requestOpPoint(low));
    EXPECT_EQ(drv.deniedRequests(), 1u);
    EXPECT_FALSE(notified);
    EXPECT_TRUE(chip.currentOpPoint() == chip.opPoints().high());

    // At (or above) the estimate the same request goes through.
    drv.setTransitionLatencyLimit(est);
    EXPECT_TRUE(drv.requestOpPoint(low));
    EXPECT_TRUE(chip.currentOpPoint() == low);
    EXPECT_EQ(drv.flowRuns(), 1u);
}

TEST(GovernorHost, AccountsTransitionsThroughNotifiers)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::SysScaleGovernor gov;
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet); // high -> low
    soc::CounterSnapshot pressure;
    pressure[soc::Counter::LlcStalls] = 5e6;
    host.evaluate(chip, pressure); // low -> high
    host.evaluate(chip, pressure); // already high: no transition

    const core::TransitionStats &stats = host.transitionStats();
    EXPECT_EQ(stats.requested, 2u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.decreases, 1u);
    EXPECT_EQ(stats.increases, 1u);
    EXPECT_GT(stats.totalLatency, 0u);
    EXPECT_GE(stats.totalLatency, stats.maxLatency);
}

TEST(GovernorHost, ReinstallRebuildsDriverAndStats)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::SysScaleGovernor gov;
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet);
    EXPECT_EQ(host.transitionStats().executed, 1u);
    const core::GovernorDriver *first = &host.driver();

    // A second installation starts from clean mechanics: fresh
    // driver, zeroed accounting.
    chip.pmu().setPolicy(&host);
    EXPECT_NE(&host.driver(), first);
    EXPECT_EQ(host.transitionStats().executed, 0u);
    EXPECT_EQ(host.driver().flowRuns(), 0u);
}

// ------------------------------------------------------------------
// Online-adaptive governor
// ------------------------------------------------------------------

TEST(OnlineAdaptive, LearnsDuringTheRunAndStartsFresh)
{
    exp::ExperimentSpec spec;
    spec.id = "adaptive/learn";
    spec.workload = workloads::pointerChaseMicro();
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 400 * kTicksPerMs;

    auto run_borrowed = [&spec](core::OnlineAdaptiveGovernor &gov) {
        core::GovernorHost host(gov);
        exp::ExperimentSpec cell = spec;
        cell.borrowedPolicy = &host;
        const exp::RunResult res = exp::runCell(cell);
        ASSERT_TRUE(res.ok) << res.error;
    };

    core::OnlineAdaptiveGovernor gov(
        core::GovernorParams{{"min-samples", "2"}});
    run_borrowed(gov);

    // The run produced learning: windows observed safe fed the
    // mu+sigma estimate.
    EXPECT_GT(gov.safeSamples(), 0u);

    // A registry-built instance is fresh — nothing learned leaks
    // through the factory path.
    auto fresh = core::makeGovernor("adaptive");
    auto *fresh_adaptive =
        dynamic_cast<core::OnlineAdaptiveGovernor *>(fresh.get());
    ASSERT_NE(fresh_adaptive, nullptr);
    EXPECT_EQ(fresh_adaptive->safeSamples(), 0u);
    EXPECT_EQ(fresh_adaptive->clamps(), 0u);
}

TEST(OnlineAdaptive, ThresholdFloorHoldsUnderQuietCorpus)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::OnlineAdaptiveGovernor gov(
        core::GovernorParams{{"min-samples", "1"}});
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    // An all-quiet stream must not collapse thresholds to zero (that
    // would pin the SoC high forever through the hysteresis scale).
    soc::CounterSnapshot quiet;
    for (int i = 0; i < 32; ++i)
        host.evaluate(chip, quiet);

    const core::Thresholds defaults =
        core::SysScaleGovernor::defaultThresholds();
    for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
        EXPECT_GE(gov.thresholds().counter[i],
                  defaults.counter[i] *
                      core::OnlineAdaptiveGovernor::kFloorShare);
    }
}

// ------------------------------------------------------------------
// Differential: the refactor changed no simulation output
// ------------------------------------------------------------------

/**
 * The exact fig7-class and fig9-class cells whose pre-refactor CSV
 * rows are baked into tests/golden_governor_refactor.inc. Keep this
 * list in sync with the baking recipe documented there.
 */
TEST(GovernorRefactor, SysScaleByteIdenticalToPreRefactorGoldens)
{
    std::vector<exp::ExperimentSpec> specs;
    const std::vector<std::string> governors = {
        "fixed", "memscale-r", "coscale-r", "sysscale"};

    for (const char *name : {"416.gamess", "470.lbm"}) {
        const auto w = workloads::specBenchmark(name);
        for (const auto &gov : governors) {
            exp::ExperimentSpec spec;
            spec.soc = soc::skylakeConfig(4.5);
            spec.workload = w;
            spec.window =
                std::max<Tick>(2 * kTicksPerSec, 2 * w.period());
            spec.governor = gov;
            spec.id = w.name() + "/" + gov;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }
    for (const auto &w : workloads::batterySuite()) {
        if (w.name() != "web-browsing" &&
            w.name() != "video-playback")
            continue;
        for (const auto &gov : governors) {
            exp::ExperimentSpec spec;
            spec.soc = soc::skylakeConfig(4.5);
            spec.workload = w;
            spec.window = 3 * kTicksPerSec;
            spec.governor = gov;
            spec.id = w.name() + "/" + gov;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }

    std::string csv = "\n" + exp::csvHeader() + "\n";
    for (const auto &spec : specs) {
        exp::RunResult res = exp::runCell(spec);
        ASSERT_TRUE(res.ok) << res.id << ": " << res.error;
        res.hostSeconds = 0.0; // wall clock: not deterministic
        csv += exp::csvRow(res) + "\n";
    }

    EXPECT_EQ(csv, std::string(kPreRefactorGoldenCsv))
        << "re-homing the paper's governors onto the driver layer "
           "must not change any simulation output";
}
