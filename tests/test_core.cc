/**
 * @file
 * Unit tests for the paper's contribution: static table, predictor,
 * trainer, transition flow, and governors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/demand_predictor.hh"
#include "core/governor_driver.hh"
#include "core/governors.hh"
#include "core/static_table.hh"
#include "core/threshold_trainer.hh"
#include "core/transition_flow.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"

namespace sysscale {
namespace core {
namespace {

TEST(StaticTable, MatchesDisplayEngineModel)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    StaticDemandTable table;

    EXPECT_DOUBLE_EQ(table.staticDemand(chip.csr()), 0.0);

    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});
    EXPECT_NEAR(table.staticDemand(chip.csr()),
                chip.display().bandwidthDemand(), 1e3);

    chip.display().attachPanel(1, io::PanelConfig{
        io::PanelResolution::UHD4K, 60.0, 4});
    EXPECT_NEAR(table.staticDemand(chip.csr()),
                chip.display().bandwidthDemand(), 1e3);
}

TEST(StaticTable, TracksIspStream)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    StaticDemandTable table;
    chip.isp().startCamera(io::CameraConfig{});
    EXPECT_NEAR(table.staticDemand(chip.csr()),
                chip.isp().bandwidthDemand(),
                chip.isp().bandwidthDemand() * 0.01);
}

TEST(StaticTable, FitsInFirmware)
{
    EXPECT_LT(StaticDemandTable().firmwareBytes(), 128u);
}

TEST(Predictor, FiveConditionsFireIndependently)
{
    Thresholds thr;
    thr.counter = {100.0, 10.0, 1000.0, 5.0};
    thr.staticBw = 10e9;
    DemandPredictor pred(thr, {});

    soc::CounterSnapshot quiet;
    EXPECT_FALSE(pred.demandsHighPoint(quiet, 0.0));

    soc::CounterSnapshot gfx = quiet;
    gfx[soc::Counter::GfxLlcMisses] = 200.0;
    EXPECT_TRUE(pred.conditions(gfx, 0.0).gfxBandwidth);

    soc::CounterSnapshot occ = quiet;
    occ[soc::Counter::LlcOccupancyTracer] = 20.0;
    EXPECT_TRUE(pred.conditions(occ, 0.0).cpuBandwidth);

    soc::CounterSnapshot stalls = quiet;
    stalls[soc::Counter::LlcStalls] = 5000.0;
    EXPECT_TRUE(pred.conditions(stalls, 0.0).memLatency);

    soc::CounterSnapshot rpq = quiet;
    rpq[soc::Counter::IoRpq] = 9.0;
    EXPECT_TRUE(pred.conditions(rpq, 0.0).ioLatency);

    EXPECT_TRUE(pred.conditions(quiet, 20e9).staticBw);
}

std::vector<TrainingSample>
syntheticCorpus(std::size_t n, std::uint64_t seed)
{
    // Ground truth: degradation grows with stalls and occupancy.
    Rng rng(seed);
    std::vector<TrainingSample> corpus;
    corpus.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        TrainingSample s;
        const double stalls = rng.uniform(0.0, 2e6);
        const double occ = rng.uniform(0.0, 20.0);
        s.counters[soc::Counter::LlcStalls] = stalls;
        s.counters[soc::Counter::LlcOccupancyTracer] = occ;
        s.counters[soc::Counter::GfxLlcMisses] = rng.uniform(0, 1e4);
        s.counters[soc::Counter::IoRpq] = rng.uniform(0.0, 1.0);
        s.normPerf = 1.0 - (stalls / 2e6) * 0.12 - (occ / 20.0) * 0.05;
        corpus.push_back(s);
    }
    return corpus;
}

TEST(Trainer, ThresholdsAreMuPlusSigmaOfSafeRuns)
{
    const auto corpus = syntheticCorpus(500, 3);
    const Thresholds thr = ThresholdTrainer::train(corpus, 0.01);

    // Recompute mu+sigma by hand for the stalls counter over safe
    // runs and confirm the trained value is at or below it (the
    // zero-FP pass can only lower thresholds).
    double sum = 0.0, sumsq = 0.0;
    std::size_t safe = 0;
    const std::size_t idx =
        soc::counterIndex(soc::Counter::LlcStalls);
    for (const auto &s : corpus) {
        if (s.normPerf < 0.99)
            continue;
        ++safe;
        sum += s.counters.values[idx];
        sumsq += s.counters.values[idx] * s.counters.values[idx];
    }
    const double mu = sum / safe;
    const double sigma = std::sqrt(sumsq / safe - mu * mu);
    EXPECT_LE(thr.counter[idx], mu + sigma + 1e-6);
    EXPECT_GT(thr.counter[idx], 0.0);
}

TEST(Trainer, ZeroFalsePositivesByConstruction)
{
    // Paper Sec. 4.2: "The prediction algorithm has no false
    // positive predictions."
    const auto corpus = syntheticCorpus(800, 11);
    const Thresholds thr = ThresholdTrainer::train(corpus, 0.01);
    const DemandPredictor pred(thr, {});
    const PredictionStats stats =
        ThresholdTrainer::evaluate(pred, corpus, 0.01);
    EXPECT_EQ(stats.falsePositives, 0u);
    EXPECT_GT(stats.accuracy, 0.5);
}

TEST(Trainer, LinearFitRecoversPlantedModel)
{
    // normPerf is linear in the counters by construction, so the
    // least-squares fit must correlate almost perfectly.
    const auto corpus = syntheticCorpus(600, 17);
    const LinearImpactModel model =
        ThresholdTrainer::fitLinear(corpus);
    const DemandPredictor pred({}, model);
    const PredictionStats stats =
        ThresholdTrainer::evaluate(pred, corpus, 0.01);
    EXPECT_GT(stats.correlation, 0.98);
}

TEST(Trainer, CorrelationHelper)
{
    EXPECT_NEAR(ThresholdTrainer::correlation({1, 2, 3}, {2, 4, 6}),
                1.0, 1e-12);
    EXPECT_NEAR(ThresholdTrainer::correlation({1, 2, 3}, {3, 2, 1}),
                -1.0, 1e-12);
}

class FlowTest : public ::testing::Test
{
  protected:
    FlowTest() : sim_(), chip_(sim_, soc::skylakeConfig()) {}

    Simulator sim_;
    soc::Soc chip_;
};

TEST_F(FlowTest, SysScaleFlowUnderTenMicroseconds)
{
    // Paper Sec. 5: "The actual latency of SysScale flow is less
    // than 10us."
    TransitionFlow flow(chip_);
    const FlowReport report =
        flow.execute(chip_.opPoints().low());
    EXPECT_TRUE(report.executed);
    EXPECT_FALSE(report.increased);
    EXPECT_LT(report.totalLatency, 10 * kTicksPerUs);
    EXPECT_EQ(chip_.currentOpPoint().dramBin, 1u);
}

TEST_F(FlowTest, NineStepsAllAccounted)
{
    TransitionFlow flow(chip_);
    const FlowReport report = flow.execute(chip_.opPoints().low());
    Tick sum = 0;
    for (const FlowStep &s : report.steps) {
        EXPECT_NE(s.name[0], '\0');
        sum += s.latency;
    }
    EXPECT_EQ(sum, report.totalLatency);
    // Decreasing transition: voltages ramp in step 7, not step 2.
    EXPECT_EQ(report.steps[1].latency, 0u);
    EXPECT_GT(report.steps[6].latency, 0u);
}

TEST_F(FlowTest, IncreaseRampsVoltagesFirst)
{
    TransitionFlow flow(chip_);
    flow.execute(chip_.opPoints().low());
    sim_.run(kTicksPerMs); // let the downward ramp complete
    const FlowReport up = flow.execute(chip_.opPoints().high());
    EXPECT_TRUE(up.increased);
    EXPECT_GT(up.steps[1].latency, 0u);
    EXPECT_EQ(up.steps[6].latency, 0u);
}

TEST_F(FlowTest, AppliesVoltagesAndClocks)
{
    TransitionFlow flow(chip_);
    const soc::OperatingPoint &low = chip_.opPoints().low();
    flow.execute(low);
    EXPECT_DOUBLE_EQ(chip_.mc().vsa(), low.vSa);
    EXPECT_DOUBLE_EQ(chip_.fabric().vsa(), low.vSa);
    EXPECT_DOUBLE_EQ(chip_.mc().ddrio().vio(), low.vIo);
    EXPECT_DOUBLE_EQ(chip_.fabric().frequency(), low.fabricFreq);
    EXPECT_EQ(chip_.dram().binIndex(), low.dramBin);
}

TEST_F(FlowTest, NoOpWhenAlreadyAtTarget)
{
    TransitionFlow flow(chip_);
    const FlowReport report = flow.execute(chip_.opPoints().high());
    EXPECT_FALSE(report.executed);
    EXPECT_EQ(report.totalLatency, 0u);
    EXPECT_EQ(chip_.transitionCount(), 0u);
}

TEST_F(FlowTest, LegacyFlowWithoutSramIsSlower)
{
    // Without the SRAM-cached MRC images a transition pays firmware
    // recomputation plus a full interface retrain.
    FlowOptions legacy;
    legacy.scaleFabric = false;
    legacy.scaleVsa = false;
    legacy.scaleVio = false;
    legacy.useOptimizedMrc = false;
    legacy.sramMrc = false;
    TransitionFlow flow(chip_, legacy);

    soc::OperatingPoint target = chip_.opPoints().low();
    target.mrcTrainedBin = 0;
    const FlowReport report = flow.execute(target);
    EXPECT_GT(report.totalLatency, 50 * kTicksPerUs);
    // Fabric stayed at the boot clock.
    EXPECT_DOUBLE_EQ(chip_.fabric().frequency(),
                     chip_.opPoints().high().fabricFreq);
    // The applied registers carry the Fig. 4 penalties.
    EXPECT_FALSE(chip_.mc().registers().optimized());
}

TEST_F(FlowTest, VsaWithoutFabricScalingIsRejected)
{
    FlowOptions bad;
    bad.scaleFabric = false;
    bad.scaleVsa = true;
    EXPECT_DEATH(TransitionFlow(chip_, bad), "");
}

TEST(Governors, NamesAndFirmwareBudgets)
{
    FixedGovernor fixed;
    SysScaleGovernor sysscale;
    MemScaleGovernor memscale(true);
    CoScaleGovernor coscale(true);

    EXPECT_STREQ(fixed.name(), "baseline");
    EXPECT_STREQ(sysscale.name(), "sysscale");
    EXPECT_STREQ(memscale.name(), "memscale-r");
    EXPECT_STREQ(coscale.name(), "coscale-r");

    // Paper Sec. 5: SysScale firmware is ~0.6KB, within the budget.
    EXPECT_LE(sysscale.firmwareBytes(),
              soc::Pmu::kFirmwareBudgetBytes);
}

TEST(Governors, SysScaleDerivesStaticGateFromLowPoint)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    SysScaleGovernor gov;
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    const BytesPerSec low_cap =
        chip.config().dramSpec.peakBandwidth(1) * 0.90;
    EXPECT_NEAR(gov.predictor().thresholds().staticBw,
                low_cap * SysScaleGovernor::kStaticMargin, 1e6);
}

TEST(Governors, SysScaleMovesLowWhenQuietAndHighUnderPressure)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    SysScaleGovernor gov;
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet);
    EXPECT_EQ(chip.currentOpPoint().dramBin, 1u);
    EXPECT_EQ(host.driver().flowRuns(), 1u);
    EXPECT_LT(host.driver().lastFlowLatency(), 10 * kTicksPerUs);

    soc::CounterSnapshot pressure;
    pressure[soc::Counter::LlcStalls] = 5e6;
    host.evaluate(chip, pressure);
    EXPECT_EQ(chip.currentOpPoint().dramBin, 0u);
    EXPECT_TRUE(gov.lastConditions().memLatency);
}

TEST(Governors, StaticDemandHoldsHighPoint)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    // Two 4K panels exceed what the low point can guarantee.
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::UHD4K, 60.0, 4});
    chip.display().attachPanel(1, io::PanelConfig{
        io::PanelResolution::UHD4K, 60.0, 4});

    SysScaleGovernor gov;
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet);
    EXPECT_EQ(chip.currentOpPoint().dramBin, 0u);
    EXPECT_TRUE(gov.lastConditions().staticBw);
}

TEST(Governors, RedistributionGrowsComputeBudget)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    SysScaleGovernor gov;
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    const Watt high_budget = chip.computeBudget();

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet); // moves low
    EXPECT_GT(chip.computeBudget(), high_budget + 0.2);
}

TEST(Governors, PureMemScaleDoesNotRedistribute)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    MemScaleGovernor gov(/*redistribute=*/false);
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    const Watt before = chip.computeBudget();

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet); // scales memory down
    EXPECT_EQ(chip.currentOpPoint().dramBin, 1u);
    EXPECT_NEAR(chip.computeBudget(), before, 1e-9);
}

TEST(Governors, MemScaleLeavesFabricAndVoltagesAlone)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    MemScaleGovernor gov(true);
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet);
    EXPECT_EQ(chip.currentOpPoint().dramBin, 1u);
    EXPECT_DOUBLE_EQ(chip.fabric().frequency(),
                     chip.config().fabricFreqHigh);
    EXPECT_DOUBLE_EQ(chip.mc().vsa(), chip.config().vSaBoot);
    EXPECT_DOUBLE_EQ(chip.mc().ddrio().vio(), chip.config().vIoBoot);
    EXPECT_FALSE(chip.mc().registers().optimized());
}

TEST(Governors, CoScaleCapsCoresWhenHeavilyBound)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    CoScaleGovernor gov(true);
    GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    soc::CounterSnapshot bound;
    bound[soc::Counter::LlcStalls] = 5e6;
    host.evaluate(chip, bound);
    EXPECT_GT(chip.coreFreqCap(), 0.0);
    EXPECT_LT(chip.coreFreqCap(), chip.cpu().pstates().max().freq);

    soc::CounterSnapshot quiet;
    host.evaluate(chip, quiet);
    EXPECT_DOUBLE_EQ(chip.coreFreqCap(), 0.0);
}

} // namespace
} // namespace core
} // namespace sysscale
