/**
 * @file
 * Unit tests for workload profiles and the synthetic sweep.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/battery.hh"
#include "workloads/graphics.hh"
#include "workloads/micro.hh"
#include "workloads/profile.hh"
#include "workloads/spec.hh"
#include "workloads/sweep.hh"

namespace sysscale {
namespace workloads {
namespace {

TEST(Spec, SuiteHasAll29Benchmarks)
{
    const auto suite = specSuite();
    EXPECT_EQ(suite.size(), 29u);
    std::set<std::string> names;
    for (const auto &w : suite)
        names.insert(w.name());
    EXPECT_EQ(names.size(), 29u);
    EXPECT_TRUE(names.count("470.lbm"));
    EXPECT_TRUE(names.count("416.gamess"));
}

TEST(Spec, LookupByNameMatchesSuite)
{
    const WorkloadProfile lbm = specBenchmark("470.lbm");
    EXPECT_EQ(lbm.name(), "470.lbm");
    EXPECT_DEATH((void)specBenchmark("999.nope"), "");
}

TEST(Spec, MemoryBoundRowsHaveLowScalability)
{
    // Sec. 7.1: gains correlate with frequency scalability; lbm and
    // bwaves are the canonical non-scalable workloads.
    EXPECT_LT(specBenchmark("470.lbm").perfScalability(), 0.2);
    EXPECT_LT(specBenchmark("410.bwaves").perfScalability(), 0.2);
    EXPECT_GT(specBenchmark("416.gamess").perfScalability(), 0.9);
}

TEST(Spec, AstarAlternatesBandwidthPhases)
{
    const WorkloadProfile astar = specBenchmark("473.astar");
    ASSERT_EQ(astar.numPhases(), 2u);
    EXPECT_GT(astar.phase(1).work.bytesPerInstr,
              astar.phase(0).work.bytesPerInstr * 5.0);
}

TEST(Profile, PhaseAtIsCyclic)
{
    const WorkloadProfile astar = specBenchmark("473.astar");
    const Tick period = astar.period();
    const Phase &p0 = astar.phaseAt(0);
    const Phase &wrapped = astar.phaseAt(period);
    EXPECT_DOUBLE_EQ(p0.work.mpki, wrapped.work.mpki);
    const Phase &second = astar.phaseAt(p0.duration);
    EXPECT_NE(p0.work.bytesPerInstr, second.work.bytesPerInstr);
}

TEST(Profile, AgentFillsDemand)
{
    ProfileAgent agent(specBenchmark("470.lbm"));
    soc::IntervalDemand d;
    agent.demandAt(0, d);
    ASSERT_EQ(d.threadWork.size(), 1u);
    EXPECT_DOUBLE_EQ(d.threadWork[0].mpki, 20.0);
    EXPECT_FALSE(agent.finished(10 * kTicksPerSec));
}

TEST(Profile, BoundedRepeatsFinish)
{
    const WorkloadProfile spin = spinMicro();
    ProfileAgent agent(spin, /*repeats=*/2);
    EXPECT_FALSE(agent.finished(spin.period()));
    EXPECT_TRUE(agent.finished(2 * spin.period()));
}

/**
 * The agent's O(1) phase cursor must agree with the profile's linear
 * scan at every offset — monotonic sweeps (the simulation pattern,
 * including period wraps) and backward jumps (rebase) alike.
 */
TEST(Profile, AgentCursorMatchesLinearScan)
{
    const WorkloadProfile astar = specBenchmark("473.astar");
    const Tick period = astar.period();
    ProfileAgent agent(astar);
    soc::IntervalDemand d;

    auto expect_phase = [&](Tick now) {
        d.clear();
        agent.demandAt(now, d);
        const Phase &ref = astar.phaseAt(now % period);
        ASSERT_EQ(d.threadWork.size(), ref.activeThreads);
        EXPECT_TRUE(d.threadWork[0] == ref.work) << "offset " << now;
        EXPECT_DOUBLE_EQ(d.ioBestEffort, ref.ioBestEffort);
    };

    // Monotonic sweep in an awkward stride across several periods.
    const Tick stride = period / 7 + 12345;
    for (Tick now = 0; now < 5 * period; now += stride)
        expect_phase(now);

    // Phase-boundary edges, then a backward jump resetting the
    // cursor.
    expect_phase(astar.phase(0).duration - 1);
    expect_phase(astar.phase(0).duration);
    expect_phase(3 * period + 1);
    expect_phase(1);
}

TEST(Graphics, SuiteMatchesFig8)
{
    const auto suite = graphicsSuite();
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_EQ(suite[0].name(), "3DMark06");
    EXPECT_EQ(suite[1].name(), "3DMark11");
    EXPECT_EQ(suite[2].name(), "3DMarkVantage");
    for (const auto &w : suite) {
        EXPECT_EQ(w.klass(), WorkloadClass::Graphics);
        EXPECT_FALSE(w.phase(0).gfxWork.idle());
    }
}

TEST(Battery, SuiteMatchesFig9)
{
    const auto suite = batterySuite();
    ASSERT_EQ(suite.size(), 4u);
    for (const auto &w : suite) {
        EXPECT_EQ(w.klass(), WorkloadClass::BatteryLife);
        // Battery workloads request the efficient Pn frequency.
        EXPECT_GT(w.phase(0).coreFreqRequest, 0.0);
        // And they idle most of the time.
        EXPECT_LT(w.phase(0).residency.activeFraction(), 0.45);
    }
}

TEST(Battery, VideoPlaybackResidenciesMatchSec73)
{
    const WorkloadProfile vp = videoPlayback();
    const auto &res = vp.phase(0).residency;
    EXPECT_NEAR(res.activeFraction(), 0.10, 1e-9);
    EXPECT_NEAR(res.dramActiveFraction(), 0.15, 1e-9);
}

TEST(Micro, StreamSaturatesBandwidth)
{
    const WorkloadProfile stream = streamMicro();
    // Peak demand hint far above the 25.6 GB/s interface.
    EXPECT_GT(stream.peakBandwidthHint(90.0, 1.2 * kGHz), 25.6e9);
}

TEST(Sweep, GeneratesRequestedCounts)
{
    SweepSpec spec;
    spec.cpuSingleThread = 50;
    spec.cpuMultiThread = 30;
    spec.graphics = 20;
    const auto corpus = SynthSweep::generate(spec);
    EXPECT_EQ(corpus.size(), 100u);

    std::size_t st = 0, mt = 0, gfx = 0;
    for (const auto &w : corpus) {
        st += w.klass() == WorkloadClass::CpuSingleThread;
        mt += w.klass() == WorkloadClass::CpuMultiThread;
        gfx += w.klass() == WorkloadClass::Graphics;
    }
    EXPECT_EQ(st, 50u);
    EXPECT_EQ(mt, 30u);
    EXPECT_EQ(gfx, 20u);
}

TEST(Sweep, DefaultCorpusExceeds1600Workloads)
{
    // Sec. 4.2: the predictor is validated on >1600 workloads.
    EXPECT_GT(SweepSpec{}.total(), 1600u);
}

TEST(Sweep, DeterministicForSameSeed)
{
    SweepSpec spec;
    spec.cpuSingleThread = 20;
    spec.cpuMultiThread = 0;
    spec.graphics = 0;
    const auto a = SynthSweep::generate(spec);
    const auto b = SynthSweep::generate(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].phase(0).work.mpki,
                         b[i].phase(0).work.mpki);
        EXPECT_DOUBLE_EQ(a[i].phase(0).work.cpiBase,
                         b[i].phase(0).work.cpiBase);
    }
}

TEST(Sweep, CoversWideMissRateRange)
{
    const auto corpus = SynthSweep::generateClass(
        WorkloadClass::CpuSingleThread, 400, 99);
    double lo = 1e9, hi = 0.0;
    for (const auto &w : corpus) {
        lo = std::min(lo, w.phase(0).work.mpki);
        hi = std::max(hi, w.phase(0).work.mpki);
    }
    EXPECT_LT(lo, 0.2);
    EXPECT_GT(hi, 15.0);
}

} // namespace
} // namespace workloads
} // namespace sysscale
