/**
 * @file
 * Distributed-sweep tests: the filesystem work queue's claim
 * exclusivity and crash paths (stale-lease reclamation, corrupt and
 * truncated files quarantined instead of simulated, dead workers
 * losing no cells), two workers draining one queue with zero
 * duplicate simulations, failed cells publishing loud error rows,
 * and the headline acceptance property — a distributed drain
 * assembling output byte-identical to a single-process
 * ExperimentRunner run of the same grid.
 *
 * Campaign operations on top: the read-only inspection APIs behind
 * `sweep_queue` (counts, probe-aged leases, decoded cells —
 * tolerant of files vanishing mid-scan), retry-failed / purge,
 * clock-skew-free lease staleness, capacity-weighted workers, and
 * spec-order result streaming whose CSV is byte-identical to
 * end-of-run assembly.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/dispatch.hh"
#include "dist/work_queue.hh"
#include "dist/worker.hh"
#include "exp/cache.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/spec_codec.hh"
#include "workloads/micro.hh"

using namespace sysscale;

namespace {

/** Fresh per-test directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("sysscale-dist-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

    std::string
    sub(const std::string &name) const
    {
        return (std::filesystem::path(path_) / name).string();
    }

  private:
    std::string path_;
};

exp::ExperimentSpec
fastSpec(const std::string &id, std::uint64_t seed = 1)
{
    exp::ExperimentSpec spec;
    spec.id = id;
    spec.workload = workloads::streamMicro();
    spec.governor = "fixed";
    spec.seed = seed;
    spec.warmup = 2 * kTicksPerMs;
    spec.window = 10 * kTicksPerMs;
    spec.labels = {{"cell", id}};
    return spec;
}

std::vector<exp::ExperimentSpec>
smallGrid()
{
    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w :
         {workloads::streamMicro(), workloads::spinMicro()}) {
        for (const char *gov : {"fixed", "sysscale"}) {
            exp::ExperimentSpec spec;
            spec.id = w.name() + "/" + gov;
            spec.workload = w;
            spec.governor = gov;
            spec.warmup = 2 * kTicksPerMs;
            spec.window = 10 * kTicksPerMs;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

std::string
toCsv(const std::vector<exp::RunResult> &results)
{
    std::ostringstream os;
    exp::writeCsv(os, results);
    return os.str();
}

/** Backdate a file's mtime by @p by (simulating a dead worker). */
void
backdate(const std::string &path, std::chrono::seconds by)
{
    const auto mtime = std::filesystem::last_write_time(path);
    std::filesystem::last_write_time(path, mtime - by);
}

} // anonymous namespace

TEST(WorkQueue, EnqueueClaimReleaseLifecycle)
{
    const TempDir dir("lifecycle");
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string key = queue.enqueue(spec);
    EXPECT_EQ(key, exp::specKey(spec));
    EXPECT_TRUE(std::filesystem::exists(queue.pendingPath(key)));
    EXPECT_EQ(queue.scan().pending, 1u);

    // Re-enqueueing a pending cell is a no-op.
    EXPECT_EQ(queue.enqueue(spec), key);
    EXPECT_EQ(queue.counters().enqueued, 1u);
    EXPECT_EQ(queue.counters().skipped, 1u);

    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    EXPECT_EQ(claim.key, key);
    EXPECT_EQ(claim.workerId, "w1");
    EXPECT_TRUE(claim.spec == spec) << "claimed spec round-trips";
    EXPECT_FALSE(std::filesystem::exists(queue.pendingPath(key)));
    EXPECT_TRUE(
        std::filesystem::exists(queue.claimedPath(key, "w1")));
    EXPECT_TRUE(std::filesystem::exists(queue.leasePath(key, "w1")));

    // A claimed cell cannot be enqueued again either.
    EXPECT_EQ(queue.enqueue(spec), key);
    EXPECT_EQ(queue.counters().enqueued, 1u);

    queue.release(claim);
    EXPECT_TRUE(queue.scan().drained());
    EXPECT_FALSE(
        std::filesystem::exists(queue.claimedPath(key, "w1")));
    EXPECT_FALSE(std::filesystem::exists(queue.leasePath(key, "w1")));
}

TEST(WorkQueue, ClaimIsExclusive)
{
    const TempDir dir("exclusive");
    dist::WorkQueue queue(dir.sub("q"));
    queue.enqueue(fastSpec("cell"));

    dist::Claim first, second;
    ASSERT_TRUE(queue.tryClaim("w1", first));
    EXPECT_FALSE(queue.tryClaim("w2", second))
        << "one pending cell must be claimable exactly once";
}

TEST(WorkQueue, RuntimeHookSpecsAreRejected)
{
    const TempDir dir("hooks");
    dist::WorkQueue queue(dir.sub("q"));
    exp::ExperimentSpec spec = fastSpec("hooked");
    spec.governorFactory = [] {
        return std::unique_ptr<soc::PmuPolicy>();
    };
    EXPECT_FALSE(dist::WorkQueue::queueable(spec));
    EXPECT_THROW((void)queue.enqueue(spec), std::invalid_argument);
}

TEST(WorkQueue, StaleLeaseIsReclaimedFreshLeaseIsNot)
{
    const TempDir dir("stale");
    dist::WorkQueue queue(dir.sub("q"));
    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string key = queue.enqueue(spec);

    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("dead-worker", claim));

    // A fresh lease protects the claim.
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(30)), 0u);
    EXPECT_EQ(queue.scan().claimed, 1u);

    // The worker dies: its lease stops refreshing and goes stale.
    backdate(queue.leasePath(key, "dead-worker"),
             std::chrono::seconds(3600));
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(30)), 1u);
    EXPECT_EQ(queue.counters().reclaims, 1u);
    EXPECT_TRUE(std::filesystem::exists(queue.pendingPath(key)));
    EXPECT_FALSE(std::filesystem::exists(
        queue.leasePath(key, "dead-worker")));

    // The recovered cell is claimable again, content intact.
    dist::Claim again;
    ASSERT_TRUE(queue.tryClaim("w2", again));
    EXPECT_TRUE(again.spec == spec);
}

TEST(WorkQueue, MissingLeaseCountsAsDead)
{
    const TempDir dir("nolease");
    dist::WorkQueue queue(dir.sub("q"));
    const std::string key = queue.enqueue(fastSpec("cell"));

    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    // Crash window: the claim exists but its lease was lost.
    std::filesystem::remove(queue.leasePath(key, "w1"));
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(3600)), 1u);
    EXPECT_TRUE(std::filesystem::exists(queue.pendingPath(key)));
}

TEST(WorkQueue, HeartbeatKeepsALeaseFresh)
{
    const TempDir dir("heartbeat");
    dist::WorkQueue queue(dir.sub("q"));
    const std::string key = queue.enqueue(fastSpec("cell"));
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));

    backdate(queue.leasePath(key, "w1"), std::chrono::seconds(3600));
    queue.heartbeat(claim);
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(30)), 0u)
        << "a heartbeat must reset the staleness clock";
}

TEST(WorkQueue, CorruptPendingFilesNeverProduceAClaim)
{
    const TempDir dir("corrupt");
    dist::WorkQueue queue(dir.sub("q"));
    std::vector<std::string> events;
    queue.onEvent = [&](const std::string &e) {
        events.push_back(e);
    };

    // Garbage bytes, a truncated real spec, and a well-formed spec
    // filed under the wrong key (content/name mismatch): none may
    // ever reach a worker as a claim — a wrong result is the one
    // unrecoverable failure.
    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string text = exp::serializeSpec(spec);
    {
        std::ofstream os(
            queue.pendingPath("0123456789abcdef"));
        os << "not a spec at all\n";
    }
    {
        std::ofstream os(
            queue.pendingPath("fedcba9876543210"));
        os << text.substr(0, text.size() / 2);
    }
    {
        std::ofstream os(
            queue.pendingPath("00000000deadbeef"));
        os << text; // parses fine, but specKey(spec) != filename
    }

    dist::Claim claim;
    EXPECT_FALSE(queue.tryClaim("w1", claim));
    EXPECT_EQ(queue.counters().corrupt, 3u);
    EXPECT_EQ(events.size(), 3u) << "quarantines must be loud";
    EXPECT_EQ(queue.scan().pending, 0u);

    // Quarantined, not deleted: the bytes stay auditable.
    std::size_t quarantined = 0;
    for (const auto &entry [[maybe_unused]] :
         std::filesystem::directory_iterator(dir.sub("q") +
                                             "/corrupt"))
        ++quarantined;
    EXPECT_EQ(quarantined, 3u);
}

TEST(Worker, DrainsAQueueThroughTheSharedCache)
{
    const TempDir dir("drain");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    for (const auto &spec : specs)
        queue.enqueue(spec);

    dist::WorkerOptions opts;
    opts.workerId = "w1";
    opts.drain = true;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);

    EXPECT_EQ(stats.claimed, specs.size());
    EXPECT_EQ(stats.simulated, specs.size());
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_TRUE(queue.scan().drained());

    // Every cell is in the cache, replayable.
    for (const auto &spec : specs) {
        exp::RunResult out;
        EXPECT_TRUE(cache.lookup(spec, out)) << spec.id;
        EXPECT_TRUE(out.ok);
    }
}

TEST(Worker, NeverSimulatesACellAnotherWorkerCompleted)
{
    const TempDir dir("cachecheck");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    // The cell is enqueued AND already completed (e.g. reclaimed
    // from a worker that died after publishing but before
    // releasing): the claim must resolve as a cache hit, not a
    // second simulation.
    const exp::ExperimentSpec spec = fastSpec("cell");
    cache.store(spec, exp::runCell(spec));
    queue.enqueue(spec);

    dist::WorkerOptions opts;
    opts.drain = true;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);
    EXPECT_EQ(stats.claimed, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.simulated, 0u);
    EXPECT_TRUE(queue.scan().drained());
}

TEST(Worker, KilledMidCellLosesNoCells)
{
    const TempDir dir("killed");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    for (const auto &spec : specs)
        queue.enqueue(spec);

    // Worker A claims a cell and dies mid-simulation: no release,
    // no heartbeat, lease left to rot.
    dist::Claim abandoned;
    ASSERT_TRUE(queue.tryClaim("killed-worker", abandoned));
    backdate(queue.leasePath(abandoned.key, "killed-worker"),
             std::chrono::seconds(3600));

    // Worker B drains: its reclamation pass recovers the abandoned
    // cell and every cell of the grid completes exactly once.
    dist::WorkerOptions opts;
    opts.workerId = "w2";
    opts.drain = true;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);

    EXPECT_EQ(stats.reclaims, 1u);
    EXPECT_EQ(stats.simulated, specs.size());
    EXPECT_TRUE(queue.scan().drained());
    for (const auto &spec : specs) {
        exp::RunResult out;
        EXPECT_TRUE(cache.lookup(spec, out)) << spec.id;
    }
}

TEST(Worker, TwoWorkersDrainWithZeroDuplicateSimulations)
{
    const TempDir dir("twoworkers");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    for (const auto &spec : specs)
        queue.enqueue(spec);

    dist::WorkerStats s1, s2;
    auto work = [&](const std::string &id, dist::WorkerStats &out) {
        dist::WorkerOptions opts;
        opts.workerId = id;
        opts.drain = true;
        opts.poll = std::chrono::milliseconds(10);
        out = dist::runWorker(dir.sub("q"), cache, opts);
    };
    std::thread t1(work, "w1", std::ref(s1));
    std::thread t2(work, "w2", std::ref(s2));
    t1.join();
    t2.join();

    // Claims are exclusive renames and no lease can go stale in a
    // healthy drain, so the cell count splits exactly — no cell is
    // simulated twice, none is lost.
    EXPECT_EQ(s1.simulated + s2.simulated, specs.size());
    EXPECT_EQ(s1.claimed + s2.claimed, specs.size());
    EXPECT_EQ(s1.failures + s2.failures, 0u);
    EXPECT_TRUE(queue.scan().drained());
    for (const auto &spec : specs) {
        exp::RunResult out;
        EXPECT_TRUE(cache.lookup(spec, out)) << spec.id;
    }
}

TEST(Dispatch, FailedCellsBecomeLoudErrorRows)
{
    const TempDir dir("failed");
    exp::ResultCache cache(dir.sub("cache"));

    // One healthy cell and one that fails validation at run time
    // (no phases anywhere): the failure must come back as an error
    // row — same shape as the single-process runner — and never be
    // cached or retried within the dispatch.
    std::vector<exp::ExperimentSpec> specs;
    specs.push_back(fastSpec("healthy"));
    exp::ExperimentSpec broken;
    broken.id = "broken";
    broken.labels = {{"cell", "broken"}};
    specs.push_back(broken);

    dist::DispatchOptions opts;
    opts.spawnWorkers = 1;
    opts.poll = std::chrono::milliseconds(10);
    const dist::DispatchOutcome outcome =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);

    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_TRUE(outcome.results[0].ok);
    EXPECT_FALSE(outcome.results[1].ok);
    EXPECT_NE(outcome.results[1].error.find("no phases"),
              std::string::npos)
        << outcome.results[1].error;
    EXPECT_EQ(outcome.results[1].id, "broken");
    EXPECT_EQ(outcome.failedCells, 1u);

    // Error rows are never cached; the failure marker is what
    // resolved the cell.
    exp::RunResult out;
    EXPECT_FALSE(cache.lookup(broken, out));
    dist::WorkQueue queue(dir.sub("q"));
    EXPECT_EQ(queue.scan().failed, 1u);

    // A fresh dispatch clears the marker and retries the cell.
    const dist::DispatchOutcome retry =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    EXPECT_FALSE(retry.results[1].ok);
    EXPECT_EQ(retry.localWork.simulated, 1u)
        << "only the broken cell re-runs; the healthy one is cached";
}

TEST(Dispatch, RecoversACorruptedQueueEntry)
{
    const TempDir dir("recover");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    // The cell's queue file exists but holds garbage (torn write on
    // a flaky NFS, say) — enqueue() will skip it as already-pending,
    // a worker will quarantine it, and the dispatcher must then
    // re-enqueue the real spec and still complete the sweep.
    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string key = exp::specKey(spec);
    {
        std::ofstream os(queue.pendingPath(key));
        os << "garbage where a spec should be\n";
    }

    dist::DispatchOptions opts;
    opts.spawnWorkers = 1;
    opts.poll = std::chrono::milliseconds(10);
    const dist::DispatchOutcome outcome =
        dist::runDistributed({spec}, dir.sub("q"), cache, opts);

    ASSERT_EQ(outcome.results.size(), 1u);
    EXPECT_TRUE(outcome.results[0].ok) << outcome.results[0].error;
    EXPECT_GE(outcome.reenqueued, 1u)
        << "the lost cell must be re-enqueued from the dispatcher's "
           "own spec";
}

/**
 * The acceptance property: a grid drained by two concurrent workers
 * sharing a queue and cache produces output byte-identical to a
 * single-process ExperimentRunner run of the same grid — and every
 * cell is simulated exactly once across the whole fleet.
 */
TEST(Dispatch, DistributedDrainMatchesSingleProcessByteForByte)
{
    const TempDir dir("identity");
    exp::ResultCache cache(dir.sub("cache"));

    const auto specs = smallGrid();
    dist::DispatchOptions opts;
    opts.spawnWorkers = 2;
    opts.poll = std::chrono::milliseconds(10);
    const dist::DispatchOutcome outcome =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    EXPECT_EQ(outcome.localWork.simulated, specs.size())
        << "each cell simulated exactly once across both workers";

    // Single-process runner over the same shared cache: every cell
    // is a hit, and the assembled outputs are byte-identical. (The
    // dispatcher's own poll lookups also count misses, so compare
    // the delta across the serial pass.)
    const std::size_t missesBefore = cache.stats().misses;
    exp::RunnerOptions ropts;
    ropts.jobs = 1;
    ropts.cache = &cache;
    const auto serial = exp::ExperimentRunner(ropts).run(specs);
    EXPECT_EQ(cache.stats().misses, missesBefore)
        << "the serial pass must re-simulate nothing";
    EXPECT_EQ(toCsv(outcome.results), toCsv(serial));

    // And against an independent simulation (fresh cache), every
    // field but the host wall-clock matches bit for bit.
    exp::RunnerOptions iopts;
    iopts.jobs = 1;
    const auto independent = exp::ExperimentRunner(iopts).run(specs);
    ASSERT_EQ(independent.size(), outcome.results.size());
    for (std::size_t i = 0; i < independent.size(); ++i) {
        exp::RunResult a = outcome.results[i];
        exp::RunResult b = independent[i];
        a.hostSeconds = b.hostSeconds = 0.0;
        EXPECT_EQ(exp::csvRow(a), exp::csvRow(b)) << specs[i].id;
    }
}

TEST(Dispatch, ResumesFromAWarmCacheWithoutEnqueueing)
{
    const TempDir dir("resume");
    exp::ResultCache cache(dir.sub("cache"));
    const auto specs = smallGrid();

    dist::DispatchOptions opts;
    opts.spawnWorkers = 1;
    opts.poll = std::chrono::milliseconds(10);
    (void)dist::runDistributed(specs, dir.sub("q"), cache, opts);

    // Second dispatch of the same grid: nothing to enqueue, nothing
    // to simulate — pure assembly.
    const dist::DispatchOutcome again =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    EXPECT_EQ(again.enqueued, 0u);
    EXPECT_EQ(again.alreadyCached, specs.size());
    EXPECT_EQ(again.localWork.simulated, 0u);
}


TEST(WorkQueue, StatusReportsCountsAndProbeAgedLeases)
{
    const TempDir dir("status");
    dist::WorkQueue queue(dir.sub("q"));

    // Build the queue state claim-by-claim so each tryClaim has
    // exactly one candidate: one failed cell, one claimed cell
    // (live lease), two pending, one quarantined file. Seeds
    // differ because ids are presentation-only — the content key
    // ignores them.
    queue.enqueue(fastSpec("failing", 1));
    dist::Claim failedClaim;
    ASSERT_TRUE(queue.tryClaim("w2", failedClaim));
    exp::RunResult res;
    res.governor = "fixed";
    res.error = "boom";
    queue.fail(failedClaim, res);

    dist::Claim claim;
    queue.enqueue(fastSpec("claimed", 2));
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    queue.enqueue(fastSpec("a", 3));
    queue.enqueue(fastSpec("b", 4));
    {
        std::ofstream os(dir.sub("q") + "/corrupt/junk");
        os << "quarantined bytes\n";
    }

    const dist::QueueStatus s = queue.status();
    EXPECT_EQ(s.pending, 2u);
    EXPECT_EQ(s.claimed, 1u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.corrupt, 1u);
    ASSERT_EQ(s.leases.size(), 1u);
    EXPECT_EQ(s.leases[0].workerId, "w1");
    EXPECT_EQ(s.leases[0].key, claim.key);
    // A just-written lease aged against a just-touched probe file:
    // near zero either way, and sane.
    EXPECT_LT(std::abs(s.leases[0].ageSeconds), 60.0);

    // Backdated lease ages grow accordingly (probe minus mtime).
    backdate(queue.leasePath(claim.key, "w1"),
             std::chrono::seconds(120));
    const dist::QueueStatus aged = queue.status();
    ASSERT_EQ(aged.leases.size(), 1u);
    EXPECT_GT(aged.leases[0].ageSeconds, 100.0);
}

TEST(WorkQueue, InspectionToleratesFilesVanishingMidScan)
{
    const TempDir dir("vanish");
    dist::WorkQueue queue(dir.sub("q"));
    std::vector<std::string> events;
    queue.onEvent = [&](const std::string &e) {
        events.push_back(e);
    };

    const std::string keyA = queue.enqueue(fastSpec("a", 1));
    const std::string keyB = queue.enqueue(fastSpec("b", 2));
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));

    // The lease is released by its worker at exactly the moment
    // status() moves from the directory listing to the stat: the
    // inspection must skip it — not crash, not count it corrupt,
    // not report anything.
    const std::string leaseName = claim.key + ".w1";
    queue.onScanFile = [&](const std::string &name) {
        if (name == leaseName) {
            std::filesystem::remove(
                queue.leasePath(claim.key, "w1"));
        }
    };
    const dist::QueueStatus s = queue.status();
    EXPECT_TRUE(s.leases.empty())
        << "a vanished lease must be skipped, not aged";
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(queue.counters().corrupt, 0u);
    EXPECT_TRUE(events.empty()) << events.front();

    // Same for a pending spec vanishing between ls and read: the
    // un-claimed cell disappears mid-listCells and must simply not
    // show up.
    const std::string pendingKey = claim.key == keyA ? keyB : keyA;
    const std::string pendingName = pendingKey + ".spec";
    queue.onScanFile = [&](const std::string &name) {
        if (name == pendingName) {
            std::filesystem::remove(
                std::filesystem::path(dir.sub("q")) / "pending" /
                name);
        }
    };
    const std::vector<dist::CellInfo> cells = queue.listCells();
    for (const dist::CellInfo &cell : cells) {
        EXPECT_FALSE(cell.state == "pending" &&
                     cell.key == pendingKey)
            << "a vanished pending cell must be skipped";
    }
    EXPECT_EQ(queue.counters().corrupt, 0u);
    EXPECT_TRUE(events.empty());
}

TEST(WorkQueue, ListCellsDecodesSpecsWithoutPerturbingTheQueue)
{
    const TempDir dir("lscells");
    dist::WorkQueue queue(dir.sub("q"));

    // Claim first while the queue holds a single cell, then add the
    // pending one — no dependence on directory iteration order.
    const exp::ExperimentSpec claimedSpec =
        fastSpec("claimed-cell", 2);
    const std::string claimedKey = queue.enqueue(claimedSpec);
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    ASSERT_EQ(claim.key, claimedKey);
    queue.enqueue(fastSpec("pending-cell"));

    // A garbage file with a plausible name: listed as unparsable
    // but NOT quarantined — inspection is read-only; only the claim
    // path quarantines.
    {
        std::ofstream os(queue.pendingPath("0123456789abcdef"));
        os << "not a spec\n";
    }

    const std::vector<dist::CellInfo> cells = queue.listCells();
    ASSERT_EQ(cells.size(), 3u);
    // Sorted by state: claimed < failed < pending.
    EXPECT_EQ(cells[0].state, "claimed");
    EXPECT_EQ(cells[0].specId, "claimed-cell");
    EXPECT_EQ(cells[0].workerId, "w1");
    EXPECT_GE(cells[0].leaseAgeSeconds, -1.0);
    bool sawPending = false, sawGarbage = false;
    for (const dist::CellInfo &cell : cells) {
        sawPending |= cell.specId == "pending-cell";
        sawGarbage |= cell.specId == "(unparsable)";
    }
    EXPECT_TRUE(sawPending);
    EXPECT_TRUE(sawGarbage);
    EXPECT_TRUE(std::filesystem::exists(
        queue.pendingPath("0123456789abcdef")))
        << "inspection must never quarantine";
    EXPECT_EQ(queue.counters().corrupt, 0u);
}

TEST(WorkQueue, RetryFailedRequeuesTheRetainedSpec)
{
    const TempDir dir("retry");
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string key = queue.enqueue(spec);
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    exp::RunResult res;
    res.governor = "fixed";
    res.error = "deliberate failure";
    queue.fail(claim, res);

    // The failure keeps the marker AND the spec bytes.
    EXPECT_EQ(queue.scan().failed, 1u);
    EXPECT_TRUE(std::filesystem::exists(queue.failedPath(key) +
                                        ".spec"));

    // retry-failed puts the cell straight back on the queue…
    EXPECT_EQ(queue.retryFailed(), 1u);
    EXPECT_EQ(queue.scan().failed, 0u);
    EXPECT_EQ(queue.scan().pending, 1u);
    EXPECT_FALSE(std::filesystem::exists(queue.failedPath(key)));
    EXPECT_FALSE(std::filesystem::exists(queue.failedPath(key) +
                                         ".spec"));

    // …content intact: a worker claims exactly the original spec.
    dist::Claim again;
    ASSERT_TRUE(queue.tryClaim("w2", again));
    EXPECT_TRUE(again.spec == spec);
}

TEST(WorkQueue, PurgeEmptiesEveryQueueDirectory)
{
    const TempDir dir("purge");
    dist::WorkQueue queue(dir.sub("q"));

    queue.enqueue(fastSpec("a", 1));
    queue.enqueue(fastSpec("b", 2));
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    {
        std::ofstream os(dir.sub("q") + "/corrupt/junk");
        os << "junk\n";
    }

    EXPECT_GE(queue.purge(), 4u); // pending + claim + lease + junk
    EXPECT_TRUE(queue.scan().drained());
    EXPECT_EQ(queue.scan().failed, 0u);
    EXPECT_EQ(queue.status().corrupt, 0u);
    EXPECT_TRUE(queue.listCells().empty());
}

TEST(WorkQueue, ProbeStalenessIgnoresTheObserversWallClock)
{
    const TempDir dir("probe");
    dist::WorkQueue queue(dir.sub("q"));
    const exp::ExperimentSpec spec = fastSpec("cell");
    const std::string key = queue.enqueue(spec);
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));

    // Observer wall clock running an hour FAST: a wall-clock-based
    // staleness test would see every fresh lease as 1h old and
    // reclaim it. The probe comparison must not.
    queue.wallClock = [] {
        return std::filesystem::file_time_type::clock::now() +
               std::chrono::hours(1);
    };
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(30)), 0u)
        << "a fresh lease must survive a fast observer clock";
    EXPECT_TRUE(std::filesystem::exists(
        queue.leasePath(key, "w1")));

    // Observer wall clock running two hours SLOW: wall-clock
    // staleness would never fire and the dead worker's cell would
    // be stuck forever. The probe comparison reclaims it.
    backdate(queue.leasePath(key, "w1"),
             std::chrono::seconds(3600));
    queue.wallClock = [] {
        return std::filesystem::file_time_type::clock::now() -
               std::chrono::hours(2);
    };
    EXPECT_EQ(queue.reclaimStale(std::chrono::seconds(30)), 1u)
        << "a stale lease must be reclaimed under a slow observer "
           "clock";
    EXPECT_TRUE(std::filesystem::exists(queue.pendingPath(key)));

    // The decisions really came from the probe file, not the
    // injected clock.
    bool sawProbe = false;
    for (const auto &entry : std::filesystem::directory_iterator(
             dir.sub("q") + "/tmp")) {
        sawProbe |= entry.path().filename().string().rfind(
                        ".probe.", 0) == 0;
    }
    EXPECT_TRUE(sawProbe);
}

TEST(Worker, CapacityPoolDrainsWithZeroDuplicateSimulations)
{
    const TempDir dir("capacity");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    for (const auto &spec : specs)
        queue.enqueue(spec);

    // One daemon, capacity 2: the internal pool holds (and
    // heartbeats) two leased cells at once but must behave exactly
    // like two cooperating capacity-1 workers — every cell
    // simulated exactly once, nothing lost, queue left empty.
    dist::WorkerOptions opts;
    opts.workerId = "big-box";
    opts.capacity = 2;
    opts.drain = true;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);

    EXPECT_EQ(stats.claimed, specs.size());
    EXPECT_EQ(stats.simulated, specs.size())
        << "zero duplicate simulations across the pool";
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_TRUE(queue.scan().drained());
    EXPECT_TRUE(queue.status().leases.empty());
    for (const auto &spec : specs) {
        exp::RunResult out;
        EXPECT_TRUE(cache.lookup(spec, out)) << spec.id;
    }
}

TEST(Worker, CapacityPoolSharesTheMaxCellsBudgetExactly)
{
    const TempDir dir("budget");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    ASSERT_EQ(specs.size(), 4u);
    for (const auto &spec : specs)
        queue.enqueue(spec);

    // maxCells applies to the pool as a whole and is reserved
    // before each claim, so capacity 2 with a budget of 2 completes
    // exactly 2 cells — never 3.
    dist::WorkerOptions opts;
    opts.workerId = "bounded";
    opts.capacity = 2;
    opts.maxCells = 2;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);

    EXPECT_EQ(stats.cacheHits + stats.simulated, 2u);
    EXPECT_EQ(queue.scan().pending, 2u);
    EXPECT_EQ(queue.scan().claimed, 0u);
}

TEST(Dispatch, StreamsRowsInSpecOrderByteIdenticalToAssembly)
{
    const TempDir dir("stream");
    exp::ResultCache cache(dir.sub("cache"));

    // A grid with a failing cell in the middle: streamed rows must
    // cover error rows too, and still arrive in spec order.
    std::vector<exp::ExperimentSpec> specs = smallGrid();
    exp::ExperimentSpec broken;
    broken.id = "broken";
    broken.labels = {{"cell", "broken"}};
    specs.insert(specs.begin() + 2, broken);

    std::vector<std::size_t> order;
    std::ostringstream streamed;
    exp::CsvWriter writer(streamed);
    dist::DispatchOptions opts;
    opts.spawnWorkers = 2;
    opts.poll = std::chrono::milliseconds(10);
    opts.onResult = [&](std::size_t index,
                        const exp::RunResult &res) {
        order.push_back(index);
        writer.append(res);
    };
    const dist::DispatchOutcome outcome =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);

    // Every row streamed exactly once, in spec order (the reorder
    // buffer hides completion order).
    ASSERT_EQ(order.size(), specs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);

    // The streamed CSV is byte-identical to writing the assembled
    // vector at the end — the acceptance property behind
    // `sweep_grid --distributed --stream-csv`.
    EXPECT_EQ(streamed.str(), toCsv(outcome.results));
    EXPECT_FALSE(outcome.results[2].ok);

    // A warm re-dispatch streams everything from the phase-1 cache
    // scan (the failed cell re-runs), same order, same bytes.
    std::vector<std::size_t> order2;
    std::ostringstream streamed2;
    exp::CsvWriter writer2(streamed2);
    opts.onResult = [&](std::size_t index,
                        const exp::RunResult &res) {
        order2.push_back(index);
        writer2.append(res);
    };
    const dist::DispatchOutcome again =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    ASSERT_EQ(order2.size(), specs.size());
    for (std::size_t i = 0; i < order2.size(); ++i)
        EXPECT_EQ(order2[i], i);
    EXPECT_EQ(streamed2.str(), toCsv(again.results));
}

TEST(Dispatch, CleansUpClaimsOfWorkersThatDiedAfterPublishing)
{
    const TempDir dir("publishdie");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    // A worker claims the cell, publishes its result to the shared
    // cache, then dies before releasing: the claim and lease rot on
    // the queue. The dispatcher must resolve the cell from the
    // cache AND sweep the leftovers, so a finished sweep leaves an
    // empty queue even with no workers left running.
    const exp::ExperimentSpec spec = fastSpec("cell");
    queue.enqueue(spec);
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("died-after-store", claim));
    cache.store(spec, exp::runCell(spec));

    dist::DispatchOptions opts;
    opts.poll = std::chrono::milliseconds(10);
    const dist::DispatchOutcome outcome =
        dist::runDistributed({spec}, dir.sub("q"), cache, opts);

    ASSERT_EQ(outcome.results.size(), 1u);
    EXPECT_TRUE(outcome.results[0].ok);
    EXPECT_EQ(outcome.localWork.simulated, 0u);
    EXPECT_TRUE(queue.scan().drained());
    EXPECT_FALSE(std::filesystem::exists(
        queue.claimedPath(exp::specKey(spec), "died-after-store")));
    EXPECT_FALSE(std::filesystem::exists(
        queue.leasePath(exp::specKey(spec), "died-after-store")));
}

TEST(WorkQueue, WorkerMetricsRoundTripWithProbeAges)
{
    const TempDir dir("metrics");
    dist::WorkQueue queue(dir.sub("q"));

    dist::WorkerMetrics m;
    m.workerId = "host-1-p0";
    m.claimed = 5;
    m.simulated = 3;
    m.cacheHits = 2;
    m.failures = 1;
    m.simSeconds = 0.25;
    m.wallSeconds = 1.5;
    queue.publishMetrics(m);

    // Republishing overwrites in place (one file per worker), and a
    // second worker publishes alongside.
    m.claimed = 6;
    queue.publishMetrics(m);
    dist::WorkerMetrics other;
    other.workerId = "host-2-p0";
    other.simulated = 1;
    other.simSeconds = 0.05;
    other.wallSeconds = 0.4;
    queue.publishMetrics(other);

    const std::vector<dist::WorkerMetrics> all =
        queue.workerMetrics();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].workerId, "host-1-p0");
    EXPECT_EQ(all[0].claimed, 6u);
    EXPECT_EQ(all[0].simulated, 3u);
    EXPECT_EQ(all[0].cacheHits, 2u);
    EXPECT_EQ(all[0].failures, 1u);
    EXPECT_DOUBLE_EQ(all[0].simSeconds, 0.25);
    EXPECT_DOUBLE_EQ(all[0].wallSeconds, 1.5);
    EXPECT_EQ(all[1].workerId, "host-2-p0");
    EXPECT_EQ(all[1].simulated, 1u);
    // Ages come from the probe clock and cannot run backwards.
    EXPECT_GE(all[0].ageSeconds, 0.0);

    // A garbage file is skipped, never a wrong row.
    {
        std::ofstream os(queue.metricsPath("broken"));
        os << "{ not json";
    }
    EXPECT_EQ(queue.workerMetrics().size(), 2u);
    EXPECT_EQ(queue.purge() > 0, true);
    EXPECT_TRUE(queue.workerMetrics().empty());
}

TEST(Worker, PublishesMetricsAfterEveryResolvedClaim)
{
    const TempDir dir("worker-metrics");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const auto specs = smallGrid();
    for (const auto &spec : specs)
        queue.enqueue(spec);

    dist::WorkerOptions opts;
    opts.workerId = "wm";
    opts.drain = true;
    opts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, opts);
    ASSERT_EQ(stats.simulated, specs.size());

    const std::vector<dist::WorkerMetrics> all =
        queue.workerMetrics();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].workerId, "wm");
    EXPECT_EQ(all[0].claimed, specs.size());
    EXPECT_EQ(all[0].simulated, specs.size());
    EXPECT_EQ(all[0].cacheHits, 0u);
    EXPECT_EQ(all[0].failures, 0u);
    EXPECT_GT(all[0].simSeconds, 0.0);
    EXPECT_GT(all[0].wallSeconds, 0.0);
}

TEST(Slice, EntriesRoundTripThroughClaim)
{
    const TempDir dir("slice-claim");
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell"); // 12 ms total
    const Tick step = 5 * kTicksPerMs;
    EXPECT_EQ(dist::WorkQueue::sliceCount(spec, step), 3u);

    const std::string key = queue.enqueueSlice(spec, step, 1);
    EXPECT_EQ(key, dist::WorkQueue::sliceKeyFor(exp::specKey(spec),
                                                step, 1));

    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w1", claim));
    EXPECT_TRUE(claim.isSlice);
    EXPECT_EQ(claim.key, key);
    EXPECT_EQ(claim.baseKey, exp::specKey(spec));
    EXPECT_EQ(claim.step, step);
    EXPECT_EQ(claim.index, 1u);
    EXPECT_EQ(claim.t0, 5 * kTicksPerMs);
    EXPECT_EQ(claim.t1, 10 * kTicksPerMs);
    EXPECT_EQ(claim.total, 12 * kTicksPerMs);
    EXPECT_EQ(claim.spec, spec);

    // Re-enqueueing a claimed slice is a skip, which is what makes
    // the "enqueue successor, then release" crash protocol safe to
    // replay from any point.
    const std::size_t skipped = queue.counters().skipped;
    queue.enqueueSlice(spec, step, 1);
    EXPECT_EQ(queue.counters().skipped, skipped + 1);

    queue.release(claim);
    EXPECT_TRUE(queue.scan().drained());

    // Bounds are validated eagerly.
    EXPECT_THROW(queue.enqueueSlice(spec, step, 3),
                 std::invalid_argument);
    EXPECT_THROW(queue.enqueueSlice(spec, 0, 0),
                 std::invalid_argument);
}

TEST(Slice, TamperedEntriesAreQuarantinedNeverSimulated)
{
    const TempDir dir("slice-corrupt");
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell");
    const Tick step = 5 * kTicksPerMs;
    const std::string base = exp::specKey(spec);

    // A slice document filed under the wrong slice key: the claim
    // path recomputes the key and refuses to run it.
    const std::string wrongKey =
        dist::WorkQueue::sliceKeyFor(base, step, 2);
    queue.enqueueSlice(spec, step, 0);
    std::filesystem::rename(
        queue.pendingPath(
            dist::WorkQueue::sliceKeyFor(base, step, 0)),
        queue.pendingPath(wrongKey));

    // And one that is outright truncated garbage.
    const std::string gibberishKey(16, 'a');
    {
        std::ofstream os(queue.pendingPath(gibberishKey));
        os << "sysscale-slice v1\nbase = oops";
    }

    dist::Claim claim;
    EXPECT_FALSE(queue.tryClaim("w1", claim));
    EXPECT_EQ(queue.counters().corrupt, 2u);
    EXPECT_TRUE(queue.scan().drained());
}

TEST(Slice, SlicedDispatchMatchesUnslicedByteForByte)
{
    const TempDir dir("slice-identity");
    exp::ResultCache cache(dir.sub("cache"));

    // Two workers drain a grid whose 12 ms cells each split into
    // three checkpoint-chained slices.
    const auto specs = smallGrid();
    dist::DispatchOptions opts;
    opts.spawnWorkers = 2;
    opts.poll = std::chrono::milliseconds(10);
    opts.sliceTicks = 5 * kTicksPerMs;
    const dist::DispatchOutcome outcome =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    EXPECT_EQ(outcome.localWork.simulated, 3 * specs.size())
        << "each slice simulated exactly once across both workers";
    for (const auto &res : outcome.results)
        EXPECT_TRUE(res.ok) << res.id << ": " << res.error;

    // Against an independent unsliced simulation, every field but
    // the host wall-clock matches bit for bit — slicing is invisible
    // in the output.
    exp::RunnerOptions iopts;
    iopts.jobs = 1;
    const auto independent = exp::ExperimentRunner(iopts).run(specs);
    ASSERT_EQ(independent.size(), outcome.results.size());
    for (std::size_t i = 0; i < independent.size(); ++i) {
        exp::RunResult a = outcome.results[i];
        exp::RunResult b = independent[i];
        a.hostSeconds = b.hostSeconds = 0.0;
        EXPECT_EQ(exp::csvRow(a), exp::csvRow(b)) << specs[i].id;
        EXPECT_EQ(a.statsDump, b.statsDump) << specs[i].id;
    }
}

TEST(Slice, ChainCrashResumesWithZeroDuplicateSimulation)
{
    const TempDir dir("slice-crash");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell");
    const Tick step = 5 * kTicksPerMs; // 3 slices.
    queue.enqueueSlice(spec, step, 0);

    // A worker claims slice 0, simulates it, publishes its chain
    // snapshot — and dies before enqueueing the successor or
    // releasing the claim.
    dist::Claim claim;
    ASSERT_TRUE(queue.tryClaim("w-dead", claim));
    ASSERT_TRUE(claim.isSlice);
    exp::SliceOptions so;
    so.t0 = claim.t0;
    so.t1 = claim.t1;
    so.outSnap = queue.snapshotPath(claim.baseKey, claim.t1);
    ASSERT_TRUE(exp::runCellSlice(claim.spec, so).ok);
    backdate(queue.leasePath(claim.key, "w-dead"),
             std::chrono::seconds(3600));

    // A healthy worker drains the rest: it reclaims the stale slice
    // claim, recognizes the published snapshot as its completion
    // marker (snapshot hit, no re-simulation), and runs only the two
    // remaining slices of the chain.
    dist::WorkerOptions wopts;
    wopts.workerId = "w-alive";
    wopts.drain = true;
    wopts.poll = std::chrono::milliseconds(10);
    wopts.leaseTimeout = std::chrono::seconds(60);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, wopts);
    EXPECT_EQ(stats.reclaims, 1u);
    EXPECT_EQ(stats.cacheHits, 1u) << "slice 0 resolves by snapshot";
    EXPECT_EQ(stats.simulated, 2u) << "only slices 1 and 2 run";
    EXPECT_TRUE(queue.scan().drained());

    // The assembled cell is byte-identical to an unsliced run.
    exp::RunResult chained;
    ASSERT_TRUE(cache.lookup(spec, chained));
    exp::RunResult whole = exp::runCell(spec);
    chained.hostSeconds = whole.hostSeconds = 0.0;
    EXPECT_EQ(exp::csvRow(chained), exp::csvRow(whole));
    EXPECT_EQ(chained.statsDump, whole.statsDump);
}

TEST(Slice, CorruptChainSnapshotDegradesNeverCrashes)
{
    const TempDir dir("slice-degrade");
    exp::ResultCache cache(dir.sub("cache"));
    dist::WorkQueue queue(dir.sub("q"));

    const exp::ExperimentSpec spec = fastSpec("cell");
    const Tick step = 5 * kTicksPerMs;
    const std::string base = exp::specKey(spec);

    // Slice 1 is on the queue but its input snapshot — the chain
    // handoff at t0 — is corrupt on disk. The worker must degrade
    // to a cache miss (re-simulate the prefix inside the slice),
    // finish the chain, and still produce the byte-identical cell.
    {
        std::ofstream os(queue.snapshotPath(base, step));
        os << "sysscale-snap v1\nnot a real snapshot\n";
    }
    queue.enqueueSlice(spec, step, 1);

    dist::WorkerOptions wopts;
    wopts.workerId = "w1";
    wopts.drain = true;
    wopts.poll = std::chrono::milliseconds(10);
    const dist::WorkerStats stats =
        dist::runWorker(dir.sub("q"), cache, wopts);
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.simulated, 2u) << "slices 1 and 2";
    EXPECT_TRUE(queue.scan().drained());

    exp::RunResult chained;
    ASSERT_TRUE(cache.lookup(spec, chained));
    EXPECT_TRUE(chained.ok) << chained.error;
    exp::RunResult whole = exp::runCell(spec);
    chained.hostSeconds = whole.hostSeconds = 0.0;
    EXPECT_EQ(exp::csvRow(chained), exp::csvRow(whole));
    EXPECT_EQ(chained.statsDump, whole.statsDump);
}

TEST(Slice, FailedSliceFailsItsCellLoudly)
{
    const TempDir dir("slice-fail");
    exp::ResultCache cache(dir.sub("cache"));

    // An unknown governor makes every slice of the cell fail
    // validation inside runCellSlice. The chain must surface one
    // loud error row for the *cell* (base key), exactly like an
    // unsliced failure — and a healthy sibling cell still resolves.
    exp::ExperimentSpec bad = fastSpec("bad");
    bad.governor = "no-such-governor";
    std::vector<exp::ExperimentSpec> specs{bad, fastSpec("good")};

    dist::DispatchOptions opts;
    opts.spawnWorkers = 1;
    opts.poll = std::chrono::milliseconds(10);
    opts.sliceTicks = 5 * kTicksPerMs;
    const dist::DispatchOutcome outcome =
        dist::runDistributed(specs, dir.sub("q"), cache, opts);
    EXPECT_EQ(outcome.failedCells, 1u);
    EXPECT_FALSE(outcome.results[0].ok);
    EXPECT_NE(outcome.results[0].error.find("governor"),
              std::string::npos)
        << outcome.results[0].error;
    EXPECT_TRUE(outcome.results[1].ok);
}
