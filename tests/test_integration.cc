/**
 * @file
 * End-to-end integration tests: full SoC + workloads + governors,
 * checking the paper's headline behaviours hold in the assembled
 * system.
 */

#include <gtest/gtest.h>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/graphics.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace sysscale {
namespace {

soc::RunMetrics
measure(const workloads::WorkloadProfile &profile,
        core::Governor &governor, Watt tdp = 4.5, bool camera = false)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig(tdp));
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});
    if (camera)
        chip.isp().startCamera(io::CameraConfig{});

    workloads::ProfileAgent agent(profile);
    chip.setWorkload(&agent);
    core::GovernorHost host(governor);
    chip.pmu().setPolicy(&host);

    chip.run(200 * kTicksPerMs); // warm up
    return chip.run(kTicksPerSec);
}

TEST(Integration, SysScaleBoostsComputeBoundWorkloads)
{
    core::FixedGovernor base;
    core::SysScaleGovernor ss;
    const auto gamess = workloads::specBenchmark("416.gamess");
    const double b = measure(gamess, base).ips;
    const double s = measure(gamess, ss).ips;
    // Paper Fig. 7: highly scalable workloads gain up to 16%.
    EXPECT_GT(s / b, 1.08);
    EXPECT_LT(s / b, 1.25);
}

TEST(Integration, SysScaleNeverHurtsMemoryBoundWorkloads)
{
    core::FixedGovernor base;
    core::SysScaleGovernor ss;
    for (const char *name : {"470.lbm", "429.mcf", "436.cactusADM"}) {
        const auto w = workloads::specBenchmark(name);
        const double b = measure(w, base).ips;
        const double s = measure(w, ss).ips;
        // The predictor keeps them at the high point: within 1%.
        EXPECT_GT(s / b, 0.99) << name;
    }
}

TEST(Integration, SysScaleBeatsPriorWorkOnAverage)
{
    // Fig. 7 ordering: SysScale > CoScale-R > ~MemScale-R > base.
    double sum_ss = 0.0, sum_ms = 0.0;
    const char *names[] = {"416.gamess", "456.hmmer", "470.lbm",
                           "453.povray", "403.gcc", "433.milc"};
    for (const char *name : names) {
        const auto w = workloads::specBenchmark(name);
        core::FixedGovernor base;
        core::MemScaleGovernor ms(true);
        core::SysScaleGovernor ss;
        const double b = measure(w, base).ips;
        sum_ms += measure(w, ms).ips / b - 1.0;
        sum_ss += measure(w, ss).ips / b - 1.0;
    }
    EXPECT_GT(sum_ss, sum_ms + 0.10);
    EXPECT_GE(sum_ms, -0.02);
}

TEST(Integration, GraphicsGainComesFromRedistribution)
{
    core::FixedGovernor base;
    core::SysScaleGovernor ss;
    const auto mark06 = workloads::threeDMark06();
    const double b = measure(mark06, base).fps;
    const double s = measure(mark06, ss).fps;
    // Fig. 8: 3DMark06 improves ~8.9%.
    EXPECT_GT(s / b, 1.04);
    EXPECT_LT(s / b, 1.15);
}

TEST(Integration, BatteryWorkloadsSaveAveragePower)
{
    core::FixedGovernor base;
    core::SysScaleGovernor ss;
    const auto vp = workloads::videoPlayback();
    const double b = measure(vp, base).avgPower;
    const double s = measure(vp, ss).avgPower;
    // Fig. 9: video playback saves ~10.7% average power.
    EXPECT_LT(s / b, 0.97);
    EXPECT_GT(s / b, 0.80);
}

TEST(Integration, NoQosViolationsUnderAnyGovernor)
{
    // Mispredicting a component's demand must never break
    // isochronous QoS (Sec. 1) — the static table and iso-first
    // scheduling guarantee it.
    const auto workloads_under_test = {
        workloads::videoPlayback(), workloads::threeDMark06(),
        workloads::specBenchmark("470.lbm"),
        workloads::streamMicro()};
    for (const auto &w : workloads_under_test) {
        core::SysScaleGovernor ss;
        const soc::RunMetrics m = measure(w, ss);
        EXPECT_EQ(m.qosViolations, 0u) << w.name();
    }
}

TEST(Integration, PhasedWorkloadTriggersTransitions)
{
    // astar alternates bandwidth phases; SysScale must track them.
    core::SysScaleGovernor ss;
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(
        workloads::specBenchmark("473.astar"));
    chip.setWorkload(&agent);
    core::GovernorHost host(ss);
    chip.pmu().setPolicy(&host);
    const soc::RunMetrics m = chip.run(4 * kTicksPerSec);
    EXPECT_GE(m.transitions, 4u);
    EXPECT_GT(m.lowPointResidency, 0.2);
    EXPECT_LT(m.lowPointResidency, 0.8);
}

TEST(Integration, TransitionStallsAreNegligible)
{
    core::SysScaleGovernor ss;
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(
        workloads::specBenchmark("473.astar"));
    chip.setWorkload(&agent);
    core::GovernorHost host(ss);
    chip.pmu().setPolicy(&host);
    const soc::RunMetrics m = chip.run(4 * kTicksPerSec);
    // <10us per transition: total stall far below 0.1% of the run.
    EXPECT_LT(secondsFromTicks(m.stallTicks), 0.001 * m.seconds);
}

TEST(Integration, LowerTdpAmplifiesSysScaleBenefit)
{
    // Fig. 10: the 3.5W system gains more than the 15W system.
    const auto gamess = workloads::specBenchmark("416.gamess");
    auto gain_at = [&](Watt tdp) {
        core::FixedGovernor base;
        core::SysScaleGovernor ss;
        return measure(gamess, ss, tdp).ips /
               measure(gamess, base, tdp).ips;
    };
    const double g35 = gain_at(3.5);
    const double g15 = gain_at(15.0);
    EXPECT_GT(g35, g15);
    EXPECT_LT(g15, 1.05);
}

TEST(Integration, BatterySavingsHoldAcrossTdp)
{
    // Sec. 7.4: battery savings are TDP-insensitive (compute runs at
    // Pn regardless).
    const auto vp = workloads::videoPlayback();
    auto saving_at = [&](Watt tdp) {
        core::FixedGovernor base;
        core::SysScaleGovernor ss;
        return 1.0 - measure(vp, ss, tdp).avgPower /
                         measure(vp, base, tdp).avgPower;
    };
    const double s45 = saving_at(4.5);
    const double s15 = saving_at(15.0);
    EXPECT_NEAR(s45, s15, 0.04);
}

TEST(Integration, EnergyMeterRailsSumToTotal)
{
    core::SysScaleGovernor ss;
    const soc::RunMetrics m =
        measure(workloads::specBenchmark("400.perlbench"), ss);
    Joule sum = 0.0;
    for (Joule e : m.railEnergy)
        sum += e;
    EXPECT_NEAR(sum, m.energy, 1e-9);
    EXPECT_GT(m.railEnergy[power::railIndex(power::Rail::VCore)],
              0.0);
    EXPECT_GT(m.railEnergy[power::railIndex(power::Rail::VDDQ)],
              0.0);
}

class GovernorMatrix
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(GovernorMatrix, EveryGovernorRunsEveryClassCleanly)
{
    const auto [bench, gov_id] = GetParam();

    core::FixedGovernor fixed;
    core::MemScaleGovernor ms(true);
    core::CoScaleGovernor cs(true);
    core::SysScaleGovernor ss;
    core::Governor *gov = nullptr;
    switch (gov_id) {
      case 0: gov = &fixed; break;
      case 1: gov = &ms; break;
      case 2: gov = &cs; break;
      default: gov = &ss; break;
    }

    const soc::RunMetrics m =
        measure(workloads::specBenchmark(bench), *gov);
    EXPECT_GT(m.instructions, 0.0);
    EXPECT_GT(m.avgPower, 0.0);
    EXPECT_EQ(m.qosViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GovernorMatrix,
    ::testing::Combine(::testing::Values("400.perlbench", "470.lbm",
                                         "416.gamess", "473.astar"),
                       ::testing::Values(0, 1, 2, 3)));

} // namespace
} // namespace sysscale
