/**
 * @file
 * Unit tests for the CPU cluster, graphics engine, LLC, and C-states.
 */

#include <gtest/gtest.h>

#include "compute/cpu.hh"
#include "compute/cstates.hh"
#include "compute/gfx.hh"
#include "compute/llc.hh"
#include "power/vf_curve.hh"
#include "sim/sim_object.hh"

namespace sysscale {
namespace compute {
namespace {

power::PStateTable
coreTable()
{
    return power::PStateTable(power::skylakeCoreCurve(), 1.05e-9,
                              0.18, 50.0, 28);
}

power::PStateTable
gfxTable()
{
    return power::PStateTable(power::skylakeGfxCurve(), 1.5e-9, 0.22,
                              50.0, 28);
}

TEST(Cpu, IpcMatchesIntervalModel)
{
    Simulator sim;
    CpuCluster cpu(sim, nullptr, 2, 2, coreTable());
    cpu.setPState(power::PState{1.2 * kGHz, 0.70, 1.0});

    CoreWork w;
    w.cpiBase = 1.0;
    w.mpki = 10.0;
    w.blockingFactor = 0.5;

    // 100ns at 1.2GHz = 120 cycles; mem CPI = .01*.5*120 = 0.6.
    EXPECT_NEAR(cpu.ipcAt(w, 100.0), 1.0 / 1.6, 1e-9);
    // Ideal memory: IPC = 1/cpiBase.
    EXPECT_NEAR(cpu.ipcAt(w, 0.0), 1.0, 1e-9);
}

TEST(Cpu, MemoryLatencyHurtsBoundWorkloadsOnly)
{
    Simulator sim;
    CpuCluster cpu(sim, nullptr, 2, 2, coreTable());
    cpu.setPState(power::PState{1.2 * kGHz, 0.70, 1.0});

    CoreWork compute_bound;
    compute_bound.cpiBase = 0.6;
    compute_bound.mpki = 0.1;
    compute_bound.blockingFactor = 0.3;

    CoreWork mem_bound = compute_bound;
    mem_bound.mpki = 15.0;
    mem_bound.blockingFactor = 0.8;

    const double cb_drop = cpu.ipcAt(compute_bound, 130.0) /
                           cpu.ipcAt(compute_bound, 100.0);
    const double mb_drop = cpu.ipcAt(mem_bound, 130.0) /
                           cpu.ipcAt(mem_bound, 100.0);
    EXPECT_GT(cb_drop, 0.995); // < 0.5% loss
    EXPECT_LT(mb_drop, 0.90);  // > 10% loss
}

TEST(Cpu, BandwidthClampLimitsRetirement)
{
    Simulator sim;
    CpuCluster cpu(sim, nullptr, 2, 2, coreTable());
    cpu.setPState(power::PState{2.0 * kGHz, 0.87, 1.0});

    CoreWork w;
    w.cpiBase = 0.6;
    w.mpki = 30.0;
    w.blockingFactor = 0.35;
    w.bytesPerInstr = 40.0;

    const CoreResult full = cpu.retire(w, 90.0, 1.0, kTicksPerMs);
    const CoreResult half = cpu.retire(w, 90.0, 0.5, kTicksPerMs);
    EXPECT_TRUE(half.bandwidthLimited);
    EXPECT_NEAR(half.instructions, full.instructions * 0.5, 1e-3);
}

TEST(Cpu, RetireAccountsStallCycles)
{
    Simulator sim;
    CpuCluster cpu(sim, nullptr, 2, 2, coreTable());
    cpu.setPState(power::PState{1.0 * kGHz, 0.66, 1.0});

    CoreWork w;
    w.cpiBase = 1.0;
    w.mpki = 5.0;
    w.blockingFactor = 0.6;

    const CoreResult r = cpu.retire(w, 100.0, 1.0, kTicksPerMs);
    const double expected =
        r.instructions * 0.005 * 0.6 * 100.0 * 1e-9 * 1.0e9;
    EXPECT_NEAR(r.stallCycles, expected, expected * 1e-6);
}

TEST(Cpu, PowerGrowsWithThreadsAndSmtYieldsLess)
{
    Simulator sim;
    CpuCluster cpu(sim, nullptr, 2, 2, coreTable());
    cpu.setPState(power::PState{1.6 * kGHz, 0.78, 1.0});

    const Watt one = cpu.power(1, 0.8);
    const Watt two = cpu.power(2, 0.8);
    const Watt four = cpu.power(4, 0.8);
    EXPECT_GT(two, one);
    EXPECT_GT(four, two);
    // SMT sibling adds less than a full core.
    EXPECT_LT(four - two, two - cpu.leakage());
}

TEST(Gfx, FpsIsMinOfShaderAndBandwidth)
{
    Simulator sim;
    GfxEngine gfx(sim, nullptr, gfxTable());
    gfx.setPState(power::PState{0.9 * kGHz, 0.92, 1.0});

    GfxWork w;
    w.cyclesPerFrame = 15e6; // shader-limited at 60 fps
    w.bytesPerFrame = 100e6;

    const GfxResult roomy = gfx.render(w, 20e9, kTicksPerMs);
    EXPECT_NEAR(roomy.fps, 60.0, 1e-6);
    EXPECT_FALSE(roomy.bandwidthLimited);

    const GfxResult starved = gfx.render(w, 3e9, kTicksPerMs);
    EXPECT_NEAR(starved.fps, 30.0, 1e-6);
    EXPECT_TRUE(starved.bandwidthLimited);
}

TEST(Gfx, VsyncCapsFrameRate)
{
    Simulator sim;
    GfxEngine gfx(sim, nullptr, gfxTable());
    gfx.setPState(power::PState{1.05 * kGHz, 1.05, 1.0});

    GfxWork w;
    w.cyclesPerFrame = 5e6;
    w.targetFps = 60.0;
    EXPECT_NEAR(gfx.shaderLimitedFps(w), 60.0, 1e-9);
}

TEST(Gfx, IdleWorkDrawsLeakageOnly)
{
    Simulator sim;
    GfxEngine gfx(sim, nullptr, gfxTable());
    const GfxWork idle;
    const GfxWork busy{15e6, 100e6, 0.0, 0.8};
    EXPECT_LT(gfx.power(idle), gfx.power(busy));
}

TEST(Llc, MissScaleFollowsSquareRootRule)
{
    Simulator sim;
    Llc llc(sim, nullptr, 1 * 1024 * 1024);
    // Profile characterized at 4MB on a 1MB cache: misses x2.
    EXPECT_NEAR(llc.missScale(4 * 1024 * 1024), 2.0, 1e-9);

    Llc same(sim, nullptr, 4 * 1024 * 1024);
    EXPECT_NEAR(same.missScale(4 * 1024 * 1024), 1.0, 1e-9);
}

TEST(Llc, RecordsCounterObservables)
{
    Simulator sim;
    Llc llc(sim, nullptr, 4 * 1024 * 1024);
    llc.recordInterval(100.0, 50.0, 2000.0, 7.5);
    EXPECT_DOUBLE_EQ(llc.lastGfxMisses(), 50.0);
    EXPECT_DOUBLE_EQ(llc.lastStallCycles(), 2000.0);
    EXPECT_DOUBLE_EQ(llc.lastPendingOccupancy(), 7.5);
}

TEST(CStates, ResidencyMustSumToOne)
{
    std::array<double, kNumCStates> bad{};
    bad[cstateIndex(CState::C0)] = 0.5;
    EXPECT_DEATH(CStateResidency{bad}, "");
}

TEST(CStates, VideoPlaybackResidencyWeights)
{
    // Sec. 7.3: C0/C2/C8 = 10/5/85%; DRAM active only in C0+C2.
    std::array<double, kNumCStates> f{};
    f[cstateIndex(CState::C0)] = 0.10;
    f[cstateIndex(CState::C2)] = 0.05;
    f[cstateIndex(CState::C8)] = 0.85;
    const CStateResidency r(f);
    EXPECT_NEAR(r.dramActiveFraction(), 0.15, 1e-12);
    EXPECT_NEAR(r.activeFraction(), 0.10, 1e-12);
    EXPECT_NEAR(r.computeDynWeight(), 0.10, 1e-12);
    EXPECT_LT(r.uncoreWeight(), 0.20);
}

TEST(CStates, DeeperStatesGateMorePower)
{
    EXPECT_GT(cstateTraits(CState::C2).uncoreFactor,
              cstateTraits(CState::C6).uncoreFactor);
    EXPECT_GT(cstateTraits(CState::C6).uncoreFactor,
              cstateTraits(CState::C8).uncoreFactor);
    EXPECT_TRUE(cstateTraits(CState::C2).dramActive);
    EXPECT_FALSE(cstateTraits(CState::C8).dramActive);
}

TEST(Hdc, EngagesOnlyBelowThresholdTdp)
{
    EXPECT_DOUBLE_EQ(HardwareDutyCycle(7.0).dutyFactor(), 1.0);
    EXPECT_DOUBLE_EQ(HardwareDutyCycle(15.0).dutyFactor(), 1.0);
    const double duty35 = HardwareDutyCycle(3.5).dutyFactor();
    EXPECT_LT(duty35, 1.0);
    EXPECT_GE(duty35, HardwareDutyCycle::kMinDuty);
    EXPECT_LT(HardwareDutyCycle(3.5).dutyFactor(),
              HardwareDutyCycle(4.5).dutyFactor());
}

} // namespace
} // namespace compute
} // namespace sysscale
