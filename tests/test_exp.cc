/**
 * @file
 * Experiment-runner subsystem tests: grid expansion, the governor
 * registry, parallel-vs-serial determinism, failure isolation, and
 * result serialization.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "bench/harness.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "workloads/micro.hh"

using namespace sysscale;

namespace {

/** Small, fast grid shared by the determinism tests. */
exp::GridSpec
smallGrid()
{
    exp::GridSpec grid;
    grid.workloads = {workloads::streamMicro(),
                      workloads::spinMicro()};
    grid.governors = {"fixed", "sysscale"};
    grid.tdps = {3.5, 4.5};
    grid.seeds = {1, 7};
    grid.warmup = 10 * kTicksPerMs;
    grid.window = 60 * kTicksPerMs;
    return grid;
}

/** Serialize a result with the host-timing column neutralized. */
std::string
stableRow(exp::RunResult res)
{
    res.hostSeconds = 0.0;
    return exp::csvRow(res);
}

} // anonymous namespace

TEST(GovernorRegistry, AllNamesResolve)
{
    for (const auto &name : exp::governorNames()) {
        EXPECT_TRUE(exp::isGovernorName(name)) << name;
        EXPECT_NO_THROW((void)exp::governorFactory(name)) << name;
    }
}

TEST(GovernorRegistry, FactoriesProduceFreshInstances)
{
    const auto factory = exp::governorFactory("sysscale");
    const auto a = factory();
    const auto b = factory();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_STREQ(a->name(), "sysscale");
}

TEST(GovernorRegistry, CollectProducesNoGovernor)
{
    EXPECT_EQ(exp::governorFactory("collect")(), nullptr);
    EXPECT_EQ(exp::governorFactory("")(), nullptr);
}

TEST(GovernorRegistry, UnknownNameThrows)
{
    EXPECT_FALSE(exp::isGovernorName("turbo9000"));
    EXPECT_THROW((void)exp::governorFactory("turbo9000"),
                 std::invalid_argument);
}

TEST(GridExpansion, CrossProductSizeAndUniqueIds)
{
    const auto specs = exp::expandGrid(smallGrid());
    EXPECT_EQ(specs.size(), 2u * 2u * 2u * 2u);

    std::set<std::string> ids;
    for (const auto &spec : specs)
        ids.insert(spec.id);
    EXPECT_EQ(ids.size(), specs.size());
}

TEST(GridExpansion, CellsInheritSharedSettings)
{
    exp::GridSpec grid = smallGrid();
    grid.camera = true;
    const auto specs = exp::expandGrid(grid);
    for (const auto &spec : specs) {
        EXPECT_EQ(spec.warmup, grid.warmup);
        EXPECT_EQ(spec.window, grid.window);
        EXPECT_TRUE(spec.camera);
        EXPECT_EQ(spec.labels.size(), 4u);
    }
}

TEST(GridExpansion, TdpAxisLandsInSocConfig)
{
    const auto specs = exp::expandGrid(smallGrid());
    std::set<double> tdps;
    for (const auto &spec : specs)
        tdps.insert(spec.soc.tdp);
    EXPECT_EQ(tdps, (std::set<double>{3.5, 4.5}));
}

TEST(SpecValidation, RejectsBadCells)
{
    exp::ExperimentSpec spec;
    spec.workload = workloads::streamMicro();
    EXPECT_NO_THROW(exp::validateSpec(spec));

    exp::ExperimentSpec no_workload = spec;
    no_workload.workload = workloads::WorkloadProfile();
    EXPECT_THROW(exp::validateSpec(no_workload),
                 std::invalid_argument);

    exp::ExperimentSpec no_window = spec;
    no_window.window = 0;
    EXPECT_THROW(exp::validateSpec(no_window), std::invalid_argument);

    exp::ExperimentSpec bad_gov = spec;
    bad_gov.governor = "turbo9000";
    EXPECT_THROW(exp::validateSpec(bad_gov), std::invalid_argument);

    exp::ExperimentSpec bad_tdp = spec;
    bad_tdp.soc.tdp = -1.0;
    EXPECT_THROW(exp::validateSpec(bad_tdp), std::invalid_argument);

    // TDP below the PBM reserve would otherwise reach the fatal
    // (process-exiting) SocConfig::validate() from a worker thread.
    exp::ExperimentSpec tiny_tdp = spec;
    tiny_tdp.soc.tdp = 0.2;
    EXPECT_THROW(exp::validateSpec(tiny_tdp), std::invalid_argument);

    exp::ExperimentSpec bad_cadence = spec;
    bad_cadence.soc.sampleInterval = 3 * kTicksPerUs;
    EXPECT_THROW(exp::validateSpec(bad_cadence),
                 std::invalid_argument);
}

TEST(SpecValidation, SubReserveTdpCellFailsWithoutKillingGrid)
{
    exp::GridSpec grid;
    grid.workloads = {workloads::spinMicro()};
    grid.governors = {"fixed"};
    grid.tdps = {0.2, 4.5};
    grid.warmup = 5 * kTicksPerMs;
    grid.window = 30 * kTicksPerMs;

    exp::RunnerOptions opts;
    opts.jobs = 2;
    const auto results =
        exp::ExperimentRunner(opts).run(exp::expandGrid(grid));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("reserve"), std::string::npos);
    EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(RunCell, ProducesMetricsAndCounters)
{
    exp::ExperimentSpec spec;
    spec.id = "unit";
    spec.workload = workloads::streamMicro();
    spec.governor = "collect";
    spec.warmup = 10 * kTicksPerMs;
    spec.window = 60 * kTicksPerMs;

    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.id, "unit");
    EXPECT_EQ(res.workload, "stream");
    EXPECT_GT(res.metrics.ips, 0.0);
    EXPECT_GT(res.metrics.avgPower, 0.0);
    EXPECT_GT(res.hostSeconds, 0.0);
    // The collect policy accumulated real counter traffic.
    EXPECT_GT(res.counters[soc::Counter::LlcStalls], 0.0);
}

TEST(RunCell, BadSpecBecomesErrorResultNotThrow)
{
    exp::ExperimentSpec spec;
    spec.id = "broken";
    spec.window = 0;

    exp::RunResult res;
    EXPECT_NO_THROW(res = exp::runCell(spec));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("broken"), std::string::npos);
}

TEST(RunCell, MatchesBenchHarness)
{
    const auto w = workloads::streamMicro();
    bench::RunConfig rc;
    rc.warmup = 10 * kTicksPerMs;
    rc.window = 60 * kTicksPerMs;

    core::SysScaleGovernor gov;
    core::GovernorHost host(gov);
    const auto outcome = bench::runExperiment(w, &host, rc);

    exp::ExperimentSpec spec = bench::makeSpec(w, rc);
    spec.governor = "sysscale";
    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok) << res.error;

    EXPECT_EQ(res.metrics.ips, outcome.metrics.ips);
    EXPECT_EQ(res.metrics.energy, outcome.metrics.energy);
    EXPECT_EQ(res.metrics.transitions, outcome.metrics.transitions);
}

TEST(Runner, ParallelGridIsByteIdenticalToSerial)
{
    const auto specs = exp::expandGrid(smallGrid());

    exp::RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    const auto serial = exp::ExperimentRunner(serial_opts).run(specs);

    exp::RunnerOptions parallel_opts;
    parallel_opts.jobs = 4;
    const auto parallel =
        exp::ExperimentRunner(parallel_opts).run(specs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        // Byte-identical serialized rows (host timing neutralized;
        // everything else, including every double, must match to
        // the last bit for "%.17g" round-trip formatting to agree).
        EXPECT_EQ(stableRow(serial[i]), stableRow(parallel[i]))
            << specs[i].id;
    }
}

TEST(Runner, AdaptiveGovernorIsByteIdenticalAcrossJobCounts)
{
    // The online-adaptive governor mutates per-instance state every
    // evaluation window, which makes it the sharpest probe for
    // cross-cell state leaks: if two cells ever shared an instance,
    // the learned thresholds (and so the results) would depend on
    // which worker thread ran which cell in what order.
    exp::GridSpec grid;
    grid.workloads = {workloads::streamMicro(),
                      workloads::pointerChaseMicro(),
                      workloads::spinMicro()};
    grid.governors = {"adaptive", "adaptive:min-samples=2"};
    grid.seeds = {1, 7};
    grid.warmup = 10 * kTicksPerMs;
    grid.window = 90 * kTicksPerMs;
    const auto specs = exp::expandGrid(grid);

    exp::RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    const auto serial = exp::ExperimentRunner(serial_opts).run(specs);

    exp::RunnerOptions parallel_opts;
    parallel_opts.jobs = 4;
    const auto parallel =
        exp::ExperimentRunner(parallel_opts).run(specs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        EXPECT_EQ(stableRow(serial[i]), stableRow(parallel[i]))
            << specs[i].id;
    }
}

TEST(Runner, RepeatedParallelRunsAreIdentical)
{
    const auto specs = exp::expandGrid(smallGrid());
    exp::RunnerOptions opts;
    opts.jobs = 3;
    const exp::ExperimentRunner runner(opts);
    const auto a = runner.run(specs);
    const auto b = runner.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(stableRow(a[i]), stableRow(b[i]));
}

TEST(Runner, FailingCellDoesNotPoisonSiblings)
{
    auto specs = exp::expandGrid(smallGrid());
    ASSERT_GE(specs.size(), 3u);

    // Reference run of the healthy specs.
    exp::RunnerOptions opts;
    opts.jobs = 4;
    const auto reference = exp::ExperimentRunner(opts).run(specs);

    // Poison two cells in different ways: a throwing governor
    // factory and an invalid spec.
    const std::size_t bad_a = 1, bad_b = specs.size() - 1;
    specs[bad_a].governorFactory =
        []() -> std::unique_ptr<soc::PmuPolicy> {
        throw std::runtime_error("factory exploded");
    };
    specs[bad_b].window = 0;

    const auto results = exp::ExperimentRunner(opts).run(specs);
    ASSERT_EQ(results.size(), specs.size());

    EXPECT_FALSE(results[bad_a].ok);
    EXPECT_NE(results[bad_a].error.find("factory exploded"),
              std::string::npos);
    EXPECT_FALSE(results[bad_b].ok);

    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == bad_a || i == bad_b)
            continue;
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(stableRow(results[i]), stableRow(reference[i]));
    }
}

TEST(Runner, ProgressCallbackSeesEveryCell)
{
    const auto specs = exp::expandGrid(smallGrid());
    std::size_t calls = 0;
    std::size_t last_done = 0;
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.onResult = [&](const exp::RunResult &, std::size_t done,
                        std::size_t total) {
        ++calls;
        EXPECT_EQ(total, specs.size());
        EXPECT_GE(done, 1u);
        last_done = std::max(last_done, done);
    };
    (void)exp::ExperimentRunner(opts).run(specs);
    EXPECT_EQ(calls, specs.size());
    EXPECT_EQ(last_done, specs.size());
}

TEST(Runner, BorrowedPolicyRequiresSerialExecution)
{
    core::FixedGovernor gov;
    core::GovernorHost host(gov);
    exp::ExperimentSpec spec;
    spec.id = "borrowed";
    spec.workload = workloads::spinMicro();
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    spec.borrowedPolicy = &host;

    std::vector<exp::ExperimentSpec> specs(2, spec);

    exp::RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    for (const auto &res :
         exp::ExperimentRunner(serial_opts).run(specs))
        EXPECT_TRUE(res.ok) << res.error;

    exp::RunnerOptions parallel_opts;
    parallel_opts.jobs = 2;
    for (const auto &res :
         exp::ExperimentRunner(parallel_opts).run(specs)) {
        EXPECT_FALSE(res.ok);
        EXPECT_NE(res.error.find("jobs == 1"), std::string::npos);
    }
}

TEST(Runner, JobsClampToCellCount)
{
    exp::RunnerOptions opts;
    opts.jobs = 64;
    const exp::ExperimentRunner runner(opts);
    EXPECT_EQ(runner.jobsFor(3), 3u);
    EXPECT_EQ(runner.jobsFor(100), 64u);
    EXPECT_GE(exp::ExperimentRunner().jobsFor(8), 1u);
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    exp::ExperimentSpec spec;
    spec.id = "csv";
    spec.workload = workloads::spinMicro();
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    spec.labels = {{"governor", "fixed"}, {"tdp", "4.5W"}};
    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok) << res.error;

    // Quoted fields in the row contain no embedded commas here, so
    // comma counting is a valid arity check.
    const std::string header = exp::csvHeader();
    const std::string row = exp::csvRow(res);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
}

TEST(Report, CsvEscapesQuotes)
{
    exp::RunResult res;
    res.id = "he said \"hi\"";
    const std::string row = exp::csvRow(res);
    EXPECT_NE(row.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Report, JsonIsStructurallySound)
{
    exp::ExperimentSpec spec;
    spec.id = "json \"quoted\"";
    spec.workload = workloads::spinMicro();
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    spec.labels = {{"k", "v"}};
    const exp::RunResult res = exp::runCell(spec);
    ASSERT_TRUE(res.ok) << res.error;

    std::ostringstream os;
    exp::writeJson(os, {res, res});
    const std::string doc = os.str();

    // Balanced braces/brackets outside of strings.
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : doc) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
    EXPECT_NE(doc.find("\"json \\\"quoted\\\"\""),
              std::string::npos);
}

TEST(GridExpansion, ScenarioAxisExpandsInnermost)
{
    exp::GridSpec grid = smallGrid();
    grid.scenarios = {
        {"none", workloads::scenarioByName("none")},
        {"thermal-step", workloads::scenarioByName("thermal-step")},
    };
    const auto specs = exp::expandGrid(grid);
    ASSERT_EQ(specs.size(), 2u * 2u * 2u * 2u * 2u);

    // The scenario axis is innermost: cells alternate between the
    // two values, and every cell — the explicit "none" included —
    // carries the scenario label and id suffix.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const exp::ExperimentSpec &spec = specs[i];
        const std::string &name = grid.scenarios[i % 2].name;
        EXPECT_EQ(spec.id.substr(spec.id.rfind('/') + 1), name);
        ASSERT_EQ(spec.labels.size(), 5u);
        EXPECT_EQ(spec.labels.back().first, "scenario");
        EXPECT_EQ(spec.labels.back().second, name);
        EXPECT_TRUE(spec.scenario ==
                    grid.scenarios[i % 2].scenario);
    }

    std::set<std::string> ids;
    for (const auto &spec : specs)
        ids.insert(spec.id);
    EXPECT_EQ(ids.size(), specs.size());
}

TEST(GridExpansion, ScenarioAxisOverridesSingleScenario)
{
    // With an explicit axis, the legacy single-scenario fields are
    // ignored; without one they behave exactly as before.
    exp::GridSpec grid = smallGrid();
    grid.scenario = workloads::scenarioByName("thermal-step");
    grid.scenarioName = "thermal-step";
    grid.scenarios = {{"none", workloads::Scenario{}}};
    for (const auto &spec : exp::expandGrid(grid))
        EXPECT_TRUE(spec.scenario.empty());

    exp::GridSpec legacy = smallGrid();
    legacy.scenario = workloads::scenarioByName("thermal-step");
    legacy.scenarioName = "thermal-step";
    for (const auto &spec : exp::expandGrid(legacy)) {
        EXPECT_EQ(spec.id.substr(spec.id.rfind('/') + 1),
                  "thermal-step");
        ASSERT_EQ(spec.labels.size(), 5u);
        EXPECT_EQ(spec.labels.back().second, "thermal-step");
    }

    // Scenario-less grids keep their pre-axis ids and labels.
    for (const auto &spec : exp::expandGrid(smallGrid())) {
        EXPECT_EQ(spec.labels.size(), 4u);
        EXPECT_EQ(spec.id.find("none"), std::string::npos);
    }
}

TEST(SpecValidation, RejectsOverCapacityScenarioCompositions)
{
    // stream pins all 4 hardware threads; overlaying app-switch's
    // browser (2 more) would trip the CPU model's process-fatal
    // assert — the cell must fail loudly as an error row instead.
    exp::ExperimentSpec spec;
    spec.id = "over-capacity";
    spec.workload = workloads::streamMicro();
    spec.scenario = workloads::scenarioByName("app-switch");
    spec.warmup = 5 * kTicksPerMs;
    spec.window = 30 * kTicksPerMs;
    const exp::RunResult res = exp::runCell(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("concurrent threads"),
              std::string::npos)
        << res.error;

    // A one-thread base under the same scenario fits and runs.
    exp::ExperimentSpec fits = spec;
    fits.id = "fits";
    fits.workload = workloads::pointerChaseMicro();
    const exp::RunResult ok = exp::runCell(fits);
    EXPECT_TRUE(ok.ok) << ok.error;

    // The guard covers scenario-less cells too: a base workload
    // wider than the machine is the same process-fatal assert.
    workloads::Phase wide;
    wide.duration = 10 * kTicksPerMs;
    wide.work.cpiBase = 1.0;
    wide.activeThreads = 8;
    exp::ExperimentSpec base_only;
    base_only.id = "too-wide-base";
    base_only.workload = workloads::WorkloadProfile(
        "too-wide", workloads::WorkloadClass::Micro, {wide});
    base_only.warmup = 5 * kTicksPerMs;
    base_only.window = 30 * kTicksPerMs;
    const exp::RunResult rej = exp::runCell(base_only);
    EXPECT_FALSE(rej.ok);
    EXPECT_NE(rej.error.find("concurrent threads"),
              std::string::npos)
        << rej.error;
}
