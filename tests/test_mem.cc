/**
 * @file
 * Unit tests for the MRC store, DDRIO, and memory controller.
 */

#include <gtest/gtest.h>

#include "dram/device.hh"
#include "mem/controller.hh"
#include "mem/ddrio.hh"
#include "mem/mrc.hh"
#include "sim/sim_object.hh"

namespace sysscale {
namespace mem {
namespace {

TEST(Mrc, FitsSramBudget)
{
    // Paper Sec. 5: ~0.5KB of SRAM for all per-bin register images.
    const MrcStore store(dram::lpddr3Spec());
    EXPECT_EQ(store.numSets(), 3u);
    EXPECT_LE(store.sramBytes(), MrcStore::kSramBudgetBytes);
}

TEST(Mrc, LoadLatencyUnderOneMicrosecond)
{
    const MrcStore store(dram::lpddr3Spec());
    EXPECT_LT(store.loadLatency(), 1 * kTicksPerUs);
}

TEST(Mrc, OptimizedSetsAreTrained)
{
    const MrcStore store(dram::lpddr3Spec());
    for (std::size_t i = 0; i < store.numSets(); ++i) {
        const MrcRegisterSet &set = store.optimizedSet(i);
        EXPECT_TRUE(set.optimized());
        EXPECT_DOUBLE_EQ(set.terminationFactor, 1.0);
        EXPECT_DOUBLE_EQ(set.latencyAdderNs, 0.0);
    }
}

TEST(Mrc, CrossBinSetCarriesFig4Penalties)
{
    const MrcStore store(dram::lpddr3Spec());
    const MrcRegisterSet cross = store.crossBinSet(0, 1);
    EXPECT_FALSE(cross.optimized());
    EXPECT_LT(cross.interfaceEfficiency,
              store.optimizedSet(1).interfaceEfficiency);
    EXPECT_GT(cross.terminationFactor, 1.0);
    EXPECT_GT(cross.latencyAdderNs, 0.0);
    EXPECT_GT(cross.ddrioActivityFactor, 1.0);
}

TEST(Mrc, CrossBinSameBinIsOptimized)
{
    const MrcStore store(dram::lpddr3Spec());
    const MrcRegisterSet same = store.crossBinSet(1, 1);
    EXPECT_TRUE(same.optimized());
}

TEST(Ddrio, PowerScalesWithVoltageSquared)
{
    Ddrio lo(dram::lpddr3Spec(), 0.85);
    Ddrio hi(dram::lpddr3Spec(), 1.00);
    EXPECT_GT(hi.digitalPower(0.5), lo.digitalPower(0.5));
}

TEST(Ddrio, PowerScalesWithBin)
{
    Ddrio d(dram::lpddr3Spec(), 1.0);
    const Watt hi = d.digitalPower(0.5);
    d.setBin(1);
    EXPECT_LT(d.digitalPower(0.5), hi);
}

TEST(Ddrio, UnoptimizedActivityRaisesPower)
{
    Ddrio d(dram::lpddr3Spec(), 1.0);
    EXPECT_GT(d.digitalPower(0.5, 1.35), d.digitalPower(0.5, 1.0));
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : sim_(), dev_(sim_, nullptr, dram::lpddr3Spec()),
          mrc_(dram::lpddr3Spec()),
          mc_(sim_, nullptr, dev_, mrc_, 0.80)
    {
    }

    Simulator sim_;
    dram::DramDevice dev_;
    MrcStore mrc_;
    MemoryController mc_;
};

TEST_F(ControllerTest, CapacityIsEfficiencyScaledPeak)
{
    EXPECT_NEAR(mc_.capacity(), 25.6e9 * 0.90, 1e6);
}

TEST_F(ControllerTest, LoadedLatencyMonotonicInUtilization)
{
    double prev = mc_.loadedLatencyAt(0.0);
    for (double rho = 0.1; rho <= 0.9; rho += 0.1) {
        const double lat = mc_.loadedLatencyAt(rho);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
    // Near saturation the queue dominates the base latency.
    EXPECT_GT(mc_.loadedLatencyAt(0.95), 2.0 * mc_.baseLatencyNs());
}

TEST_F(ControllerTest, IsochronousServedFirst)
{
    MemDemand d;
    d.ioIso = 10e9;
    d.cpuRead = 30e9; // oversubscribes the interface
    const MemServiceResult r = mc_.service(d, kTicksPerMs);
    EXPECT_NEAR(r.achievedIso, 10e9, 1.0);
    EXPECT_LT(r.achievedCpuRead, d.cpuRead);
    EXPECT_FALSE(r.qosViolation);
}

TEST_F(ControllerTest, QosViolationWhenIsoExceedsCapacity)
{
    MemDemand d;
    d.ioIso = 30e9; // above the 23 GB/s trained capacity
    const MemServiceResult r = mc_.service(d, kTicksPerMs);
    EXPECT_TRUE(r.qosViolation);
}

TEST_F(ControllerTest, ProportionalSharingUnderPressure)
{
    MemDemand d;
    d.cpuRead = 20e9;
    d.gfx = 10e9;
    const MemServiceResult r = mc_.service(d, kTicksPerMs);
    // 30 GB/s demanded over ~23 GB/s capacity: both clamp by the
    // same ratio.
    const double ratio_cpu = r.achievedCpuRead / d.cpuRead;
    const double ratio_gfx = r.achievedGfx / d.gfx;
    EXPECT_NEAR(ratio_cpu, ratio_gfx, 1e-9);
    EXPECT_LT(ratio_cpu, 1.0);
}

TEST_F(ControllerTest, OccupancyFollowsLittlesLaw)
{
    MemDemand d;
    d.cpuRead = 6.4e9; // 100M lines/s
    const MemServiceResult r = mc_.service(d, kTicksPerMs);
    const double expected =
        d.cpuRead / 64.0 * r.loadedLatencyNs * 1e-9;
    EXPECT_NEAR(r.readPendingOccupancy, expected, 1e-6);
}

TEST_F(ControllerTest, BlockAndDrainBoundedUnder2us)
{
    const Tick drain = mc_.blockAndDrain();
    EXPECT_LT(drain, 2 * kTicksPerUs);
    EXPECT_TRUE(mc_.blocked());
    mc_.release();
    EXPECT_FALSE(mc_.blocked());
}

TEST_F(ControllerTest, ServiceWhileBlockedPanics)
{
    mc_.blockAndDrain();
    MemDemand d;
    EXPECT_DEATH(mc_.service(d, kTicksPerMs), "");
}

TEST_F(ControllerTest, ProgrammingRequiresBlockAndSelfRefresh)
{
    const MrcRegisterSet set = mrc_.optimizedSet(1);
    EXPECT_DEATH(mc_.programRegisters(set), "");
}

TEST_F(ControllerTest, ReprogrammingMovesBinAndCapacity)
{
    mc_.blockAndDrain();
    dev_.enterSelfRefresh();
    dev_.setBin(1);
    mc_.programRegisters(mrc_.optimizedSet(1));
    dev_.exitSelfRefresh(true);
    mc_.release();

    EXPECT_EQ(mc_.binIndex(), 1u);
    EXPECT_NEAR(mc_.capacity(), 1066.0 * 1e6 * 16.0 * 0.90, 1e6);
    EXPECT_DOUBLE_EQ(mc_.clock(), 533.0 * kMHz);
}

TEST_F(ControllerTest, UnoptimizedRegistersShrinkCapacity)
{
    mc_.blockAndDrain();
    dev_.enterSelfRefresh();
    dev_.setBin(1);
    mc_.programRegisters(mrc_.crossBinSet(0, 1));
    dev_.exitSelfRefresh(false);
    mc_.release();

    const BytesPerSec trained = 1066.0 * 1e6 * 16.0 * 0.90;
    EXPECT_LT(mc_.capacity(), trained);
    EXPECT_GT(mc_.baseLatencyNs(), 0.0);
}

TEST_F(ControllerTest, PowerDropsWithVoltageAndClock)
{
    const Watt hi = mc_.controllerPower(0.5);
    mc_.setVsa(0.68);
    const Watt lower_v = mc_.controllerPower(0.5);
    EXPECT_LT(lower_v, hi);

    EXPECT_LT(MemoryController::powerAt(0.68, 533 * kMHz, 0.5),
              MemoryController::powerAt(0.80, 800 * kMHz, 0.5));
}

} // namespace
} // namespace mem
} // namespace sysscale
