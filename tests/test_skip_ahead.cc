/**
 * @file
 * Skip-ahead equivalence battery.
 *
 * The constant-step replay path (Soc skip-ahead) is a pure
 * performance optimization: every observable output — CSV/JSON
 * reports, run metrics, counter snapshots, scripted-mutation timing —
 * must be byte-identical with the optimization on and off. These
 * tests pin that contract on the paper-shaped workloads where
 * skip-ahead actually engages (the Fig. 9 battery-life suite, whose
 * profiles are 60-90% idle) plus a mid-idle ScenarioScript mutation,
 * and assert the fast path really ran (replayedStepCount() > 0) so a
 * regression that silently disables it cannot pass as "equivalent".
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "compute/cstates.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "io/display.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/profile.hh"
#include "workloads/scenario.hh"

using namespace sysscale;

namespace {

/** Scoped override of the process-wide skip-ahead default. */
class SkipAheadGuard
{
  public:
    explicit SkipAheadGuard(bool on)
        : prev_(soc::Soc::skipAheadDefault())
    {
        soc::Soc::setSkipAheadDefault(on);
    }

    ~SkipAheadGuard() { soc::Soc::setSkipAheadDefault(prev_); }

  private:
    bool prev_;
};

/**
 * Run @p specs serially through exp::runCell() and render the full
 * result set exactly as sweep_grid would: CSV then JSON. Any byte of
 * divergence between two calls fails the comparison. hostSeconds is
 * host wall-clock — the one field that legitimately changes with the
 * optimization (that is the point of it) — so it is zeroed out.
 */
std::string
renderCells(const std::vector<exp::ExperimentSpec> &specs)
{
    std::vector<exp::RunResult> results;
    for (const auto &spec : specs) {
        results.push_back(exp::runCell(spec));
        EXPECT_TRUE(results.back().ok) << results.back().error;
        results.back().hostSeconds = 0.0;
    }
    std::ostringstream os;
    exp::writeCsv(os, results);
    exp::writeJson(os, results);
    return os.str();
}

/** Fig. 9-class cells: battery suite x {fixed, sysscale}. */
std::vector<exp::ExperimentSpec>
fig9Cells()
{
    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : workloads::batterySuite()) {
        for (const char *gov : {"fixed", "sysscale"}) {
            exp::ExperimentSpec spec;
            spec.id = w.name() + "/" + gov;
            spec.workload = w;
            spec.governor = gov;
            spec.camera = w.name() == "video-conferencing";
            spec.warmup = 50 * kTicksPerMs;
            spec.window = 250 * kTicksPerMs;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

/** A mostly-idle single-phase profile (standby-like). */
workloads::WorkloadProfile
standbyProfile()
{
    workloads::Phase p;
    p.duration = kTicksPerSec;
    p.work.cpiBase = 1.0;
    p.residency = compute::CStateResidency({0.05, 0.0, 0.0, 0.0, 0.95});
    p.coreFreqRequest = workloads::kBatteryCoreFreq;
    return workloads::WorkloadProfile("standby", workloads::WorkloadClass::Micro,
                                      {p});
}

} // anonymous namespace

TEST(SkipAhead, Fig9BatteryCellsByteIdentical)
{
    std::string on, off;
    {
        SkipAheadGuard guard(true);
        on = renderCells(fig9Cells());
    }
    {
        SkipAheadGuard guard(false);
        off = renderCells(fig9Cells());
    }
    EXPECT_EQ(on, off);
}

TEST(SkipAhead, VideoconfScenarioByteIdentical)
{
    // The registered "videoconf" scenario: call layer + camera/display
    // actions on top of a base workload — exercises skip-ahead
    // invalidation across CompositeAgent arrivals and scripted SoC
    // mutations.
    std::vector<exp::ExperimentSpec> specs;
    exp::ExperimentSpec spec;
    spec.id = "web-browsing/videoconf";
    spec.workload = workloads::webBrowsing();
    spec.scenario = workloads::scenarioByName("videoconf");
    spec.governor = "sysscale";
    spec.warmup = 50 * kTicksPerMs;
    spec.window = 400 * kTicksPerMs;
    specs.push_back(std::move(spec));

    std::string on, off;
    {
        SkipAheadGuard guard(true);
        on = renderCells(specs);
    }
    {
        SkipAheadGuard guard(false);
        off = renderCells(specs);
    }
    EXPECT_EQ(on, off);
}

TEST(SkipAhead, FastPathEngagesOnIdleHeavyRuns)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    workloads::ProfileAgent agent(standbyProfile());
    chip.setWorkload(&agent);
    chip.setSkipAhead(true);

    chip.run(200 * kTicksPerMs);
    EXPECT_GT(chip.replayedStepCount(), 0u);

    // Disabled: the replay counter must stay frozen.
    const std::uint64_t replayed = chip.replayedStepCount();
    chip.setSkipAhead(false);
    chip.run(100 * kTicksPerMs);
    EXPECT_EQ(chip.replayedStepCount(), replayed);
}

TEST(SkipAhead, MidIdleTdpStepFiresAtExactTick)
{
    // A TDP step scheduled mid-standby, off the step grid: the script
    // event must fire at exactly its tick in both modes, with the
    // same observable SoC state before and after.
    const Tick at = 100 * kTicksPerMs + 37;

    for (const bool skip : {true, false}) {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig(4.5));
        workloads::ProfileAgent agent(standbyProfile());
        chip.setWorkload(&agent);
        chip.setSkipAhead(skip);

        workloads::ScenarioScript script(
            sim, chip,
            {{at, workloads::ScenarioActionKind::SetTdp, 3.0}});

        chip.run(at - 1); // one tick short of the action
        EXPECT_EQ(sim.now(), at - 1) << "skip=" << skip;
        EXPECT_EQ(script.applied(), 0u) << "skip=" << skip;
        EXPECT_DOUBLE_EQ(chip.config().tdp, 4.5) << "skip=" << skip;

        chip.run(1); // lands exactly on the action tick
        EXPECT_EQ(sim.now(), at) << "skip=" << skip;
        EXPECT_EQ(script.applied(), 1u) << "skip=" << skip;
        EXPECT_DOUBLE_EQ(chip.config().tdp, 3.0) << "skip=" << skip;

        if (skip) { // the idle lead-in must have used the fast path
            EXPECT_GT(chip.replayedStepCount(), 0u);
        }
    }
}

TEST(SkipAhead, MetricsBitIdenticalAcrossModes)
{
    // Direct-run variant of the report comparison: every RunMetrics
    // field the reports derive from must be bitwise equal.
    auto measure = [](bool skip) {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        chip.display().attachPanel(
            0, io::PanelConfig{io::PanelResolution::HD, 60.0, 4});
        workloads::ProfileAgent agent(workloads::videoPlayback());
        chip.setWorkload(&agent);
        chip.setSkipAhead(skip);
        chip.run(100 * kTicksPerMs);
        return chip.run(300 * kTicksPerMs);
    };

    const soc::RunMetrics on = measure(true);
    const soc::RunMetrics off = measure(false);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_EQ(on.frames, off.frames);
    EXPECT_EQ(on.avgPower, off.avgPower);
    EXPECT_EQ(on.energy, off.energy);
    EXPECT_EQ(on.avgMemLatencyNs, off.avgMemLatencyNs);
    EXPECT_EQ(on.avgMemBandwidth, off.avgMemBandwidth);
    for (power::Rail r : power::kAllRails)
        EXPECT_EQ(on.railEnergy[power::railIndex(r)],
                  off.railEnergy[power::railIndex(r)]);
}
