/**
 * @file
 * Skip-ahead equivalence battery.
 *
 * The constant-step replay path (Soc skip-ahead) is a pure
 * performance optimization: every observable output — CSV/JSON
 * reports, run metrics, counter snapshots, scripted-mutation timing —
 * must be byte-identical with the optimization on and off. These
 * tests pin that contract on the paper-shaped workloads where
 * skip-ahead actually engages (the Fig. 9 battery-life suite, whose
 * profiles are 60-90% idle) plus a mid-idle ScenarioScript mutation,
 * and assert the fast path really ran (replayedStepCount() > 0) so a
 * regression that silently disables it cannot pass as "equivalent".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "compute/cstates.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "io/display.hh"
#include "sim/sim_object.hh"
#include "sim/snapshot.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/profile.hh"
#include "workloads/scenario.hh"

using namespace sysscale;

namespace {

/** Scoped override of the process-wide skip-ahead default. */
class SkipAheadGuard
{
  public:
    explicit SkipAheadGuard(bool on)
        : prev_(soc::Soc::skipAheadDefault())
    {
        soc::Soc::setSkipAheadDefault(on);
    }

    ~SkipAheadGuard() { soc::Soc::setSkipAheadDefault(prev_); }

  private:
    bool prev_;
};

/**
 * Run @p specs serially through exp::runCell() and render the full
 * result set exactly as sweep_grid would: CSV then JSON. Any byte of
 * divergence between two calls fails the comparison. hostSeconds is
 * host wall-clock — the one field that legitimately changes with the
 * optimization (that is the point of it) — so it is zeroed out.
 */
std::string
renderCells(const std::vector<exp::ExperimentSpec> &specs)
{
    std::vector<exp::RunResult> results;
    for (const auto &spec : specs) {
        results.push_back(exp::runCell(spec));
        EXPECT_TRUE(results.back().ok) << results.back().error;
        results.back().hostSeconds = 0.0;
    }
    std::ostringstream os;
    exp::writeCsv(os, results);
    exp::writeJson(os, results);
    return os.str();
}

/** Fig. 9-class cells: battery suite x {fixed, sysscale}. */
std::vector<exp::ExperimentSpec>
fig9Cells()
{
    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : workloads::batterySuite()) {
        for (const char *gov : {"fixed", "sysscale"}) {
            exp::ExperimentSpec spec;
            spec.id = w.name() + "/" + gov;
            spec.workload = w;
            spec.governor = gov;
            spec.camera = w.name() == "video-conferencing";
            spec.warmup = 50 * kTicksPerMs;
            spec.window = 250 * kTicksPerMs;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

/** A mostly-idle single-phase profile (standby-like). */
workloads::WorkloadProfile
standbyProfile()
{
    workloads::Phase p;
    p.duration = kTicksPerSec;
    p.work.cpiBase = 1.0;
    p.residency = compute::CStateResidency({0.05, 0.0, 0.0, 0.0, 0.95});
    p.coreFreqRequest = workloads::kBatteryCoreFreq;
    return workloads::WorkloadProfile("standby", workloads::WorkloadClass::Micro,
                                      {p});
}

/** Fresh per-test directory under the system tmp. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("sysscale-skip-test-" + tag + "-" +
                  std::to_string(::getpid())))
                    .string())
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A standby cell long enough for replay batches to form. */
exp::ExperimentSpec
standbySpec()
{
    exp::ExperimentSpec spec;
    spec.id = "standby/checkpoint";
    spec.workload = standbyProfile();
    spec.governor = "sysscale";
    spec.warmup = 10 * kTicksPerMs;
    spec.window = 120 * kTicksPerMs;
    return spec;
}

/**
 * The replayed_steps scalar from a RunResult stats dump
 * ("<path>.replayed_steps <value> # desc"). -1 when absent.
 */
double
replayedFromDump(const std::string &dump)
{
    const std::string needle = ".replayed_steps ";
    const std::size_t at = dump.find(needle);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(dump.c_str() + at + needle.size(), nullptr);
}

/**
 * The replayed_steps scalar out of a snapshot text — stats doubles
 * are serialized as 16-hex bit patterns under
 * "stats...replayed_steps.value". -1 when absent.
 */
double
replayedFromSnapshot(const std::string &text)
{
    const std::string needle = ".replayed_steps.value = ";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return -1.0;
    const std::uint64_t u = std::strtoull(
        text.c_str() + at + needle.size(), nullptr, 16);
    double d = 0.0;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

} // anonymous namespace

TEST(SkipAhead, Fig9BatteryCellsByteIdentical)
{
    std::string on, off;
    {
        SkipAheadGuard guard(true);
        on = renderCells(fig9Cells());
    }
    {
        SkipAheadGuard guard(false);
        off = renderCells(fig9Cells());
    }
    EXPECT_EQ(on, off);
}

TEST(SkipAhead, VideoconfScenarioByteIdentical)
{
    // The registered "videoconf" scenario: call layer + camera/display
    // actions on top of a base workload — exercises skip-ahead
    // invalidation across CompositeAgent arrivals and scripted SoC
    // mutations.
    std::vector<exp::ExperimentSpec> specs;
    exp::ExperimentSpec spec;
    spec.id = "web-browsing/videoconf";
    spec.workload = workloads::webBrowsing();
    spec.scenario = workloads::scenarioByName("videoconf");
    spec.governor = "sysscale";
    spec.warmup = 50 * kTicksPerMs;
    spec.window = 400 * kTicksPerMs;
    specs.push_back(std::move(spec));

    std::string on, off;
    {
        SkipAheadGuard guard(true);
        on = renderCells(specs);
    }
    {
        SkipAheadGuard guard(false);
        off = renderCells(specs);
    }
    EXPECT_EQ(on, off);
}

TEST(SkipAhead, FastPathEngagesOnIdleHeavyRuns)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    workloads::ProfileAgent agent(standbyProfile());
    chip.setWorkload(&agent);
    chip.setSkipAhead(true);

    chip.run(200 * kTicksPerMs);
    EXPECT_GT(chip.replayedStepCount(), 0u);

    // Disabled: the replay counter must stay frozen.
    const std::uint64_t replayed = chip.replayedStepCount();
    chip.setSkipAhead(false);
    chip.run(100 * kTicksPerMs);
    EXPECT_EQ(chip.replayedStepCount(), replayed);
}

TEST(SkipAhead, MidIdleTdpStepFiresAtExactTick)
{
    // A TDP step scheduled mid-standby, off the step grid: the script
    // event must fire at exactly its tick in both modes, with the
    // same observable SoC state before and after.
    const Tick at = 100 * kTicksPerMs + 37;

    for (const bool skip : {true, false}) {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig(4.5));
        workloads::ProfileAgent agent(standbyProfile());
        chip.setWorkload(&agent);
        chip.setSkipAhead(skip);

        workloads::ScenarioScript script(
            sim, chip,
            {{at, workloads::ScenarioActionKind::SetTdp, 3.0}});

        chip.run(at - 1); // one tick short of the action
        EXPECT_EQ(sim.now(), at - 1) << "skip=" << skip;
        EXPECT_EQ(script.applied(), 0u) << "skip=" << skip;
        EXPECT_DOUBLE_EQ(chip.config().tdp, 4.5) << "skip=" << skip;

        chip.run(1); // lands exactly on the action tick
        EXPECT_EQ(sim.now(), at) << "skip=" << skip;
        EXPECT_EQ(script.applied(), 1u) << "skip=" << skip;
        EXPECT_DOUBLE_EQ(chip.config().tdp, 3.0) << "skip=" << skip;

        if (skip) { // the idle lead-in must have used the fast path
            EXPECT_GT(chip.replayedStepCount(), 0u);
        }
    }
}

TEST(SkipAhead, MetricsBitIdenticalAcrossModes)
{
    // Direct-run variant of the report comparison: every RunMetrics
    // field the reports derive from must be bitwise equal.
    auto measure = [](bool skip) {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        chip.display().attachPanel(
            0, io::PanelConfig{io::PanelResolution::HD, 60.0, 4});
        workloads::ProfileAgent agent(workloads::videoPlayback());
        chip.setWorkload(&agent);
        chip.setSkipAhead(skip);
        chip.run(100 * kTicksPerMs);
        return chip.run(300 * kTicksPerMs);
    };

    const soc::RunMetrics on = measure(true);
    const soc::RunMetrics off = measure(false);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_EQ(on.frames, off.frames);
    EXPECT_EQ(on.avgPower, off.avgPower);
    EXPECT_EQ(on.energy, off.energy);
    EXPECT_EQ(on.avgMemLatencyNs, off.avgMemLatencyNs);
    EXPECT_EQ(on.avgMemBandwidth, off.avgMemBandwidth);
    for (power::Rail r : power::kAllRails)
        EXPECT_EQ(on.railEnergy[power::railIndex(r)],
                  off.railEnergy[power::railIndex(r)]);
}

TEST(SkipAhead, SaveInsideReplayBatchMatchesRunThrough)
{
    // Checkpoint a 95%-idle cell at an off-grid tick chosen to land
    // inside a replay batch: the save must force the StepPlan to
    // re-frame around the cut without perturbing anything observable.
    // Metrics, counters, and the full stats dump (which includes
    // replayed_steps itself) must match the uninterrupted run.
    SkipAheadGuard guard(true);
    const exp::ExperimentSpec spec = standbySpec();
    const Tick total = spec.warmup + spec.window;
    const Tick k = 70 * kTicksPerMs + 37;
    ASSERT_LT(k, total);

    const exp::RunResult a = exp::runCell(spec);
    ASSERT_TRUE(a.ok) << a.error;
    // The premise: replay batches actually form in this cell, so the
    // cut at k genuinely lands inside one.
    ASSERT_GT(replayedFromDump(a.statsDump), 0.0);

    const TempDir dir("replay-batch");
    const std::string snap = dir.path() + "/standby.t70.snap";
    exp::SliceOptions first;
    first.t1 = k;
    first.outSnap = snap;
    const exp::RunResult mid = exp::runCellSlice(spec, first);
    ASSERT_TRUE(mid.ok) << mid.error;

    exp::SliceOptions second;
    second.t0 = k;
    second.inSnap = snap;
    const exp::RunResult b = exp::runCellSlice(spec, second);
    ASSERT_TRUE(b.ok) << b.error;

    EXPECT_EQ(a.metrics.instructions, b.metrics.instructions);
    EXPECT_EQ(a.metrics.energy, b.metrics.energy);
    EXPECT_EQ(a.metrics.avgPower, b.metrics.avgPower);
    EXPECT_EQ(a.metrics.stallTicks, b.metrics.stallTicks);
    for (power::Rail r : power::kAllRails)
        EXPECT_EQ(a.metrics.railEnergy[power::railIndex(r)],
                  b.metrics.railEnergy[power::railIndex(r)]);
    for (std::size_t i = 0; i < a.counters.values.size(); ++i)
        EXPECT_EQ(a.counters.values[i], b.counters.values[i]) << i;
    EXPECT_EQ(a.statsDump, b.statsDump);
}

TEST(SkipAhead, RestoreThenReplayReengagesFastPath)
{
    // StepPlan survival, stated directly on the replay counter: the
    // snapshot taken at k already carries replayed steps (the save
    // happened after batches formed), and the restored cell keeps
    // replaying — the final count is strictly larger than the saved
    // one, and byte-identical to the uninterrupted run's.
    SkipAheadGuard guard(true);
    const exp::ExperimentSpec spec = standbySpec();
    const Tick k = 70 * kTicksPerMs + 37;

    const TempDir dir("restore-replay");
    const std::string snap = dir.path() + "/standby.t70.snap";
    exp::SliceOptions first;
    first.t1 = k;
    first.outSnap = snap;
    ASSERT_TRUE(exp::runCellSlice(spec, first).ok);

    const double atSave = replayedFromSnapshot(readSnapshotFile(snap));
    EXPECT_GT(atSave, 0.0)
        << "checkpoint must land after replay engaged";

    exp::SliceOptions second;
    second.t0 = k;
    second.inSnap = snap;
    const exp::RunResult b = exp::runCellSlice(spec, second);
    ASSERT_TRUE(b.ok) << b.error;

    const double atEnd = replayedFromDump(b.statsDump);
    EXPECT_GT(atEnd, atSave)
        << "restored cell must re-enter the replay fast path";

    const exp::RunResult a = exp::runCell(spec);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(replayedFromDump(a.statsDump), atEnd);
}
