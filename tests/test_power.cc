/**
 * @file
 * Unit tests for V/F curves, regulators, power primitives, P-states,
 * the PBM, and the energy meter.
 */

#include <gtest/gtest.h>

#include "power/energy_meter.hh"
#include "power/pbm.hh"
#include "power/power_model.hh"
#include "power/regulator.hh"
#include "power/vf_curve.hh"

namespace sysscale {
namespace power {
namespace {

TEST(VfCurve, InterpolatesBetweenPoints)
{
    VfCurve c("t", {{1.0 * kGHz, 0.6}, {2.0 * kGHz, 1.0}});
    EXPECT_DOUBLE_EQ(c.voltageAt(1.5 * kGHz), 0.8);
}

TEST(VfCurve, ClampsOutsideRange)
{
    VfCurve c("t", {{1.0 * kGHz, 0.6}, {2.0 * kGHz, 1.0}});
    EXPECT_DOUBLE_EQ(c.voltageAt(0.5 * kGHz), 0.6);
    EXPECT_DOUBLE_EQ(c.voltageAt(3.0 * kGHz), 1.0);
}

TEST(VfCurve, InverseLookupRoundTrips)
{
    VfCurve c = skylakeCoreCurve();
    const Hertz f = 1.8 * kGHz;
    EXPECT_NEAR(c.freqAt(c.voltageAt(f)), f, 1e6);
}

TEST(VfCurve, SkylakeIoCurveMatchesTable1Anchor)
{
    // Table 1: V_IO at the 1066MT/s bin is 0.85 of the boot 1.00V.
    VfCurve c = skylakeIoCurve();
    EXPECT_NEAR(c.voltageAt(0.53 * kGHz), 0.85, 1e-9);
    EXPECT_NEAR(c.voltageAt(0.80 * kGHz), 1.00, 1e-9);
}

TEST(VfCurve, SaCurveFlattensBelowLowPoint)
{
    // Sec. 7.4: V_SA reaches Vmin at the 1066 pairing, so the 800
    // bin frees no further voltage.
    VfCurve c = skylakeSaCurve();
    EXPECT_DOUBLE_EQ(c.voltageAt(0.40 * kGHz),
                     c.voltageAt(0.30 * kGHz));
}

TEST(Regulator, RampLatencyMatchesSlewRate)
{
    // 50mV/us slew: a 100mV move takes 2us (paper Sec. 5).
    Regulator r(Rail::VSA, 0.80, 50e-3 / 1e-6);
    const Tick lat = r.rampTo(0.70, 0);
    EXPECT_EQ(lat, 2 * kTicksPerUs);
}

TEST(Regulator, VoltageInterpolatesDuringRamp)
{
    Regulator r(Rail::VSA, 0.80, 50e-3 / 1e-6);
    r.rampTo(0.70, 0);
    EXPECT_NEAR(r.voltage(1 * kTicksPerUs), 0.75, 1e-9);
    EXPECT_NEAR(r.voltage(2 * kTicksPerUs), 0.70, 1e-9);
    EXPECT_FALSE(r.ramping(2 * kTicksPerUs));
}

TEST(Regulator, InputPowerIncludesConversionLoss)
{
    Regulator r(Rail::VSA, 0.8, 5e4, /*efficiency=*/0.8);
    EXPECT_NEAR(r.inputPower(0.8), 1.0, 1e-9);
}

TEST(PowerModel, DynamicPowerFormula)
{
    // Cdyn V^2 f a = 1nF * 1V^2 * 1GHz * 0.5 = 0.5W.
    EXPECT_NEAR(dynamicPower(1e-9, 1.0, 1e9, 0.5), 0.5, 1e-12);
}

TEST(PowerModel, LeakageGrowsWithVoltageAndTemperature)
{
    const Watt base = leakagePower(0.1, 0.8, 50.0);
    EXPECT_GT(leakagePower(0.1, 0.9, 50.0), base);
    EXPECT_GT(leakagePower(0.1, 0.8, 80.0), base);
}

TEST(PowerModel, EdpDefinition)
{
    EXPECT_DOUBLE_EQ(edp(2.0, 3.0), 6.0);
    EXPECT_DOUBLE_EQ(ed2p(2.0, 3.0), 18.0);
}

TEST(PStateTable, StatesAreMonotonic)
{
    PStateTable t(skylakeCoreCurve(), 1e-9, 0.2, 50.0, 16);
    ASSERT_EQ(t.states().size(), 16u);
    for (std::size_t i = 1; i < t.states().size(); ++i) {
        EXPECT_GT(t.states()[i].freq, t.states()[i - 1].freq);
        EXPECT_GE(t.states()[i].voltage, t.states()[i - 1].voltage);
        EXPECT_GT(t.states()[i].maxPower, t.states()[i - 1].maxPower);
    }
}

TEST(PStateTable, HighestUnderRespectsBudget)
{
    PStateTable t(skylakeCoreCurve(), 1e-9, 0.2, 50.0, 16);
    const Watt budget = t.states()[7].maxPower + 1e-6;
    const PState &s = t.highestUnder(budget);
    EXPECT_DOUBLE_EQ(s.freq, t.states()[7].freq);
}

TEST(PStateTable, LowestStateReturnedWhenNothingFits)
{
    PStateTable t(skylakeCoreCurve(), 1e-9, 0.2, 50.0, 16);
    const PState &s = t.highestUnder(0.0);
    EXPECT_DOUBLE_EQ(s.freq, t.min().freq);
}

TEST(Pbm, ComputeBudgetSubtractsDomains)
{
    PowerBudgetManager pbm(4.5, 0.25);
    EXPECT_NEAR(pbm.computeBudget(1.0, 0.5), 2.75, 1e-12);
    EXPECT_DOUBLE_EQ(pbm.computeBudget(5.0, 0.0), 0.0);
}

TEST(Pbm, SplitGivesCoresMinorShareUnderGraphics)
{
    PowerBudgetManager pbm(4.5);
    const ComputeSplit s = pbm.split(2.0, /*gfx_active=*/true);
    EXPECT_NEAR(s.coreBudget, 2.0 * 0.15, 1e-12);
    EXPECT_NEAR(s.gfxBudget, 2.0 * 0.85, 1e-12);

    const ComputeSplit cpu_only = pbm.split(2.0, false);
    EXPECT_DOUBLE_EQ(cpu_only.coreBudget, 2.0);
}

TEST(Pbm, GrantDemotesOverBudgetRequests)
{
    PowerBudgetManager pbm(4.5);
    PStateTable t(skylakeCoreCurve(), 1e-9, 0.2, 50.0, 16);
    const PState &granted =
        pbm.grant(t, t.max().freq, /*budget=*/0.3, /*activity=*/0.8);
    EXPECT_LT(granted.freq, t.max().freq);
    EXPECT_LE(t.powerAt(granted.freq, 0.8), 0.3 + 1e-9);
}

TEST(EnergyMeter, IntegratesPerRail)
{
    EnergyMeter m;
    m.addPower(Rail::VSA, 2.0, kTicksPerSec);      // 2 J
    m.addPower(Rail::VDDQ, 1.0, kTicksPerSec / 2); // 0.5 J
    EXPECT_NEAR(m.railEnergy(Rail::VSA), 2.0, 1e-9);
    EXPECT_NEAR(m.railEnergy(Rail::VDDQ), 0.5, 1e-9);
    EXPECT_NEAR(m.totalEnergy(), 2.5, 1e-9);
    EXPECT_NEAR(m.averagePower(kTicksPerSec), 2.5, 1e-9);
}

TEST(EnergyMeter, ResetMovesWindow)
{
    EnergyMeter m;
    m.addPower(Rail::VSA, 2.0, kTicksPerSec);
    m.reset(kTicksPerSec);
    EXPECT_DOUBLE_EQ(m.totalEnergy(), 0.0);
    m.addPower(Rail::VSA, 1.0, kTicksPerSec);
    EXPECT_NEAR(m.averagePower(2 * kTicksPerSec), 1.0, 1e-9);
}

} // namespace
} // namespace power
} // namespace sysscale
