/**
 * @file
 * Aggregation-helper tests: label lookup, group-by slicing,
 * statistics (including the empty-sample and single-element edge
 * cases), and baseline-relative deltas.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exp/agg.hh"

using namespace sysscale;
using namespace sysscale::exp;

namespace {

RunResult
row(const std::string &workload, const std::string &governor,
    double ips, double power)
{
    RunResult res;
    res.id = workload + "/" + governor;
    res.ok = true;
    res.metrics.ips = ips;
    res.metrics.avgPower = power;
    res.labels = {{"workload", workload}, {"governor", governor}};
    return res;
}

const agg::Metric kIps = [](const RunResult &r) {
    return r.metrics.ips;
};

/** workload x governor grid with known values. */
std::vector<RunResult>
sampleResults()
{
    return {
        row("stream", "fixed", 100.0, 4.0),
        row("stream", "sysscale", 110.0, 3.6),
        row("spin", "fixed", 200.0, 4.0),
        row("spin", "sysscale", 190.0, 3.0),
    };
}

} // anonymous namespace

TEST(AggLabels, FindLabel)
{
    const RunResult r = row("stream", "fixed", 1.0, 1.0);
    ASSERT_NE(agg::findLabel(r, "workload"), nullptr);
    EXPECT_EQ(*agg::findLabel(r, "workload"), "stream");
    EXPECT_EQ(agg::findLabel(r, "missing"), nullptr);
}

TEST(AggGroupBy, SlicesInFirstSeenOrder)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].key, "stream");
    EXPECT_EQ(groups[1].key, "spin");
    EXPECT_EQ(groups[0].rows.size(), 2u);
    EXPECT_EQ(groups[1].rows.size(), 2u);

    const auto by_gov = agg::groupBy(results, "governor");
    ASSERT_EQ(by_gov.size(), 2u);
    EXPECT_EQ(by_gov[0].key, "fixed");
    EXPECT_EQ(by_gov[0].rows.size(), 2u);
}

TEST(AggGroupBy, MissingLabelCollectsUnderEmptyKey)
{
    auto results = sampleResults();
    results.push_back(RunResult{});
    const auto groups = agg::groupBy(results, "workload");
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[2].key, "");
    EXPECT_EQ(groups[2].rows.size(), 1u);
}

TEST(AggGroupBy, EmptyInputYieldsNoGroups)
{
    EXPECT_TRUE(agg::groupBy({}, "workload").empty());
}

TEST(AggFindRow, LocatesBaselineCell)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");
    const RunResult *base =
        agg::findRow(groups[0].rows, "governor", "fixed");
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base->id, "stream/fixed");
    EXPECT_EQ(agg::findRow(groups[0].rows, "governor", "turbo"),
              nullptr);
}

TEST(AggStats, MeanMedianBasics)
{
    EXPECT_DOUBLE_EQ(agg::mean({1.0, 2.0, 6.0}), 3.0);
    EXPECT_DOUBLE_EQ(agg::median({5.0, 1.0, 3.0}), 3.0);
    EXPECT_DOUBLE_EQ(agg::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(AggStats, EmptySampleIsNaN)
{
    EXPECT_TRUE(std::isnan(agg::mean({})));
    EXPECT_TRUE(std::isnan(agg::median({})));
    EXPECT_TRUE(std::isnan(agg::percentile({}, 50.0)));
}

TEST(AggStats, SingleElementIsEveryPercentile)
{
    for (const double p : {0.0, 25.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(agg::percentile({7.5}, p), 7.5);
    EXPECT_DOUBLE_EQ(agg::mean({7.5}), 7.5);
    EXPECT_DOUBLE_EQ(agg::median({7.5}), 7.5);
}

TEST(AggStats, PercentileInterpolatesAndClamps)
{
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(agg::percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(agg::percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(agg::percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(agg::percentile(xs, 75.0), 32.5);
    // Out-of-range p clamps to the extremes.
    EXPECT_DOUBLE_EQ(agg::percentile(xs, -10.0), 10.0);
    EXPECT_DOUBLE_EQ(agg::percentile(xs, 400.0), 40.0);
}

TEST(AggStats, CollectExtractsInRowOrder)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");
    const std::vector<double> ips =
        agg::collect(groups[0].rows, kIps);
    ASSERT_EQ(ips.size(), 2u);
    EXPECT_DOUBLE_EQ(ips[0], 100.0);
    EXPECT_DOUBLE_EQ(ips[1], 110.0);
}

TEST(AggDeltas, BaselineRelativePercent)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");

    const auto stream =
        agg::deltasVsBaseline(groups[0], "governor", "fixed", kIps);
    ASSERT_EQ(stream.size(), 1u);
    EXPECT_EQ(stream[0].row->id, "stream/sysscale");
    EXPECT_EQ(stream[0].baseline->id, "stream/fixed");
    EXPECT_NEAR(stream[0].pct, 10.0, 1e-12);

    const auto spin =
        agg::deltasVsBaseline(groups[1], "governor", "fixed", kIps);
    ASSERT_EQ(spin.size(), 1u);
    EXPECT_NEAR(spin[0].pct, -5.0, 1e-12);
}

TEST(AggDeltas, DeltaVsSingleCell)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");
    EXPECT_NEAR(agg::deltaVs(groups[0], "governor", "sysscale",
                             "fixed", kIps),
                10.0, 1e-12);
    // Missing axis values must fail loudly, never read as 0%.
    EXPECT_THROW((void)agg::deltaVs(groups[0], "governor", "turbo",
                                    "fixed", kIps),
                 std::invalid_argument);
    EXPECT_THROW((void)agg::deltaVs(groups[0], "governor",
                                    "sysscale", "turbo", kIps),
                 std::invalid_argument);
}

TEST(AggDeltas, MissingBaselineYieldsEmpty)
{
    const auto results = sampleResults();
    const auto groups = agg::groupBy(results, "workload");
    EXPECT_TRUE(
        agg::deltasVsBaseline(groups[0], "governor", "turbo", kIps)
            .empty());
}
