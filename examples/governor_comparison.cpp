/**
 * @file
 * Governor shoot-out: run a mixed workload set under the fixed
 * baseline, MemScale-R, CoScale-R, and SysScale, and print the
 * paper's comparison in miniature (Fig. 7/8/9 in one table).
 */

#include <cstdio>
#include <vector>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"
#include "workloads/graphics.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

soc::RunMetrics
measure(const workloads::WorkloadProfile &w,
        core::Governor &governor)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});
    workloads::ProfileAgent agent(w);
    chip.setWorkload(&agent);
    core::GovernorHost host(governor);
    chip.pmu().setPolicy(&host);
    chip.run(200 * kTicksPerMs);
    return chip.run(2 * kTicksPerSec);
}

} // namespace

int
main()
{
    const std::vector<workloads::WorkloadProfile> set = {
        workloads::specBenchmark("416.gamess"),   // compute bound
        workloads::specBenchmark("400.perlbench"),// mostly compute
        workloads::specBenchmark("470.lbm"),      // bandwidth bound
        workloads::specBenchmark("429.mcf"),      // latency bound
        workloads::threeDMark06(),                // graphics
        workloads::videoPlayback(),               // battery life
    };

    std::printf("%-18s %-8s %12s %12s %12s %12s\n", "workload",
                "metric", "baseline", "memscale-r", "coscale-r",
                "sysscale");

    for (const auto &w : set) {
        core::FixedGovernor base;
        core::MemScaleGovernor ms(true);
        core::CoScaleGovernor cs(true);
        core::SysScaleGovernor ss;

        const bool battery =
            w.klass() == workloads::WorkloadClass::BatteryLife;
        const bool gfx =
            w.klass() == workloads::WorkloadClass::Graphics;

        auto value = [&](core::Governor &p) {
            const soc::RunMetrics m = measure(w, p);
            if (battery)
                return m.avgPower;
            return gfx ? m.fps : m.ips / 1e9;
        };

        const char *metric =
            battery ? "watts" : (gfx ? "fps" : "Gips");
        std::printf("%-18s %-8s %12.3f %12.3f %12.3f %12.3f\n",
                    w.name().c_str(), metric, value(base), value(ms),
                    value(cs), value(ss));
    }

    std::printf("\nexpected shape (paper): SysScale boosts the "
                "compute-bound rows and 3DMark, leaves lbm/mcf "
                "untouched, and cuts video-playback watts; prior "
                "work moves every metric only slightly.\n");
    return 0;
}
