/**
 * @file
 * Training the demand predictor offline (paper Sec. 4.2): sweep a
 * synthetic corpus at both operating points, fit mu+sigma thresholds
 * and the linear impact model, and install the trained predictor in
 * a SysScale governor.
 */

#include <cstdio>

#include "core/governors.hh"
#include "core/threshold_trainer.hh"
#include "core/transition_flow.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/spec.hh"
#include "workloads/sweep.hh"

using namespace sysscale;

namespace {

/** Policy that only records counter averages. */
class Collect : public soc::PmuPolicy
{
  public:
    const char *name() const override { return "collect"; }

    void
    evaluate(soc::Soc &, const soc::CounterSnapshot &avg) override
    {
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            sum_.values[i] += avg.values[i];
        ++n_;
    }

    soc::CounterSnapshot
    average() const
    {
        soc::CounterSnapshot out;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            out.values[i] = n_ ? sum_.values[i] / n_ : 0.0;
        return out;
    }

  private:
    soc::CounterSnapshot sum_;
    double n_ = 0;
};

/** One pinned measurement; returns (ips, counters at high point). */
std::pair<double, soc::CounterSnapshot>
pinnedRun(const workloads::WorkloadProfile &w, bool low)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(w);
    chip.setWorkload(&agent);
    Collect collect;
    chip.pmu().setPolicy(&collect);

    core::TransitionFlow flow(chip);
    if (low)
        flow.execute(chip.opPoints().low());

    chip.run(60 * kTicksPerMs);
    const soc::RunMetrics m = chip.run(200 * kTicksPerMs);
    return {m.ips, collect.average()};
}

} // namespace

int
main()
{
    // 1. Measure a training corpus at both points.
    const auto corpus = workloads::SynthSweep::generateClass(
        workloads::WorkloadClass::CpuSingleThread, 160, 0xBEEF);

    std::vector<core::TrainingSample> samples;
    samples.reserve(corpus.size());
    for (const auto &w : corpus) {
        const auto [hi_ips, counters] = pinnedRun(w, false);
        const auto [lo_ips, ignored] = pinnedRun(w, true);
        (void)ignored;
        core::TrainingSample s;
        s.counters = counters;
        s.normPerf = hi_ips > 0.0 ? lo_ips / hi_ips : 1.0;
        samples.push_back(s);
    }

    // 2. Train thresholds (mu+sigma, zero false positives) and the
    //    linear impact model.
    const core::Thresholds thr =
        core::ThresholdTrainer::train(samples, 0.01);
    const core::LinearImpactModel model =
        core::ThresholdTrainer::fitLinear(samples);
    const core::DemandPredictor pred(thr, model);
    const core::PredictionStats stats =
        core::ThresholdTrainer::evaluate(pred, samples, 0.01);

    std::printf("trained on %zu workloads x 2 operating points\n",
                samples.size());
    for (soc::Counter c : soc::kAllCounters) {
        std::printf("  threshold %-22s = %.1f /ms\n",
                    std::string(soc::counterName(c)).c_str(),
                    thr.counter[soc::counterIndex(c)]);
    }
    std::printf("accuracy %.1f%%, correlation %.3f, false positives "
                "%zu (paper: 94-99%%, 0.84-0.96, zero FPs)\n\n",
                stats.accuracy * 100.0, stats.correlation,
                stats.falsePositives);

    // 3. Deploy the trained predictor in a governor.
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    core::SysScaleGovernor gov(thr, model);
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);
    workloads::ProfileAgent agent(
        workloads::specBenchmark("416.gamess"));
    chip.setWorkload(&agent);
    chip.run(200 * kTicksPerMs);
    const soc::RunMetrics m = chip.run(kTicksPerSec);

    std::printf("deployed: gamess runs at the low point %.0f%% of "
                "the time, %.2f GHz average core clock, 0 QoS "
                "violations: %s\n",
                m.lowPointResidency * 100.0, m.avgCoreFreq / 1e9,
                m.qosViolations == 0 ? "yes" : "NO");
    return 0;
}
