/**
 * @file
 * Battery-life scenario: video playback on one HD panel, with the
 * per-rail power breakdown the paper's NI-DAQ rig would report
 * (Sec. 6, "Power Measurements") under the baseline and SysScale.
 */

#include <cstdio>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"

using namespace sysscale;

namespace {

soc::RunMetrics
measure(core::Governor &governor)
{
    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});

    workloads::ProfileAgent agent(workloads::videoPlayback());
    chip.setWorkload(&agent);
    core::GovernorHost host(governor);
    chip.pmu().setPolicy(&host);

    chip.run(200 * kTicksPerMs);
    return chip.run(3 * kTicksPerSec);
}

} // namespace

int
main()
{
    core::FixedGovernor baseline;
    core::SysScaleGovernor sysscale;

    const soc::RunMetrics base = measure(baseline);
    const soc::RunMetrics sys = measure(sysscale);

    std::printf("video playback (60fps, HD panel), 3s window\n\n");
    std::printf("%-12s %12s %12s %8s\n", "rail", "baseline W",
                "sysscale W", "delta");

    for (power::Rail rail : power::kAllRails) {
        const std::size_t i = power::railIndex(rail);
        const double b = base.railEnergy[i] / base.seconds;
        const double s = sys.railEnergy[i] / sys.seconds;
        std::printf("%-12s %12.4f %12.4f %+7.1f%%\n",
                    std::string(power::railName(rail)).c_str(), b, s,
                    b > 0.0 ? (s / b - 1.0) * 100.0 : 0.0);
    }
    std::printf("%-12s %12.4f %12.4f %+7.1f%%\n", "total",
                base.avgPower, sys.avgPower,
                (sys.avgPower / base.avgPower - 1.0) * 100.0);

    std::printf("\nSysScale parked the IO/memory domains at the low "
                "point for %.0f%% of the run\n",
                sys.lowPointResidency * 100.0);
    std::printf("QoS violations: %llu (the display never "
                "underruns)\n",
                static_cast<unsigned long long>(sys.qosViolations));
    std::printf("paper Fig. 9 anchor: video playback saves ~10.7%% "
                "average power\n");
    return 0;
}
