/**
 * @file
 * Building a custom SoC configuration: a DDR4 tablet with a 4K
 * panel and a camera stream, demonstrating the static demand table
 * holding SysScale at the high operating point until the peripheral
 * load allows scaling (paper Sec. 4.2, condition 1).
 */

#include <cstdio>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/spec.hh"

using namespace sysscale;

int
main()
{
    // A 7W DDR4 variant of the Skylake platform (Sec. 7.4).
    soc::SocConfig cfg = soc::skylakeDdr4Config(/*tdp=*/7.0);
    Simulator sim(1);
    soc::Soc chip(sim, cfg);

    core::SysScaleGovernor gov;
    core::GovernorHost host(gov);
    chip.pmu().setPolicy(&host);

    workloads::ProfileAgent agent(
        workloads::specBenchmark("453.povray"));
    chip.setWorkload(&agent);

    std::printf("custom SoC: %s @ %.1fW, %s\n\n", cfg.name.c_str(),
                cfg.tdp, cfg.dramSpec.name().c_str());

    // Phase 1: 4K panel + camera -> static demand pins the SoC high.
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::UHD4K, 60.0, 4});
    chip.isp().startCamera(io::CameraConfig{1920, 1080, 30.0, 2});

    soc::RunMetrics m = chip.run(500 * kTicksPerMs);
    std::printf("4K panel + 1080p camera: static demand %.1f GB/s\n",
                chip.isoBandwidthDemand() / 1e9);
    std::printf("  low-point residency %.0f%%, op point '%s' "
                "(static table holds the SoC high)\n",
                m.lowPointResidency * 100.0,
                chip.currentOpPoint().name.c_str());
    std::printf("  QoS violations: %llu\n",
                static_cast<unsigned long long>(m.qosViolations));

    // Phase 2: drop to the laptop HD panel, stop the camera.
    chip.display().detachPanel(0);
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});
    chip.isp().stopCamera();

    m = chip.run(500 * kTicksPerMs);
    std::printf("\nHD panel only: static demand %.1f GB/s\n",
                chip.isoBandwidthDemand() / 1e9);
    std::printf("  low-point residency %.0f%%, op point '%s' "
                "(povray is compute bound -> scaled down)\n",
                m.lowPointResidency * 100.0,
                chip.currentOpPoint().name.c_str());
    std::printf("  QoS violations: %llu\n",
                static_cast<unsigned long long>(m.qosViolations));

    std::printf("\naverage core clock rose to %.2f GHz with the "
                "freed budget\n", m.avgCoreFreq / 1e9);
    return 0;
}
