/**
 * @file
 * Quickstart: build a Skylake-class SoC, run one workload under the
 * fixed baseline and under SysScale, and compare.
 *
 * Usage: quickstart [benchmark-name]   (default 416.gamess)
 */

#include <cstdio>
#include <string>

#include "core/governors.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

/** One measured run of @p profile under @p policy. */
soc::RunMetrics
measure(const workloads::WorkloadProfile &profile,
        core::Governor &governor)
{
    Simulator sim(/*seed=*/1);
    soc::Soc chip(sim, soc::skylakeConfig());

    // The standard laptop panel is attached for every experiment.
    chip.display().attachPanel(0, io::PanelConfig{
        io::PanelResolution::HD, 60.0, 4});

    workloads::ProfileAgent agent(profile);
    chip.setWorkload(&agent);
    core::GovernorHost host(governor);
    chip.pmu().setPolicy(&host);

    chip.run(200 * kTicksPerMs);          // warm up
    return chip.run(2 * kTicksPerSec);    // measure
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "416.gamess";
    const workloads::WorkloadProfile profile =
        workloads::specBenchmark(name);

    core::FixedGovernor baseline;
    core::SysScaleGovernor sysscale;

    const soc::RunMetrics base = measure(profile, baseline);
    const soc::RunMetrics sys = measure(profile, sysscale);

    std::printf("SysScale quickstart: %s on skylake-m6y75 @ 4.5W\n\n",
                name.c_str());
    std::printf("%-28s %12s %12s %8s\n", "metric", "baseline",
                "sysscale", "delta");

    // A literal format with a runtime precision: a variable format
    // string defeats compile-time checking (-Wformat-overflow flags
    // it under the sanitizer profile's optimizer settings).
    auto row = [](const char *metric, double b, double s, int prec) {
        std::printf("%-28s %12.*f %12.*f %+7.1f%%\n", metric, prec,
                    b, prec, s, (s / b - 1.0) * 100.0);
    };

    row("perf (Ginstr/s)", base.ips / 1e9, sys.ips / 1e9, 3);
    row("avg power (W)", base.avgPower, sys.avgPower, 3);
    row("energy (J)", base.energy, sys.energy, 3);
    row("EDP (J*s)", base.edp, sys.edp, 4);
    row("avg core clock (GHz)", base.avgCoreFreq / 1e9,
        sys.avgCoreFreq / 1e9, 3);
    row("mem latency (ns)", base.avgMemLatencyNs, sys.avgMemLatencyNs,
        1);
    row("mem bandwidth (GB/s)", base.avgMemBandwidth / 1e9,
        sys.avgMemBandwidth / 1e9, 2);

    std::printf("\nsysscale: %llu transitions, %.1f%% of time at the "
                "low point, %llu QoS violations\n",
                static_cast<unsigned long long>(sys.transitions),
                sys.lowPointResidency * 100.0,
                static_cast<unsigned long long>(sys.qosViolations));
    return 0;
}
