#!/bin/sh
# Documentation consistency checks, run by the CI docs job and as a
# ctest (from the repository root):
#
#   1. every intra-repo markdown link resolves to an existing file
#      (external http(s)/mailto links and pure #anchors are skipped),
#   2. every bench/bench_*.cc binary is mentioned in the README's
#      "Reproducing paper figures" table,
#   3. every scenario registered in src/workloads/scenario.cc is
#      documented in docs/EXPERIMENTS.md,
#   4. every sweep_queue subcommand (the kSubcommands registry in
#      tools/sweep_queue.cc) is documented in docs/OPERATIONS.md,
#      and likewise every snap_inspect subcommand (the kSubcommands
#      registry in tools/snap_inspect.cc),
#   5. every --flag the sweep tools accept (extracted from their
#      `arg == "--x"` dispatch) is documented somewhere in the
#      README or docs/,
#   6. every check registered in tools/lint_invariants.py (the
#      @check("name", ...) registry) is documented in
#      docs/ANALYSIS.md,
#   7. the idle skip-ahead opt-outs (the --no-skip-ahead flag and the
#      SYSSCALE_NO_SKIP_AHEAD environment variable) are documented in
#      docs/EXPERIMENTS.md — the byte-identity escape hatch must stay
#      discoverable,
#   8. every governor registered in src/core/governor_registry.cc
#      (the `addEntry(reg, "<name>"` idiom) is documented in
#      docs/EXPERIMENTS.md's governor-zoo table,
#   9. every trace category (the `kCat*[] = "<name>"` constants in
#      src/obs/trace.hh) and every TRACE_* macro is documented in
#      docs/OBSERVABILITY.md — the trace schema is a stable surface
#      (tools/trace_summary.py and external Perfetto queries key on
#      the category strings).
#
# POSIX sh + grep/sed only, so it runs anywhere the build does.

set -u

repo_root=$(dirname "$0")/..
cd "$repo_root" || exit 2

errors=0

# --- 1. intra-repo markdown links -----------------------------------
md_files=$(find . -name '*.md' -not -path './build/*' \
                -not -path './.git/*' | sort)

old_ifs=$IFS
for f in $md_files; do
    # Inline links: capture the (...) target of ](...), ignoring
    # fenced code blocks (C++ lambdas look like markdown links) and
    # stripping optional link titles ([x](path "Title")).
    targets=$(awk '/^[[:space:]]*```/ { fence = !fence; next }
                   !fence' "$f" |
              grep -o ']([^)]*)' |
              sed 's/^](//; s/)$//; s/ "[^"]*"$//')
    [ -z "$targets" ] && continue
    # Newline-only splitting so paths containing spaces stay whole.
    IFS='
'
    for target in $targets; do
        case "$target" in
          http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        # Strip an anchor suffix and ignore empty remainders.
        path=${target%%#*}
        [ -z "$path" ] && continue
        # Resolve relative to the linking file's directory only —
        # that is GitHub's semantic; a repo-root fallback would let
        # links that 404 on GitHub pass the check.
        dir=$(dirname "$f")
        if [ ! -e "$dir/$path" ]; then
            echo "check_docs: broken link in $f -> $target"
            errors=$((errors + 1))
        fi
    done
    IFS=$old_ifs
done

# --- 2. README covers every bench binary ----------------------------
for b in bench/bench_*.cc; do
    name=$(basename "$b" .cc)
    if ! grep -q "$name" README.md; then
        echo "check_docs: README.md does not mention $name" \
             "(add it to the 'Reproducing paper figures' table)"
        errors=$((errors + 1))
    fi
done

# --- 3. EXPERIMENTS.md documents every registered scenario ----------
# Extract the quoted names from the scenarioNames() registry block.
scenario_src=src/workloads/scenario.cc
scenarios=$(sed -n '/scenarioNames()/,/^}/p' "$scenario_src" |
            grep -o '"[a-z0-9-]*"' | tr -d '"')
if [ -z "$scenarios" ]; then
    echo "check_docs: could not extract scenario names from" \
         "$scenario_src"
    errors=$((errors + 1))
fi
for s in $scenarios; do
    if ! grep -q "\`$s\`" docs/EXPERIMENTS.md; then
        echo "check_docs: docs/EXPERIMENTS.md does not document" \
             "scenario '$s' (add it to the scenario table)"
        errors=$((errors + 1))
    fi
done

# --- 4. OPERATIONS.md documents every sweep_queue subcommand --------
queue_src=tools/sweep_queue.cc
subcommands=$(sed -n '/kSubcommands\[\]/,/};/p' "$queue_src" |
              grep -o '"[a-z-]*"' | tr -d '"')
if [ -z "$subcommands" ]; then
    echo "check_docs: could not extract subcommands from" \
         "$queue_src"
    errors=$((errors + 1))
fi
for cmd in $subcommands; do
    if ! grep -q "sweep_queue $cmd" docs/OPERATIONS.md; then
        echo "check_docs: docs/OPERATIONS.md does not document" \
             "'sweep_queue $cmd'"
        errors=$((errors + 1))
    fi
done

# --- 4b. OPERATIONS.md documents every snap_inspect subcommand ------
snap_src=tools/snap_inspect.cc
snap_cmds=$(sed -n '/kSubcommands\[\]/,/};/p' "$snap_src" |
            grep -o '"[a-z-]*"' | tr -d '"')
if [ -z "$snap_cmds" ]; then
    echo "check_docs: could not extract subcommands from $snap_src"
    errors=$((errors + 1))
fi
for cmd in $snap_cmds; do
    if ! grep -q "snap_inspect $cmd" docs/OPERATIONS.md; then
        echo "check_docs: docs/OPERATIONS.md does not document" \
             "'snap_inspect $cmd'"
        errors=$((errors + 1))
    fi
done

# --- 5. every sweep-tool flag is documented -------------------------
# Flags are extracted from the exact-match dispatch comparisons
# (`arg == "--x"`), which appear as standalone quoted strings; usage
# text never matches because its strings carry more than the flag.
for tool in tools/sweep_grid.cc tools/sweep_worker.cc \
            tools/sweep_queue.cc; do
    flags=$(grep -o '"--[a-z0-9-]*"' "$tool" | tr -d '"' | sort -u)
    if [ -z "$flags" ]; then
        echo "check_docs: could not extract flags from $tool"
        errors=$((errors + 1))
    fi
    for flag in $flags; do
        [ "$flag" = "--help" ] && continue
        if ! grep -qF -- "$flag" README.md docs/EXPERIMENTS.md \
                docs/OPERATIONS.md docs/OBSERVABILITY.md; then
            echo "check_docs: flag $flag ($(basename "$tool"))" \
                 "is not documented in README.md or docs/"
            errors=$((errors + 1))
        fi
    done
done

# --- 6. ANALYSIS.md documents every registered lint check -----------
lint_src=tools/lint_invariants.py
lint_checks=$(grep -o '@check("[a-z-]*"' "$lint_src" |
              sed 's/@check("//; s/"$//')
if [ -z "$lint_checks" ]; then
    echo "check_docs: could not extract lint checks from $lint_src"
    errors=$((errors + 1))
fi
for c in $lint_checks; do
    if ! grep -q "\`$c\`" docs/ANALYSIS.md; then
        echo "check_docs: docs/ANALYSIS.md does not document lint" \
             "check '$c' (add it to the check registry table)"
        errors=$((errors + 1))
    fi
done

# --- 7a. EXPERIMENTS.md documents every registered governor ---------
# Extract the quoted names from the addEntry(reg, "<name>" calls —
# the greppable registration idiom the registry header mandates.
gov_src=src/core/governor_registry.cc
governors=$(grep -o 'addEntry(reg, "[a-z0-9-]*"' "$gov_src" |
            sed 's/.*"\([a-z0-9-]*\)"/\1/')
if [ -z "$governors" ]; then
    echo "check_docs: could not extract governor names from" \
         "$gov_src"
    errors=$((errors + 1))
fi
for g in $governors; do
    if ! grep -q "\`$g\`" docs/EXPERIMENTS.md; then
        echo "check_docs: docs/EXPERIMENTS.md does not document" \
             "governor '$g' (add it to the governor-zoo table)"
        errors=$((errors + 1))
    fi
done

# --- 9. OBSERVABILITY.md documents the trace schema surface ---------
# Categories come from the greppable `constexpr char kCatX[] = "x";`
# idiom in the trace header; macros are the public instrumentation
# API.  Both must appear in backtick form so readers can search for
# them verbatim.
trace_hdr=src/obs/trace.hh
trace_cats=$(grep -o 'kCat[A-Za-z]*\[\] = "[a-z-]*"' "$trace_hdr" |
             sed 's/.*"\([a-z-]*\)"/\1/')
if [ -z "$trace_cats" ]; then
    echo "check_docs: could not extract trace categories from" \
         "$trace_hdr"
    errors=$((errors + 1))
fi
for cat in $trace_cats; do
    if ! grep -q "\`$cat\`" docs/OBSERVABILITY.md; then
        echo "check_docs: docs/OBSERVABILITY.md does not document" \
             "trace category '$cat' (add it to the category table)"
        errors=$((errors + 1))
    fi
done
for macro in TRACE_SPAN TRACE_INSTANT TRACE_COUNTER; do
    if ! grep -q "\`$macro\`" docs/OBSERVABILITY.md; then
        echo "check_docs: docs/OBSERVABILITY.md does not document" \
             "the $macro macro"
        errors=$((errors + 1))
    fi
done

# --- 7. skip-ahead opt-outs are documented --------------------------
for knob in --no-skip-ahead SYSSCALE_NO_SKIP_AHEAD; do
    if ! grep -qF -- "$knob" docs/EXPERIMENTS.md; then
        echo "check_docs: docs/EXPERIMENTS.md does not document the" \
             "skip-ahead opt-out '$knob'"
        errors=$((errors + 1))
    fi
done

if [ "$errors" -ne 0 ]; then
    echo "check_docs: $errors problem(s) found"
    exit 1
fi
echo "check_docs: OK"
exit 0
