/**
 * @file
 * sweep_worker: daemon that drains a distributed sweep queue.
 *
 * Point any number of these — across any number of machines — at a
 * shared queue directory and a shared result-cache directory, and
 * they collectively simulate whatever grids a dispatcher
 * (sweep_grid --distributed) enqueues:
 *
 *   sweep_worker --queue /nfs/q --cache-dir /nfs/cache          # daemon
 *   sweep_worker --queue /nfs/q --cache-dir /nfs/cache --drain  # batch
 *   sweep_worker --queue /nfs/q --cache-dir /nfs/cache \
 *                --capacity 32                      # big machine
 *
 * Claims are atomic renames, results publish through the
 * content-addressed cache, and a lease heartbeat makes crashes
 * recoverable: kill -9 a worker mid-cell and the fleet reclaims the
 * cell after --lease-timeout-s. See docs/EXPERIMENTS.md
 * ("Distributed sweeps").
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/work_queue.hh"
#include "dist/worker.hh"
#include "exp/cache.hh"

using namespace sysscale;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage()
{
    std::printf(
        "usage: sweep_worker --queue DIR --cache-dir DIR [options]\n"
        "  --queue DIR          shared work-queue directory\n"
        "  --cache-dir DIR      shared result cache (default:\n"
        "                       $SYSSCALE_CACHE_DIR)\n"
        "  --drain              exit once the queue is empty\n"
        "                       (default: keep serving)\n"
        "  --capacity N         concurrent cells this worker holds\n"
        "                       (internal pool; default: 1 — set to\n"
        "                       the machine's core count to weight\n"
        "                       claims by machine size)\n"
        "  --max-cells N        stop after completing N cells\n"
        "                       (shared by the whole --capacity "
        "pool)\n"
        "  --poll-ms N          idle scan period (default: 500)\n"
        "  --heartbeat-ms N     lease refresh period (default: "
        "1000)\n"
        "  --lease-timeout-s N  reclaim claims whose lease is older\n"
        "                       (default: 30)\n"
        "  --worker-id ID       claim identity (default: "
        "host-pid-serial)\n"
        "  --quiet              no per-cell progress\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string queue_dir;
    std::string cache_dir;
    dist::WorkerOptions opts;
    bool quiet = false;
    long poll_ms = 500, heartbeat_ms = 1000, lease_timeout_s = 30;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sweep_worker: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--queue") {
            queue_dir = value();
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--drain") {
            opts.drain = true;
        } else if (arg == "--capacity") {
            const long n = std::atol(value().c_str());
            if (n < 1) {
                std::fprintf(stderr, "sweep_worker: --capacity "
                                     "must be >= 1\n");
                return 2;
            }
            opts.capacity = static_cast<std::size_t>(n);
        } else if (arg == "--max-cells") {
            opts.maxCells = static_cast<std::size_t>(
                std::atol(value().c_str()));
        } else if (arg == "--poll-ms") {
            poll_ms = std::atol(value().c_str());
        } else if (arg == "--heartbeat-ms") {
            heartbeat_ms = std::atol(value().c_str());
        } else if (arg == "--lease-timeout-s") {
            lease_timeout_s = std::atol(value().c_str());
        } else if (arg == "--worker-id") {
            opts.workerId = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr,
                         "sweep_worker: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (queue_dir.empty()) {
        std::fprintf(stderr, "sweep_worker: --queue is required\n");
        return 2;
    }
    // The id is embedded in claim/lease file names; a separator in
    // it would make every claim rename fail silently.
    for (const char c : opts.workerId) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        if (!ok) {
            std::fprintf(stderr,
                         "sweep_worker: --worker-id may only use "
                         "[A-Za-z0-9._-] (got \"%s\")\n",
                         opts.workerId.c_str());
            return 2;
        }
    }
    if (poll_ms <= 0 || heartbeat_ms <= 0 || lease_timeout_s <= 0) {
        std::fprintf(stderr,
                     "sweep_worker: intervals must be positive\n");
        return 2;
    }
    opts.poll = std::chrono::milliseconds(poll_ms);
    opts.heartbeat = std::chrono::milliseconds(heartbeat_ms);
    opts.leaseTimeout = std::chrono::seconds(lease_timeout_s);

    std::unique_ptr<exp::ResultCache> cache;
    try {
        cache = exp::resolveCache(std::move(cache_dir), false);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_worker: %s\n", e.what());
        return 2;
    }
    if (!cache) {
        std::fprintf(stderr,
                     "sweep_worker: a shared result cache is how "
                     "results are published — pass --cache-dir or "
                     "set SYSSCALE_CACHE_DIR\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    opts.shouldStop = [] { return g_stop != 0; };
    if (!quiet) {
        opts.onEvent = [](const std::string &line) {
            std::fprintf(stderr, "sweep_worker: %s\n", line.c_str());
        };
    }

    const std::string id =
        opts.workerId.empty() ? dist::makeWorkerId() : opts.workerId;
    opts.workerId = id;
    std::fprintf(stderr,
                 "sweep_worker: %s serving queue %s (cache %s, "
                 "capacity %zu%s)\n",
                 id.c_str(), queue_dir.c_str(),
                 cache->dir().c_str(), opts.capacity,
                 opts.drain ? ", drain mode" : "");

    dist::WorkerStats stats;
    try {
        stats = dist::runWorker(queue_dir, *cache, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_worker: %s\n", e.what());
        return 2;
    }

    std::fprintf(stderr,
                 "sweep_worker: %s done: %zu claimed, %zu simulated, "
                 "%zu already-complete, %zu failed, %zu stale "
                 "lease(s) reclaimed\n",
                 id.c_str(), stats.claimed, stats.simulated,
                 stats.cacheHits, stats.failures, stats.reclaims);
    return 0;
}
