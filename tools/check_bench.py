#!/usr/bin/env python3
"""Perf-ledger comparator (docs/ANALYSIS.md, ROADMAP hot-loop item).

Compares two google-benchmark JSON dumps — the committed ledger
baseline (bench/BENCH_pr<N>.json) against a fresh run::

    ./build/bench_micro --benchmark_format=json > /tmp/bench.json
    python3 tools/check_bench.py bench/BENCH_pr6.json /tmp/bench.json

Benchmarks are matched by name and compared on per-iteration cpu_time
(normalized across time units).  A benchmark slower than baseline by
more than --tolerance percent is a REGRESSION, faster by more is an
improvement worth re-baselining.

Warn-only by default for ad-hoc use; CI's "Perf ledger (strict)"
step passes --strict (regressions exit 1) with a widened --tolerance
to absorb shared-runner noise.  See docs/ANALYSIS.md for the
re-baselining recipe.
"""

import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Aggregate reruns (_mean/_median/...) would double-count;
        # keep plain iterations plus an explicit _median if present —
        # the median wins when both exist.  Dispersion aggregates
        # (_stddev/_cv) are not timings and are skipped outright, so
        # a repetitions-recorded baseline compares cleanly against a
        # single-run CI dump.
        name = b.get("name", "")
        agg = b.get("aggregate_name", "")
        if not agg:
            for suffix in ("_median", "_mean", "_stddev", "_cv"):
                if name.endswith(suffix):
                    agg = suffix[1:]
                    break
        if agg not in ("", "mean", "median"):
            continue
        base = name.split("_mean")[0].split("_median")[0]
        unit = UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        cpu_ns = float(b.get("cpu_time", 0.0)) * unit
        if agg == "median" or base not in out:
            out[base] = cpu_ns
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare google-benchmark JSON against the "
                    "committed perf-ledger baseline")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="fresh bench_micro JSON dump")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed slowdown in percent "
                             "(default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression (default: "
                             "warn-only)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    width = max((len(n) for n in cur), default=10)
    for name in sorted(cur):
        if name not in base:
            print("%-*s  %10.1f ns  (new, no baseline)" %
                  (width, name, cur[name]))
            continue
        if base[name] <= 0:
            continue
        delta = (cur[name] - base[name]) / base[name] * 100.0
        marker = ""
        if delta > args.tolerance:
            marker = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.tolerance:
            marker = "  improved (consider re-baselining)"
        print("%-*s  %10.1f ns  vs %10.1f ns  %+6.1f%%%s" %
              (width, name, cur[name], base[name], delta, marker))
    for name in sorted(set(base) - set(cur)):
        print("%-*s  dropped from the current run" % (width, name))

    if regressions:
        print("check_bench: %d regression(s) beyond %.1f%% tolerance"
              % (len(regressions), args.tolerance))
        if args.strict:
            return 1
        print("check_bench: warn-only mode — not failing "
              "(pass --strict to gate)")
        return 0
    print("check_bench: OK (%d benchmark(s) within %.1f%%)" %
          (len(cur), args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
