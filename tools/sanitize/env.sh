# Sanitizer runtime configuration for the analysis matrix.  Source
# this (POSIX sh) before running instrumented binaries, locally or in
# CI:
#
#     . tools/sanitize/env.sh
#     cd build-asan && ctest --output-on-failure
#
# halt_on_error=1 everywhere: the matrix is a gate, so the first
# finding fails the run instead of scrolling past.  Suppression files
# live next to this script; see docs/ANALYSIS.md for the policy on
# adding entries (third-party only, with reason strings).

sanitize_dir=$(CDPATH= cd -- "$(dirname -- "$0")" 2>/dev/null && pwd)
# When sourced (no meaningful $0), fall back to the repo-root layout.
if [ ! -f "$sanitize_dir/asan.supp" ]; then
    sanitize_dir=$(pwd)/tools/sanitize
fi

ASAN_OPTIONS="suppressions=$sanitize_dir/asan.supp:detect_leaks=1:halt_on_error=1:detect_stack_use_after_return=1"
LSAN_OPTIONS="suppressions=$sanitize_dir/lsan.supp"
UBSAN_OPTIONS="suppressions=$sanitize_dir/ubsan.supp:print_stacktrace=1:halt_on_error=1"
TSAN_OPTIONS="suppressions=$sanitize_dir/tsan.supp:halt_on_error=1:second_deadlock_stack=1"
export ASAN_OPTIONS LSAN_OPTIONS UBSAN_OPTIONS TSAN_OPTIONS
