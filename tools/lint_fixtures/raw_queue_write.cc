// Known-bad fixture: a queue-layer write that skips the tmp+rename
// protocol.  A crashed writer leaves a torn pending/ file a reader
// can claim.  Scanned as if it lived under src/dist/.
#include <fstream>
#include <string>

void publishRaw(const std::string &dir, const std::string &key,
                const std::string &text)
{
    std::ofstream os(dir + "/pending/" + key); // finding: raw write
    os << text;
}

void publishStaged(const std::string &dir, const std::string &key,
                   const std::string &text)
{
    const std::string tmp = dir + "/tmp/" + key;
    std::ofstream os(tmp); // ok: staged, renamed by the caller
    os << text;
}
