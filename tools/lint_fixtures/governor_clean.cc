// Clean fixture for the governor-soc-mutation check: a policy that
// reads the SoC freely but routes every grant through the driver.
// Virtual path: src/core/governor_zoo.cc (a policy-layer file).

void
GoodGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                     const soc::CounterSnapshot &avg)
{
    (void)avg;
    // Reads are unrestricted: policies observe, drivers apply.
    const double rho =
        soc.recentBandwidth() /
        soc.config().dramSpec.peakBandwidth(
            soc.opPoints().low().dramBin);
    // Sanctioned mechanics passthroughs.
    drv.setCoreFreqCap(rho > 0.7 ? 0.0 : 1.6e9);
    drv.setTransitionLatencyLimit(50 * kTicksPerUs);
    if (!drv.requestOpPoint(rho > 0.7 ? soc.opPoints().high()
                                      : soc.opPoints().low()))
        drv.refreshBudget();
}
