// Clean fixture: deterministic, tmp-staged, scanned as if under
// src/dist/ — must produce zero findings.
#include <fstream>
#include <random>
#include <string>

unsigned seededDraw(unsigned seed)
{
    std::mt19937 rng(seed); // deterministic: seed comes from the spec
    return rng();
}

void stagedWrite(const std::string &dir, const std::string &key,
                 const std::string &text)
{
    const std::string tmpPath = dir + "/tmp/" + key + ".0";
    std::ofstream os(tmpPath, std::ios::binary | std::ios::trunc);
    os << text;
}
