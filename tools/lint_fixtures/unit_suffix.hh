// Known-bad fixture: duration/power fields with no unit in the name.
// Scanned as if it lived under src/.  Is that timeout seconds?
// Milliseconds?  The reader cannot know; the review in PR 4 caught a
// real heartbeat-vs-lease mixup exactly like this.
#ifndef LINT_FIXTURE_UNIT_SUFFIX_HH
#define LINT_FIXTURE_UNIT_SUFFIX_HH

struct BadFields
{
    double leaseTimeout = 30.0;  // finding: unit-less duration
    double drawPower = 0.0;      // finding: unit-less power
    double latencyNs = 0.0;      // ok: camelCase unit suffix
    double lease_age_s = 0.0;    // ok: snake unit suffix
    // lint:allow unit-suffix -- fixture: dimensionless scale factor
    double energyScale = 1.0;
};

#endif
