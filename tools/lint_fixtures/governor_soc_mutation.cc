// Known-bad fixture for the governor-soc-mutation check: a policy
// that bypasses the driver and pokes the SoC directly.  Virtual
// path: src/core/governor_zoo.cc (a policy-layer file).

void
BadGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                    const soc::CounterSnapshot &avg)
{
    (void)drv;
    (void)avg;
    // Direct budget mutation: skips the driver's billing cadence.
    soc.setComputeBudget(1.5);
    // Direct core-clock cap: skips the mechanics passthrough.
    soc.cpu().setFreqCap(2.0e9);
    // Hand-rolled flow execution: skips the latency constraint and
    // the notifier chain entirely.
    flow_.execute(soc.opPoints().low());
    // "soc.setComputeBudget(0.0)" in a string must NOT trip.
    log("soc.setComputeBudget(0.0)");
    // A waived site with a reason is fine:
    // lint:allow governor-soc-mutation -- fixture: sanctioned seam
    soc.markInstalled();
}
