// Clean fixture: every quantity names its unit (or is genuinely
// dimensionless) — must produce zero findings.
#ifndef LINT_FIXTURE_CLEAN_HH
#define LINT_FIXTURE_CLEAN_HH

#include <chrono>

struct GoodFields
{
    double windowMs = 100.0;
    double avgLatencyNs = 0.0;
    double leaseAgeSeconds = 0.0;
    double idlePowerW = 0.0;
    double packageEnergyMj = 0.0;
    double utilization = 0.0; // dimensionless, no keyword
    std::chrono::milliseconds heartbeat{1000}; // type carries the unit
};

#endif
