// Known-bad fixture: every line below must trip the nondeterminism
// check when scanned as if it lived under src/.  Mentions of
// std::rand in comments like this one must NOT trip it.
#include <chrono>
#include <cstdlib>
#include <random>

int badSeed()
{
    std::random_device rd; // finding: nondeterministic seed
    return static_cast<int>(rd());
}

int badRand()
{
    return std::rand(); // finding: libc rand
}

double badClock()
{
    const auto now = std::chrono::system_clock::now(); // finding
    return std::chrono::duration<double>(
               now.time_since_epoch())
        .count();
}

double waivedClock()
{
    // lint:allow nondeterminism -- fixture: host-side seam example
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch())
        .count();
}
