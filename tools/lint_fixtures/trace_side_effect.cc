// Known-bad fixture for the trace-side-effect check: trace-macro
// arguments that mutate state.  The macros compile out under
// SYSSCALE_NO_TRACING and short-circuit when the sink is disabled,
// so these side effects run in some builds and not others.  Virtual
// path: src/soc/trace_side_effect.cc.

void
Traced::step(obs::TraceSink *sink)
{
    // Increment inside a counter sample: lost when tracing is off.
    TRACE_COUNTER(sink, obs::kCatPower, "rail", now_, ++samples_);
    // Compound assignment inside an instant's kv payload.
    TRACE_INSTANT(sink, obs::kCatScenario, "phase", now_,
                  obs::kv("total", total_ += delta_));
    // Bare assignment spanning lines inside a span argument list.
    TRACE_SPAN(sink, obs::kCatTransition, "drain", begin_,
               end_ = clock_.now(),
               obs::kv("steps", steps_));
    // Pure arguments must NOT trip: comparisons, calls, arithmetic.
    TRACE_COUNTER(sink, obs::kCatPower, "ok", now_,
                  samples_ >= limit_ ? limit_ : samples_ + 1);
    // "x = y" inside a string literal must NOT trip either.
    TRACE_INSTANT(sink, obs::kCatScenario, "note = raw", now_, "a = b");
    // A waived site with a reason is fine:
    // lint:allow trace-side-effect -- fixture: sanctioned seam
    TRACE_COUNTER(sink, obs::kCatPower, "waived", now_, tick_++);
}
