#!/usr/bin/env python3
"""Unit tests for the perf-ledger comparator (tools/check_bench.py).

The comparator is the strict CI gate behind the committed
bench/BENCH_pr*.json baselines, so its matching, aggregation, unit
normalization, tolerance arithmetic, and exit codes are pinned here.
Registered as the check_bench ctest target.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench  # noqa: E402


def bench_doc(entries):
    """A google-benchmark JSON document with the given benchmarks.

    Each entry is (name, cpu_time) or (name, cpu_time, time_unit).
    A _mean/_median/_stddev/_cv name suffix also stamps the
    aggregate_name field, like real google-benchmark output.
    """
    benchmarks = []
    for entry in entries:
        b = {"name": entry[0], "cpu_time": entry[1],
             "time_unit": entry[2] if len(entry) > 2 else "ns"}
        for agg in ("mean", "median", "stddev", "cv"):
            if entry[0].endswith("_" + agg):
                b["aggregate_name"] = agg
        benchmarks.append(b)
    return {"benchmarks": benchmarks}


class LoadTest(unittest.TestCase):
    def load(self, entries):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump(bench_doc(entries), f)
            path = f.name
        try:
            return check_bench.load(path)
        finally:
            os.unlink(path)

    def test_plain_names_match_directly(self):
        out = self.load([("BM_SocStep", 800.0), ("BM_Other", 5.0)])
        self.assertEqual(out, {"BM_SocStep": 800.0, "BM_Other": 5.0})

    def test_first_plain_iteration_wins_over_later_ones(self):
        out = self.load([("BM_X", 10.0), ("BM_X", 99.0)])
        self.assertEqual(out, {"BM_X": 10.0})

    def test_mean_aggregate_folds_to_base_name(self):
        # A _mean row only fills the slot when no plain row came first.
        out = self.load([("BM_X_mean", 12.0)])
        self.assertEqual(out, {"BM_X": 12.0})
        out = self.load([("BM_X", 10.0), ("BM_X_mean", 12.0)])
        self.assertEqual(out, {"BM_X": 10.0})

    def test_median_aggregate_overrides_everything(self):
        out = self.load([("BM_X", 10.0), ("BM_X_mean", 12.0),
                         ("BM_X_median", 11.0)])
        self.assertEqual(out, {"BM_X": 11.0})

    def test_dispersion_aggregates_are_skipped(self):
        # _stddev/_cv rows are spreads, not timings: they must not
        # surface as benchmarks of their own (they would show up as
        # phantom "dropped" rows against a single-run CI dump).
        out = self.load([("BM_X", 10.0), ("BM_X_median", 11.0),
                         ("BM_X_stddev", 3.0), ("BM_X_cv", 0.1)])
        self.assertEqual(out, {"BM_X": 11.0})

    def test_aggregates_only_recording_loads_cleanly(self):
        # --benchmark_report_aggregates_only emits no plain rows at
        # all; the median must still land under the base name.
        out = self.load([("BM_X_mean", 12.0), ("BM_X_median", 11.0),
                         ("BM_X_stddev", 3.0), ("BM_X_cv", 0.1)])
        self.assertEqual(out, {"BM_X": 11.0})

    def test_time_units_normalize_to_ns(self):
        out = self.load([("BM_Ns", 1.5, "ns"), ("BM_Us", 1.5, "us"),
                         ("BM_Ms", 1.5, "ms"), ("BM_S", 1.5, "s")])
        self.assertEqual(out["BM_Ns"], 1.5)
        self.assertEqual(out["BM_Us"], 1.5e3)
        self.assertEqual(out["BM_Ms"], 1.5e6)
        self.assertEqual(out["BM_S"], 1.5e9)

    def test_unknown_unit_falls_back_to_ns(self):
        out = self.load([("BM_X", 2.0, "fortnights")])
        self.assertEqual(out, {"BM_X": 2.0})

    def test_empty_document(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({}, f)
            path = f.name
        try:
            self.assertEqual(check_bench.load(path), {})
        finally:
            os.unlink(path)


class MainTest(unittest.TestCase):
    def run_main(self, base_entries, cur_entries, extra_args=()):
        paths = []
        for entries in (base_entries, cur_entries):
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".json", delete=False) as f:
                json.dump(bench_doc(entries), f)
                paths.append(f.name)
        try:
            return check_bench.main(paths + list(extra_args))
        finally:
            for p in paths:
                os.unlink(p)

    def test_identical_runs_pass(self):
        entries = [("BM_X", 100.0), ("BM_Y", 5.0)]
        self.assertEqual(self.run_main(entries, entries), 0)
        self.assertEqual(
            self.run_main(entries, entries, ["--strict"]), 0)

    def test_regression_warns_but_passes_by_default(self):
        rc = self.run_main([("BM_X", 100.0)], [("BM_X", 150.0)])
        self.assertEqual(rc, 0)

    def test_regression_fails_strict(self):
        rc = self.run_main([("BM_X", 100.0)], [("BM_X", 150.0)],
                           ["--strict"])
        self.assertEqual(rc, 1)

    def test_tolerance_edge_is_not_a_regression(self):
        # delta must be strictly beyond the tolerance to regress:
        # exactly +10% passes, the next representable step fails.
        self.assertEqual(
            self.run_main([("BM_X", 100.0)], [("BM_X", 110.0)],
                          ["--strict"]), 0)
        self.assertEqual(
            self.run_main([("BM_X", 100.0)], [("BM_X", 110.001)],
                          ["--strict"]), 1)

    def test_custom_tolerance(self):
        args = ["--strict", "--tolerance", "50"]
        self.assertEqual(
            self.run_main([("BM_X", 100.0)], [("BM_X", 149.0)], args),
            0)
        self.assertEqual(
            self.run_main([("BM_X", 100.0)], [("BM_X", 151.0)], args),
            1)

    def test_improvement_is_not_a_failure(self):
        rc = self.run_main([("BM_X", 100.0)], [("BM_X", 10.0)],
                           ["--strict"])
        self.assertEqual(rc, 0)

    def test_cross_unit_comparison(self):
        # 1.0us baseline vs 2.0ms current = a 2000x regression even
        # though the raw cpu_time numbers moved the other way.
        rc = self.run_main([("BM_X", 900.0, "us")],
                           [("BM_X", 2.0, "ms")], ["--strict"])
        self.assertEqual(rc, 1)

    def test_new_benchmark_without_baseline_passes(self):
        rc = self.run_main([("BM_X", 100.0)],
                           [("BM_X", 100.0), ("BM_New", 1.0)],
                           ["--strict"])
        self.assertEqual(rc, 0)

    def test_dropped_benchmark_passes(self):
        rc = self.run_main([("BM_X", 100.0), ("BM_Gone", 1.0)],
                           [("BM_X", 100.0)], ["--strict"])
        self.assertEqual(rc, 0)

    def test_zero_baseline_is_skipped(self):
        rc = self.run_main([("BM_X", 0.0)], [("BM_X", 100.0)],
                           ["--strict"])
        self.assertEqual(rc, 0)

    def test_median_aggregates_drive_the_comparison(self):
        # The baseline's plain row regressed but its median did not:
        # medians win, so strict passes.
        rc = self.run_main(
            [("BM_X", 100.0), ("BM_X_median", 200.0)],
            [("BM_X", 205.0), ("BM_X_median", 205.0)], ["--strict"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
