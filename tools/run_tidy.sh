#!/bin/sh
# clang-tidy ratchet (docs/ANALYSIS.md).
#
# Runs the .clang-tidy profile over every first-party translation
# unit, normalizes the findings (repo-relative paths, line/column
# numbers stripped so moving code never counts as a new finding), and
# compares them against the committed baseline
# tools/tidy_baseline.txt:
#
#   * a normalized finding with more occurrences than the baseline
#     records is NEW -> exit 1 (CI fails),
#   * a finding that disappeared is burn-down; run with
#     --update-baseline to shrink the file and commit it,
#   * the baseline never grows except by deliberate commit.
#
# Usage: tools/run_tidy.sh [--update-baseline] [--build-dir DIR]
#
# Gating: exits 0 with a notice when clang-tidy is not installed
# (e.g. the gcc-only dev container); CI installs it and runs the real
# ratchet.  Override the binary with $CLANG_TIDY.
#
# Bootstrap: while the baseline file contains the marker line
# "# status: uninitialized" the script reports findings and exits 0,
# printing the --update-baseline instruction — the one-time state
# before the first machine with clang-tidy commits the real baseline.
# Once initialized, any new finding fails.

set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

baseline=tools/tidy_baseline.txt
build_dir=build
update=0

while [ $# -gt 0 ]; do
    case "$1" in
      --update-baseline) update=1 ;;
      --build-dir) shift; build_dir=$1 ;;
      *) echo "usage: tools/run_tidy.sh [--update-baseline]" \
             "[--build-dir DIR]" >&2; exit 2 ;;
    esac
    shift
done

# ---- locate clang-tidy (gated, not required) ------------------------
tidy=${CLANG_TIDY:-}
if [ -z "$tidy" ]; then
    for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" >/dev/null 2>&1; then
            tidy=$cand
            break
        fi
    done
fi
if [ -z "$tidy" ]; then
    echo "run_tidy: clang-tidy not installed; skipping (the CI tidy" \
         "job runs the real ratchet)"
    exit 0
fi

# ---- compile database ----------------------------------------------
if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: generating $build_dir/compile_commands.json"
    cmake -B "$build_dir" -S . >/dev/null || exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: no compile_commands.json in $build_dir" >&2
    exit 2
fi

# ---- run over every first-party TU ---------------------------------
# tests/ TUs are included: concurrency checks on the test harness
# matter (it spawns workers).  gtest/benchmark system headers stay
# outside HeaderFilterRegex.
sources=$(find src tools bench tests -name '*.cc' | sort)

raw=$(mktemp) || exit 2
current=$(mktemp) || exit 2
trap 'rm -f "$raw" "$current"' EXIT

status=0
for tu in $sources; do
    "$tidy" -p "$build_dir" --quiet "$tu" >>"$raw" 2>/dev/null ||
        status=$?
done
# clang-tidy exits non-zero on findings too; a missing-binary error
# would have been caught above, so only report, never die, here.
[ "$status" -ne 0 ] && [ ! -s "$raw" ] &&
    echo "run_tidy: warning: clang-tidy exited $status with no output"

# ---- normalize ------------------------------------------------------
# "/abs/path/src/foo.cc:12:34: warning: msg [check]" ->
# "src/foo.cc: warning: msg [check]", counted per distinct finding so
# a second identical instance in one file still registers as new.
grep -E ':[0-9]+:[0-9]+: (warning|error):' "$raw" |
    sed "s|^$repo_root/||" |
    sed -E 's/:[0-9]+:[0-9]+:/:/' |
    sort | uniq -c | sed -E 's/^ *([0-9]+) /\1 /' >"$current"

if [ "$update" -eq 1 ]; then
    {
        echo "# clang-tidy ratchet baseline (tools/run_tidy.sh)."
        echo "# Format: <count> <file>: <severity>: <message> [check]"
        echo "# Regenerate with: tools/run_tidy.sh --update-baseline"
        echo "# status: initialized"
        cat "$current"
    } >"$baseline"
    echo "run_tidy: baseline updated ($(grep -c . "$current")" \
         "distinct finding(s)); commit $baseline"
    exit 0
fi

bootstrap=0
grep -q '^# status: uninitialized' "$baseline" 2>/dev/null &&
    bootstrap=1

# ---- ratchet compare ------------------------------------------------
# A current line is NEW when its count exceeds the baseline count for
# the same normalized finding (including count 0 = not in baseline).
new_findings=$(
    awk 'NR==FNR {
             if ($0 ~ /^#/) next
             count = $1; $1 = ""; base[$0] = count; next
         }
         {
             count = $1; $1 = ""
             if (!($0 in base) || count + 0 > base[$0] + 0)
                 print count $0
         }' "$baseline" "$current"
)

# Baseline first: it always has header lines, so the NR==FNR file
# split is safe even when the current run is completely clean.
gone=$(
    awk 'NR==FNR {
             if ($0 ~ /^#/) next
             $1 = ""; base[$0] = 1; next
         }
         { $1 = ""; delete base[$0] }
         END { n = 0; for (k in base) n++; print n }' \
        "$baseline" "$current"
)

total=$(grep -c . "$current")
echo "run_tidy: $total distinct finding(s) currently," \
     "$gone burned down vs baseline"

if [ -n "$new_findings" ]; then
    echo "run_tidy: NEW findings vs $baseline:"
    echo "$new_findings" | sed 's/^/  /'
    if [ "$bootstrap" -eq 1 ]; then
        echo "run_tidy: baseline is uninitialized (bootstrap mode):" \
             "not failing. Initialize it on a machine with" \
             "clang-tidy via: tools/run_tidy.sh --update-baseline"
        exit 0
    fi
    echo "run_tidy: fix them, or if pre-existing debt moved," \
         "regenerate with --update-baseline and justify in review"
    exit 1
fi

if [ "$gone" -gt 0 ]; then
    echo "run_tidy: baseline can shrink — run" \
         "'tools/run_tidy.sh --update-baseline' and commit"
fi
echo "run_tidy: OK (no new findings)"
exit 0
