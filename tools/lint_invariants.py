#!/usr/bin/env python3
"""Repo-invariant linter: enforces what generic tools cannot.

The simulator's guarantees live above the type system: byte-identical
parallel/distributed/cached sweeps, crash-safe tmp+rename queue
writes, and a versioned spec codec whose key must change whenever
semantics do.  Each invariant is a registered check (see CHECKS);
``--list-checks`` prints the registry, docs/ANALYSIS.md documents
every check (enforced by tools/check_docs.sh).

Checks
------
nondeterminism
    No nondeterminism sources in src/: std::rand/srand,
    std::random_device, wall/monotonic clock reads
    (system_clock/steady_clock/high_resolution_clock, time(),
    gettimeofday, clock_gettime), localtime/gmtime.  Simulation must
    be a pure function of the spec; host-side seams (host-seconds
    measurement, the dispatcher's stall clock, the queue's injectable
    wallClock fallback) carry explicit waivers.

raw-queue-write
    Inside the queue/cache layers (src/dist/, src/exp/cache.cc) every
    std::ofstream must target a tmp-staged path (atomic tmp+rename
    publication).  In-place rewrites whose only signal is the mtime
    (lease heartbeats, the staleness probe) carry waivers at the
    site.

unit-suffix
    Arithmetic-typed duration/power fields in src/ headers must name
    their unit: a field whose name says latency/timeout/power/...
    must end in a recognized unit suffix (_ns/_ms/_s/_w/... or the
    camelCase Ns/Ms/Seconds/Mw/... equivalents).  std::chrono and
    unit-typedef'd fields are exempt — their type carries the unit.

governor-soc-mutation
    Governor *policy* files (src/core/governor* minus the
    governor.{cc,hh} host and governor_driver.{cc,hh} mechanics)
    never mutate the SoC directly: no ``soc.setX(...)`` /
    ``soc.cpu().setX(...)`` calls, no hand-rolled flow
    ``execute()``.  Every grant goes through the GovernorDriver
    (requestOpPoint/setCoreFreqCap/refreshBudget) so transition-
    latency constraints and the notifier chain stay in the loop.
    Reads are unrestricted — policies observe, drivers apply.

trace-side-effect
    Arguments to the tracing macros (TRACE_SPAN / TRACE_INSTANT /
    TRACE_COUNTER, src/obs/trace.hh) must be pure expressions: no
    ``++``/``--``, no assignment, no compound assignment.  The macros
    compile to nothing under SYSSCALE_NO_TRACING and short-circuit
    when the sink is disabled, so a side effect in an argument runs
    in some builds and not others — the exact heisenbug the
    deterministic-trace contract exists to rule out.

spec-version-guard
    Diff mode only (--diff-base/--diff-file): a diff that touches
    src/exp/spec_codec.* or any spec-serialized header must also
    change kSpecFormatVersion, or carry an explicit waiver line
    ``spec-version-waiver: <reason>`` among its additions.  Catches
    the silent cache-poisoning change: semantics moved, key did not.

snap-version-guard
    Diff mode only: the same contract for the snapshot codec — a
    diff touching src/sim/snapshot.* must also change
    kSnapFormatVersion or carry ``snap-version-waiver: <reason>``.
    A format change without a bump lets a stale checkpoint restore
    into a build that reads its bytes differently; the golden
    fixture (snap_inspect check) catches behavioural drift, this
    guard catches the codec itself moving.

Waiver syntax
-------------
A finding is waived by a comment on the flagged line or in the
//-comment block directly above it::

    // lint:allow <check-name> -- <reason>

The reason is mandatory; an empty reason is itself a finding.  The
spec-version-guard waiver is a line added in the diff (any file)::

    spec-version-waiver: <reason>

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
``--self-test`` runs the fixture corpus under tools/lint_fixtures/
(known-bad snippets must trip their check, clean ones must not) and
is wired as the ctest target ``lint_selftest``.
"""

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint_fixtures")

# Headers whose structures ride the spec codec: a change here without
# a kSpecFormatVersion bump silently poisons every cache/queue key.
SPEC_SERIALIZED = (
    "src/exp/spec_codec.cc",
    "src/exp/spec_codec.hh",
    "src/exp/experiment.hh",
    "src/soc/config.hh",
    "src/dram/spec.hh",
    "src/workloads/profile.hh",
    "src/workloads/scenario.hh",
    "src/compute/cstates.hh",
)

WAIVER_RE = re.compile(
    r"//\s*lint:allow\s+(?P<check>[a-z-]+)\s*(?:--\s*(?P<reason>.*\S))?")


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


CHECKS = {}


def check(name, doc):
    def register(fn):
        fn.check_name = name
        fn.check_doc = doc
        CHECKS[name] = fn
        return fn
    return register


def strip_comments(lines):
    """Return lines with comments and string literals blanked (same
    length/positions), so patterns never match prose or log text.
    Line-oriented: handles //, /* */ across lines, and "..." within a
    line — enough for this codebase's style."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i, n = 0, len(line)
        in_str = False
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif in_str:
                if c == "\\" and i + 1 < n:
                    buf.append("  ")
                    i += 2
                elif c == '"':
                    in_str = False
                    buf.append('"')
                    i += 1
                else:
                    buf.append(" ")
                    i += 1
            elif line.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif c == '"':
                in_str = True
                buf.append('"')
                i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


def waived(check_name, lines, idx, findings, path):
    """True when line idx (0-based) or the comment block directly
    above carries a ``lint:allow <check>`` waiver with a non-empty
    reason.  The upward scan walks contiguous //-comment lines so a
    multi-line waiver comment works."""
    probes = [idx]
    up = idx - 1
    while up >= 0 and lines[up].lstrip().startswith("//"):
        probes.append(up)
        up -= 1
    for probe in probes:
        m = WAIVER_RE.search(lines[probe])
        if m and m.group("check") == check_name:
            if not m.group("reason"):
                findings.append(Finding(
                    check_name, path, probe + 1,
                    "waiver without a reason (write "
                    "'// lint:allow %s -- <why>')" % check_name))
            return True
    return False


NONDET_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*rand\b|\bsrand\s*\("),
     "libc rand — use the seeded sim RNG (src/sim/random.hh)"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic — seed from the spec"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "clock read — simulation must be a pure function of the spec"),
    (re.compile(r"\bfile_time_type\s*::\s*clock\b"),
     "filesystem clock read outside the injectable wallClock seam"),
    (re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
     "wall-clock syscall"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time() read"),
    (re.compile(r"\b(localtime|gmtime)\s*\("),
     "wall-clock conversion"),
)


@check("nondeterminism",
       "no RNG/clock nondeterminism in src/ outside waived host-side "
       "seams")
def check_nondeterminism(path, lines, findings):
    if not path.startswith("src/"):
        return
    code = strip_comments(lines)
    for i, line in enumerate(code):
        for pat, why in NONDET_PATTERNS:
            if pat.search(line) and not waived("nondeterminism", lines,
                                               i, findings, path):
                findings.append(Finding(
                    "nondeterminism", path, i + 1, why))


OFSTREAM_RE = re.compile(r"\bstd\s*::\s*ofstream\s+\w+\s*[({]"
                         r"(?P<arg>[^,)}]*)")


@check("raw-queue-write",
       "queue/cache layers write through tmp+rename only (no raw "
       "std::ofstream to a final path)")
def check_raw_queue_write(path, lines, findings):
    if not (path.startswith("src/dist/") or path == "src/exp/cache.cc"):
        return
    code = strip_comments(lines)
    for i, line in enumerate(code):
        m = OFSTREAM_RE.search(line)
        if not m:
            continue
        # A tmp-staged write names its staging path: the constructor
        # argument references a 'tmp' variable/path component.
        if re.search(r"tmp", m.group("arg"), re.IGNORECASE):
            continue
        if waived("raw-queue-write", lines, i, findings, path):
            continue
        findings.append(Finding(
            "raw-queue-write", path, i + 1,
            "std::ofstream to a non-tmp path — publish via the "
            "tmp+rename helper so readers never see a torn file"))


ARITH_DECL_RE = re.compile(
    r"^\s*(?:const\s+|constexpr\s+|static\s+|mutable\s+)*"
    r"(?:double|float|int|long(?:\s+long)?|unsigned(?:\s+\w+)?"
    r"|std::size_t|size_t|u?int\d+_t|Hertz)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")
UNIT_KEYWORD_RE = re.compile(
    r"(time|duration|timeout|interval|latency|period|delay|elapsed"
    r"|age|power|energy)", re.IGNORECASE)
def has_unit_suffix(name):
    # camelCase (latencyNs, elapsedSeconds) or snake (_ms, lease_age_s),
    # with an optional member underscore (lastMemLatencyNs_).
    base = name.rstrip("_")
    return bool(re.search(
        r"(Ns|Us|Ms|Sec|Seconds|Min|Hz|Khz|Mhz|Ghz|W|Mw|Kw|Watts"
        r"|J|Mj|Pj|Joules|V|Mv)$", base) or re.search(
        r"_(ns|us|ms|s|sec|secs|seconds|min|mins|hz|khz|mhz|ghz"
        r"|w|mw|kw|watts|j|mj|pj|joules|v|mv)$", base))


@check("unit-suffix",
       "arithmetic duration/power fields in src/ headers carry a unit "
       "suffix (_ms/_ns/_s/_w or Ns/Ms/Seconds/Mw ...)")
def check_unit_suffix(path, lines, findings):
    if not (path.startswith("src/") and path.endswith(".hh")):
        return
    code = strip_comments(lines)
    for i, line in enumerate(code):
        m = ARITH_DECL_RE.match(line)
        if not m:
            continue
        name = m.group("name")
        if not UNIT_KEYWORD_RE.search(name):
            continue
        # Counts of things are dimensionless even when the thing
        # counted is a duration (kMemLatencyMaxPasses).
        if re.search(r"(count|passes|iters|iterations|retries"
                     r"|attempts|cells|rows)_?$", name, re.IGNORECASE):
            continue
        if has_unit_suffix(name):
            continue
        if waived("unit-suffix", lines, i, findings, path):
            continue
        findings.append(Finding(
            "unit-suffix", path, i + 1,
            "field '%s' reads like a duration/power quantity but "
            "names no unit — suffix it (_ms/_ns/_s/_w or "
            "Ns/Ms/Seconds/Mw) or use a std::chrono type" % name))


# The CPUFreq-style layering (docs/ARCHITECTURE.md): policy files
# decide, the GovernorDriver applies.  Mechanics files are exempt —
# they ARE the layer that touches the SoC.
GOVERNOR_MECHANICS_FILES = (
    "src/core/governor.cc", "src/core/governor.hh",
    "src/core/governor_driver.cc", "src/core/governor_driver.hh",
)
# The receiver directly preceding a flagged call: `soc.setX(` gives
# 'soc', `soc.cpu().setX(` gives 'cpu()'.  Driver receivers are the
# sanctioned path.
GOVERNOR_MUTATOR_RE = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:\s*\(\s*\))?)\s*\.\s*"
    r"(?P<call>set[A-Z]\w*|execute|markInstalled|run)\s*\(")
GOVERNOR_DRIVER_RECEIVERS = re.compile(
    r"^(drv_?|driver\s*\(\s*\))$")


@check("governor-soc-mutation",
       "governor policy files never mutate the SoC directly — every "
       "grant goes through the GovernorDriver")
def check_governor_soc_mutation(path, lines, findings):
    if not (path.startswith("src/core/governor") and
            path.endswith((".cc", ".hh"))):
        return
    if path in GOVERNOR_MECHANICS_FILES:
        return
    code = strip_comments(lines)
    for i, line in enumerate(code):
        for m in GOVERNOR_MUTATOR_RE.finditer(line):
            recv = re.sub(r"\s+", "", m.group("recv"))
            if GOVERNOR_DRIVER_RECEIVERS.match(recv):
                continue
            if waived("governor-soc-mutation", lines, i, findings,
                      path):
                continue
            findings.append(Finding(
                "governor-soc-mutation", path, i + 1,
                "policy-layer call '%s.%s(...)' mutates the SoC "
                "directly — route it through the GovernorDriver "
                "(requestOpPoint/setCoreFreqCap/refreshBudget) so "
                "latency constraints and notifiers stay in the "
                "loop" % (m.group("recv"), m.group("call"))))


def _version_guard(diff_text, findings, check_name, guarded_files,
                   constant, waiver_key, message):
    """Shared engine of the two codec-version guards."""
    touched = set()
    bumped = False
    waiver = None
    current = None
    for line in diff_text.splitlines():
        m = re.match(r"\+\+\+ (?:b/)?(.+)", line)
        if m:
            current = m.group(1).strip()
            continue
        if line.startswith("+") and not line.startswith("+++"):
            body = line[1:]
            if constant in body and "=" in body:
                bumped = True
            wm = re.search(waiver_key + r":\s*(\S.*)", body)
            if wm:
                waiver = wm.group(1)
        if line.startswith(("+", "-")) and not \
                line.startswith(("+++", "---")):
            if current in guarded_files:
                touched.add(current)
        # Deleting the constant alone must not count as a bump.
    if touched and not bumped and not waiver:
        findings.append(Finding(
            check_name, ", ".join(sorted(touched)), 0, message))


@check("spec-version-guard",
       "a diff touching spec_codec.* or a spec-serialized header must "
       "bump kSpecFormatVersion or carry a spec-version-waiver line")
def check_spec_version_guard(diff_text, findings):
    _version_guard(
        diff_text, findings, "spec-version-guard", SPEC_SERIALIZED,
        "kSpecFormatVersion", "spec-version-waiver",
        "spec-serialized code changed without a kSpecFormatVersion "
        "bump — bump it (and re-bake codec goldens) or add a line "
        "'spec-version-waiver: <reason>' to the diff if the change "
        "is provably encoding-neutral")


# The snapshot codec itself: a format change without a version bump
# lets a stale checkpoint restore into a build that decodes its bytes
# differently.  Component saveState() bodies are deliberately NOT
# listed — the golden fixture test (snap_inspect check) pins those,
# field by named field.
SNAP_SERIALIZED = (
    "src/sim/snapshot.cc",
    "src/sim/snapshot.hh",
)


@check("snap-version-guard",
       "a diff touching sim/snapshot.* must bump kSnapFormatVersion "
       "or carry a snap-version-waiver line")
def check_snap_version_guard(diff_text, findings):
    _version_guard(
        diff_text, findings, "snap-version-guard", SNAP_SERIALIZED,
        "kSnapFormatVersion", "snap-version-waiver",
        "snapshot codec changed without a kSnapFormatVersion bump — "
        "bump it (and re-bake tests/data/videoconf.t1s.snap with "
        "snap_inspect bake-golden) or add a line "
        "'snap-version-waiver: <reason>' to the diff if the change "
        "is provably encoding-neutral")


# The macro expansion guards every argument behind TRACE_ACTIVE (and
# the whole call behind SYSSCALE_NO_TRACING), so argument evaluation
# is conditional on the build and the sink state.  Any mutation in an
# argument therefore changes simulation behavior when tracing is
# toggled — flag ++/--, compound assignment, and bare assignment.
TRACE_MACRO_RE = re.compile(
    r"\b(?:TRACE_SPAN|TRACE_INSTANT|TRACE_COUNTER)\s*\(")
TRACE_SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|[+\-*/%&|^]=|<<=|>>="
    r"|(?<![=!<>+\-*/%&|^\[])=(?!=)")


@check("trace-side-effect",
       "TRACE_SPAN/TRACE_INSTANT/TRACE_COUNTER arguments are pure — "
       "no ++/--/assignment inside a macro that may not evaluate "
       "them")
def check_trace_side_effect(path, lines, findings):
    if not path.endswith((".cc", ".hh")):
        return
    if path == "src/obs/trace.hh":  # the macro definitions themselves
        return
    code = strip_comments(lines)
    for i, line in enumerate(code):
        m = TRACE_MACRO_RE.search(line)
        if not m:
            continue
        # Collect the balanced-paren argument list, spanning lines.
        depth = 0
        arg_chars = []
        row, col = i, m.end() - 1
        done = False
        while row < len(code) and not done:
            text = code[row]
            while col < len(text):
                c = text[col]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        done = True
                        break
                if depth >= 1:
                    arg_chars.append(c)
                col += 1
            arg_chars.append(" ")
            row += 1
            col = 0
        args = "".join(arg_chars)
        if not TRACE_SIDE_EFFECT_RE.search(args):
            continue
        if waived("trace-side-effect", lines, i, findings, path):
            continue
        findings.append(Finding(
            "trace-side-effect", path, i + 1,
            "trace-macro argument contains ++/--/assignment — the "
            "macro skips argument evaluation when tracing is off, so "
            "the side effect makes traced and untraced runs diverge; "
            "hoist the mutation out of the macro call"))


SOURCE_CHECKS = ("nondeterminism", "raw-queue-write", "unit-suffix",
                 "governor-soc-mutation", "trace-side-effect")


def iter_source_files(root):
    for dirpath, dirnames, filenames in os.walk(os.path.join(root,
                                                             "src")):
        dirnames[:] = [d for d in dirnames if d != "build"]
        for name in sorted(filenames):
            if name.endswith((".cc", ".hh")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


def run_source_checks(root, findings):
    for rel in iter_source_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        for name in SOURCE_CHECKS:
            CHECKS[name](rel, lines, findings)


def git_diff(base, root):
    cmd = ["git", "-C", root, "diff", "--unified=0", base, "--"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError("git diff %s failed: %s" %
                           (base, proc.stderr.strip()))
    return proc.stdout


# ----------------------------------------------------------------------
# Self-test: every known-bad fixture must trip exactly its check, and
# the clean fixtures must not trip anything.  Fixture paths are mapped
# to virtual src/ paths so the applicability rules are exercised too.
# ----------------------------------------------------------------------
FIXTURES = (
    # (fixture file, virtual path, check, min findings)
    ("nondeterminism.cc", "src/sim/nondeterminism.cc",
     "nondeterminism", 3),
    ("raw_queue_write.cc", "src/dist/raw_queue_write.cc",
     "raw-queue-write", 1),
    ("unit_suffix.hh", "src/soc/unit_suffix.hh", "unit-suffix", 2),
    ("governor_soc_mutation.cc", "src/core/governor_zoo.cc",
     "governor-soc-mutation", 3),
    ("trace_side_effect.cc", "src/soc/trace_side_effect.cc",
     "trace-side-effect", 3),
    ("clean.cc", "src/dist/clean.cc", None, 0),
    ("clean.hh", "src/soc/clean.hh", None, 0),
    ("governor_clean.cc", "src/core/governor_zoo.cc", None, 0),
)
DIFF_FIXTURES = (
    ("spec_change_no_bump.diff", 1),
    ("spec_change_bump.diff", 0),
    ("spec_change_waiver.diff", 0),
    ("non_spec_change.diff", 0),
    ("snap_change_no_bump.diff", 1),
    ("snap_change_bump.diff", 0),
    ("snap_change_waiver.diff", 0),
)

DIFF_CHECKS = ("spec-version-guard", "snap-version-guard")


def run_diff_checks(diff_text, findings):
    for name in DIFF_CHECKS:
        CHECKS[name](diff_text, findings)


def self_test():
    failures = []
    for fname, vpath, expect_check, min_count in FIXTURES:
        with open(os.path.join(FIXTURE_DIR, fname),
                  encoding="utf-8") as f:
            lines = f.read().splitlines()
        findings = []
        for name in SOURCE_CHECKS:
            CHECKS[name](vpath, lines, findings)
        if expect_check is None:
            if findings:
                failures.append("%s: expected clean, got:\n  %s" %
                                (fname, "\n  ".join(map(str,
                                                        findings))))
        else:
            hits = [f for f in findings if f.check == expect_check]
            if len(hits) < min_count:
                failures.append(
                    "%s: expected >=%d %s finding(s), got %d" %
                    (fname, min_count, expect_check, len(hits)))
            stray = [f for f in findings if f.check != expect_check]
            if stray:
                failures.append("%s: stray findings:\n  %s" %
                                (fname, "\n  ".join(map(str, stray))))
    for fname, expect in DIFF_FIXTURES:
        with open(os.path.join(FIXTURE_DIR, fname),
                  encoding="utf-8") as f:
            diff = f.read()
        findings = []
        run_diff_checks(diff, findings)
        if len(findings) != expect:
            failures.append("%s: expected %d version-guard finding(s), "
                            "got %d" % (fname, expect, len(findings)))
    if failures:
        print("lint_invariants --self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    print("lint_invariants --self-test: OK (%d fixtures)" %
          (len(FIXTURES) + len(DIFF_FIXTURES)))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="SysScale repo-invariant linter "
                    "(docs/ANALYSIS.md)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint")
    parser.add_argument("--diff-base", metavar="REF",
                        help="also run the spec/snap version guards "
                             "against git diff REF")
    parser.add_argument("--diff-file", metavar="PATH",
                        help="run the spec/snap version guards "
                             "against a unified diff file (testing)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check registry and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print("%-20s %s" % (name, CHECKS[name].check_doc))
        return 0
    if args.self_test:
        return self_test()

    findings = []
    run_source_checks(args.root, findings)
    if args.diff_file:
        with open(args.diff_file, encoding="utf-8") as f:
            run_diff_checks(f.read(), findings)
    elif args.diff_base:
        try:
            run_diff_checks(git_diff(args.diff_base, args.root),
                            findings)
        except RuntimeError as e:
            print("lint_invariants: %s" % e, file=sys.stderr)
            return 2

    for f in findings:
        print(f)
    if findings:
        print("lint_invariants: %d finding(s)" % len(findings))
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
