/**
 * @file
 * snap_inspect: decode, compare, and regression-check simulator
 * snapshots (sim/snapshot.hh).
 *
 * The snapshot format is deliberately line-oriented text so a
 * divergence bisects to a *named field* instead of a byte offset.
 * This tool closes the loop:
 *
 *   snap_inspect dump FILE           # decoded view: doubles shown
 *                                    # as %.17g next to their bit
 *                                    # pattern, diff(1)-friendly
 *   snap_inspect diff A B            # field-level diff of two
 *                                    # snapshots (exit 1 on any)
 *   snap_inspect check GOLDEN        # re-simulate the builtin
 *                                    # golden cell and byte-compare
 *                                    # against GOLDEN (exit 1 on
 *                                    # divergence)
 *   snap_inspect bake-golden OUT     # write the golden snapshot
 *
 * The golden cell is the repo's videoconf reference scenario
 * (web-browsing base workload + the registered "videoconf" scenario,
 * sysscale governor, warmup 200 ms, window 2 s) checkpointed at
 * t = 1 s. The committed fixture lives at
 * tests/data/videoconf.t1s.snap and `check` runs as a ctest: any
 * change to serialized state — a new field, a reordered section, a
 * behavioural drift in the first simulated second — shows up as a
 * named-field diff, and intentional changes are rebaked with
 * `bake-golden` plus a kSnapFormatVersion bump.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/experiment.hh"
#include "sim/snapshot.hh"
#include "workloads/battery.hh"
#include "workloads/scenario.hh"

using namespace sysscale;

namespace {

/**
 * The command registry; tools/check_docs.sh extracts these names
 * and insists each is documented in docs/OPERATIONS.md.
 */
const char *const kSubcommands[] = {
    "dump",
    "diff",
    "check",
    "bake-golden",
};

void
usage()
{
    std::printf(
        "usage: snap_inspect <command> [args]\n"
        "commands:\n"
        "  dump FILE        decoded field-by-field view of a\n"
        "                   snapshot; 16-hex doubles are annotated\n"
        "                   with their %%.17g value (read-only)\n"
        "  diff A B         field-level comparison of two\n"
        "                   snapshots; prints every differing key\n"
        "                   and exits 1 when they differ\n"
        "  check GOLDEN     re-simulate the builtin golden cell\n"
        "                   (videoconf @ t=1s) and byte-compare the\n"
        "                   snapshot against GOLDEN; exits 1 and\n"
        "                   prints the field diff on divergence\n"
        "  bake-golden OUT  simulate the golden cell and write its\n"
        "                   snapshot to OUT\n");
}

/** One decoded `key = value` line of a snapshot body. */
struct Field
{
    std::string key;
    std::string value;
};

/**
 * Header + body fields of a validated snapshot. Validation goes
 * through SnapshotReader first so a corrupt file fails with the
 * codec's own loud message, then the (now trusted) text is split
 * line-wise: the reader API is typed and consuming, which is right
 * for restore but wrong for a generic viewer.
 */
struct Decoded
{
    std::string specKey;
    Tick tick = 0;
    std::vector<Field> fields;
};

Decoded
decode(const std::string &path)
{
    const std::string text = readSnapshotFile(path);
    SnapshotReader reader(text); // full validation, throws on rot

    Decoded out;
    out.specKey = reader.specKey();
    out.tick = reader.tick();

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        const std::size_t sep = line.find(" = ");
        if (sep == std::string::npos)
            continue; // header line
        const std::string key = line.substr(0, sep);
        if (key == "spec" || key == "tick" || key == "checksum")
            continue;
        out.fields.push_back({key, line.substr(sep + 3)});
    }
    return out;
}

/** Whether @p v looks like an encoded double (16 lowercase hex). */
bool
isHex16(const std::string &v)
{
    if (v.size() != 16)
        return false;
    for (const char c : v) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

/** Render a value for humans: bit pattern plus %.17g when double. */
std::string
pretty(const std::string &v)
{
    if (!isHex16(v))
        return v;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s (%.17g)", v.c_str(),
                  decodeDouble(v));
    return buf;
}

int
cmdDump(const std::string &path)
{
    const Decoded d = decode(path);
    std::printf("file     %s\n", path.c_str());
    std::printf("format   v%d\n", kSnapFormatVersion);
    std::printf("spec     %s\n", d.specKey.c_str());
    std::printf("tick     %llu\n",
                static_cast<unsigned long long>(d.tick));
    std::printf("fields   %zu\n", d.fields.size());
    for (const Field &f : d.fields)
        std::printf("%s = %s\n", f.key.c_str(),
                    pretty(f.value).c_str());
    return 0;
}

/**
 * Field-level diff: every key whose value differs, plus keys present
 * on only one side. Returns the number of differences.
 */
std::size_t
diffFields(const Decoded &a, const Decoded &b)
{
    std::size_t diffs = 0;
    if (a.specKey != b.specKey) {
        std::printf("spec: %s != %s\n", a.specKey.c_str(),
                    b.specKey.c_str());
        ++diffs;
    }
    if (a.tick != b.tick) {
        std::printf("tick: %llu != %llu\n",
                    static_cast<unsigned long long>(a.tick),
                    static_cast<unsigned long long>(b.tick));
        ++diffs;
    }

    // Snapshot field order is deterministic (writer emission order),
    // so walk both lists with a two-finger merge over sorted copies
    // to report adds/removes by name.
    auto byKey = [](const Decoded &d) {
        std::vector<Field> v = d.fields;
        std::sort(v.begin(), v.end(),
                  [](const Field &x, const Field &y) {
                      return x.key < y.key;
                  });
        return v;
    };
    const std::vector<Field> av = byKey(a);
    const std::vector<Field> bv = byKey(b);
    std::size_t i = 0, j = 0;
    while (i < av.size() || j < bv.size()) {
        if (j >= bv.size() ||
            (i < av.size() && av[i].key < bv[j].key)) {
            std::printf("- %s = %s\n", av[i].key.c_str(),
                        pretty(av[i].value).c_str());
            ++diffs;
            ++i;
        } else if (i >= av.size() || bv[j].key < av[i].key) {
            std::printf("+ %s = %s\n", bv[j].key.c_str(),
                        pretty(bv[j].value).c_str());
            ++diffs;
            ++j;
        } else {
            if (av[i].value != bv[j].value) {
                std::printf("%s: %s != %s\n", av[i].key.c_str(),
                            pretty(av[i].value).c_str(),
                            pretty(bv[j].value).c_str());
                ++diffs;
            }
            ++i;
            ++j;
        }
    }
    return diffs;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    const std::size_t diffs = diffFields(decode(pathA), decode(pathB));
    if (diffs == 0) {
        std::printf("snapshots are identical\n");
        return 0;
    }
    std::printf("%zu field(s) differ\n", diffs);
    return 1;
}

/**
 * The golden cell: the repo's videoconf reference scenario,
 * checkpointed one simulated second in. Mirrors the fixture trace
 * (tests/data/videoconf.trace.json) family: same base workload and
 * scenario, long enough that every subsystem has real state — live
 * scripted actions, governor history, display/camera activity,
 * non-trivial stats.
 */
exp::ExperimentSpec
goldenSpec()
{
    exp::ExperimentSpec spec;
    spec.id = "videoconf-golden";
    spec.workload = workloads::webBrowsing();
    spec.scenario = workloads::scenarioByName("videoconf");
    spec.governor = "sysscale";
    spec.warmup = 200 * kTicksPerMs;
    spec.window = 2 * kTicksPerSec;
    return spec;
}

constexpr Tick kGoldenTick = kTicksPerSec;

/** Simulate the golden cell's first second and snapshot it. */
void
bakeGolden(const std::string &out)
{
    exp::SliceOptions so;
    so.t1 = kGoldenTick;
    so.outSnap = out;
    const exp::RunResult res = exp::runCellSlice(goldenSpec(), so);
    if (!res.ok)
        throw std::runtime_error("golden cell failed: " + res.error);
}

int
cmdCheck(const std::string &golden)
{
    // Fresh bake goes to the system tmp — `check` must never write
    // into the tree holding the committed fixture (ctest runs it
    // against the source dir).
    const std::string fresh =
        (std::filesystem::temp_directory_path() /
         ("snap-recheck-" + std::to_string(::getpid()) + ".snap"))
            .string();
    bakeGolden(fresh);
    const std::string want = readSnapshotFile(golden);
    const std::string got = readSnapshotFile(fresh);
    if (want == got) {
        std::remove(fresh.c_str());
        std::printf("golden snapshot matches (%zu bytes, %s @ t=%llu)\n",
                    want.size(), decode(golden).specKey.c_str(),
                    static_cast<unsigned long long>(kGoldenTick));
        return 0;
    }
    std::printf("golden snapshot DIVERGED (committed vs fresh):\n");
    diffFields(decode(golden), decode(fresh));
    std::printf(
        "if the change is intentional, bump kSnapFormatVersion and\n"
        "rebake: snap_inspect bake-golden %s\n",
        golden.c_str());
    std::remove(fresh.c_str());
    return 1;
}

int
cmdBakeGolden(const std::string &out)
{
    bakeGolden(out);
    std::printf("wrote %s (%zu bytes)\n", out.c_str(),
                readSnapshotFile(out).size());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    (void)kSubcommands;
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() == 2 && args[0] == "dump")
            return cmdDump(args[1]);
        if (args.size() == 3 && args[0] == "diff")
            return cmdDiff(args[1], args[2]);
        if (args.size() == 2 && args[0] == "check")
            return cmdCheck(args[1]);
        if (args.size() == 2 && args[0] == "bake-golden")
            return cmdBakeGolden(args[1]);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "snap_inspect: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
