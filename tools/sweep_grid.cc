/**
 * @file
 * sweep_grid: run a declarative governor x workload x TDP x seed
 * grid on the parallel ExperimentRunner and emit CSV/JSON.
 *
 * The driver mirrors how the paper sweeps its experiments (one
 * simulated setup per grid cell, every cell independent) and batches
 * the cells across worker threads; results are deterministic and
 * identical for any --jobs value.
 *
 * Examples:
 *   sweep_grid --workloads battery --governors fixed,sysscale \
 *              --tdps 3.5,4.5,7,15 --jobs 8 --csv results.csv
 *   sweep_grid --workloads spec:416.gamess,video-playback \
 *              --window-ms 500 --json -
 *   sweep_grid --workloads battery --cache-dir .sweep-cache \
 *              --cache-stats --csv results.csv
 *   sweep_grid --workloads spec:470.lbm --scenario videoconf \
 *              --governors fixed,sysscale --csv mixed.csv
 *   sweep_grid --workloads battery --scenarios none,videoconf \
 *              --governors fixed,sysscale --csv scen-axis.csv
 *   sweep_grid --workloads spec --distributed /nfs/queue \
 *              --cache-dir /nfs/cache --spawn-workers 2 \
 *              --csv results.csv
 *   sweep_grid --list
 *
 * With --cache-dir (or SYSSCALE_CACHE_DIR), finished cells are
 * content-addressed on disk and reused: rerunning the same grid
 * reruns zero simulator cells and an interrupted sweep resumes from
 * the cells it already completed.
 *
 * With --distributed, cells are not simulated here (beyond any
 * --spawn-workers threads): they fan out through a filesystem work
 * queue to every sweep_worker sharing the queue and cache
 * directories — across machines when both live on a shared
 * filesystem — and the assembled output is byte-identical to a
 * single-process run of the same grid. See docs/EXPERIMENTS.md.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/governor_registry.hh"
#include "dist/dispatch.hh"
#include "exp/cache.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/runner.hh"
#include "sim/logging.hh"
#include "workloads/battery.hh"
#include "workloads/graphics.hh"
#include "workloads/micro.hh"
#include "workloads/scenario.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/** Every individually addressable profile, for --list and lookup. */
std::vector<workloads::WorkloadProfile>
allProfiles()
{
    std::vector<workloads::WorkloadProfile> all;
    for (auto &w : workloads::specSuite())
        all.push_back(std::move(w));
    for (auto &w : workloads::batterySuite())
        all.push_back(std::move(w));
    for (auto &w : workloads::graphicsSuite())
        all.push_back(std::move(w));
    all.push_back(workloads::streamMicro());
    all.push_back(workloads::pointerChaseMicro());
    all.push_back(workloads::spinMicro());
    return all;
}

/**
 * Resolve one --workloads token: a suite keyword ("spec",
 * "battery", "graphics", "micro"), "spec:NAME", or a profile name.
 */
std::vector<workloads::WorkloadProfile>
resolveWorkloads(const std::string &token)
{
    if (token == "spec")
        return workloads::specSuite();
    if (token == "battery")
        return workloads::batterySuite();
    if (token == "graphics")
        return workloads::graphicsSuite();
    if (token == "micro") {
        return {workloads::streamMicro(),
                workloads::pointerChaseMicro(),
                workloads::spinMicro()};
    }
    if (token.rfind("spec:", 0) == 0)
        return {workloads::specBenchmark(token.substr(5))};
    for (auto &w : allProfiles()) {
        if (w.name() == token)
            return {std::move(w)};
    }
    std::fprintf(stderr, "sweep_grid: unknown workload \"%s\" "
                         "(try --list)\n",
                 token.c_str());
    std::exit(2);
}

void
listRegistry()
{
    std::printf("governors:\n");
    for (const auto &g : core::governorRegistry())
        std::printf("  %-16s %s\n", g.name.c_str(),
                    g.summary.c_str());
    std::printf("  %-16s %s\n", "collect",
                "no governor: counter collection only");
    std::printf("workload suites: spec battery graphics micro\n");
    std::printf("workloads:\n");
    for (const auto &w : allProfiles())
        std::printf("  %s\n", w.name().c_str());
    std::printf("scenarios:\n");
    for (const auto &s : workloads::scenarioNames())
        std::printf("  %s\n", s.c_str());
}

void
usage()
{
    std::printf(
        "usage: sweep_grid [options]\n"
        "  --workloads LIST   suites/names (default: battery)\n"
        "  --governors LIST   governor tokens (default: "
        "fixed,sysscale);\n"
        "                     a token is name[:key=value...], e.g.\n"
        "                     ondemand:up=0.9 (validated up front)\n"
        "  --tdps LIST        TDP watts (default: 4.5)\n"
        "  --seeds LIST       RNG seeds (default: 1)\n"
        "  --warmup-ms N      warm-up per cell (default: 200)\n"
        "  --window-ms N      measured window per cell (default: "
        "2000)\n"
        "  --jobs N           worker threads (default: hardware)\n"
        "  --scenario NAME    overlay a named scenario on every cell\n"
        "                     (mixed agents + timed SoC mutations)\n"
        "  --scenarios LIST   scenario names as a fifth grid axis\n"
        "                     (each cell gets a scenario label and\n"
        "                     id suffix; 'none' is a valid value)\n"
        "  --distributed DIR  fan the grid out through the work\n"
        "                     queue at DIR instead of simulating\n"
        "                     locally (requires a cache; workers:\n"
        "                     sweep_worker and/or --spawn-workers)\n"
        "  --spawn-workers N  local worker threads for the duration\n"
        "                     of a --distributed sweep (default: 0)\n"
        "  --stall-timeout-s N  abort a --distributed sweep after N\n"
        "                     seconds without any cell completing\n"
        "                     (default: 0 = wait forever)\n"
        "  --slice-s N        with --distributed: dispatch cells\n"
        "                     longer than N simulated seconds as a\n"
        "                     checkpoint-chained sequence of N-second\n"
        "                     slices (snapshots hand off under the\n"
        "                     queue's snaps/; results byte-identical\n"
        "                     to unsliced; default: 0 = off)\n"
        "  --stream-csv       with --distributed --csv: write rows\n"
        "                     to the CSV as cells resolve (spec\n"
        "                     order; the finished file is byte-\n"
        "                     identical to a non-streamed run)\n"
        "  --ddr4             use the DDR4 SoC population\n"
        "  --csv FILE         write CSV ('-' = stdout)\n"
        "  --json FILE        write JSON ('-' = stdout)\n"
        "  --stats-csv FILE   write the per-cell stats dumps as a\n"
        "                     wide CSV ('-' = stdout): one column\n"
        "                     per stat path, rows in spec order\n"
        "  --trace-dir DIR    write one Chrome trace-event JSON per\n"
        "                     simulated cell into DIR (cache hits\n"
        "                     skip the simulator and write none;\n"
        "                     combine with --no-cache for full\n"
        "                     coverage). Not valid with --distributed\n"
        "  --log-level LEVEL  stderr verbosity: silent, warn,\n"
        "                     inform (default), debug\n"
        "  --cache-dir DIR    reuse finished cells from DIR\n"
        "                     (default: $SYSSCALE_CACHE_DIR)\n"
        "  --no-cache         disable the cell cache entirely\n"
        "  --no-skip-ahead    disable the constant-step replay fast\n"
        "                     path (outputs are byte-identical either\n"
        "                     way; this trades speed for a slow-path\n"
        "                     cross-check, like SYSSCALE_NO_SKIP_AHEAD)\n"
        "  --cache-stats      report hit/miss/store counts\n"
        "  --quiet            no per-cell progress\n"
        "  --list             list governors and workloads\n");
}

void
emit(const std::string &path, bool json,
     const std::vector<exp::RunResult> &results)
{
    if (path == "-") {
        if (json)
            exp::writeJson(std::cout, results);
        else
            exp::writeCsv(std::cout, results);
        return;
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "sweep_grid: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    if (json)
        exp::writeJson(os, results);
    else
        exp::writeCsv(os, results);
    std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(),
                 results.size());
}

/**
 * Wide-format stats export: one row per cell, one column per stat
 * path, columns in order of first appearance across the (spec-
 * ordered) results, values verbatim from the dump. Cells missing a
 * stat (error rows, heterogeneous grids) leave the field empty.
 */
void
writeStatsCsv(std::ostream &os,
              const std::vector<exp::RunResult> &results)
{
    std::vector<std::string> columns;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        rows;
    rows.reserve(results.size());
    for (const auto &res : results) {
        std::vector<std::pair<std::string, std::string>> row;
        std::istringstream dump(res.statsDump);
        std::string line;
        while (std::getline(dump, line)) {
            // "path.stat value # desc"
            std::istringstream fields(line);
            std::string path, val;
            if (!(fields >> path >> val))
                continue;
            if (std::find(columns.begin(), columns.end(), path) ==
                columns.end()) {
                columns.push_back(path);
            }
            row.emplace_back(path, val);
        }
        rows.push_back(std::move(row));
    }

    os << "id,governor,workload";
    for (const auto &c : columns)
        os << ',' << c;
    os << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const exp::RunResult &res = results[i];
        os << res.id << ',' << res.governor << ','
           << res.workload;
        for (const auto &c : columns) {
            os << ',';
            for (const auto &kv : rows[i]) {
                if (kv.first == c) {
                    os << kv.second;
                    break;
                }
            }
        }
        os << '\n';
    }
}

void
emitStatsCsv(const std::string &path,
             const std::vector<exp::RunResult> &results)
{
    if (path == "-") {
        writeStatsCsv(std::cout, results);
        return;
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "sweep_grid: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    writeStatsCsv(os, results);
    std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(),
                 results.size());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workloads_arg = "battery";
    std::string governors_arg = "fixed,sysscale";
    std::string tdps_arg = "4.5";
    std::string seeds_arg = "1";
    double warmup_ms = 200.0;
    double window_ms = 2000.0;
    std::size_t jobs = 0;
    std::string scenario_arg;
    std::string scenarios_arg;
    std::string distributed_dir;
    std::size_t spawn_workers = 0;
    long stall_timeout_s = 0;
    Tick slice_ticks = 0;
    bool stream_csv = false;
    bool ddr4 = false;
    bool quiet = false;
    bool no_cache = false;
    bool cache_stats = false;
    std::string cache_dir;
    std::string csv_path, json_path;
    std::string stats_csv_path;
    std::string trace_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sweep_grid: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            workloads_arg = value();
        } else if (arg == "--governors") {
            governors_arg = value();
        } else if (arg == "--tdps") {
            tdps_arg = value();
        } else if (arg == "--seeds") {
            seeds_arg = value();
        } else if (arg == "--warmup-ms") {
            warmup_ms = std::atof(value().c_str());
        } else if (arg == "--window-ms") {
            window_ms = std::atof(value().c_str());
        } else if (arg == "--jobs") {
            jobs = static_cast<std::size_t>(
                std::atol(value().c_str()));
        } else if (arg == "--scenario") {
            scenario_arg = value();
        } else if (arg == "--scenarios") {
            scenarios_arg = value();
        } else if (arg == "--distributed") {
            distributed_dir = value();
        } else if (arg == "--spawn-workers") {
            const long n = std::atol(value().c_str());
            if (n < 0) {
                std::fprintf(stderr, "sweep_grid: --spawn-workers "
                                     "must be >= 0\n");
                return 2;
            }
            spawn_workers = static_cast<std::size_t>(n);
        } else if (arg == "--stall-timeout-s") {
            stall_timeout_s = std::atol(value().c_str());
        } else if (arg == "--slice-s") {
            const double s = std::atof(value().c_str());
            if (s < 0) {
                std::fprintf(stderr, "sweep_grid: --slice-s must "
                                     "be >= 0\n");
                return 2;
            }
            slice_ticks = static_cast<Tick>(s * kTicksPerSec);
        } else if (arg == "--stream-csv") {
            stream_csv = true;
        } else if (arg == "--ddr4") {
            ddr4 = true;
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--stats-csv") {
            stats_csv_path = value();
        } else if (arg == "--trace-dir") {
            trace_dir = value();
        } else if (arg == "--log-level") {
            const std::string level = value();
            if (level == "silent") {
                setLogLevel(LogLevel::Silent);
            } else if (level == "warn") {
                setLogLevel(LogLevel::Warn);
            } else if (level == "inform") {
                setLogLevel(LogLevel::Inform);
            } else if (level == "debug") {
                setLogLevel(LogLevel::Debug);
            } else {
                std::fprintf(stderr,
                             "sweep_grid: unknown --log-level "
                             "\"%s\" (silent, warn, inform, "
                             "debug)\n",
                             level.c_str());
                return 2;
            }
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--no-skip-ahead") {
            soc::Soc::setSkipAheadDefault(false);
        } else if (arg == "--cache-stats") {
            cache_stats = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listRegistry();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "sweep_grid: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    exp::GridSpec grid;
    grid.base = ddr4 ? soc::skylakeDdr4Config() : soc::skylakeConfig();
    for (const auto &token : splitList(workloads_arg)) {
        for (auto &w : resolveWorkloads(token))
            grid.workloads.push_back(std::move(w));
    }
    grid.governors = splitList(governors_arg);
    grid.tdps.clear();
    for (const auto &t : splitList(tdps_arg))
        grid.tdps.push_back(std::atof(t.c_str()));
    grid.seeds.clear();
    for (const auto &s : splitList(seeds_arg))
        grid.seeds.push_back(
            static_cast<std::uint64_t>(std::atoll(s.c_str())));
    grid.warmup = ticksFromMs(warmup_ms);
    grid.window = ticksFromMs(window_ms);
    if (!scenario_arg.empty() && !scenarios_arg.empty()) {
        std::fprintf(stderr,
                     "sweep_grid: --scenario and --scenarios are "
                     "mutually exclusive\n");
        return 2;
    }
    if (!scenario_arg.empty() && scenario_arg != "none") {
        try {
            grid.scenario = workloads::scenarioByName(scenario_arg);
        } catch (const std::exception &) {
            std::fprintf(stderr,
                         "sweep_grid: unknown scenario \"%s\" "
                         "(try --list)\n",
                         scenario_arg.c_str());
            return 2;
        }
        grid.scenarioName = scenario_arg;
    }
    for (const auto &name : splitList(scenarios_arg)) {
        try {
            grid.scenarios.push_back(
                {name, workloads::scenarioByName(name)});
        } catch (const std::exception &) {
            std::fprintf(stderr,
                         "sweep_grid: unknown scenario \"%s\" "
                         "(try --list)\n",
                         name.c_str());
            return 2;
        }
    }

    // Validate every governor token up front: governorFactory()
    // constructs the governor once eagerly, so an unknown name (the
    // error enumerates the registry) or a bad parameter dies here at
    // parse time, never deep inside a cell on a sweep worker.
    for (const auto &gov : grid.governors) {
        try {
            const exp::GovernorToken tok =
                exp::parseGovernorToken(gov);
            (void)exp::governorFactory(tok.name, tok.params);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sweep_grid: bad governor \"%s\": "
                                 "%s (try --list)\n",
                         gov.c_str(), e.what());
            return 2;
        }
    }

    const auto specs = exp::expandGrid(grid);
    if (specs.empty()) {
        std::fprintf(stderr, "sweep_grid: empty grid\n");
        return 2;
    }

    std::unique_ptr<exp::ResultCache> cache;
    try {
        cache = exp::resolveCache(std::move(cache_dir), no_cache);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_grid: %s\n", e.what());
        return 2;
    }

    if (distributed_dir.empty() && spawn_workers > 0) {
        std::fprintf(stderr, "sweep_grid: --spawn-workers needs "
                             "--distributed\n");
        return 2;
    }
    if (distributed_dir.empty() && slice_ticks > 0) {
        std::fprintf(stderr, "sweep_grid: --slice-s needs "
                             "--distributed\n");
        return 2;
    }
    if (!distributed_dir.empty() && jobs > 0) {
        std::fprintf(stderr,
                     "sweep_grid: --jobs controls the in-process "
                     "runner only; with --distributed use "
                     "--spawn-workers for local parallelism\n");
        return 2;
    }
    if (!distributed_dir.empty() && !cache) {
        std::fprintf(stderr,
                     "sweep_grid: --distributed publishes results "
                     "through the shared cache — pass --cache-dir "
                     "or set SYSSCALE_CACHE_DIR\n");
        return 2;
    }
    if (stream_csv &&
        (distributed_dir.empty() || csv_path.empty())) {
        std::fprintf(stderr,
                     "sweep_grid: --stream-csv needs --distributed "
                     "and --csv\n");
        return 2;
    }
    if (!trace_dir.empty() && !distributed_dir.empty()) {
        std::fprintf(stderr,
                     "sweep_grid: --trace-dir traces in-process "
                     "cells only and cannot follow a --distributed "
                     "sweep onto its workers\n");
        return 2;
    }
    if (!trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(trace_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "sweep_grid: cannot create --trace-dir "
                         "%s: %s\n",
                         trace_dir.c_str(),
                         ec.message().c_str());
            return 2;
        }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<exp::RunResult> results;
    std::size_t simulated_here = 0;
    bool csv_streamed = false;

    if (!distributed_dir.empty()) {
        dist::DispatchOptions dopts;
        dopts.spawnWorkers = spawn_workers;
        dopts.stallTimeout = std::chrono::seconds(stall_timeout_s);
        dopts.sliceTicks = slice_ticks;
        if (!quiet) {
            dopts.onEvent = [](const std::string &line) {
                std::fprintf(stderr, "sweep_grid: %s\n",
                             line.c_str());
            };
        }

        // --stream-csv: open the sink and write the header up
        // front, then append each row as its cell resolves (the
        // dispatcher delivers rows in spec order). The finished
        // file is byte-identical to the end-of-run emit() path;
        // mid-campaign it is a valid CSV prefix, tailable from
        // another terminal.
        std::ofstream stream_file;
        std::unique_ptr<exp::CsvWriter> stream_writer;
        if (stream_csv) {
            std::ostream *stream_os = &std::cout;
            if (csv_path != "-") {
                stream_file.open(csv_path);
                if (!stream_file) {
                    std::fprintf(stderr,
                                 "sweep_grid: cannot write %s\n",
                                 csv_path.c_str());
                    return 2;
                }
                stream_os = &stream_file;
            }
            stream_writer = std::make_unique<exp::CsvWriter>(
                *stream_os, /*flushEachRow=*/true);
            dopts.onResult = [&](std::size_t,
                                 const exp::RunResult &res) {
                stream_writer->append(res);
            };
        }

        std::fprintf(stderr,
                     "sweep_grid: dispatching %zu cells through "
                     "queue %s (%zu local worker thread(s))\n",
                     specs.size(), distributed_dir.c_str(),
                     spawn_workers);
        try {
            dist::DispatchOutcome outcome = dist::runDistributed(
                specs, distributed_dir, *cache, dopts);
            results = std::move(outcome.results);
            simulated_here = outcome.localWork.simulated;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sweep_grid: %s\n", e.what());
            return 2;
        }
        if (stream_writer) {
            csv_streamed = true;
            if (csv_path != "-") {
                std::fprintf(stderr,
                             "wrote %s (%zu rows, streamed)\n",
                             csv_path.c_str(),
                             stream_writer->rows());
            }
        }
    } else {
        exp::RunnerOptions opts;
        opts.jobs = jobs;
        opts.cache = cache.get();
        opts.cell.traceDir = trace_dir;
        if (!quiet) {
            opts.onResult = [](const exp::RunResult &res,
                               std::size_t done, std::size_t total) {
                std::fprintf(stderr, "[%zu/%zu] %-40s %s (%.2fs)\n",
                             done, total, res.id.c_str(),
                             res.ok ? "ok" : res.error.c_str(),
                             res.hostSeconds);
            };
        }

        // The actual pool is sized to the cells the cache cannot
        // serve, which is only known after lookup — report an upper
        // bound.
        const exp::ExperimentRunner runner(opts);
        std::fprintf(stderr,
                     "sweep_grid: %zu cells on up to %zu worker "
                     "thread(s)\n",
                     specs.size(), runner.jobsFor(specs.size()));
        results = runner.run(specs);
    }

    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    std::size_t failures = 0;
    double cell_seconds = 0.0;
    for (const auto &res : results) {
        if (!res.ok)
            ++failures;
        cell_seconds += res.hostSeconds;
    }
    // Cache hits replay the hostSeconds of their original run, so
    // cell_seconds is *recorded* work; say how much was simulated
    // here versus served from disk. In a distributed sweep every
    // assembled row comes from the cache — report what the local
    // spawned workers actually simulated instead.
    const std::size_t cached = cache ? cache->stats().hits : 0;
    if (!distributed_dir.empty()) {
        std::fprintf(stderr,
                     "sweep_grid: %zu cells assembled from %s (%zu "
                     "simulated by local workers) in %.2fs wall "
                     "(%.2fs of recorded cell work, %zu failed)\n",
                     results.size(), cache->dir().c_str(),
                     simulated_here, wall, cell_seconds, failures);
    } else {
        std::fprintf(stderr,
                     "sweep_grid: %zu cells (%zu simulated, %zu "
                     "from cache) in %.2fs wall (%.2fs of recorded "
                     "cell work, %zu failed)\n",
                     results.size(), results.size() - cached, cached,
                     wall, cell_seconds, failures);
    }
    if (cache && cache_stats) {
        const exp::CacheStats cs = cache->stats();
        std::fprintf(stderr,
                     "sweep_grid: cache %s: %zu hit(s), %zu "
                     "miss(es), %zu store(s), %zu corrupt, %zu "
                     "uncacheable\n",
                     cache->dir().c_str(), cs.hits, cs.misses,
                     cs.stores, cs.corrupt, cs.uncacheable);
    } else if (cache_stats) {
        std::fprintf(stderr, "sweep_grid: cache disabled (use "
                             "--cache-dir or SYSSCALE_CACHE_DIR)\n");
    }

    if (!csv_path.empty() && !csv_streamed)
        emit(csv_path, false, results);
    if (!json_path.empty())
        emit(json_path, true, results);
    if (!stats_csv_path.empty())
        emitStatsCsv(stats_csv_path, results);
    if (csv_path.empty() && json_path.empty() &&
        stats_csv_path.empty())
        exp::writeCsv(std::cout, results);

    return failures == 0 ? 0 : 1;
}
