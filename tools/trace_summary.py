#!/usr/bin/env python3
"""Summarize a sysscale Chrome trace-event JSON file.

Reads one ``<specKey>.trace.json`` produced by ``sweep_grid
--trace-dir`` (see docs/OBSERVABILITY.md for the schema) and prints:

- per-domain *residency*: for every ``oppoint`` counter series, the
  time-weighted share of the traced interval spent at each value
  (each sample holds until the next change; the last sample extends
  to the end of the trace), and
- *transition-phase totals*: for every ``transition`` span name, how
  many times it ran and its total duration.

The output is deterministic for a deterministic trace, which makes it
a golden-testable surface: ``--check GOLDEN.txt`` re-computes the
summary and diffs it against a committed fixture, exiting non-zero on
any drift.

Standard library only (json/argparse/difflib) -- runs anywhere the
repo's other Python tooling runs.
"""

import argparse
import difflib
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    return events, other


def trace_end(events):
    """Last instant covered by the trace, in us."""
    end = 0.0
    for ev in events:
        ts = ev.get("ts")
        if ts is None:
            continue
        end = max(end, ts + ev.get("dur", 0.0))
    return end


def format_value(v):
    """Counter values as a short, deterministic decimal."""
    if v == int(v):
        return str(int(v))
    return "%.6g" % v


def format_us(us):
    """Durations scaled to a readable unit."""
    if us >= 1000.0:
        return "%.3f ms" % (us / 1000.0)
    return "%.3f us" % us


def residency(events, end):
    """{series: [(value, seconds_weight)...]} from counter events."""
    series = {}
    for ev in events:
        if ev.get("ph") != "C" or ev.get("cat") != "oppoint":
            continue
        name = ev["name"]
        value = ev.get("args", {}).get("value", 0.0)
        series.setdefault(name, []).append((ev["ts"], value))

    out = {}
    for name, samples in sorted(series.items()):
        samples.sort(key=lambda sv: sv[0])
        weights = {}
        for i, (ts, value) in enumerate(samples):
            until = samples[i + 1][0] if i + 1 < len(samples) else end
            weights[value] = weights.get(value, 0.0) + max(
                0.0, until - ts)
        out[name] = sorted(weights.items())
    return out


def phase_totals(events):
    """{span name: (count, total_dur_us)} over transition spans."""
    totals = {}
    for ev in events:
        if ev.get("ph") != "X" or ev.get("cat") != "transition":
            continue
        count, dur = totals.get(ev["name"], (0, 0.0))
        totals[ev["name"]] = (count + 1, dur + ev.get("dur", 0.0))
    return totals


def summarize(path):
    events, other = load_events(path)
    end = trace_end(events)
    lines = []
    real = [ev for ev in events if ev.get("ph") != "M"]
    lines.append("trace: %d event(s), %s dropped, %s spanned"
                 % (len(real), other.get("dropped", "0"),
                    format_us(end)))

    lines.append("residency (time-weighted):")
    res = residency(events, end)
    if not res:
        lines.append("  (no oppoint counters)")
    for name, weights in res.items():
        total = sum(w for _, w in weights) or 1.0
        lines.append("  %s:" % name)
        for value, weight in weights:
            lines.append("    %-12s %6.2f%%  (%s)"
                         % (format_value(value),
                            100.0 * weight / total,
                            format_us(weight)))

    lines.append("transition phases:")
    totals = phase_totals(events)
    if not totals:
        lines.append("  (no transitions)")
    for name in sorted(totals):
        count, dur = totals[name]
        lines.append("  %-14s %4dx  %s total"
                     % (name, count, format_us(dur)))
    return "\n".join(lines) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="a <cell>.trace.json file")
    parser.add_argument(
        "--check", metavar="GOLDEN",
        help="diff the summary against this golden file and exit "
             "non-zero on drift instead of printing it")
    args = parser.parse_args(argv)

    summary = summarize(args.trace)
    if args.check is None:
        sys.stdout.write(summary)
        return 0

    with open(args.check, "r", encoding="utf-8") as fh:
        golden = fh.read()
    if summary == golden:
        print("trace_summary: %s matches %s"
              % (args.trace, args.check))
        return 0
    sys.stdout.writelines(difflib.unified_diff(
        golden.splitlines(keepends=True),
        summary.splitlines(keepends=True),
        fromfile=args.check, tofile=args.trace))
    print("trace_summary: summary drifted from %s" % args.check)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
