/**
 * @file
 * sweep_queue: inspect and repair a distributed sweep queue.
 *
 * The operator's window into a running campaign (see
 * docs/OPERATIONS.md). All inspection is read-only — `status` and
 * `ls` never claim, quarantine, or reclaim, so they are safe to run
 * against a live fleet at any time:
 *
 *   sweep_queue status --queue /nfs/q        # counts + lease ages
 *   sweep_queue ls --queue /nfs/q            # every cell, decoded
 *   sweep_queue retry-failed --queue /nfs/q  # failed -> pending
 *   sweep_queue purge --queue /nfs/q         # destructive reset
 *
 * Lease ages are measured against a probe file touched on the queue
 * filesystem itself, so they are exact even when the observing
 * machine's wall clock disagrees with the workers'.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dist/work_queue.hh"
#include "exp/report.hh"

using namespace sysscale;

namespace {

/**
 * The command registry; tools/check_docs.sh extracts these names
 * and insists each is documented in docs/OPERATIONS.md.
 */
const char *const kSubcommands[] = {
    "status",
    "watch",
    "ls",
    "retry-failed",
    "purge",
};

void
usage()
{
    std::printf(
        "usage: sweep_queue <command> --queue DIR [options]\n"
        "commands:\n"
        "  status               occupancy counts, per-worker lease\n"
        "                       ages, and worker telemetry\n"
        "                       (read-only)\n"
        "  watch                live console view: redraw the status\n"
        "                       frame every --interval-s seconds\n"
        "                       (read-only)\n"
        "  ls                   list every cell with its decoded\n"
        "                       spec id (read-only)\n"
        "  retry-failed         put failed cells back in pending\n"
        "  purge                delete every file in the queue\n"
        "options:\n"
        "  --queue DIR          queue directory (required; must\n"
        "                       already exist)\n"
        "  --lease-timeout-s N  staleness threshold used to flag\n"
        "                       leases in status/ls output\n"
        "                       (default: 30)\n"
        "  --json               status only: machine-readable output\n"
        "                       (one JSON object; scraper-friendly)\n"
        "  --interval-s N       watch only: seconds between frames\n"
        "                       (default: 2)\n"
        "  --iterations N       watch only: stop after N frames\n"
        "                       (default: 0 = run until killed)\n");
}

bool
isSubcommand(const std::string &name)
{
    for (const char *const cmd : kSubcommands) {
        if (name == cmd)
            return true;
    }
    return false;
}

std::string
formatAge(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
}

/**
 * `status --json`: one JSON object on stdout, so a scraper (cron,
 * dashboard exporter) can poll pending/claimed/failed/corrupt counts
 * and lease ages without parsing the human layout. Emitted through
 * the same exp::formatDouble/jsonQuote helpers as every other JSON
 * surface — writer/reader drift is impossible by construction.
 */
/** Campaign totals aggregated over every worker's metrics file. */
struct FleetThroughput
{
    std::size_t cells = 0; //!< Simulated cells across the fleet.
    double simSeconds = 0.0;
    double wallSeconds = 0.0;

    /** Simulated seconds per wall second (0 when no wall time). */
    double
    simPerWall() const
    {
        return wallSeconds > 0.0 ? simSeconds / wallSeconds : 0.0;
    }
};

FleetThroughput
aggregate(const std::vector<dist::WorkerMetrics> &workers)
{
    FleetThroughput t;
    for (const dist::WorkerMetrics &m : workers) {
        t.cells += m.simulated;
        t.simSeconds += m.simSeconds;
        t.wallSeconds += m.wallSeconds;
    }
    return t;
}

int
cmdStatusJson(dist::WorkQueue &queue, double staleAfter)
{
    const dist::QueueStatus s = queue.status();
    const std::vector<dist::WorkerMetrics> workers =
        queue.workerMetrics();
    const FleetThroughput total = aggregate(workers);
    std::string doc = "{\n";
    doc += "  \"queue\": " + exp::jsonQuote(queue.dir()) + ",\n";
    doc += "  \"pending\": " + std::to_string(s.pending) + ",\n";
    doc += "  \"claimed\": " + std::to_string(s.claimed) + ",\n";
    doc += "  \"failed\": " + std::to_string(s.failed) + ",\n";
    doc += "  \"corrupt\": " + std::to_string(s.corrupt) + ",\n";
    doc += "  \"lease_timeout_s\": " +
           exp::formatDouble(staleAfter) + ",\n";
    doc += "  \"throughput\": {\"cells\": " +
           std::to_string(total.cells) +
           ", \"sim_seconds\": " +
           exp::formatDouble(total.simSeconds) +
           ", \"wall_seconds\": " +
           exp::formatDouble(total.wallSeconds) +
           ", \"sim_per_wall\": " +
           exp::formatDouble(total.simPerWall()) + "},\n";
    doc += "  \"workers\": [";
    bool wfirst = true;
    for (const dist::WorkerMetrics &m : workers) {
        doc += wfirst ? "\n" : ",\n";
        wfirst = false;
        doc += "    {\"worker\": " + exp::jsonQuote(m.workerId) +
               ", \"claimed\": " + std::to_string(m.claimed) +
               ", \"simulated\": " + std::to_string(m.simulated) +
               ", \"cache_hits\": " + std::to_string(m.cacheHits) +
               ", \"failures\": " + std::to_string(m.failures) +
               ", \"sim_seconds\": " +
               exp::formatDouble(m.simSeconds) +
               ", \"wall_seconds\": " +
               exp::formatDouble(m.wallSeconds) +
               ", \"age_s\": " + exp::formatDouble(m.ageSeconds) +
               "}";
    }
    doc += wfirst ? "],\n" : "\n  ],\n";
    doc += "  \"leases\": [";
    bool first = true;
    for (const dist::LeaseInfo &lease : s.leases) {
        doc += first ? "\n" : ",\n";
        first = false;
        doc += "    {\"key\": " + exp::jsonQuote(lease.key) +
               ", \"worker\": " + exp::jsonQuote(lease.workerId) +
               ", \"age_s\": " + exp::formatDouble(lease.ageSeconds) +
               ", \"stale\": " +
               (lease.ageSeconds > staleAfter ? "true" : "false") +
               "}";
    }
    doc += first ? "]\n" : "\n  ]\n";
    doc += "}\n";
    std::fputs(doc.c_str(), stdout);
    return 0;
}

int
cmdStatus(dist::WorkQueue &queue, double staleAfter)
{
    const dist::QueueStatus s = queue.status();
    std::printf("queue %s: %zu pending, %zu claimed, %zu failed, "
                "%zu corrupt\n",
                queue.dir().c_str(), s.pending, s.claimed, s.failed,
                s.corrupt);

    // Group leases by worker so a fleet summary reads at a glance:
    // one line per worker, its held cells, and its freshest/oldest
    // lease age.
    std::map<std::string, std::vector<double>> byWorker;
    for (const dist::LeaseInfo &lease : s.leases)
        byWorker[lease.workerId].push_back(lease.ageSeconds);
    if (byWorker.empty()) {
        std::printf("workers: none (no live leases)\n");
    } else {
        std::printf("workers:\n");
        for (const auto &kv : byWorker) {
            double newest = kv.second.front();
            double oldest = kv.second.front();
            for (const double age : kv.second) {
                newest = age < newest ? age : newest;
                oldest = age > oldest ? age : oldest;
            }
            std::printf("  %-24s %zu lease(s), newest %s, "
                        "oldest %s%s\n",
                        kv.first.c_str(), kv.second.size(),
                        formatAge(newest).c_str(),
                        formatAge(oldest).c_str(),
                        oldest > staleAfter ? " [stale]" : "");
        }
    }

    // Worker telemetry (self-published metrics files): per-worker
    // progress, then the fleet total. Absent for campaigns run by
    // builds that predate the metrics directory.
    const std::vector<dist::WorkerMetrics> workers =
        queue.workerMetrics();
    if (!workers.empty()) {
        std::printf("telemetry:\n");
        for (const dist::WorkerMetrics &m : workers) {
            std::printf("  %-24s %zu claimed (%zu sim, %zu hit, "
                        "%zu fail), %.2f sim-s / %.2f wall-s, "
                        "last cell %s ago\n",
                        m.workerId.c_str(), m.claimed, m.simulated,
                        m.cacheHits, m.failures, m.simSeconds,
                        m.wallSeconds,
                        formatAge(m.ageSeconds).c_str());
        }
        const FleetThroughput total = aggregate(workers);
        std::printf("throughput: %zu cell(s) simulated, %.2f sim-s "
                    "in %.2f wall-s (%.2f sim-s/wall-s)\n",
                    total.cells, total.simSeconds,
                    total.wallSeconds, total.simPerWall());
    }
    return 0;
}

/**
 * `watch`: redraw the status frame every interval. On a terminal
 * each frame clears the screen (a poor man's top(1)); piped output
 * separates frames with a marker line instead, so logs and tests
 * stay greppable. Strictly read-only, like status.
 */
int
cmdWatch(dist::WorkQueue &queue, double staleAfter,
         long intervalSeconds, long iterations)
{
    const bool tty = ::isatty(::fileno(stdout)) != 0;
    for (long frame = 0; iterations == 0 || frame < iterations;
         ++frame) {
        if (frame > 0) {
            std::this_thread::sleep_for(
                std::chrono::seconds(intervalSeconds));
        }
        if (tty)
            std::fputs("\033[2J\033[H", stdout);
        else if (frame > 0)
            std::puts("--- frame ---");
        cmdStatus(queue, staleAfter);
        std::fflush(stdout);
    }
    return 0;
}

int
cmdLs(dist::WorkQueue &queue, double staleAfter)
{
    const std::vector<dist::CellInfo> cells = queue.listCells();
    if (cells.empty()) {
        std::printf("queue %s is empty\n", queue.dir().c_str());
        return 0;
    }
    for (const dist::CellInfo &cell : cells) {
        std::string detail;
        if (cell.state == "claimed") {
            detail = "worker=" + cell.workerId;
            detail += cell.leaseAgeSeconds < 0
                          ? " lease=missing"
                          : " lease=" +
                                formatAge(cell.leaseAgeSeconds);
            if (cell.leaseAgeSeconds > staleAfter)
                detail += " [stale]";
        } else if (cell.state == "failed") {
            detail = "error=" + cell.error;
        }
        std::printf("%-8s %s  %-40s %s\n", cell.state.c_str(),
                    cell.key.c_str(), cell.specId.c_str(),
                    detail.c_str());
    }
    return 0;
}

int
cmdRetryFailed(dist::WorkQueue &queue)
{
    const std::size_t cleared = queue.retryFailed();
    std::printf("retry-failed: %zu failed cell(s) cleared on %s\n",
                cleared, queue.dir().c_str());
    return 0;
}

int
cmdPurge(dist::WorkQueue &queue)
{
    const std::size_t removed = queue.purge();
    std::printf("purge: removed %zu file(s) from %s\n", removed,
                queue.dir().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::string queue_dir;
    long lease_timeout_s = 30;
    long interval_s = 2;
    long iterations = 0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sweep_queue: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--queue") {
            queue_dir = value();
        } else if (arg == "--lease-timeout-s") {
            lease_timeout_s = std::atol(value().c_str());
        } else if (arg == "--interval-s") {
            interval_s = std::atol(value().c_str());
        } else if (arg == "--iterations") {
            iterations = std::atol(value().c_str());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sweep_queue: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else {
            std::fprintf(stderr,
                         "sweep_queue: unexpected argument %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (command.empty() || !isSubcommand(command)) {
        std::fprintf(stderr, "sweep_queue: %s\n",
                     command.empty()
                         ? "a command is required"
                         : ("unknown command \"" + command + "\"")
                               .c_str());
        usage();
        return 2;
    }
    if (queue_dir.empty()) {
        std::fprintf(stderr, "sweep_queue: --queue is required\n");
        return 2;
    }
    if (lease_timeout_s <= 0) {
        std::fprintf(stderr, "sweep_queue: --lease-timeout-s must "
                             "be positive\n");
        return 2;
    }
    if (interval_s <= 0) {
        std::fprintf(stderr,
                     "sweep_queue: --interval-s must be positive\n");
        return 2;
    }
    if (iterations < 0) {
        std::fprintf(stderr,
                     "sweep_queue: --iterations must be >= 0\n");
        return 2;
    }
    // Creating directories on a typo'd path would be the opposite
    // of inspection — insist the queue already exists.
    if (!std::filesystem::is_directory(queue_dir)) {
        std::fprintf(stderr, "sweep_queue: no queue at \"%s\"\n",
                     queue_dir.c_str());
        return 2;
    }

    try {
        dist::WorkQueue queue(queue_dir);
        const double staleAfter =
            static_cast<double>(lease_timeout_s);
        if (json && command != "status") {
            std::fprintf(stderr, "sweep_queue: --json only applies "
                                 "to status\n");
            return 2;
        }
        if (command == "status")
            return json ? cmdStatusJson(queue, staleAfter)
                        : cmdStatus(queue, staleAfter);
        if (command == "watch")
            return cmdWatch(queue, staleAfter, interval_s,
                            iterations);
        if (command == "ls")
            return cmdLs(queue, staleAfter);
        if (command == "retry-failed")
            return cmdRetryFailed(queue);
        return cmdPurge(queue);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_queue: %s\n", e.what());
        return 2;
    }
}
