/**
 * @file
 * sweep_queue: inspect and repair a distributed sweep queue.
 *
 * The operator's window into a running campaign (see
 * docs/OPERATIONS.md). All inspection is read-only — `status` and
 * `ls` never claim, quarantine, or reclaim, so they are safe to run
 * against a live fleet at any time:
 *
 *   sweep_queue status --queue /nfs/q        # counts + lease ages
 *   sweep_queue ls --queue /nfs/q            # every cell, decoded
 *   sweep_queue retry-failed --queue /nfs/q  # failed -> pending
 *   sweep_queue purge --queue /nfs/q         # destructive reset
 *
 * Lease ages are measured against a probe file touched on the queue
 * filesystem itself, so they are exact even when the observing
 * machine's wall clock disagrees with the workers'.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dist/work_queue.hh"
#include "exp/report.hh"

using namespace sysscale;

namespace {

/**
 * The command registry; tools/check_docs.sh extracts these names
 * and insists each is documented in docs/OPERATIONS.md.
 */
const char *const kSubcommands[] = {
    "status",
    "ls",
    "retry-failed",
    "purge",
};

void
usage()
{
    std::printf(
        "usage: sweep_queue <command> --queue DIR [options]\n"
        "commands:\n"
        "  status               occupancy counts + per-worker lease\n"
        "                       ages (read-only)\n"
        "  ls                   list every cell with its decoded\n"
        "                       spec id (read-only)\n"
        "  retry-failed         put failed cells back in pending\n"
        "  purge                delete every file in the queue\n"
        "options:\n"
        "  --queue DIR          queue directory (required; must\n"
        "                       already exist)\n"
        "  --lease-timeout-s N  staleness threshold used to flag\n"
        "                       leases in status/ls output\n"
        "                       (default: 30)\n"
        "  --json               status only: machine-readable output\n"
        "                       (one JSON object; scraper-friendly)\n");
}

bool
isSubcommand(const std::string &name)
{
    for (const char *const cmd : kSubcommands) {
        if (name == cmd)
            return true;
    }
    return false;
}

std::string
formatAge(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
}

/**
 * `status --json`: one JSON object on stdout, so a scraper (cron,
 * dashboard exporter) can poll pending/claimed/failed/corrupt counts
 * and lease ages without parsing the human layout. Emitted through
 * the same exp::formatDouble/jsonQuote helpers as every other JSON
 * surface — writer/reader drift is impossible by construction.
 */
int
cmdStatusJson(dist::WorkQueue &queue, double staleAfter)
{
    const dist::QueueStatus s = queue.status();
    std::string doc = "{\n";
    doc += "  \"queue\": " + exp::jsonQuote(queue.dir()) + ",\n";
    doc += "  \"pending\": " + std::to_string(s.pending) + ",\n";
    doc += "  \"claimed\": " + std::to_string(s.claimed) + ",\n";
    doc += "  \"failed\": " + std::to_string(s.failed) + ",\n";
    doc += "  \"corrupt\": " + std::to_string(s.corrupt) + ",\n";
    doc += "  \"lease_timeout_s\": " +
           exp::formatDouble(staleAfter) + ",\n";
    doc += "  \"leases\": [";
    bool first = true;
    for (const dist::LeaseInfo &lease : s.leases) {
        doc += first ? "\n" : ",\n";
        first = false;
        doc += "    {\"key\": " + exp::jsonQuote(lease.key) +
               ", \"worker\": " + exp::jsonQuote(lease.workerId) +
               ", \"age_s\": " + exp::formatDouble(lease.ageSeconds) +
               ", \"stale\": " +
               (lease.ageSeconds > staleAfter ? "true" : "false") +
               "}";
    }
    doc += first ? "]\n" : "\n  ]\n";
    doc += "}\n";
    std::fputs(doc.c_str(), stdout);
    return 0;
}

int
cmdStatus(dist::WorkQueue &queue, double staleAfter)
{
    const dist::QueueStatus s = queue.status();
    std::printf("queue %s: %zu pending, %zu claimed, %zu failed, "
                "%zu corrupt\n",
                queue.dir().c_str(), s.pending, s.claimed, s.failed,
                s.corrupt);

    // Group leases by worker so a fleet summary reads at a glance:
    // one line per worker, its held cells, and its freshest/oldest
    // lease age.
    std::map<std::string, std::vector<double>> byWorker;
    for (const dist::LeaseInfo &lease : s.leases)
        byWorker[lease.workerId].push_back(lease.ageSeconds);
    if (byWorker.empty()) {
        std::printf("workers: none (no live leases)\n");
    } else {
        std::printf("workers:\n");
        for (const auto &kv : byWorker) {
            double newest = kv.second.front();
            double oldest = kv.second.front();
            for (const double age : kv.second) {
                newest = age < newest ? age : newest;
                oldest = age > oldest ? age : oldest;
            }
            std::printf("  %-24s %zu lease(s), newest %s, "
                        "oldest %s%s\n",
                        kv.first.c_str(), kv.second.size(),
                        formatAge(newest).c_str(),
                        formatAge(oldest).c_str(),
                        oldest > staleAfter ? " [stale]" : "");
        }
    }
    return 0;
}

int
cmdLs(dist::WorkQueue &queue, double staleAfter)
{
    const std::vector<dist::CellInfo> cells = queue.listCells();
    if (cells.empty()) {
        std::printf("queue %s is empty\n", queue.dir().c_str());
        return 0;
    }
    for (const dist::CellInfo &cell : cells) {
        std::string detail;
        if (cell.state == "claimed") {
            detail = "worker=" + cell.workerId;
            detail += cell.leaseAgeSeconds < 0
                          ? " lease=missing"
                          : " lease=" +
                                formatAge(cell.leaseAgeSeconds);
            if (cell.leaseAgeSeconds > staleAfter)
                detail += " [stale]";
        } else if (cell.state == "failed") {
            detail = "error=" + cell.error;
        }
        std::printf("%-8s %s  %-40s %s\n", cell.state.c_str(),
                    cell.key.c_str(), cell.specId.c_str(),
                    detail.c_str());
    }
    return 0;
}

int
cmdRetryFailed(dist::WorkQueue &queue)
{
    const std::size_t cleared = queue.retryFailed();
    std::printf("retry-failed: %zu failed cell(s) cleared on %s\n",
                cleared, queue.dir().c_str());
    return 0;
}

int
cmdPurge(dist::WorkQueue &queue)
{
    const std::size_t removed = queue.purge();
    std::printf("purge: removed %zu file(s) from %s\n", removed,
                queue.dir().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::string queue_dir;
    long lease_timeout_s = 30;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sweep_queue: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--queue") {
            queue_dir = value();
        } else if (arg == "--lease-timeout-s") {
            lease_timeout_s = std::atol(value().c_str());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sweep_queue: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else {
            std::fprintf(stderr,
                         "sweep_queue: unexpected argument %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (command.empty() || !isSubcommand(command)) {
        std::fprintf(stderr, "sweep_queue: %s\n",
                     command.empty()
                         ? "a command is required"
                         : ("unknown command \"" + command + "\"")
                               .c_str());
        usage();
        return 2;
    }
    if (queue_dir.empty()) {
        std::fprintf(stderr, "sweep_queue: --queue is required\n");
        return 2;
    }
    if (lease_timeout_s <= 0) {
        std::fprintf(stderr, "sweep_queue: --lease-timeout-s must "
                             "be positive\n");
        return 2;
    }
    // Creating directories on a typo'd path would be the opposite
    // of inspection — insist the queue already exists.
    if (!std::filesystem::is_directory(queue_dir)) {
        std::fprintf(stderr, "sweep_queue: no queue at \"%s\"\n",
                     queue_dir.c_str());
        return 2;
    }

    try {
        dist::WorkQueue queue(queue_dir);
        const double staleAfter =
            static_cast<double>(lease_timeout_s);
        if (json && command != "status") {
            std::fprintf(stderr, "sweep_queue: --json only applies "
                                 "to status\n");
            return 2;
        }
        if (command == "status")
            return json ? cmdStatusJson(queue, staleAfter)
                        : cmdStatus(queue, staleAfter);
        if (command == "ls")
            return cmdLs(queue, staleAfter);
        if (command == "retry-failed")
            return cmdRetryFailed(queue);
        return cmdPurge(queue);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_queue: %s\n", e.what());
        return 2;
    }
}
