/**
 * @file
 * Fig. 8: 3DMark performance improvement of MemScale-R, CoScale-R,
 * and SysScale over the fixed baseline (paper: SysScale +8.9%,
 * +6.7%, +8.1%; prior work ~1.3-1.8%).
 *
 * Grid-shaped: one cell per (benchmark, governor), run through the
 * parallel ExperimentRunner (cacheable via --cache-dir) and reduced
 * with exp::agg — group by workload, delta each governor against the
 * fixed baseline of the same benchmark.
 */

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/graphics.hh"

using namespace sysscale;

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Fig. 8", "3DMark graphics improvement @ 4.5W TDP");

    const double paper_ss[] = {8.9, 6.7, 8.1};
    const auto suite = workloads::graphicsSuite();
    const std::vector<std::string> governors = {
        "fixed", "memscale-r", "coscale-r", "sysscale"};

    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : suite) {
        for (const auto &gov : governors) {
            exp::ExperimentSpec spec = bench::makeSpec(w);
            spec.governor = gov;
            spec.id = w.name() + "/" + gov;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs, cache.get());
    for (const auto &res : results)
        bench::checkResult(res);

    const exp::agg::Metric fps = [](const exp::RunResult &r) {
        return r.metrics.fps;
    };

    std::printf("%-16s %9s %10s %10s %10s %8s\n", "benchmark",
                "base fps", "MemScale-R", "CoScale-R", "SysScale",
                "paper");

    const auto groups = exp::agg::groupBy(results, "workload");
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const exp::agg::Group &g = groups[i];
        const exp::RunResult *base =
            exp::agg::findRow(g.rows, "governor", "fixed");
        if (!base) {
            std::fprintf(stderr, "fig8: no fixed baseline for %s\n",
                         g.key.c_str());
            return 1;
        }
        std::printf("%-16s %9.1f %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
                    g.key.c_str(), base->metrics.fps,
                    exp::agg::deltaVs(g, "governor", "memscale-r",
                                      "fixed", fps),
                    exp::agg::deltaVs(g, "governor", "coscale-r",
                                      "fixed", fps),
                    exp::agg::deltaVs(g, "governor", "sysscale",
                                      "fixed", fps),
                    paper_ss[i]);
    }
    std::printf("\npaper: SysScale gains ~5x MemScale-R/CoScale-R; "
                "CPU cores sit at Pn so CoScale == MemScale here\n");
    return 0;
}
