/**
 * @file
 * Fig. 8: 3DMark performance improvement of MemScale-R, CoScale-R,
 * and SysScale over the fixed baseline (paper: SysScale +8.9%,
 * +6.7%, +8.1%; prior work ~1.3-1.8%).
 */

#include "bench/harness.hh"
#include "workloads/graphics.hh"

using namespace sysscale;
using bench::pct;

int
main()
{
    bench::banner("Fig. 8", "3DMark graphics improvement @ 4.5W TDP");

    const double paper_ss[] = {8.9, 6.7, 8.1};
    const auto suite = workloads::graphicsSuite();

    std::printf("%-16s %9s %10s %10s %10s %8s\n", "benchmark",
                "base fps", "MemScale-R", "CoScale-R", "SysScale",
                "paper");

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &w = suite[i];
        core::FixedGovernor base;
        core::MemScaleGovernor ms(true);
        core::CoScaleGovernor cs(true);
        core::SysScaleGovernor ss;

        const double b =
            bench::runExperiment(w, &base, {}).metrics.fps;
        std::printf("%-16s %9.1f %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
                    w.name().c_str(), b,
                    pct(b, bench::runExperiment(w, &ms, {})
                               .metrics.fps),
                    pct(b, bench::runExperiment(w, &cs, {})
                               .metrics.fps),
                    pct(b, bench::runExperiment(w, &ss, {})
                               .metrics.fps),
                    paper_ss[i]);
    }
    std::printf("\npaper: SysScale gains ~5x MemScale-R/CoScale-R; "
                "CPU cores sit at Pn so CoScale == MemScale here\n");
    return 0;
}
