/**
 * @file
 * Table 2: SoC and memory parameters of the evaluated systems.
 */

#include "bench/harness.hh"

using namespace sysscale;

namespace {

void
dump(const soc::SocConfig &cfg)
{
    std::printf("\n[%s]\n", cfg.name.c_str());
    std::printf("  CPU cores:            %zu (x%zu threads)\n",
                cfg.cores, cfg.threadsPerCore);
    std::printf("  core base frequency:  %.1f GHz\n",
                cfg.coreBaseFreq / 1e9);
    std::printf("  gfx base frequency:   %.0f MHz\n",
                cfg.gfxBaseFreq / 1e6);
    std::printf("  L3 cache (LLC):       %zu MB\n",
                cfg.llcBytes / (1024 * 1024));
    std::printf("  TDP:                  %.1f W\n", cfg.tdp);
    std::printf("  memory:               %s, %zu-channel, peak %.1f "
                "GB/s\n",
                cfg.dramSpec.name().c_str(), cfg.dramSpec.channels(),
                cfg.dramSpec.peakBandwidth(0) / 1e9);
    std::printf("  frequency bins:      ");
    for (std::size_t i = 0; i < cfg.dramSpec.numBins(); ++i)
        std::printf(" %.0fMT/s", cfg.dramSpec.bin(i).dataRateMTs);
    std::printf("\n");
    cfg.validate();
}

} // namespace

int
main()
{
    bench::banner("Table 2", "SoC and memory parameters");

    dump(soc::skylakeConfig());       // M-6Y75 (SysScale host)
    dump(soc::broadwellConfig());     // M-5Y71 (motivation system)
    dump(soc::skylakeDdr4Config());   // Sec. 7.4 sensitivity build

    std::printf("\nall configurations validate\n");
    return 0;
}
