/**
 * @file
 * Fig. 2: motivation experiments on the Broadwell-class system.
 *
 * (a) MD-DVFS (pinned low point, fixed 1.2GHz cores) vs baseline on
 *     perlbench / cactusADM / lbm: average power, energy,
 *     performance, EDP — plus the 1.3GHz budget-redistribution
 *     point.
 * (b) Bottleneck decomposition of the same workloads.
 * (c) Memory bandwidth demand statistics.
 */

#include "bench/harness.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

namespace {

bench::RunConfig
pinnedSetup(bool low_point, Hertz core_freq)
{
    bench::RunConfig rc;
    rc.socConfig = soc::broadwellConfig();
    rc.pinnedCoreFreq = core_freq;
    if (low_point) {
        const soc::OpPointTable table(*rc.socConfig);
        rc.pinnedOpPoint = table.low();
    }
    return rc;
}

} // namespace

int
main()
{
    bench::banner("Fig. 2", "MD-DVFS motivation (Broadwell, Sec. 3)");

    const char *names[] = {"400.perlbench", "436.cactusADM",
                           "470.lbm"};

    std::printf("(a) MD-DVFS at fixed 1.2GHz cores vs baseline "
                "(paper: power -10..-11%%; cactusADM/lbm perf loss "
                ">10%%)\n");
    std::printf("%-16s %8s %8s %8s %8s %12s\n", "workload", "power",
                "energy", "perf", "EDP", "perf@1.3GHz");

    for (const char *name : names) {
        const auto w = workloads::specBenchmark(name);
        const auto base =
            bench::runExperiment(w, nullptr,
                                 pinnedSetup(false, 1.2 * kGHz));
        const auto md =
            bench::runExperiment(w, nullptr,
                                 pinnedSetup(true, 1.2 * kGHz));
        const auto redist =
            bench::runExperiment(w, nullptr,
                                 pinnedSetup(true, 1.3 * kGHz));

        std::printf("%-16s %+7.1f%% %+7.1f%% %+7.1f%% %+7.1f%% "
                    "%+11.1f%%\n",
                    name,
                    pct(base.metrics.avgPower, md.metrics.avgPower),
                    pct(base.metrics.energy, md.metrics.energy),
                    pct(base.metrics.ips, md.metrics.ips),
                    pct(base.metrics.edp / base.metrics.ips,
                        md.metrics.edp / md.metrics.ips),
                    pct(base.metrics.ips, redist.metrics.ips));
    }

    std::printf("\n(b) bottleneck decomposition (fraction of "
                "execution bound by each)\n");
    std::printf("%-16s %10s %10s %12s\n", "workload", "mem-lat",
                "mem-bw", "non-memory");
    for (const char *name : names) {
        const auto w = workloads::specBenchmark(name);
        const auto &work = w.phase(0).work;
        // Decompose CPI at the baseline point: latency share is the
        // exposed-miss CPI; bandwidth share is flagged when the
        // demand saturates the interface.
        const auto base = bench::runExperiment(
            w, nullptr, pinnedSetup(false, 1.2 * kGHz));
        const double lat_cycles =
            base.metrics.avgMemLatencyNs * 1e-9 * 1.2e9;
        const double mem_cpi =
            work.mpki / 1000.0 * work.blockingFactor * lat_cycles;
        const double cpi = work.cpiBase + mem_cpi;
        const double bw_demand = base.metrics.avgMemBandwidth;
        const double bw_bound =
            bw_demand > 0.55 * 23e9
                ? (bw_demand / 23e9 - 0.55) / 0.45
                : 0.0;
        const double lat_share =
            (mem_cpi / cpi) * (1.0 - bw_bound);
        std::printf("%-16s %9.0f%% %9.0f%% %11.0f%%\n", name,
                    lat_share * 100.0, bw_bound * 100.0,
                    (1.0 - lat_share - bw_bound) * 100.0);
    }

    std::printf("\n(c) memory bandwidth demand (paper: perlbench "
                "low w/ spikes, cactusADM moderate, lbm ~10GB/s)\n");
    std::printf("%-16s %12s\n", "workload", "avg BW");
    for (const char *name : names) {
        const auto w = workloads::specBenchmark(name);
        const auto base = bench::runExperiment(
            w, nullptr, pinnedSetup(false, 1.2 * kGHz));
        std::printf("%-16s %9.2f GB/s\n", name,
                    base.metrics.avgMemBandwidth / 1e9);
    }
    return 0;
}
