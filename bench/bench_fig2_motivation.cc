/**
 * @file
 * Fig. 2: motivation experiments on the Broadwell-class system.
 *
 * (a) MD-DVFS (pinned low point, fixed 1.2GHz cores) vs baseline on
 *     perlbench / cactusADM / lbm: average power, energy,
 *     performance, EDP — plus the 1.3GHz budget-redistribution
 *     point.
 * (b) Bottleneck decomposition of the same workloads.
 * (c) Memory bandwidth demand statistics.
 *
 * Grid-shaped: one cell per (workload, setup) where setup is
 * "base" (default point), "md" (pinned low point), or "redist"
 * (low point with the 100MHz core budget redistribution), run
 * through the parallel runner and reduced with exp::agg baseline
 * deltas against the base setup.
 */

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

bench::RunConfig
pinnedSetup(bool low_point, Hertz core_freq)
{
    bench::RunConfig rc;
    rc.socConfig = soc::broadwellConfig();
    rc.pinnedCoreFreq = core_freq;
    if (low_point) {
        const soc::OpPointTable table(*rc.socConfig);
        rc.pinnedOpPoint = table.low();
    }
    return rc;
}

/** Percent delta of @p setup vs the base setup (throws if absent). */
double
deltaPct(const exp::agg::Group &g, const std::string &setup,
         const exp::agg::Metric &m)
{
    return exp::agg::deltaVs(g, "setup", setup, "base", m);
}

/** The group's base-setup row; exits loudly when it went missing. */
const exp::RunResult &
baseRow(const exp::agg::Group &g)
{
    const exp::RunResult *base =
        exp::agg::findRow(g.rows, "setup", "base");
    if (!base) {
        std::fprintf(stderr, "fig2: no base setup for %s\n",
                     g.key.c_str());
        std::exit(1);
    }
    return *base;
}

} // namespace

int
main()
{
    bench::banner("Fig. 2", "MD-DVFS motivation (Broadwell, Sec. 3)");

    const char *names[] = {"400.perlbench", "436.cactusADM",
                           "470.lbm"};
    struct Setup
    {
        const char *name;
        bool lowPoint;
        Hertz coreFreq;
    };
    const Setup setups[] = {
        {"base", false, 1.2 * kGHz},
        {"md", true, 1.2 * kGHz},
        {"redist", true, 1.3 * kGHz},
    };

    std::vector<exp::ExperimentSpec> specs;
    for (const char *name : names) {
        const auto w = workloads::specBenchmark(name);
        for (const Setup &s : setups) {
            exp::ExperimentSpec spec = bench::makeSpec(
                w, pinnedSetup(s.lowPoint, s.coreFreq));
            spec.id = std::string(name) + "/" + s.name;
            spec.labels = {{"workload", name}, {"setup", s.name}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs);
    for (const auto &res : results)
        bench::checkResult(res);
    const auto groups = exp::agg::groupBy(results, "workload");

    const exp::agg::Metric power = [](const exp::RunResult &r) {
        return r.metrics.avgPower;
    };
    const exp::agg::Metric energy = [](const exp::RunResult &r) {
        return r.metrics.energy;
    };
    const exp::agg::Metric perf = [](const exp::RunResult &r) {
        return r.metrics.ips;
    };
    const exp::agg::Metric edp_per_ips = [](const exp::RunResult &r) {
        return r.metrics.edp / r.metrics.ips;
    };

    std::printf("(a) MD-DVFS at fixed 1.2GHz cores vs baseline "
                "(paper: power -10..-11%%; cactusADM/lbm perf loss "
                ">10%%)\n");
    std::printf("%-16s %8s %8s %8s %8s %12s\n", "workload", "power",
                "energy", "perf", "EDP", "perf@1.3GHz");

    for (const exp::agg::Group &g : groups) {
        std::printf("%-16s %+7.1f%% %+7.1f%% %+7.1f%% %+7.1f%% "
                    "%+11.1f%%\n",
                    g.key.c_str(), deltaPct(g, "md", power),
                    deltaPct(g, "md", energy),
                    deltaPct(g, "md", perf),
                    deltaPct(g, "md", edp_per_ips),
                    deltaPct(g, "redist", perf));
    }

    std::printf("\n(b) bottleneck decomposition (fraction of "
                "execution bound by each)\n");
    std::printf("%-16s %10s %10s %12s\n", "workload", "mem-lat",
                "mem-bw", "non-memory");
    for (const exp::agg::Group &g : groups) {
        const exp::RunResult &base = baseRow(g);
        const auto w = workloads::specBenchmark(g.key);
        const auto &work = w.phase(0).work;
        // Decompose CPI at the baseline point: latency share is the
        // exposed-miss CPI; bandwidth share is flagged when the
        // demand saturates the interface.
        const double lat_cycles =
            base.metrics.avgMemLatencyNs * 1e-9 * 1.2e9;
        const double mem_cpi =
            work.mpki / 1000.0 * work.blockingFactor * lat_cycles;
        const double cpi = work.cpiBase + mem_cpi;
        const double bw_demand = base.metrics.avgMemBandwidth;
        const double bw_bound =
            bw_demand > 0.55 * 23e9
                ? (bw_demand / 23e9 - 0.55) / 0.45
                : 0.0;
        const double lat_share =
            (mem_cpi / cpi) * (1.0 - bw_bound);
        std::printf("%-16s %9.0f%% %9.0f%% %11.0f%%\n",
                    g.key.c_str(), lat_share * 100.0,
                    bw_bound * 100.0,
                    (1.0 - lat_share - bw_bound) * 100.0);
    }

    std::printf("\n(c) memory bandwidth demand (paper: perlbench "
                "low w/ spikes, cactusADM moderate, lbm ~10GB/s)\n");
    std::printf("%-16s %12s\n", "workload", "avg BW");
    for (const exp::agg::Group &g : groups) {
        std::printf("%-16s %9.2f GB/s\n", g.key.c_str(),
                    baseRow(g).metrics.avgMemBandwidth / 1e9);
    }
    return 0;
}
