/**
 * @file
 * Sec. 7.4 sensitivity: more DRAM frequencies.
 *
 *  - DDR4 1866->1333 frees ~7% less budget than LPDDR3 1600->1066.
 *  - The LPDDR3 800MT/s point is not worth supporting: V_SA already
 *    reaches Vmin at 1066, and the extra performance loss is 2-3x.
 *
 * The 120-workload x 3-operating-point degradation sample is the hot
 * path here; every (workload, point) pair is an independent pinned
 * cell, so the whole sample runs as one ExperimentRunner batch
 * (cacheable via --cache-dir) and the per-workload losses reduce
 * through exp::agg (group by workload, collect, mean).
 */

#include <vector>

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/sweep.hh"

using namespace sysscale;

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Sec. 7.4", "DRAM frequency sensitivity");

    // Budget freed by each DVFS pair.
    const soc::SocConfig lp = soc::skylakeConfig();
    const soc::OpPointTable lp_table(lp);
    const Watt lp_freed =
        soc::ioMemBudgetDemand(lp, lp_table.high()) -
        soc::ioMemBudgetDemand(lp, lp_table.low());

    const soc::SocConfig d4 = soc::skylakeDdr4Config();
    const soc::OpPointTable d4_table(d4);
    const Watt d4_freed =
        soc::ioMemBudgetDemand(d4, d4_table.high()) -
        soc::ioMemBudgetDemand(d4, d4_table.low());

    std::printf("freed budget LPDDR3 1600->1066: %.3f W\n", lp_freed);
    std::printf("freed budget DDR4   1866->1333: %.3f W (%+.1f%% vs "
                "LPDDR3; paper: ~-7%%)\n",
                d4_freed, (d4_freed / lp_freed - 1.0) * 100.0);

    // The 800MT/s point: voltage already floored.
    const Watt delta_1066 =
        soc::ioMemBudgetDemand(lp, lp_table.high()) -
        soc::ioMemBudgetDemand(lp, lp_table.point(1));
    const Watt delta_800 =
        soc::ioMemBudgetDemand(lp, lp_table.point(1)) -
        soc::ioMemBudgetDemand(lp, lp_table.point(2));
    std::printf("\nincremental saving 1600->1066: %.3f W "
                "(V_SA %.2f -> %.2f V)\n",
                delta_1066, lp_table.high().vSa,
                lp_table.point(1).vSa);
    std::printf("incremental saving 1066->800:  %.3f W "
                "(V_SA %.2f -> %.2f V, already near Vmin)\n",
                delta_800, lp_table.point(1).vSa,
                lp_table.point(2).vSa);

    // Average degradation of scaling to each point over a CPU-ST
    // workload sample (paper: 1600->800 loses 2-3x more than
    // 1600->1066).
    const auto sample = workloads::SynthSweep::generateClass(
        workloads::WorkloadClass::CpuSingleThread, 120, 0xfeed);
    const struct
    {
        const char *label;
        const soc::OperatingPoint &point;
    } points[] = {{"hi", lp_table.high()},
                  {"p1066", lp_table.point(1)},
                  {"p800", lp_table.point(2)}};

    std::vector<exp::ExperimentSpec> specs;
    specs.reserve(sample.size() * 3);
    for (const auto &w : sample) {
        for (const auto &point : points) {
            bench::RunConfig rc;
            rc.pinnedCoreFreq = 1.2 * kGHz;
            rc.warmup = 60 * kTicksPerMs;
            rc.window = 200 * kTicksPerMs;
            rc.pinnedOpPoint = point.point;
            exp::ExperimentSpec spec = bench::makeSpec(w, rc);
            spec.id = w.name() + "/pinned-" + point.point.name;
            spec.labels = {{"workload", w.name()},
                           {"point", point.label}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs, cache.get());
    for (const auto &res : results)
        bench::checkResult(res);

    std::vector<double> losses_1066, losses_800;
    for (const exp::agg::Group &g :
         exp::agg::groupBy(results, "workload")) {
        const exp::RunResult *hi =
            exp::agg::findRow(g.rows, "point", "hi");
        const exp::RunResult *lo1066 =
            exp::agg::findRow(g.rows, "point", "p1066");
        const exp::RunResult *lo800 =
            exp::agg::findRow(g.rows, "point", "p800");
        if (!hi || !lo1066 || !lo800) {
            // Fail loudly rather than averaging a partial sample.
            std::fprintf(stderr, "sens: missing point for %s\n",
                         g.key.c_str());
            return 1;
        }
        losses_1066.push_back(1.0 - lo1066->metrics.ips /
                                        hi->metrics.ips);
        losses_800.push_back(1.0 -
                             lo800->metrics.ips / hi->metrics.ips);
    }
    const double loss_1066 = exp::agg::mean(losses_1066);
    const double loss_800 = exp::agg::mean(losses_800);

    std::printf("\navg degradation 1600->1066: %.2f%%\n",
                loss_1066 * 100.0);
    std::printf("avg degradation 1600->800:  %.2f%% (%.1fx; paper: "
                "2-3x)\n",
                loss_800 * 100.0,
                loss_1066 > 0.0 ? loss_800 / loss_1066 : 0.0);
    std::printf("\nconclusion: the 800MT/s point frees little extra "
                "budget and costs 2-3x the performance, matching the "
                "paper's decision to ship only 1600/1066.\n");
    return 0;
}
