/**
 * @file
 * Microbenchmarks (google-benchmark): costs of the kernel and model
 * hot paths, and the per-step cost of the assembled SoC.
 */

#include <benchmark/benchmark.h>

#include "bench/harness.hh"
#include "core/governor.hh"
#include "core/governor_registry.hh"
#include "core/threshold_trainer.hh"
#include "obs/trace.hh"
#include "sim/random.hh"
#include "workloads/battery.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue q;
    EventFunctionWrapper ev("ev", [] {});
    Tick t = 1;
    for (auto _ : state) {
        q.schedule(&ev, t);
        q.step();
        ++t;
    }
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_RngUniform(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void
BM_McService(benchmark::State &state)
{
    Simulator sim;
    dram::DramDevice dev(sim, nullptr, dram::lpddr3Spec());
    mem::MrcStore mrc(dram::lpddr3Spec());
    mem::MemoryController mc(sim, nullptr, dev, mrc, 0.80);
    mem::MemDemand d;
    d.cpuRead = 6e9;
    d.ioIso = 4.3e9;
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.service(d, 100 * kTicksPerUs));
}
BENCHMARK(BM_McService);

void
BM_LoadedLatency(benchmark::State &state)
{
    Simulator sim;
    dram::DramDevice dev(sim, nullptr, dram::lpddr3Spec());
    mem::MrcStore mrc(dram::lpddr3Spec());
    mem::MemoryController mc(sim, nullptr, dev, mrc, 0.80);
    double rho = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mc.loadedLatencyAt(rho));
        rho = rho > 0.9 ? 0.0 : rho + 0.01;
    }
}
BENCHMARK(BM_LoadedLatency);

void
BM_PredictorDecision(benchmark::State &state)
{
    const core::DemandPredictor pred(
        core::SysScaleGovernor::defaultThresholds(), {});
    soc::CounterSnapshot snap;
    snap[soc::Counter::LlcStalls] = 1e5;
    for (auto _ : state)
        benchmark::DoNotOptimize(pred.demandsHighPoint(snap, 4.3e9));
}
BENCHMARK(BM_PredictorDecision);

void
BM_ThresholdTraining(benchmark::State &state)
{
    Rng rng(3);
    std::vector<core::TrainingSample> corpus(1000);
    for (auto &s : corpus) {
        s.counters[soc::Counter::LlcStalls] = rng.uniform(0, 2e6);
        s.counters[soc::Counter::LlcOccupancyTracer] =
            rng.uniform(0, 20);
        s.normPerf = rng.uniform(0.85, 1.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::ThresholdTrainer::train(corpus, 0.01));
    }
}
BENCHMARK(BM_ThresholdTraining);

void
BM_TransitionFlow(benchmark::State &state)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    core::TransitionFlow flow(chip);
    bool low = true;
    for (auto _ : state) {
        flow.execute(low ? chip.opPoints().low()
                         : chip.opPoints().high());
        low = !low;
    }
}
BENCHMARK(BM_TransitionFlow);

void
BM_SocStep(benchmark::State &state)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(
        workloads::specBenchmark("470.lbm"));
    chip.setWorkload(&agent);
    chip.run(kTicksPerMs);
    for (auto _ : state)
        chip.run(100 * kTicksPerUs); // one model step
}
BENCHMARK(BM_SocStep);

/**
 * BM_SocStep with a live TraceSink installed: the same model step
 * plus event capture (spans, change-filtered counters) into the
 * bounded in-memory buffer. The strict perf ledger holds the gap to
 * the untraced variant — tracing is supposed to be cheap enough to
 * leave on for any diagnostic run.
 */
void
BM_SocStepTraced(benchmark::State &state)
{
    Simulator sim;
    obs::TraceSink sink;
    sim.setTraceSink(&sink);
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(
        workloads::specBenchmark("470.lbm"));
    chip.setWorkload(&agent);
    chip.run(kTicksPerMs);
    for (auto _ : state)
        chip.run(100 * kTicksPerUs); // one model step
}
BENCHMARK(BM_SocStepTraced)->Name("BM_SocStep/traced");

/**
 * Fig. 9-class idle-heavy run (video playback: C0/C2/C8 = 10/5/85)
 * with the constant-step replay path toggled by the benchmark arg
 * (0 = off, 1 = on). The strict perf ledger requires the enabled
 * variant to hold a >= 2x wall-clock advantage over the disabled
 * one; each iteration simulates 10ms.
 */
void
BM_Fig9IdleRun(benchmark::State &state)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    workloads::ProfileAgent agent(workloads::videoPlayback());
    chip.setWorkload(&agent);
    chip.setSkipAhead(state.range(0) != 0);
    chip.run(kTicksPerMs);
    for (auto _ : state)
        chip.run(10 * kTicksPerMs);
}
BENCHMARK(BM_Fig9IdleRun)->Arg(0)->Arg(1);

/**
 * Cost of one governor evaluation interval through the full
 * policy/driver stack: GovernorHost::evaluate() -> decide() ->
 * driver request (with notifier dispatch when the point moves).
 * One variant per registered governor, at default parameters, so
 * the perf ledger watches every policy in the zoo.
 */
void
BM_GovernorDecide(benchmark::State &state, const std::string &name)
{
    Simulator sim;
    soc::Soc chip(sim, soc::skylakeConfig());
    chip.display().attachPanel(0, io::PanelConfig{});
    core::GovernorHost host(core::makeGovernor(name, {}));
    host.reset(chip);
    soc::CounterSnapshot avg;
    avg[soc::Counter::LlcStalls] = 1e5;
    avg[soc::Counter::LlcOccupancyTracer] = 8.0;
    avg[soc::Counter::IoRpq] = 12.0;
    for (auto _ : state)
        host.evaluate(chip, avg);
}

const int kGovernorDecideRegistered = [] {
    for (const auto &entry : core::governorRegistry()) {
        benchmark::RegisterBenchmark(
            ("BM_GovernorDecide/" + entry.name).c_str(),
            [name = entry.name](benchmark::State &st) {
                BM_GovernorDecide(st, name);
            });
    }
    return 0;
}();

void
BM_DisplayPanelBandwidth(benchmark::State &state)
{
    const io::PanelConfig cfg{io::PanelResolution::UHD4K, 60.0, 4};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            io::DisplayEngine::panelBandwidth(cfg));
    }
}
BENCHMARK(BM_DisplayPanelBandwidth);

} // namespace

BENCHMARK_MAIN();
