/**
 * @file
 * Fig. 10: SysScale's SPEC CPU2006 benefit vs SoC TDP (violin in the
 * paper; rows of distribution statistics here). Paper: 19.1% average
 * (up to 33%) at 3.5W, shrinking as TDP grows.
 */

#include <algorithm>
#include <vector>

#include "bench/harness.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

int
main()
{
    bench::banner("Fig. 10", "SysScale benefit vs thermal design "
                             "power (SPEC CPU2006)");

    const double tdps[] = {3.5, 4.5, 7.0, 15.0};
    const auto suite = workloads::specSuite();

    std::printf("%-8s %8s %8s %8s %8s\n", "TDP", "average", "median",
                "max", "min");

    for (const double tdp : tdps) {
        std::vector<double> gains;
        gains.reserve(suite.size());
        for (const auto &w : suite) {
            bench::RunConfig rc;
            rc.tdp = tdp;
            rc.window =
                std::max<Tick>(2 * kTicksPerSec, 2 * w.period());

            core::FixedGovernor base;
            core::SysScaleGovernor ss;
            const double b =
                bench::runExperiment(w, &base, rc).metrics.ips;
            gains.push_back(
                pct(b, bench::runExperiment(w, &ss, rc).metrics.ips));
        }
        std::sort(gains.begin(), gains.end());
        double sum = 0.0;
        for (double g : gains)
            sum += g;
        std::printf("%5.1fW %+7.1f%% %+7.1f%% %+7.1f%% %+7.1f%%\n",
                    tdp, sum / gains.size(),
                    gains[gains.size() / 2], gains.back(),
                    gains.front());
    }

    std::printf("\npaper: 3.5W avg +19.1%% (max +33%%); benefit "
                "shrinks as TDP grows (power becomes ample)\n");
    return 0;
}
