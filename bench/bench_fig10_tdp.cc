/**
 * @file
 * Fig. 10: SysScale's SPEC CPU2006 benefit vs SoC TDP (violin in the
 * paper; rows of distribution statistics here). Paper: 19.1% average
 * (up to 33%) at 3.5W, shrinking as TDP grows.
 *
 * The TDP x workload x governor grid is embarrassingly parallel, so
 * all cells go through the ExperimentRunner in one batch; results
 * come back in spec order, keeping the aggregation identical to the
 * old serial nest.
 */

#include <algorithm>
#include <vector>

#include "bench/harness.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

int
main()
{
    bench::banner("Fig. 10", "SysScale benefit vs thermal design "
                             "power (SPEC CPU2006)");

    const std::vector<double> tdps = {3.5, 4.5, 7.0, 15.0};
    const auto suite = workloads::specSuite();
    const char *governors[] = {"fixed", "sysscale"};

    std::vector<exp::ExperimentSpec> specs;
    specs.reserve(tdps.size() * suite.size() * 2);
    for (const double tdp : tdps) {
        for (const auto &w : suite) {
            for (const char *gov : governors) {
                bench::RunConfig rc;
                rc.tdp = tdp;
                rc.window =
                    std::max<Tick>(2 * kTicksPerSec, 2 * w.period());
                exp::ExperimentSpec spec = bench::makeSpec(w, rc);
                spec.governor = gov;
                char id[96];
                std::snprintf(id, sizeof(id), "%s/%s/%.3gW",
                              w.name().c_str(), gov, tdp);
                spec.id = id;
                specs.push_back(std::move(spec));
            }
        }
    }

    const auto results = bench::runBatch(specs);

    std::printf("%-8s %8s %8s %8s %8s\n", "TDP", "average", "median",
                "max", "min");

    std::size_t i = 0;
    for (const double tdp : tdps) {
        std::vector<double> gains;
        gains.reserve(suite.size());
        for (std::size_t w = 0; w < suite.size(); ++w) {
            const double base =
                bench::checkResult(results[i]).metrics.ips;
            const double ss =
                bench::checkResult(results[i + 1]).metrics.ips;
            gains.push_back(pct(base, ss));
            i += 2;
        }
        std::sort(gains.begin(), gains.end());
        double sum = 0.0;
        for (double g : gains)
            sum += g;
        std::printf("%5.1fW %+7.1f%% %+7.1f%% %+7.1f%% %+7.1f%%\n",
                    tdp, sum / gains.size(),
                    gains[gains.size() / 2], gains.back(),
                    gains.front());
    }

    std::printf("\npaper: 3.5W avg +19.1%% (max +33%%); benefit "
                "shrinks as TDP grows (power becomes ample)\n");
    return 0;
}
