/**
 * @file
 * Fig. 3: (a) memory bandwidth demand over time for three SPEC
 * benchmarks and 3DMark; (b) static bandwidth demand of the display
 * engine, ISP, and graphics engines per configuration.
 *
 * Part (a)'s time series runs as a grid: one cell per (workload,
 * 200ms window), each cell warming up to its window's start — the
 * model is deterministic, so the windows are exactly the successive
 * windows of one long run, but the cells parallelize and cache
 * (--cache-dir). Rows reduce with exp::agg::groupBy per workload.
 */

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/graphics.hh"
#include "workloads/spec.hh"

using namespace sysscale;

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Fig. 3", "bandwidth demand over time and by "
                            "configuration");

    std::printf("(a) bandwidth demand vs time (GB/s per 200ms "
                "window)\n");
    const workloads::WorkloadProfile profiles[] = {
        workloads::specBenchmark("400.perlbench"),
        workloads::specBenchmark("470.lbm"),
        workloads::specBenchmark("473.astar"),
        workloads::threeDMark06(),
    };

    constexpr int kWindows = 12;
    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : profiles) {
        for (int i = 0; i < kWindows; ++i) {
            bench::RunConfig rc;
            rc.warmup = 100 * kTicksPerMs +
                        static_cast<Tick>(i) * 200 * kTicksPerMs;
            rc.window = 200 * kTicksPerMs;
            exp::ExperimentSpec spec = bench::makeSpec(w, rc);
            spec.id = w.name() + "/t" + std::to_string(i);
            spec.labels = {{"workload", w.name()},
                           {"window", std::to_string(i)}};
            specs.push_back(std::move(spec));
        }
    }
    const auto series = bench::runBatch(specs, cache.get());

    for (const exp::agg::Group &g :
         exp::agg::groupBy(series, "workload")) {
        std::printf("%-16s", g.key.c_str());
        for (const exp::RunResult *r : g.rows) {
            bench::checkResult(*r);
            std::printf(" %5.1f", r->metrics.avgMemBandwidth / 1e9);
        }
        std::printf("\n");
    }

    std::printf("\n(b) static/engine demand by configuration "
                "(%% of 25.6 GB/s peak; paper: HD ~17%%, 4K ~70%%)\n");
    const struct
    {
        const char *name;
        io::PanelResolution res;
        double refresh;
    } panels[] = {
        {"display 1x HD@60", io::PanelResolution::HD, 60.0},
        {"display 1x FHD@60", io::PanelResolution::FHD, 60.0},
        {"display 1x QHD@60", io::PanelResolution::QHD, 60.0},
        {"display 1x 4K@60", io::PanelResolution::UHD4K, 60.0},
    };
    for (const auto &p : panels) {
        const BytesPerSec bw = io::DisplayEngine::panelBandwidth(
            io::PanelConfig{p.res, p.refresh, 4});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", p.name, bw / 1e9,
                    bw / 25.6e9 * 100.0);
    }
    {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        const io::PanelConfig hd{io::PanelResolution::HD, 60.0, 4};
        chip.display().attachPanel(0, hd);
        chip.display().attachPanel(1, hd);
        chip.display().attachPanel(2, hd);
        const BytesPerSec bw = chip.display().bandwidthDemand();
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "display 3x HD@60",
                    bw / 1e9, bw / 25.6e9 * 100.0);
    }
    {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        chip.isp().startCamera(io::CameraConfig{1280, 720, 30.0, 2});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "ISP 720p30 camera",
                    chip.isp().bandwidthDemand() / 1e9,
                    chip.isp().bandwidthDemand() / 25.6e9 * 100.0);
        chip.isp().startCamera(io::CameraConfig{1920, 1080, 60.0, 2});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "ISP 1080p60 camera",
                    chip.isp().bandwidthDemand() / 1e9,
                    chip.isp().bandwidthDemand() / 25.6e9 * 100.0);
    }

    // Graphics-engine demand: one measured cell per suite entry,
    // batched like any other grid.
    std::vector<exp::ExperimentSpec> gfx_specs;
    for (const auto &w : workloads::graphicsSuite())
        gfx_specs.push_back(bench::makeSpec(w));
    const auto gfx = bench::runBatch(gfx_specs, cache.get());
    for (const auto &res : gfx) {
        bench::checkResult(res);
        std::printf("GFX %-18s %6.2f GB/s  (%4.1f%%)\n",
                    res.workload.c_str(),
                    res.metrics.avgMemBandwidth / 1e9,
                    res.metrics.avgMemBandwidth / 25.6e9 * 100.0);
    }
    return 0;
}
