/**
 * @file
 * Fig. 3: (a) memory bandwidth demand over time for three SPEC
 * benchmarks and 3DMark; (b) static bandwidth demand of the display
 * engine, ISP, and graphics engines per configuration.
 */

#include "bench/harness.hh"
#include "workloads/graphics.hh"
#include "workloads/spec.hh"

using namespace sysscale;

int
main()
{
    bench::banner("Fig. 3", "bandwidth demand over time and by "
                            "configuration");

    std::printf("(a) bandwidth demand vs time (GB/s per 200ms "
                "window)\n");
    const workloads::WorkloadProfile profiles[] = {
        workloads::specBenchmark("400.perlbench"),
        workloads::specBenchmark("470.lbm"),
        workloads::specBenchmark("473.astar"),
        workloads::threeDMark06(),
    };

    for (const auto &w : profiles) {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        chip.display().attachPanel(0, io::PanelConfig{
            io::PanelResolution::HD, 60.0, 4});
        workloads::ProfileAgent agent(w);
        chip.setWorkload(&agent);
        chip.run(100 * kTicksPerMs);

        std::printf("%-16s", w.name().c_str());
        for (int i = 0; i < 12; ++i) {
            const auto m = chip.run(200 * kTicksPerMs);
            std::printf(" %5.1f", m.avgMemBandwidth / 1e9);
        }
        std::printf("\n");
    }

    std::printf("\n(b) static/engine demand by configuration "
                "(%% of 25.6 GB/s peak; paper: HD ~17%%, 4K ~70%%)\n");
    const struct
    {
        const char *name;
        io::PanelResolution res;
        double refresh;
    } panels[] = {
        {"display 1x HD@60", io::PanelResolution::HD, 60.0},
        {"display 1x FHD@60", io::PanelResolution::FHD, 60.0},
        {"display 1x QHD@60", io::PanelResolution::QHD, 60.0},
        {"display 1x 4K@60", io::PanelResolution::UHD4K, 60.0},
    };
    for (const auto &p : panels) {
        const BytesPerSec bw = io::DisplayEngine::panelBandwidth(
            io::PanelConfig{p.res, p.refresh, 4});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", p.name, bw / 1e9,
                    bw / 25.6e9 * 100.0);
    }
    {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        const io::PanelConfig hd{io::PanelResolution::HD, 60.0, 4};
        chip.display().attachPanel(0, hd);
        chip.display().attachPanel(1, hd);
        chip.display().attachPanel(2, hd);
        const BytesPerSec bw = chip.display().bandwidthDemand();
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "display 3x HD@60",
                    bw / 1e9, bw / 25.6e9 * 100.0);
    }
    {
        Simulator sim(1);
        soc::Soc chip(sim, soc::skylakeConfig());
        chip.isp().startCamera(io::CameraConfig{1280, 720, 30.0, 2});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "ISP 720p30 camera",
                    chip.isp().bandwidthDemand() / 1e9,
                    chip.isp().bandwidthDemand() / 25.6e9 * 100.0);
        chip.isp().startCamera(io::CameraConfig{1920, 1080, 60.0, 2});
        std::printf("%-22s %6.2f GB/s  (%4.1f%%)\n", "ISP 1080p60 camera",
                    chip.isp().bandwidthDemand() / 1e9,
                    chip.isp().bandwidthDemand() / 25.6e9 * 100.0);
    }
    for (const auto &w : workloads::graphicsSuite()) {
        const auto out = bench::runExperiment(w, nullptr, {});
        std::printf("GFX %-18s %6.2f GB/s  (%4.1f%%)\n",
                    w.name().c_str(),
                    out.metrics.avgMemBandwidth / 1e9,
                    out.metrics.avgMemBandwidth / 25.6e9 * 100.0);
    }
    return 0;
}
