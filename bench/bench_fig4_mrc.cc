/**
 * @file
 * Fig. 4: impact of unoptimized MRC values on power and performance
 * for a memory-bandwidth-intensive microbenchmark (paper: average
 * power +22%, performance -10% vs optimized values).
 *
 * Both pinned cells run as one ExperimentRunner batch (cacheable via
 * --cache-dir); the figure's deltas reduce through exp::agg against
 * the optimized-MRC baseline cell.
 */

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/micro.hh"

using namespace sysscale;

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Fig. 4", "unoptimized MRC penalty on a STREAM-like "
                            "microbenchmark");

    const auto stream = workloads::streamMicro();
    const soc::SocConfig cfg = soc::skylakeConfig();
    const soc::OpPointTable table(cfg);

    std::vector<exp::ExperimentSpec> specs;
    for (const bool unoptimized : {false, true}) {
        bench::RunConfig rc;
        rc.pinnedCoreFreq = 1.2 * kGHz;
        rc.pinnedOpPoint = table.low();
        rc.pinnedUnoptimizedMrc = unoptimized;
        exp::ExperimentSpec spec = bench::makeSpec(stream, rc);
        spec.id = stream.name() +
                  (unoptimized ? "/unoptimized" : "/optimized");
        spec.labels = {{"bench", "fig4"},
                       {"mrc", unoptimized ? "unoptimized"
                                           : "optimized"}};
        specs.push_back(std::move(spec));
    }

    const auto results = bench::runBatch(specs, cache.get());
    const exp::RunResult &optimized = bench::checkResult(results[0]);
    const exp::RunResult &unopt = bench::checkResult(results[1]);

    // Both cells share the "bench" label, so they reduce as one
    // group with the optimized cell as baseline.
    const auto groups = exp::agg::groupBy(results, "bench");
    const exp::agg::Group &g = groups.front();
    auto delta = [&](const exp::agg::Metric &m) {
        return exp::agg::deltaVs(g, "mrc", "unoptimized", "optimized",
                                 m);
    };

    // Isolate the memory subsystem: the paper measures total average
    // power and benchmark performance.
    const double power_inc = delta(
        [](const exp::RunResult &r) { return r.metrics.avgPower; });
    const double perf_deg = -delta(
        [](const exp::RunResult &r) { return r.metrics.ips; });

    std::printf("%-28s %10s %10s\n", "metric", "measured", "paper");
    std::printf("%-28s %+9.1f%% %10s\n", "average power increase",
                power_inc, "+22%");
    std::printf("%-28s %+9.1f%% %10s\n", "performance degradation",
                perf_deg, "10%");

    std::printf("\noptimized:   %6.2f GB/s, %6.3f W\n",
                optimized.metrics.avgMemBandwidth / 1e9,
                optimized.metrics.avgPower);
    std::printf("unoptimized: %6.2f GB/s, %6.3f W\n",
                unopt.metrics.avgMemBandwidth / 1e9,
                unopt.metrics.avgPower);

    const double vddq_opt =
        optimized.metrics
            .railEnergy[power::railIndex(power::Rail::VDDQ)];
    const double vddq_unopt =
        unopt.metrics.railEnergy[power::railIndex(power::Rail::VDDQ)];
    std::printf("VDDQ rail energy: optimized %.3f J, unoptimized "
                "%.3f J (%+.1f%%)\n",
                vddq_opt, vddq_unopt,
                delta([](const exp::RunResult &r) {
                    return r.metrics.railEnergy[power::railIndex(
                        power::Rail::VDDQ)];
                }));
    return 0;
}
