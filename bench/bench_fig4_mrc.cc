/**
 * @file
 * Fig. 4: impact of unoptimized MRC values on power and performance
 * for a memory-bandwidth-intensive microbenchmark (paper: average
 * power +22%, performance -10% vs optimized values).
 */

#include "bench/harness.hh"
#include "workloads/micro.hh"

using namespace sysscale;
using bench::pct;

int
main()
{
    bench::banner("Fig. 4", "unoptimized MRC penalty on a STREAM-like "
                            "microbenchmark");

    const auto stream = workloads::streamMicro();
    const soc::SocConfig cfg = soc::skylakeConfig();
    const soc::OpPointTable table(cfg);

    auto run_at_low = [&](bool unoptimized) {
        bench::RunConfig rc;
        rc.pinnedCoreFreq = 1.2 * kGHz;
        rc.pinnedOpPoint = table.low();
        rc.pinnedUnoptimizedMrc = unoptimized;
        return bench::runExperiment(stream, nullptr, rc);
    };

    const auto optimized = run_at_low(false);
    const auto unopt = run_at_low(true);

    // Isolate the memory subsystem: the paper measures total average
    // power and benchmark performance.
    const double power_inc =
        pct(optimized.metrics.avgPower, unopt.metrics.avgPower);
    const double perf_deg =
        -pct(optimized.metrics.ips, unopt.metrics.ips);

    std::printf("%-28s %10s %10s\n", "metric", "measured", "paper");
    std::printf("%-28s %+9.1f%% %10s\n", "average power increase",
                power_inc, "+22%");
    std::printf("%-28s %+9.1f%% %10s\n", "performance degradation",
                perf_deg, "10%");

    std::printf("\noptimized:   %6.2f GB/s, %6.3f W\n",
                optimized.metrics.avgMemBandwidth / 1e9,
                optimized.metrics.avgPower);
    std::printf("unoptimized: %6.2f GB/s, %6.3f W\n",
                unopt.metrics.avgMemBandwidth / 1e9,
                unopt.metrics.avgPower);

    const double vddq_opt =
        optimized.metrics
            .railEnergy[power::railIndex(power::Rail::VDDQ)];
    const double vddq_unopt =
        unopt.metrics.railEnergy[power::railIndex(power::Rail::VDDQ)];
    std::printf("VDDQ rail energy: optimized %.3f J, unoptimized "
                "%.3f J (%+.1f%%)\n",
                vddq_opt, vddq_unopt, pct(vddq_opt, vddq_unopt));
    return 0;
}
