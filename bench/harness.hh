/**
 * @file
 * Shared experiment harness for the per-figure/table benchmarks.
 *
 * Every bench builds a Skylake-class SoC per Table 2, attaches the
 * laptop HD panel (all paper experiments run with the display on),
 * binds a workload profile and a governor, warms up, and measures a
 * fixed window. Helpers cover the two non-governor modes the paper
 * uses: pinning an operating point (the ITP-forced motivation
 * experiments of Sec. 3) and collecting counter averages (predictor
 * training, Sec. 4.2).
 */

#ifndef SYSSCALE_BENCH_HARNESS_HH
#define SYSSCALE_BENCH_HARNESS_HH

#include <cstdio>
#include <optional>
#include <string>

#include "core/governors.hh"
#include "core/transition_flow.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/profile.hh"

namespace sysscale {
namespace bench {

/** Experiment knobs. */
struct RunConfig
{
    Watt tdp = 4.5;
    Tick warmup = 200 * kTicksPerMs;
    Tick window = 2 * kTicksPerSec;
    bool hdPanel = true;
    bool camera = false;

    /** Pin the CPU cores to this frequency (0 = PBM-controlled). */
    Hertz pinnedCoreFreq = 0.0;

    /** Pin the IO/memory domains to this operating point. */
    std::optional<soc::OperatingPoint> pinnedOpPoint;

    /** Apply unoptimized (boot-trained) MRC at the pinned point. */
    bool pinnedUnoptimizedMrc = false;

    std::optional<soc::SocConfig> socConfig;
};

/** Workload wrapper that overrides the OS core-frequency request. */
class PinnedFreqAgent : public soc::WorkloadAgent
{
  public:
    PinnedFreqAgent(soc::WorkloadAgent &inner, Hertz freq)
        : inner_(inner), freq_(freq)
    {}

    void
    demandAt(Tick now, soc::IntervalDemand &demand) override
    {
        inner_.demandAt(now, demand);
        if (freq_ > 0.0)
            demand.coreFreqRequest = freq_;
    }

    bool
    finished(Tick now) const override
    {
        return inner_.finished(now);
    }

  private:
    soc::WorkloadAgent &inner_;
    Hertz freq_;
};

/** PMU policy that accumulates window-averaged counters. */
class CollectPolicy : public soc::PmuPolicy
{
  public:
    const char *name() const override { return "collect"; }

    void
    evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg) override
    {
        (void)soc;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            sum_.values[i] += avg.values[i];
        ++windows_;
    }

    soc::CounterSnapshot
    average() const
    {
        soc::CounterSnapshot out;
        if (windows_ == 0)
            return out;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            out.values[i] = sum_.values[i] /
                            static_cast<double>(windows_);
        return out;
    }

  private:
    soc::CounterSnapshot sum_;
    std::size_t windows_ = 0;
};

/** Outcome of one measured experiment. */
struct Outcome
{
    soc::RunMetrics metrics;
    soc::CounterSnapshot counters; //!< Valid when collected.
};

/**
 * Run @p profile under @p policy (nullptr = pinned/no governor) and
 * return the measured window.
 */
inline Outcome
runExperiment(const workloads::WorkloadProfile &profile,
              soc::PmuPolicy *policy, const RunConfig &rc = {})
{
    Simulator sim(1);
    soc::Soc chip(sim, rc.socConfig ? *rc.socConfig
                                    : soc::skylakeConfig(rc.tdp));
    if (rc.hdPanel) {
        chip.display().attachPanel(0, io::PanelConfig{
            io::PanelResolution::HD, 60.0, 4});
    }
    if (rc.camera)
        chip.isp().startCamera(io::CameraConfig{});

    workloads::ProfileAgent agent(profile);
    PinnedFreqAgent pinned(agent, rc.pinnedCoreFreq);
    chip.setWorkload(&pinned);

    CollectPolicy collector;
    chip.pmu().setPolicy(policy ? policy : &collector);

    if (rc.pinnedOpPoint) {
        core::FlowOptions opts;
        opts.useOptimizedMrc = !rc.pinnedUnoptimizedMrc;
        core::TransitionFlow flow(chip, opts);
        soc::OperatingPoint target = *rc.pinnedOpPoint;
        if (rc.pinnedUnoptimizedMrc)
            target.mrcTrainedBin = chip.opPoints().high().dramBin;
        flow.execute(target);
        chip.setComputeBudget(chip.pbm().computeBudget(
            chip.ioMemBudget(chip.opPoints().high()), 0.0));
    }

    chip.run(rc.warmup);
    Outcome out;
    out.metrics = chip.run(rc.window);
    out.counters = collector.average();
    return out;
}

/** Percent delta helper: (b - a) / a in percent. */
inline double
pct(double a, double b)
{
    return (b / a - 1.0) * 100.0;
}

/** Section banner shared by all benches. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==========================================================="
                "=====\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==========================================================="
                "=====\n");
}

} // namespace bench
} // namespace sysscale

#endif // SYSSCALE_BENCH_HARNESS_HH
