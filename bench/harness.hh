/**
 * @file
 * Shared experiment harness for the per-figure/table benchmarks.
 *
 * Every bench builds a Skylake-class SoC per Table 2, attaches the
 * laptop HD panel (all paper experiments run with the display on),
 * binds a workload profile and a governor, warms up, and measures a
 * fixed window. Helpers cover the two non-governor modes the paper
 * uses: pinning an operating point (the ITP-forced motivation
 * experiments of Sec. 3) and collecting counter averages (predictor
 * training, Sec. 4.2).
 *
 * Execution itself lives in src/exp: runExperiment() wraps one
 * exp::ExperimentSpec and runs it through exp::runCell(), the same
 * path the parallel ExperimentRunner uses, so serial bench runs and
 * grid sweeps are the identical computation. Benches that sweep a
 * grid build the spec vector themselves and hand it to the runner
 * (see bench_fig10_tdp.cc for the pattern).
 */

#ifndef SYSSCALE_BENCH_HARNESS_HH
#define SYSSCALE_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "core/governors.hh"
#include "core/transition_flow.hh"
#include "exp/cache.hh"
#include "exp/experiment.hh"
#include "exp/runner.hh"
#include "sim/sim_object.hh"
#include "soc/soc.hh"
#include "workloads/profile.hh"

namespace sysscale {
namespace bench {

/** Experiment knobs. */
struct RunConfig
{
    Watt tdp = 4.5;
    Tick warmup = 200 * kTicksPerMs;
    Tick window = 2 * kTicksPerSec;
    bool hdPanel = true;
    bool camera = false;

    /** Pin the CPU cores to this frequency (0 = PBM-controlled). */
    Hertz pinnedCoreFreq = 0.0;

    /** Pin the IO/memory domains to this operating point. */
    std::optional<soc::OperatingPoint> pinnedOpPoint;

    /** Apply unoptimized (boot-trained) MRC at the pinned point. */
    bool pinnedUnoptimizedMrc = false;

    std::optional<soc::SocConfig> socConfig;
};

/** Outcome of one measured experiment. */
struct Outcome
{
    soc::RunMetrics metrics;
    soc::CounterSnapshot counters; //!< Valid when collected.
};

/** Build the exp cell equivalent to (@p profile, @p rc). */
inline exp::ExperimentSpec
makeSpec(const workloads::WorkloadProfile &profile,
         const RunConfig &rc = {})
{
    exp::ExperimentSpec spec;
    spec.id = profile.name();
    spec.soc = rc.socConfig ? *rc.socConfig
                            : soc::skylakeConfig(rc.tdp);
    spec.workload = profile;
    spec.warmup = rc.warmup;
    spec.window = rc.window;
    spec.hdPanel = rc.hdPanel;
    spec.camera = rc.camera;
    spec.pinnedCoreFreq = rc.pinnedCoreFreq;
    spec.pinnedOpPoint = rc.pinnedOpPoint;
    spec.pinnedUnoptimizedMrc = rc.pinnedUnoptimizedMrc;
    return spec;
}

/** Abort the bench on a failed cell (benches have no error path). */
inline const exp::RunResult &
checkResult(const exp::RunResult &res)
{
    if (!res.ok) {
        std::fprintf(stderr, "bench cell \"%s\" failed: %s\n",
                     res.id.c_str(), res.error.c_str());
        std::exit(1);
    }
    return res;
}

/**
 * Run @p profile under @p policy (nullptr = pinned/no governor) and
 * return the measured window.
 */
inline Outcome
runExperiment(const workloads::WorkloadProfile &profile,
              soc::PmuPolicy *policy, const RunConfig &rc = {})
{
    exp::ExperimentSpec spec = makeSpec(profile, rc);
    spec.borrowedPolicy = policy;
    const exp::RunResult res = exp::runCell(spec);
    checkResult(res);
    Outcome out;
    out.metrics = res.metrics;
    out.counters = res.counters;
    return out;
}

/**
 * Experiment-runner job count for benches: all hardware threads, or
 * the SYSSCALE_BENCH_JOBS override (0 = hardware concurrency).
 */
inline std::size_t
benchJobs()
{
    const char *env = std::getenv("SYSSCALE_BENCH_JOBS");
    if (!env)
        return 0;
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
}

/**
 * Result cache for grid-shaped benches, resolved exactly like
 * sweep_grid: --cache-dir DIR on the command line, the
 * SYSSCALE_CACHE_DIR environment variable as the fallback, and
 * --no-cache to disable both. Returns null when caching is off.
 * Unknown options abort: a typo must not silently run uncached.
 */
inline std::unique_ptr<exp::ResultCache>
benchCache(int argc, char **argv)
{
    std::string dir;
    bool no_cache = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-dir") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --cache-dir needs a value\n",
                             argv[0]);
                std::exit(2);
            }
            dir = argv[++i];
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else {
            std::fprintf(stderr,
                         "%s: unknown option %s (supported: "
                         "--cache-dir DIR, --no-cache)\n",
                         argv[0], arg.c_str());
            std::exit(2);
        }
    }
    try {
        return exp::resolveCache(std::move(dir), no_cache);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
    }
}

/**
 * Run a bench's spec batch on the shared runner configuration.
 * With a cache, finished cells are served from disk; the
 * simulated-vs-cached split goes to stderr (stdout stays
 * byte-identical to an uncached run).
 */
inline std::vector<exp::RunResult>
runBatch(const std::vector<exp::ExperimentSpec> &specs,
         exp::ResultCache *cache = nullptr)
{
    exp::RunnerOptions opts;
    opts.jobs = benchJobs();
    opts.cache = cache;
    const std::size_t hits_before = cache ? cache->stats().hits : 0;
    auto results = exp::ExperimentRunner(opts).run(specs);
    if (cache) {
        const std::size_t hits = cache->stats().hits - hits_before;
        std::fprintf(stderr,
                     "bench cache: %zu cells (%zu simulated, %zu "
                     "from cache)\n",
                     specs.size(), specs.size() - hits, hits);
    }
    return results;
}

/** Percent delta helper: (b - a) / a in percent. */
inline double
pct(double a, double b)
{
    return (b / a - 1.0) * 100.0;
}

/** Section banner shared by all benches. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==========================================================="
                "=====\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==========================================================="
                "=====\n");
}

} // namespace bench
} // namespace sysscale

#endif // SYSSCALE_BENCH_HARNESS_HH
