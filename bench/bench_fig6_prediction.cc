/**
 * @file
 * Fig. 6: actual vs predicted performance impact of reducing the
 * DRAM frequency, across >1600 synthetic workloads in three classes
 * (CPU single-thread, CPU multi-thread, graphics) and three
 * frequency pairs (1600->800, 1600->1066, 2133->1066 MT/s).
 *
 * For each (class, pair) panel the bench measures every workload at
 * both operating points, trains the mu+sigma thresholds and the
 * linear impact model (Sec. 4.2), and reports prediction accuracy,
 * the actual-vs-predicted correlation coefficient, and the false
 * positive count (the paper reports zero).
 *
 * The measurement sample is the hot path: every (workload, point)
 * pair is an independent pinned cell, so each panel runs as one
 * ExperimentRunner batch (cacheable via --cache-dir) and the
 * (hi, lo) pairs reduce through exp::agg::groupBy per workload.
 */

#include <algorithm>

#include "bench/harness.hh"
#include "core/threshold_trainer.hh"
#include "exp/agg.hh"
#include "workloads/sweep.hh"

using namespace sysscale;

namespace {

struct Pair
{
    double hi;
    double lo;
};

soc::SocConfig
configFor(const Pair &pair)
{
    soc::SocConfig cfg = soc::skylakeConfig();
    cfg.dramSpec = dram::DramSpec(
        dram::DramType::LPDDR3,
        {dram::FreqBin{pair.hi}, dram::FreqBin{pair.lo}},
        2, 8, 1, 2, 8);
    cfg.name = "skylake-sweep";
    return cfg;
}

double
perfOf(const exp::RunResult &r, workloads::WorkloadClass klass)
{
    return klass == workloads::WorkloadClass::Graphics
               ? r.metrics.fps
               : r.metrics.ips;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Fig. 6", "actual vs predicted impact of DRAM "
                            "frequency scaling (>1600 workloads)");

    const Pair pairs[] = {{1600.0, 800.0},
                          {1600.0, 1066.0},
                          {2133.0, 1066.0}};
    const struct
    {
        workloads::WorkloadClass klass;
        const char *name;
        std::size_t count;
    } classes[] = {
        {workloads::WorkloadClass::CpuSingleThread, "CPU-ST", 900},
        {workloads::WorkloadClass::CpuMultiThread, "CPU-MT", 400},
        {workloads::WorkloadClass::Graphics, "Graphics", 320},
    };

    // Paper panel annotations, [class][pair].
    const double paper_corr[3][3] = {{0.92, 0.86, 0.89},
                                     {0.89, 0.87, 0.84},
                                     {0.96, 0.95, 0.95}};
    const double paper_acc[3] = {97.7, 94.2, 98.8};

    std::printf("%-9s %-12s %6s %9s %12s %6s %14s\n", "class",
                "pair(MT/s)", "n", "accuracy", "correlation", "FPs",
                "paper(corr/acc)");

    std::size_t total = 0;
    for (std::size_t c = 0; c < 3; ++c) {
        const auto corpus = workloads::SynthSweep::generateClass(
            classes[c].klass, classes[c].count, 0x5ca1e5 ^ c);
        for (std::size_t p = 0; p < 3; ++p) {
            const soc::SocConfig cfg = configFor(pairs[p]);
            const soc::OpPointTable table(cfg);

            std::vector<exp::ExperimentSpec> specs;
            specs.reserve(corpus.size() * 2);
            for (const auto &w : corpus) {
                bench::RunConfig rc;
                rc.socConfig = cfg;
                rc.warmup = 60 * kTicksPerMs;
                rc.window = 200 * kTicksPerMs;
                if (classes[c].klass !=
                    workloads::WorkloadClass::Graphics) {
                    rc.pinnedCoreFreq = 1.2 * kGHz;
                }
                for (const bool low : {false, true}) {
                    rc.pinnedOpPoint =
                        low ? table.low() : table.high();
                    exp::ExperimentSpec spec = bench::makeSpec(w, rc);
                    spec.id =
                        w.name() + (low ? "/lo" : "/hi");
                    spec.labels = {{"workload", w.name()},
                                   {"point", low ? "lo" : "hi"}};
                    specs.push_back(std::move(spec));
                }
            }

            const auto results = bench::runBatch(specs, cache.get());

            std::vector<core::TrainingSample> samples;
            samples.reserve(corpus.size());
            for (const exp::agg::Group &g :
                 exp::agg::groupBy(results, "workload")) {
                const exp::RunResult *hi =
                    exp::agg::findRow(g.rows, "point", "hi");
                const exp::RunResult *lo =
                    exp::agg::findRow(g.rows, "point", "lo");
                if (!hi || !lo) {
                    std::fprintf(stderr,
                                 "fig6: missing point for %s\n",
                                 g.key.c_str());
                    return 1;
                }
                bench::checkResult(*hi);
                bench::checkResult(*lo);

                core::TrainingSample s;
                s.counters = hi->counters;
                const double ph = perfOf(*hi, classes[c].klass);
                const double pl = perfOf(*lo, classes[c].klass);
                s.normPerf = ph > 0.0 ? std::min(pl / ph, 1.0) : 1.0;
                samples.push_back(s);
            }
            total += samples.size();

            const core::Thresholds thr =
                core::ThresholdTrainer::train(samples, 0.01);
            const core::LinearImpactModel model =
                core::ThresholdTrainer::fitLinear(samples);
            const core::DemandPredictor pred(thr, model);
            const core::PredictionStats stats =
                core::ThresholdTrainer::evaluate(pred, samples, 0.01);

            std::printf("%-9s %4.0f->%-7.0f %6zu %8.1f%% %12.3f %6zu"
                        "   %.2f / %.1f%%\n",
                        classes[c].name, pairs[p].hi, pairs[p].lo,
                        samples.size(), stats.accuracy * 100.0,
                        stats.correlation, stats.falsePositives,
                        paper_corr[c][p], paper_acc[c]);
        }
    }

    std::printf("\ntotal workload runs: %zu workloads x 2 points "
                "(paper: >1600 workloads)\n", total);
    return 0;
}
