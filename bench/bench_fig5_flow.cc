/**
 * @file
 * Fig. 5 / Sec. 5: the transition-flow step decomposition and its
 * <10us latency budget, plus the hardware-cost accounting (MRC SRAM
 * ~0.5KB, firmware ~0.6KB).
 */

#include "bench/harness.hh"

using namespace sysscale;

namespace {

void
report(const char *label, const core::FlowReport &r)
{
    std::printf("\n%s (total %.2f us, %s)\n", label,
                usFromTicks(r.totalLatency),
                r.increased ? "frequency increase"
                            : "frequency decrease");
    for (std::size_t i = 0; i < core::kNumFlowSteps; ++i) {
        std::printf("  step %zu  %-16s %8.3f us\n", i + 1,
                    r.steps[i].name, usFromTicks(r.steps[i].latency));
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 5 / Sec. 5",
                  "transition flow latency decomposition");

    Simulator sim(1);
    soc::Soc chip(sim, soc::skylakeConfig());

    core::TransitionFlow flow(chip);
    const core::FlowReport down =
        flow.execute(chip.opPoints().low());
    report("high -> low (SysScale)", down);

    sim.run(kTicksPerMs);
    const core::FlowReport up = flow.execute(chip.opPoints().high());
    report("low -> high (SysScale)", up);

    std::printf("\npaper bound: < 10 us; measured: %.2f / %.2f us "
                "(%s)\n",
                usFromTicks(down.totalLatency),
                usFromTicks(up.totalLatency),
                down.totalLatency < 10 * kTicksPerUs &&
                        up.totalLatency < 10 * kTicksPerUs
                    ? "PASS"
                    : "FAIL");

    // The legacy path a governor without SysScale's hardware pays.
    Simulator sim2(1);
    soc::Soc chip2(sim2, soc::skylakeConfig());
    core::FlowOptions legacy;
    legacy.scaleFabric = false;
    legacy.scaleVsa = false;
    legacy.scaleVio = false;
    legacy.useOptimizedMrc = false;
    legacy.sramMrc = false;
    core::TransitionFlow slow_flow(chip2, legacy);
    soc::OperatingPoint target = chip2.opPoints().low();
    target.mrcTrainedBin = 0;
    const core::FlowReport slow = slow_flow.execute(target);
    std::printf("\nwithout SRAM-cached MRC + fast relock (MemScale/"
                "CoScale path): %.1f us\n",
                usFromTicks(slow.totalLatency));

    std::printf("\nSec. 5 hardware cost accounting:\n");
    std::printf("  MRC SRAM: %zu bytes (budget %zu)\n",
                chip.mrc().sramBytes(),
                mem::MrcStore::kSramBudgetBytes);
    core::SysScaleGovernor gov;
    std::printf("  PMU firmware: %zu bytes (budget %zu)\n",
                gov.firmwareBytes(),
                soc::Pmu::kFirmwareBudgetBytes);
    return 0;
}
