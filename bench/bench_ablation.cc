/**
 * @file
 * Ablation study (beyond the paper): which SysScale feature delivers
 * how much of the win. Each row knocks out one design element that
 * DESIGN.md calls out:
 *
 *  - no optimized MRC  (Observation 4 / Fig. 4 penalties apply)
 *  - no V_IO scaling   (DDRIO-digital stays at boot voltage)
 *  - no fabric scaling (V_SA cannot drop; memory-domain-only)
 *  - no SRAM MRC       (firmware recompute on every transition)
 *  - no redistribution (power saved but not re-granted)
 *
 * Every knock-out variant is an independent governor instance, so
 * the whole study — SPEC table, video-playback power column, and the
 * no-redistribution check — runs as one ExperimentRunner batch with
 * per-cell governor factories, and the report reduces through
 * exp::agg (group by workload, delta each variant against the fixed
 * baseline of the same group). Knock-out cells carry runtime
 * factories and always simulate; the fixed baselines are cacheable
 * via --cache-dir.
 */

#include <algorithm>
#include <iterator>
#include <vector>

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/battery.hh"
#include "workloads/spec.hh"

using namespace sysscale;

namespace {

/** SysScale with redistribution disabled (ablation only). */
class NoRedistSysScale : public core::SysScaleGovernor
{
  public:
    NoRedistSysScale() { redistribute_ = false; }
};

core::FlowOptions
knockout(int which)
{
    core::FlowOptions opts; // full SysScale
    switch (which) {
      case 1:
        opts.useOptimizedMrc = false;
        break;
      case 2:
        opts.scaleVio = false;
        break;
      case 3:
        opts.scaleFabric = false;
        opts.scaleVsa = false;
        break;
      case 4:
        opts.sramMrc = false;
        break;
      default:
        break;
    }
    return opts;
}

exp::GovernorFactory
variantFactory(int which)
{
    return [which] {
        return std::unique_ptr<soc::PmuPolicy>(
            new core::GovernorHost(
                std::make_unique<core::SysScaleGovernor>(
                    core::SysScaleGovernor::defaultThresholds(),
                    core::LinearImpactModel{}, knockout(which))));
    };
}

exp::GovernorFactory
noRedistFactory()
{
    return [] {
        return std::unique_ptr<soc::PmuPolicy>(new core::GovernorHost(
            std::make_unique<NoRedistSysScale>()));
    };
}

const char *kVariantNames[] = {
    "full sysscale", "no optimized MRC", "no V_IO scaling",
    "no fabric/V_SA", "no SRAM MRC",
};

/** Group with key @p name, or abort: a dropped axis must be loud. */
const exp::agg::Group &
groupNamed(const std::vector<exp::agg::Group> &groups,
           const std::string &name)
{
    for (const exp::agg::Group &g : groups) {
        if (g.key == name)
            return g;
    }
    std::fprintf(stderr, "ablation: no result group \"%s\"\n",
                 name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cache = bench::benchCache(argc, argv);
    bench::banner("Ablation", "SysScale feature knock-outs");

    const char *benches[] = {"416.gamess", "400.perlbench",
                             "473.astar"};
    constexpr int kNumVariants = 5;

    // One batch holds the whole study; every cell is labeled with
    // its (workload, variant) coordinates for the reduction. The
    // default-window no-redistribution check runs under a distinct
    // workload label so it cannot collide with the long-window
    // 416.gamess group of the main table.
    std::vector<exp::ExperimentSpec> specs;

    auto specRc = [](const workloads::WorkloadProfile &w) {
        bench::RunConfig rc;
        rc.window = std::max<Tick>(2 * kTicksPerSec, 2 * w.period());
        return rc;
    };
    auto label = [](exp::ExperimentSpec spec, std::string workload,
                    std::string variant) {
        spec.id = workload + "/" + variant;
        spec.labels = {{"workload", std::move(workload)},
                       {"variant", std::move(variant)}};
        return spec;
    };

    // Fixed baseline plus every knock-out, per SPEC bench.
    for (const char *name : benches) {
        const auto w = workloads::specBenchmark(name);
        exp::ExperimentSpec base = bench::makeSpec(w, specRc(w));
        base.governor = "fixed";
        specs.push_back(label(std::move(base), w.name(), "fixed"));
        for (int v = 0; v < kNumVariants; ++v) {
            exp::ExperimentSpec spec = bench::makeSpec(w, specRc(w));
            spec.governorFactory = variantFactory(v);
            specs.push_back(
                label(std::move(spec), w.name(), kVariantNames[v]));
        }
    }

    // Video playback: Fixed baseline, the five knock-outs, and the
    // no-redistribution variant.
    const auto vp = workloads::videoPlayback();
    bench::RunConfig vp_rc;
    vp_rc.window = 3 * kTicksPerSec;
    {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governor = "fixed";
        specs.push_back(label(std::move(spec), vp.name(), "fixed"));
    }
    for (int v = 0; v < kNumVariants; ++v) {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governorFactory = variantFactory(v);
        specs.push_back(
            label(std::move(spec), vp.name(), kVariantNames[v]));
    }
    {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governorFactory = noRedistFactory();
        specs.push_back(
            label(std::move(spec), vp.name(), "no redistribution"));
    }

    // No-redistribution SPEC check at the default window.
    {
        const auto w = workloads::specBenchmark("416.gamess");
        const std::string key = w.name() + "@default-window";
        exp::ExperimentSpec base = bench::makeSpec(w, {});
        base.governor = "fixed";
        specs.push_back(label(std::move(base), key, "fixed"));
        exp::ExperimentSpec noredist = bench::makeSpec(w, {});
        noredist.governorFactory = noRedistFactory();
        specs.push_back(
            label(std::move(noredist), key, "no redistribution"));
    }

    const auto results = bench::runBatch(specs, cache.get());
    for (const auto &res : results)
        bench::checkResult(res);

    const exp::agg::Metric ips = [](const exp::RunResult &r) {
        return r.metrics.ips;
    };
    const exp::agg::Metric watts = [](const exp::RunResult &r) {
        return r.metrics.avgPower;
    };
    const auto groups = exp::agg::groupBy(results, "workload");

    std::printf("SPEC perf gain over baseline:\n%-18s", "variant");
    for (const char *b : benches)
        std::printf(" %16s", b);
    std::printf("\n");

    for (int v = 0; v < kNumVariants; ++v) {
        std::printf("%-18s", kVariantNames[v]);
        for (const char *b : benches) {
            std::printf(" %+15.1f%%",
                        exp::agg::deltaVs(groupNamed(groups, b),
                                          "variant", kVariantNames[v],
                                          "fixed", ips));
        }
        std::printf("\n");
    }

    std::printf("\nvideo-playback average power reduction:\n");
    {
        const exp::agg::Group &g = groupNamed(groups, vp.name());
        for (int v = 0; v < kNumVariants; ++v) {
            std::printf("%-18s %+6.1f%%\n", kVariantNames[v],
                        -exp::agg::deltaVs(g, "variant",
                                           kVariantNames[v], "fixed",
                                           watts));
        }
        // Redistribution does not change battery power (fixed
        // demand), but it is the entire SPEC story:
        std::printf("%-18s %+6.1f%%\n", "no redistribution",
                    -exp::agg::deltaVs(g, "variant",
                                       "no redistribution", "fixed",
                                       watts));
    }

    std::printf("\nno-redistribution SPEC check (expect ~0%% gain):\n");
    std::printf("%-18s %+6.1f%%\n", "416.gamess",
                exp::agg::deltaVs(
                    groupNamed(groups, "416.gamess@default-window"),
                    "variant", "no redistribution", "fixed", ips));
    return 0;
}
