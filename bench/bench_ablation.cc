/**
 * @file
 * Ablation study (beyond the paper): which SysScale feature delivers
 * how much of the win. Each row knocks out one design element that
 * DESIGN.md calls out:
 *
 *  - no optimized MRC  (Observation 4 / Fig. 4 penalties apply)
 *  - no V_IO scaling   (DDRIO-digital stays at boot voltage)
 *  - no fabric scaling (V_SA cannot drop; memory-domain-only)
 *  - no SRAM MRC       (firmware recompute on every transition)
 *  - no redistribution (power saved but not re-granted)
 */

#include "bench/harness.hh"
#include "workloads/battery.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

namespace {

/** SysScale with redistribution disabled (ablation only). */
class NoRedistSysScale : public core::SysScaleGovernor
{
  public:
    NoRedistSysScale() { redistribute_ = false; }
};

core::FlowOptions
knockout(int which)
{
    core::FlowOptions opts; // full SysScale
    switch (which) {
      case 1:
        opts.useOptimizedMrc = false;
        break;
      case 2:
        opts.scaleVio = false;
        break;
      case 3:
        opts.scaleFabric = false;
        opts.scaleVsa = false;
        break;
      case 4:
        opts.sramMrc = false;
        break;
      default:
        break;
    }
    return opts;
}

const char *kVariantNames[] = {
    "full sysscale", "no optimized MRC", "no V_IO scaling",
    "no fabric/V_SA", "no SRAM MRC",
};

} // namespace

int
main()
{
    bench::banner("Ablation", "SysScale feature knock-outs");

    const char *benches[] = {"416.gamess", "400.perlbench",
                             "473.astar"};

    std::printf("SPEC perf gain over baseline:\n%-18s", "variant");
    for (const char *b : benches)
        std::printf(" %16s", b);
    std::printf("\n");

    for (int v = 0; v < 5; ++v) {
        std::printf("%-18s", kVariantNames[v]);
        for (const char *name : benches) {
            const auto w = workloads::specBenchmark(name);
            bench::RunConfig rc;
            rc.window =
                std::max<Tick>(2 * kTicksPerSec, 2 * w.period());

            core::FixedGovernor base;
            core::SysScaleGovernor gov(
                core::SysScaleGovernor::defaultThresholds(), {},
                knockout(v));
            const double b =
                bench::runExperiment(w, &base, rc).metrics.ips;
            const double g =
                pct(b, bench::runExperiment(w, &gov, rc).metrics.ips);
            std::printf(" %+15.1f%%", g);
        }
        std::printf("\n");
    }

    std::printf("\nvideo-playback average power reduction:\n");
    {
        const auto vp = workloads::videoPlayback();
        bench::RunConfig rc;
        rc.window = 3 * kTicksPerSec;
        core::FixedGovernor base;
        const double b =
            bench::runExperiment(vp, &base, rc).metrics.avgPower;

        for (int v = 0; v < 5; ++v) {
            core::SysScaleGovernor gov(
                core::SysScaleGovernor::defaultThresholds(), {},
                knockout(v));
            const double p =
                bench::runExperiment(vp, &gov, rc).metrics.avgPower;
            std::printf("%-18s %+6.1f%%\n", kVariantNames[v],
                        (1.0 - p / b) * 100.0);
        }
        // Redistribution does not change battery power (fixed
        // demand), but it is the entire SPEC story:
        NoRedistSysScale noredist;
        const double p =
            bench::runExperiment(vp, &noredist, rc).metrics.avgPower;
        std::printf("%-18s %+6.1f%%\n", "no redistribution",
                    (1.0 - p / b) * 100.0);
    }

    std::printf("\nno-redistribution SPEC check (expect ~0%% gain):\n");
    {
        const auto w = workloads::specBenchmark("416.gamess");
        core::FixedGovernor base;
        NoRedistSysScale noredist;
        const double b =
            bench::runExperiment(w, &base, {}).metrics.ips;
        std::printf("%-18s %+6.1f%%\n", "416.gamess",
                    pct(b, bench::runExperiment(w, &noredist, {})
                               .metrics.ips));
    }
    return 0;
}
