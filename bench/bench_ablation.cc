/**
 * @file
 * Ablation study (beyond the paper): which SysScale feature delivers
 * how much of the win. Each row knocks out one design element that
 * DESIGN.md calls out:
 *
 *  - no optimized MRC  (Observation 4 / Fig. 4 penalties apply)
 *  - no V_IO scaling   (DDRIO-digital stays at boot voltage)
 *  - no fabric scaling (V_SA cannot drop; memory-domain-only)
 *  - no SRAM MRC       (firmware recompute on every transition)
 *  - no redistribution (power saved but not re-granted)
 *
 * Every knock-out variant is an independent governor instance, so
 * the whole study — SPEC table, video-playback power column, and the
 * no-redistribution check — runs as one ExperimentRunner batch with
 * per-cell governor factories.
 */

#include <algorithm>
#include <iterator>
#include <vector>

#include "bench/harness.hh"
#include "workloads/battery.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

namespace {

/** SysScale with redistribution disabled (ablation only). */
class NoRedistSysScale : public core::SysScaleGovernor
{
  public:
    NoRedistSysScale() { redistribute_ = false; }
};

core::FlowOptions
knockout(int which)
{
    core::FlowOptions opts; // full SysScale
    switch (which) {
      case 1:
        opts.useOptimizedMrc = false;
        break;
      case 2:
        opts.scaleVio = false;
        break;
      case 3:
        opts.scaleFabric = false;
        opts.scaleVsa = false;
        break;
      case 4:
        opts.sramMrc = false;
        break;
      default:
        break;
    }
    return opts;
}

exp::GovernorFactory
variantFactory(int which)
{
    return [which] {
        return std::unique_ptr<soc::PmuPolicy>(
            new core::SysScaleGovernor(
                core::SysScaleGovernor::defaultThresholds(), {},
                knockout(which)));
    };
}

exp::GovernorFactory
noRedistFactory()
{
    return [] {
        return std::unique_ptr<soc::PmuPolicy>(new NoRedistSysScale());
    };
}

const char *kVariantNames[] = {
    "full sysscale", "no optimized MRC", "no V_IO scaling",
    "no fabric/V_SA", "no SRAM MRC",
};

} // namespace

int
main()
{
    bench::banner("Ablation", "SysScale feature knock-outs");

    const char *benches[] = {"416.gamess", "400.perlbench",
                             "473.astar"};
    constexpr std::size_t kNumBenches = std::size(benches);
    constexpr int kNumVariants = 5;

    // One batch holds the whole study; record where each part of the
    // report will find its cells.
    std::vector<exp::ExperimentSpec> specs;

    auto specRc = [](const workloads::WorkloadProfile &w) {
        bench::RunConfig rc;
        rc.window = std::max<Tick>(2 * kTicksPerSec, 2 * w.period());
        return rc;
    };

    // [specBase + b]: FixedGovernor baseline per SPEC bench.
    const std::size_t specBase = specs.size();
    for (const char *name : benches) {
        const auto w = workloads::specBenchmark(name);
        exp::ExperimentSpec spec = bench::makeSpec(w, specRc(w));
        spec.governor = "fixed";
        spec.id = w.name() + "/fixed";
        specs.push_back(std::move(spec));
    }

    // [variantBase + v * kNumBenches + b]: knock-out v on bench b.
    const std::size_t variantBase = specs.size();
    for (int v = 0; v < kNumVariants; ++v) {
        for (const char *name : benches) {
            const auto w = workloads::specBenchmark(name);
            exp::ExperimentSpec spec = bench::makeSpec(w, specRc(w));
            spec.governorFactory = variantFactory(v);
            spec.id = w.name() + "/" + kVariantNames[v];
            specs.push_back(std::move(spec));
        }
    }

    // [vpBase]: video-playback Fixed baseline; then the five
    // knock-outs and the no-redistribution variant.
    const auto vp = workloads::videoPlayback();
    bench::RunConfig vp_rc;
    vp_rc.window = 3 * kTicksPerSec;

    const std::size_t vpBase = specs.size();
    {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governor = "fixed";
        spec.id = vp.name() + "/fixed";
        specs.push_back(std::move(spec));
    }
    for (int v = 0; v < kNumVariants; ++v) {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governorFactory = variantFactory(v);
        spec.id = vp.name() + "/" + kVariantNames[v];
        specs.push_back(std::move(spec));
    }
    {
        exp::ExperimentSpec spec = bench::makeSpec(vp, vp_rc);
        spec.governorFactory = noRedistFactory();
        spec.id = vp.name() + "/no redistribution";
        specs.push_back(std::move(spec));
    }

    // [checkBase], [checkBase + 1]: no-redistribution SPEC check.
    const std::size_t checkBase = specs.size();
    {
        const auto w = workloads::specBenchmark("416.gamess");
        exp::ExperimentSpec base = bench::makeSpec(w, {});
        base.governor = "fixed";
        base.id = w.name() + "/fixed/default-window";
        specs.push_back(std::move(base));
        exp::ExperimentSpec noredist = bench::makeSpec(w, {});
        noredist.governorFactory = noRedistFactory();
        noredist.id = w.name() + "/no redistribution/default-window";
        specs.push_back(std::move(noredist));
    }

    const auto results = bench::runBatch(specs);
    auto ips = [&](std::size_t i) {
        return bench::checkResult(results[i]).metrics.ips;
    };
    auto watts = [&](std::size_t i) {
        return bench::checkResult(results[i]).metrics.avgPower;
    };

    std::printf("SPEC perf gain over baseline:\n%-18s", "variant");
    for (const char *b : benches)
        std::printf(" %16s", b);
    std::printf("\n");

    for (int v = 0; v < kNumVariants; ++v) {
        std::printf("%-18s", kVariantNames[v]);
        for (std::size_t b = 0; b < kNumBenches; ++b) {
            std::printf(" %+15.1f%%",
                        pct(ips(specBase + b),
                            ips(variantBase + v * kNumBenches + b)));
        }
        std::printf("\n");
    }

    std::printf("\nvideo-playback average power reduction:\n");
    {
        const double base = watts(vpBase);
        for (int v = 0; v < kNumVariants; ++v) {
            std::printf("%-18s %+6.1f%%\n", kVariantNames[v],
                        (1.0 - watts(vpBase + 1 + v) / base) * 100.0);
        }
        // Redistribution does not change battery power (fixed
        // demand), but it is the entire SPEC story:
        std::printf("%-18s %+6.1f%%\n", "no redistribution",
                    (1.0 - watts(vpBase + 1 + kNumVariants) / base) *
                        100.0);
    }

    std::printf("\nno-redistribution SPEC check (expect ~0%% gain):\n");
    std::printf("%-18s %+6.1f%%\n", "416.gamess",
                pct(ips(checkBase), ips(checkBase + 1)));
    return 0;
}
