/**
 * @file
 * Fig. 9: average power reduction on the battery-life suite with one
 * HD panel active (paper: web 6.4%, light gaming 9.5%, video
 * conferencing 7.6%, video playback 10.7%; prior work 1.3-2.1%).
 */

#include "bench/harness.hh"
#include "workloads/battery.hh"

using namespace sysscale;

int
main()
{
    bench::banner("Fig. 9", "battery-life average power reduction");

    const double paper_ss[] = {6.4, 9.5, 7.6, 10.7};
    const auto suite = workloads::batterySuite();

    std::printf("%-20s %8s %10s %10s %10s %8s\n", "workload",
                "base W", "MemScale-R", "CoScale-R", "SysScale",
                "paper");

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &w = suite[i];
        bench::RunConfig rc;
        rc.camera = w.name() == "video-conferencing";
        rc.window = 3 * kTicksPerSec;

        core::FixedGovernor base;
        core::MemScaleGovernor ms(true);
        core::CoScaleGovernor cs(true);
        core::SysScaleGovernor ss;

        const double b =
            bench::runExperiment(w, &base, rc).metrics.avgPower;
        auto reduction = [&](soc::PmuPolicy &pol) {
            return (1.0 - bench::runExperiment(w, &pol, rc)
                              .metrics.avgPower /
                              b) *
                   100.0;
        };

        std::printf("%-20s %8.3f %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
                    w.name().c_str(), b, reduction(ms), reduction(cs),
                    reduction(ss), paper_ss[i]);
    }
    std::printf("\npaper: fixed performance demands; SysScale saves "
                "power only while DRAM is active (C0/C2)\n");
    return 0;
}
