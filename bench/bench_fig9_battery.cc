/**
 * @file
 * Fig. 9: average power reduction on the battery-life suite with one
 * HD panel active (paper: web 6.4%, light gaming 9.5%, video
 * conferencing 7.6%, video playback 10.7%; prior work 1.3-2.1%).
 *
 * Grid-shaped: one cell per (workload, governor) through the
 * parallel runner; the per-workload power reductions are the
 * negated exp::agg baseline deltas against the fixed governor.
 */

#include <map>

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/battery.hh"

using namespace sysscale;

int
main()
{
    bench::banner("Fig. 9", "battery-life average power reduction");

    const auto suite = workloads::batterySuite();
    const std::vector<std::string> governors = {
        "fixed", "memscale-r", "coscale-r", "sysscale"};
    std::map<std::string, double> paper_ss;
    paper_ss["web-browsing"] = 6.4;
    paper_ss["light-gaming"] = 9.5;
    paper_ss["video-conferencing"] = 7.6;
    paper_ss["video-playback"] = 10.7;

    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : suite) {
        for (const auto &gov : governors) {
            bench::RunConfig rc;
            rc.camera = w.name() == "video-conferencing";
            rc.window = 3 * kTicksPerSec;
            exp::ExperimentSpec spec = bench::makeSpec(w, rc);
            spec.governor = gov;
            spec.id = w.name() + "/" + gov;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs);
    for (const auto &res : results)
        bench::checkResult(res);

    const exp::agg::Metric avg_power = [](const exp::RunResult &r) {
        return r.metrics.avgPower;
    };

    std::printf("%-20s %8s %10s %10s %10s %8s\n", "workload",
                "base W", "MemScale-R", "CoScale-R", "SysScale",
                "paper");

    for (const exp::agg::Group &g :
         exp::agg::groupBy(results, "workload")) {
        const exp::RunResult *base =
            exp::agg::findRow(g.rows, "governor", "fixed");
        if (!base) {
            std::fprintf(stderr, "fig9: no fixed baseline for %s\n",
                         g.key.c_str());
            return 1;
        }
        // A power *reduction* is the negated baseline delta; deltaVs
        // throws if a governor column went missing from the grid.
        const auto reduction = [&](const char *gov) {
            return -exp::agg::deltaVs(g, "governor", gov, "fixed",
                                      avg_power);
        };
        std::printf(
            "%-20s %8.3f %+9.1f%% %+9.1f%% %+9.1f%% %+7.1f%%\n",
            g.key.c_str(), base->metrics.avgPower,
            reduction("memscale-r"), reduction("coscale-r"),
            reduction("sysscale"),
            paper_ss.at(g.key)); // .at: unknown workload fails loudly
    }
    std::printf("\npaper: fixed performance demands; SysScale saves "
                "power only while DRAM is active (C0/C2)\n");
    return 0;
}
