/**
 * @file
 * Energy/QoS frontier across the whole governor zoo.
 *
 * Runs every registered governor (at its default parameters) on
 * three scenarios — the fig2-class video-playback workload, the
 * fig9-class web-browsing workload, and the dynamic "videoconf"
 * scenario script layered on the video-conferencing profile — and
 * emits one CSV row per (scenario, governor) cell: energy, average
 * power, the scenario's QoS metric (fps when the workload renders
 * frames, ips otherwise), the relative performance against the
 * fixed-top-point baseline, EDP, QoS violations, transitions,
 * low-point residency, and a Pareto marker on the (minimize energy,
 * maximize QoS) frontier.
 *
 * The CSV goes to stdout and is deterministic: byte-identical
 * across SYSSCALE_BENCH_JOBS settings and across cache cold/hot
 * runs (the cache split report goes to stderr). Options:
 * --cache-dir DIR, --no-cache.
 */

#include <string>
#include <vector>

#include "bench/harness.hh"
#include "core/governor_registry.hh"
#include "exp/agg.hh"
#include "exp/report.hh"
#include "workloads/battery.hh"
#include "workloads/scenario.hh"

using namespace sysscale;

namespace {

struct FrontierScenario
{
    std::string name;
    workloads::WorkloadProfile profile;
    bool camera = false;
    std::string script; //!< workloads::scenarioByName key, or "".
};

/** The per-scenario QoS metric: fps for rendering workloads. */
double
qosOf(const exp::RunResult &res, bool use_fps)
{
    return use_fps ? res.metrics.fps : res.metrics.ips;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Frontier",
                  "energy/QoS frontier across the governor zoo");
    const auto cache = bench::benchCache(argc, argv);

    const std::vector<FrontierScenario> scenarios = {
        {"fig2-video-playback", workloads::videoPlayback(), false,
         ""},
        {"fig9-web-browsing", workloads::webBrowsing(), false, ""},
        {"videoconf", workloads::videoConferencing(), true,
         "videoconf"},
    };
    const std::vector<std::string> governors =
        core::governorNames();

    std::vector<exp::ExperimentSpec> specs;
    for (const auto &sc : scenarios) {
        for (const auto &gov : governors) {
            bench::RunConfig rc;
            rc.camera = sc.camera;
            rc.window = 3 * kTicksPerSec;
            exp::ExperimentSpec spec = bench::makeSpec(sc.profile,
                                                       rc);
            spec.governor = gov;
            if (!sc.script.empty())
                spec.scenario = workloads::scenarioByName(sc.script);
            spec.id = sc.name + "/" + gov;
            spec.labels = {{"scenario", sc.name},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs, cache.get());
    for (const auto &res : results)
        bench::checkResult(res);

    std::printf("scenario,governor,energy_j,avg_power_w,qos_metric,"
                "qos,qos_vs_fixed_pct,edp,qos_violations,"
                "transitions,low_residency,pareto\n");

    for (const exp::agg::Group &g :
         exp::agg::groupBy(results, "scenario")) {
        const exp::RunResult *base =
            exp::agg::findRow(g.rows, "governor", "fixed");
        if (!base) {
            std::fprintf(stderr,
                         "frontier: no fixed baseline for %s\n",
                         g.key.c_str());
            return 1;
        }
        // One QoS metric per scenario so rows stay comparable: fps
        // when the baseline renders frames, ips otherwise.
        const bool use_fps = base->metrics.fps > 0.0;

        // Pareto front on (minimize energy, maximize QoS): a row is
        // on the front unless some other row is at least as good on
        // both axes and strictly better on one.
        const auto dominated = [&](const exp::RunResult *r) {
            for (const exp::RunResult *o : g.rows) {
                if (o == r)
                    continue;
                const bool no_worse =
                    o->metrics.energy <= r->metrics.energy &&
                    qosOf(*o, use_fps) >= qosOf(*r, use_fps);
                const bool better =
                    o->metrics.energy < r->metrics.energy ||
                    qosOf(*o, use_fps) > qosOf(*r, use_fps);
                if (no_worse && better)
                    return true;
            }
            return false;
        };

        for (const exp::RunResult *r : g.rows) {
            const double qos = qosOf(*r, use_fps);
            std::printf(
                "%s,%s,%s,%s,%s,%s,%s,%s,%llu,%llu,%s,%d\n",
                g.key.c_str(),
                exp::agg::findLabel(*r, "governor")->c_str(),
                exp::formatDouble(r->metrics.energy).c_str(),
                exp::formatDouble(r->metrics.avgPower).c_str(),
                use_fps ? "fps" : "ips",
                exp::formatDouble(qos).c_str(),
                exp::formatDouble(
                    bench::pct(qosOf(*base, use_fps), qos))
                    .c_str(),
                exp::formatDouble(r->metrics.edp).c_str(),
                static_cast<unsigned long long>(
                    r->metrics.qosViolations),
                static_cast<unsigned long long>(
                    r->metrics.transitions),
                exp::formatDouble(r->metrics.lowPointResidency)
                    .c_str(),
                dominated(r) ? 0 : 1);
        }
    }
    return 0;
}
