/**
 * @file
 * Fig. 7: SPEC CPU2006 performance improvement of MemScale-Redist,
 * CoScale-Redist, and SysScale over the fixed baseline at 4.5W TDP
 * (paper averages: 1.7%, 3.8%, 9.2%; SysScale up to 16%).
 *
 * Grid-shaped: one cell per (benchmark, governor), run through the
 * parallel ExperimentRunner and reduced with the exp::agg helpers —
 * group by workload, delta each governor against the fixed baseline
 * of the same benchmark, then average the per-governor columns.
 */

#include <algorithm>
#include <map>

#include "bench/harness.hh"
#include "exp/agg.hh"
#include "workloads/spec.hh"

using namespace sysscale;

int
main()
{
    bench::banner("Fig. 7", "SPEC CPU2006 performance improvement "
                            "@ 4.5W TDP");

    const auto suite = workloads::specSuite();
    const std::vector<std::string> governors = {
        "fixed", "memscale-r", "coscale-r", "sysscale"};

    std::vector<exp::ExperimentSpec> specs;
    for (const auto &w : suite) {
        for (const auto &gov : governors) {
            exp::ExperimentSpec spec = bench::makeSpec(w);
            // Cover at least two full phase periods of phased
            // profiles.
            spec.window =
                std::max<Tick>(2 * kTicksPerSec, 2 * w.period());
            spec.governor = gov;
            spec.id = w.name() + "/" + gov;
            spec.labels = {{"workload", w.name()},
                           {"governor", gov}};
            specs.push_back(std::move(spec));
        }
    }

    const auto results = bench::runBatch(specs);
    for (const auto &res : results)
        bench::checkResult(res);

    const exp::agg::Metric ips = [](const exp::RunResult &r) {
        return r.metrics.ips;
    };

    std::printf("%-18s %10s %10s %10s\n", "benchmark", "MemScale-R",
                "CoScale-R", "SysScale");

    std::map<std::string, std::vector<double>> columns;
    for (const exp::agg::Group &g :
         exp::agg::groupBy(results, "workload")) {
        // deltaVs throws on a missing axis value: the figure fails
        // loudly rather than printing a silent +0.0% column.
        std::map<std::string, double> row;
        for (const char *gov :
             {"memscale-r", "coscale-r", "sysscale"}) {
            row[gov] = exp::agg::deltaVs(g, "governor", gov,
                                         "fixed", ips);
            columns[gov].push_back(row[gov]);
        }
        std::printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%%\n",
                    g.key.c_str(), row["memscale-r"],
                    row["coscale-r"], row["sysscale"]);
    }

    std::printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%%\n", "AVERAGE",
                exp::agg::mean(columns["memscale-r"]),
                exp::agg::mean(columns["coscale-r"]),
                exp::agg::mean(columns["sysscale"]));
    std::printf("%-18s %10s %10s %+9.1f%%\n", "MAX (SysScale)", "",
                "", exp::agg::percentile(columns["sysscale"], 100.0));
    std::printf("\npaper: MemScale-R +1.7%%, CoScale-R +3.8%%, "
                "SysScale +9.2%% avg / +16%% max\n");
    return 0;
}
