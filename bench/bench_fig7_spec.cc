/**
 * @file
 * Fig. 7: SPEC CPU2006 performance improvement of MemScale-Redist,
 * CoScale-Redist, and SysScale over the fixed baseline at 4.5W TDP
 * (paper averages: 1.7%, 3.8%, 9.2%; SysScale up to 16%).
 */

#include <algorithm>

#include "bench/harness.hh"
#include "workloads/spec.hh"

using namespace sysscale;
using bench::pct;

int
main()
{
    bench::banner("Fig. 7", "SPEC CPU2006 performance improvement "
                            "@ 4.5W TDP");

    const auto suite = workloads::specSuite();
    std::printf("%-18s %10s %10s %10s\n", "benchmark", "MemScale-R",
                "CoScale-R", "SysScale");

    double sum_ms = 0.0, sum_cs = 0.0, sum_ss = 0.0, max_ss = 0.0;
    for (const auto &w : suite) {
        bench::RunConfig rc;
        // Cover at least two full phase periods of phased profiles.
        rc.window = std::max<Tick>(2 * kTicksPerSec, 2 * w.period());

        core::FixedGovernor base;
        core::MemScaleGovernor ms(/*redistribute=*/true);
        core::CoScaleGovernor cs(/*redistribute=*/true);
        core::SysScaleGovernor ss;

        const double b =
            bench::runExperiment(w, &base, rc).metrics.ips;
        const double m =
            pct(b, bench::runExperiment(w, &ms, rc).metrics.ips);
        const double c =
            pct(b, bench::runExperiment(w, &cs, rc).metrics.ips);
        const double s =
            pct(b, bench::runExperiment(w, &ss, rc).metrics.ips);

        sum_ms += m;
        sum_cs += c;
        sum_ss += s;
        max_ss = std::max(max_ss, s);
        std::printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%%\n",
                    w.name().c_str(), m, c, s);
    }

    const double n = static_cast<double>(suite.size());
    std::printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%%\n", "AVERAGE",
                sum_ms / n, sum_cs / n, sum_ss / n);
    std::printf("%-18s %10s %10s %+9.1f%%\n", "MAX (SysScale)", "",
                "", max_ss);
    std::printf("\npaper: MemScale-R +1.7%%, CoScale-R +3.8%%, "
                "SysScale +9.2%% avg / +16%% max\n");
    return 0;
}
