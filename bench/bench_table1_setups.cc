/**
 * @file
 * Table 1: the two real experimental setups (baseline vs MD-DVFS)
 * as realized by the operating-point table.
 */

#include "bench/harness.hh"

using namespace sysscale;

int
main()
{
    bench::banner("Table 1", "baseline vs multi-domain DVFS setups");

    const soc::SocConfig cfg = soc::skylakeConfig();
    const soc::OpPointTable table(cfg);
    const soc::OperatingPoint &hi = table.high();
    const soc::OperatingPoint &lo = table.low();

    std::printf("%-22s %14s %14s  (paper)\n", "component", "baseline",
                "MD-DVFS");
    std::printf("%-22s %11.2fGHz %11.2fGHz  1.6 -> 1.06 GHz\n",
                "DRAM frequency",
                cfg.dramSpec.bin(hi.dramBin).transferRate() / 1e9,
                cfg.dramSpec.bin(lo.dramBin).transferRate() / 1e9);
    std::printf("%-22s %11.2fGHz %11.2fGHz  0.8 -> 0.4 GHz\n",
                "IO interconnect", hi.fabricFreq / 1e9,
                lo.fabricFreq / 1e9);
    std::printf("%-22s %12.2fV %12.2fV   V_SA -> 0.8*V_SA\n",
                "shared voltage V_SA", hi.vSa, lo.vSa);
    std::printf("%-22s %12.2fV %12.2fV   V_IO -> 0.85*V_IO\n",
                "DDRIO digital V_IO", hi.vIo, lo.vIo);
    std::printf("%-22s %11.2fGHz %11.2fGHz  unchanged\n",
                "2 cores (4 threads)", 1.2, 1.2);

    std::printf("\nIO+memory budget demand: high %.3fW, low %.3fW "
                "(freed: %.3fW)\n",
                soc::ioMemBudgetDemand(cfg, hi),
                soc::ioMemBudgetDemand(cfg, lo),
                soc::ioMemBudgetDemand(cfg, hi) -
                    soc::ioMemBudgetDemand(cfg, lo));
    return 0;
}
