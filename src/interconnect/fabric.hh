/**
 * @file
 * IO interconnect fabric.
 *
 * The fabric connects the IO engines/controllers to the memory
 * subsystem. It shares the V_SA rail with the memory controller
 * (Fig. 1, circled 1), which is why memory DVFS that wants a voltage
 * cut must also scale the fabric clock (Sec. 3, experimental setup).
 *
 * Traffic classes follow the paper's QoS discussion: isochronous
 * clients (display, camera) have deadlines and are served first;
 * best-effort clients take what remains. The fabric supports the
 * block-and-drain protocol the transition flow relies on (Fig. 5,
 * steps 3 and 9).
 */

#ifndef SYSSCALE_INTERCONNECT_FABRIC_HH
#define SYSSCALE_INTERCONNECT_FABRIC_HH

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace interconnect {

/** Fabric traffic classes. */
enum class TrafficClass { Isochronous, BestEffort };

/** Per-interval fabric demand. */
struct FabricDemand
{
    BytesPerSec isochronous = 0.0;
    BytesPerSec bestEffort = 0.0;

    BytesPerSec total() const { return isochronous + bestEffort; }
};

/** Per-interval fabric service outcome. */
struct FabricResult
{
    BytesPerSec achievedIso = 0.0;
    BytesPerSec achievedBestEffort = 0.0;

    /** Link utilization in [0, 1]. */
    double utilization = 0.0;

    /** Average fabric transit latency for best-effort requests. */
    double latencyNs = 0.0;

    /**
     * Average number of IO reads pending in the fabric — the
     * observable behind the IO_RPQ performance counter (Sec. 4.2).
     */
    double readPendingOccupancy = 0.0;

    /** Isochronous demand exceeded the link (QoS violation). */
    bool qosViolation = false;
};

/**
 * The shared IO interconnect.
 */
class IoFabric : public SimObject
{
  public:
    /**
     * @param sim Simulation context.
     * @param parent Owning SimObject.
     * @param freq Link clock at boot (0.8GHz on Skylake, Table 1).
     * @param v_sa Shared rail voltage at boot.
     * @param link_bytes Data-path width in bytes per clock.
     */
    IoFabric(Simulator &sim, SimObject *parent, Hertz freq, Volt v_sa,
             std::size_t link_bytes = 32);

    /** @name Operating point (manipulated by the DVFS flows). @{ */
    Hertz frequency() const { return freq_; }

    /** Retarget the link clock. Only legal while blocked. */
    void setFrequency(Hertz f);

    Volt vsa() const { return vsa_; }
    void setVsa(Volt v);
    /** @} */

    /** Peak link bandwidth at the current clock. */
    BytesPerSec capacity() const;

    /** @name Block and drain (flow steps 3 and 9). @{ */

    /**
     * Stop accepting requests; returns the drain latency (completing
     * outstanding requests, bounded below ~1us per Sec. 5).
     */
    Tick blockAndDrain();

    /** Resume accepting requests. */
    void release();

    bool blocked() const { return blocked_; }
    /** @} */

    /**
     * Serve one interval of demand. Panics while blocked.
     */
    FabricResult service(const FabricDemand &demand, Tick interval);

    /** Unloaded transit latency at the current clock. */
    double baseLatencyNs() const;

    /** Average fabric power at @p utilization. */
    Watt power(double utilization) const;

    /**
     * Fabric power at an arbitrary (voltage, clock, utilization)
     * triple — used by budget arithmetic to cost operating points.
     */
    static Watt powerAt(Volt v_sa, Hertz freq, double utilization);

    /** @name Model calibration constants. @{ */

    /** Router/arbiter pipeline depth in link cycles. */
    static constexpr double kPipelineCycles = 12.0;

    /** Utilization ceiling for the queueing term. */
    static constexpr double kMaxRho = 0.95;

    /** Effective switched capacitance of the fabric. */
    static constexpr double kCdynFarad = 340e-12;

    /** Fabric leakage coefficient at (0.8V, 50C). */
    static constexpr double kLeakK = 0.40;

    /** Upper bound on in-flight bytes (drain bound). */
    static constexpr double kMaxOutstandingBytes = 8 * 1024.0;
    /** @} */

    /** @name Snapshot support. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    Hertz freq_;
    Volt vsa_;
    std::size_t linkBytes_;
    bool blocked_ = false;
    double lastUtilization_ = 0.0;

    stats::Scalar transferredBytes_;
    stats::Scalar qosViolations_;
    stats::Scalar drains_;
    stats::Average utilizationAvg_;
};

} // namespace interconnect
} // namespace sysscale

#endif // SYSSCALE_INTERCONNECT_FABRIC_HH
