#include "interconnect/fabric.hh"

#include <algorithm>
#include <cmath>

#include "power/power_model.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace interconnect {

IoFabric::IoFabric(Simulator &sim, SimObject *parent, Hertz freq,
                   Volt v_sa, std::size_t link_bytes)
    : SimObject(sim, parent, "fabric"), freq_(freq), vsa_(v_sa),
      linkBytes_(link_bytes),
      transferredBytes_(this, "transferred_bytes",
                        "total bytes across the fabric"),
      qosViolations_(this, "qos_violations",
                     "intervals with isochronous demand unmet"),
      drains_(this, "drains", "block-and-drain operations"),
      utilizationAvg_(this, "utilization",
                      "link utilization per interval")
{
    if (freq <= 0.0)
        SYSSCALE_FATAL("IoFabric: non-positive frequency %.0f", freq);
    if (v_sa <= 0.0)
        SYSSCALE_FATAL("IoFabric: non-positive V_SA %.3f", v_sa);
    if (link_bytes == 0)
        SYSSCALE_FATAL("IoFabric: zero link width");
}

void
IoFabric::setFrequency(Hertz f)
{
    SYSSCALE_ASSERT(blocked_,
                    "retargeting fabric clock while traffic flows");
    SYSSCALE_ASSERT(f > 0.0, "non-positive fabric frequency %.0f", f);
    freq_ = f;
}

void
IoFabric::setVsa(Volt v)
{
    SYSSCALE_ASSERT(v > 0.0, "non-positive V_SA %.3f", v);
    vsa_ = v;
}

BytesPerSec
IoFabric::capacity() const
{
    return static_cast<BytesPerSec>(linkBytes_) * freq_;
}

Tick
IoFabric::blockAndDrain()
{
    SYSSCALE_ASSERT(!blocked_, "nested fabric block-and-drain");
    blocked_ = true;
    ++drains_;

    const double outstanding =
        kMaxOutstandingBytes * std::min(1.0, lastUtilization_ + 0.05);
    return ticksFromSeconds(outstanding / capacity());
}

void
IoFabric::release()
{
    SYSSCALE_ASSERT(blocked_, "fabric release without block");
    blocked_ = false;
}

double
IoFabric::baseLatencyNs() const
{
    return kPipelineCycles / freq_ * 1e9;
}

FabricResult
IoFabric::service(const FabricDemand &demand, Tick interval)
{
    SYSSCALE_ASSERT(!blocked_, "servicing a blocked fabric");
    SYSSCALE_ASSERT(interval > 0, "zero-length fabric interval");

    const BytesPerSec cap = capacity();
    FabricResult res;

    res.achievedIso = std::min(demand.isochronous, cap);
    res.qosViolation = demand.isochronous > cap + 1e-3;
    if (res.qosViolation)
        ++qosViolations_;

    const BytesPerSec remaining = cap - res.achievedIso;
    res.achievedBestEffort = std::min(demand.bestEffort, remaining);

    res.utilization =
        std::min(1.0, (res.achievedIso + res.achievedBestEffort) / cap);

    const double rho = std::min(kMaxRho, demand.total() / cap);
    const double service_ns =
        static_cast<double>(linkBytes_) / cap * 1e9;
    res.latencyNs = baseLatencyNs() +
                    rho / (2.0 * (1.0 - rho)) * service_ns *
                        kPipelineCycles;

    res.readPendingOccupancy =
        demand.bestEffort / 64.0 * (res.latencyNs * 1e-9);

    lastUtilization_ = res.utilization;
    transferredBytes_ +=
        (res.achievedIso + res.achievedBestEffort) *
        secondsFromTicks(interval);
    utilizationAvg_.sample(res.utilization);

    return res;
}

Watt
IoFabric::power(double utilization) const
{
    return powerAt(vsa_, freq_, utilization);
}

Watt
IoFabric::powerAt(Volt v_sa, Hertz freq, double utilization)
{
    SYSSCALE_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                    "fabric utilization %.3f out of [0,1]",
                    utilization);
    const double activity = 0.20 + 0.80 * utilization;
    const Watt dynamic =
        power::dynamicPower(kCdynFarad, v_sa, freq, activity);
    const Watt leak = power::leakagePower(kLeakK, v_sa, 50.0);
    return dynamic + leak;
}

void
IoFabric::saveState(SnapshotWriter &w) const
{
    w.putDouble("freq", freq_);
    w.putDouble("v_sa", vsa_);
    w.putBool("blocked", blocked_);
    w.putDouble("last_utilization", lastUtilization_);
}

void
IoFabric::loadState(SnapshotReader &r)
{
    // Direct restore: setFrequency() asserts a blocked fabric.
    freq_ = r.getDouble("freq");
    vsa_ = r.getDouble("v_sa");
    blocked_ = r.getBool("blocked");
    lastUtilization_ = r.getDouble("last_utilization");
}

} // namespace interconnect
} // namespace sysscale
