#include "compute/cpu.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace compute {

CpuCluster::CpuCluster(Simulator &sim, SimObject *parent,
                       std::size_t cores, std::size_t threads_per_core,
                       power::PStateTable pstates)
    : SimObject(sim, parent, "cpu"), cores_(cores),
      threadsPerCore_(threads_per_core), pstates_(std::move(pstates)),
      freq_(pstates_.min().freq), voltage_(pstates_.min().voltage),
      instructions_(this, "instructions", "instructions retired"),
      stallCycles_(this, "stall_cycles", "cycles stalled on misses"),
      pstateChanges_(this, "pstate_changes", "P-state transitions")
{
    if (cores == 0 || threads_per_core == 0)
        SYSSCALE_FATAL("CpuCluster: zero cores or threads");
}

void
CpuCluster::setPState(const power::PState &state)
{
    if (state.freq != freq_ || state.voltage != voltage_)
        ++pstateChanges_;
    freq_ = state.freq;
    voltage_ = state.voltage;
}

double
CpuCluster::ipcAt(const CoreWork &work, double mem_latency_ns) const
{
    SYSSCALE_ASSERT(work.cpiBase > 0.0, "non-positive base CPI");
    SYSSCALE_ASSERT(mem_latency_ns >= 0.0, "negative memory latency");

    const double lat_cycles = mem_latency_ns * 1e-9 * freq_;
    const double mem_cpi =
        work.mpki / 1000.0 * work.blockingFactor * lat_cycles;
    return 1.0 / (work.cpiBase + mem_cpi);
}

BytesPerSec
CpuCluster::bandwidthDemand(const CoreWork &work,
                            double mem_latency_ns) const
{
    const double instr_rate = ipcAt(work, mem_latency_ns) * freq_;
    return instr_rate * work.bytesPerInstr;
}

CoreResult
CpuCluster::retire(const CoreWork &work, double mem_latency_ns,
                   double bw_grant_ratio, Tick interval)
{
    SYSSCALE_ASSERT(interval > 0, "zero-length retire interval");
    SYSSCALE_ASSERT(bw_grant_ratio > 0.0 && bw_grant_ratio <= 1.0,
                    "bandwidth grant ratio %.3f out of (0,1]",
                    bw_grant_ratio);

    CoreResult res;
    const double secs = secondsFromTicks(interval);
    const double cycles = freq_ * secs;

    const double ipc_lat = ipcAt(work, mem_latency_ns);

    // Streaming codes retire no faster than their traffic is served:
    // the effective IPC is clamped by the bandwidth grant.
    double ipc = ipc_lat;
    if (work.bytesPerInstr > 0.0 && bw_grant_ratio < 1.0) {
        const double ipc_bw = ipc_lat * bw_grant_ratio;
        if (ipc_bw < ipc) {
            ipc = ipc_bw;
            res.bandwidthLimited = true;
        }
    }

    res.ipc = ipc;
    res.instructions = ipc * cycles;

    const double lat_cycles = mem_latency_ns * 1e-9 * freq_;
    res.stallCycles = res.instructions * work.mpki / 1000.0 *
                      work.blockingFactor * lat_cycles;

    instructions_ += res.instructions;
    stallCycles_ += res.stallCycles;
    return res;
}

Watt
CpuCluster::power(std::size_t active_threads, double activity) const
{
    SYSSCALE_ASSERT(active_threads <= numThreads(),
                    "%zu active threads exceed %zu", active_threads,
                    numThreads());

    // Active cores run the P-state's dynamic power scaled by thread
    // occupancy; an SMT sibling adds kSmtYield - 1 worth of activity.
    const std::size_t full_cores =
        std::min(cores_, active_threads);
    const double smt_extra =
        active_threads > cores_
            ? static_cast<double>(active_threads - cores_) *
                  (kSmtYield - 1.0)
            : 0.0;
    const double core_equivalents =
        static_cast<double>(full_cores) + smt_extra;

    const Watt per_core_dyn =
        power::dynamicPower(pstates_.cdyn(), voltage_, freq_,
                            activity);
    return per_core_dyn * core_equivalents + leakage();
}

Watt
CpuCluster::leakage() const
{
    return power::leakagePower(pstates_.leakK(), voltage_,
                               pstates_.temperature()) *
           static_cast<double>(cores_);
}

void
CpuCluster::saveState(SnapshotWriter &w) const
{
    w.putDouble("freq", freq_);
    w.putDouble("voltage", voltage_);
}

void
CpuCluster::loadState(SnapshotReader &r)
{
    // Direct restore, not setPState(): a restore must not count a
    // P-state transition that never happened.
    freq_ = r.getDouble("freq");
    voltage_ = r.getDouble("voltage");
}

} // namespace compute
} // namespace sysscale
