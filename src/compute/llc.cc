#include "compute/llc.hh"

#include <cmath>

#include "power/power_model.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace compute {

Llc::Llc(Simulator &sim, SimObject *parent, std::size_t capacity_bytes)
    : SimObject(sim, parent, "llc"), capacityBytes_(capacity_bytes),
      cpuMisses_(this, "cpu_misses", "CPU-side LLC misses"),
      gfxMisses_(this, "gfx_misses", "graphics-side LLC misses"),
      stallCycles_(this, "stall_cycles",
                   "core cycles stalled on LLC misses")
{
    if (capacity_bytes == 0)
        SYSSCALE_FATAL("Llc: zero capacity");
}

double
Llc::missScale(std::size_t reference_bytes) const
{
    SYSSCALE_ASSERT(reference_bytes > 0, "zero LLC reference size");
    return std::sqrt(static_cast<double>(reference_bytes) /
                     static_cast<double>(capacityBytes_));
}

void
Llc::recordInterval(double cpu_misses, double gfx_misses,
                    double stall_cycles, double pending_occupancy)
{
    lastGfxMisses_ = gfx_misses;
    lastStallCycles_ = stall_cycles;
    lastOccupancy_ = pending_occupancy;

    cpuMisses_ += cpu_misses;
    gfxMisses_ += gfx_misses;
    stallCycles_ += stall_cycles;
}

Watt
Llc::power(Volt voltage, double utilization) const
{
    SYSSCALE_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                    "LLC utilization %.3f out of [0,1]", utilization);
    const Watt dynamic = power::dynamicPower(
        kCdynFarad, voltage, kAccessClock, 0.1 + 0.9 * utilization);
    const Watt leak = power::leakagePower(kLeakK, voltage, 50.0);
    return dynamic + leak;
}

void
Llc::saveState(SnapshotWriter &w) const
{
    w.putDouble("last_gfx_misses", lastGfxMisses_);
    w.putDouble("last_stall_cycles", lastStallCycles_);
    w.putDouble("last_occupancy", lastOccupancy_);
}

void
Llc::loadState(SnapshotReader &r)
{
    lastGfxMisses_ = r.getDouble("last_gfx_misses");
    lastStallCycles_ = r.getDouble("last_stall_cycles");
    lastOccupancy_ = r.getDouble("last_occupancy");
}

} // namespace compute
} // namespace sysscale
