/**
 * @file
 * SoC idle power states (C-states) and hardware duty cycling.
 *
 * Battery-life workloads spend 60-90% of their time in package idle
 * states (Sec. 7.3): the paper's video-playback example transitions
 * between C0 (active), C2 (shallow idle: compute clock-gated, DRAM
 * still active for display refresh), and C8 (deep idle: DRAM in
 * self-refresh, rails at retention). SysScale can only scale the IO
 * and memory domains while DRAM is active, i.e. in C0 and C2 — which
 * the governor logic relies on.
 *
 * Hardware duty cycling (HDC, Sec. 7.2 footnote) additionally forces
 * idle windows inside C0 at very low TDP by toggling cores through
 * power-gated C-states at coarse grain.
 */

#ifndef SYSSCALE_COMPUTE_CSTATES_HH
#define SYSSCALE_COMPUTE_CSTATES_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace sysscale {
namespace compute {

/** Package power states modeled (subset of ACPI/Intel C-states). */
enum class CState : std::uint8_t { C0, C2, C6, C7, C8 };

constexpr std::size_t kNumCStates = 5;

constexpr std::array<CState, kNumCStates> kAllCStates = {
    CState::C0, CState::C2, CState::C6, CState::C7, CState::C8,
};

constexpr std::string_view
cstateName(CState c)
{
    switch (c) {
      case CState::C0: return "C0";
      case CState::C2: return "C2";
      case CState::C6: return "C6";
      case CState::C7: return "C7";
      case CState::C8: return "C8";
    }
    return "?";
}

constexpr std::size_t
cstateIndex(CState c)
{
    return static_cast<std::size_t>(c);
}

/** Physical behaviour of one C-state. */
struct CStateTraits
{
    /** Compute-domain dynamic power multiplier (1 in C0). */
    double computeDynFactor;

    /** Compute-domain leakage multiplier (power gating in C6+). */
    double computeLeakFactor;

    /** Uncore (fabric + MC) power multiplier. */
    double uncoreFactor;

    /** Whether DRAM stays out of self-refresh in this state. */
    bool dramActive;
};

/** Traits of @p c (Sec. 7.3 semantics). */
const CStateTraits &cstateTraits(CState c);

/**
 * Fraction of time spent in each C-state over a workload window.
 */
class CStateResidency
{
  public:
    /** All time in C0. */
    CStateResidency();

    /**
     * Build from per-state fractions; they must sum to 1 within
     * 1e-6 (fatal otherwise).
     */
    explicit CStateResidency(
        const std::array<double, kNumCStates> &fractions);

    double fraction(CState c) const;

    /** Fraction of time with DRAM out of self-refresh. */
    double dramActiveFraction() const;

    /** Fraction of time the compute domain executes (C0 only). */
    double activeFraction() const { return fraction(CState::C0); }

    /** Weighted compute dynamic-power factor across states. */
    double computeDynWeight() const;

    /** Weighted compute leakage factor across states. */
    double computeLeakWeight() const;

    /** Weighted uncore power factor across states. */
    double uncoreWeight() const;

    bool
    operator==(const CStateResidency &o) const
    {
        return fractions_ == o.fractions_;
    }

  private:
    std::array<double, kNumCStates> fractions_;
};

/**
 * Residency of a package running two independent activities at once:
 * at any instant the package can only idle as deeply as its most
 * active occupant allows. Treating the occupants' idle patterns as
 * independent, the probability the package is deeper than state s is
 * the product of the per-occupant probabilities, which fixes the
 * combined per-state fractions (they still sum to 1). Identity
 * element: a residency that is always in the deepest state.
 * Associative and commutative, so overlaying N activities pairwise
 * is order-independent.
 */
CStateResidency overlayResidency(const CStateResidency &a,
                                 const CStateResidency &b);

/**
 * Hardware duty cycling: an effective C0 duty factor the PMU imposes
 * below a TDP threshold (Sec. 7.2: "at a very low TDP, the effective
 * CPU frequency is reduced below Pn by using hardware duty cycling").
 */
class HardwareDutyCycle
{
  public:
    /**
     * @param tdp SoC thermal design power.
     */
    explicit HardwareDutyCycle(Watt tdp);

    /** Duty factor in (0, 1]: fraction of C0 the cores actually run. */
    double dutyFactor() const { return duty_; }

    /** TDP below which HDC engages. */
    static constexpr Watt kEngageTdp = 5.0;

    /** Duty floor at the lowest supported TDP (3.5W). */
    static constexpr double kMinDuty = 0.75;

  private:
    double duty_;
};

} // namespace compute
} // namespace sysscale

#endif // SYSSCALE_COMPUTE_CSTATES_HH
