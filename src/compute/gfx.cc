#include "compute/gfx.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace compute {

GfxEngine::GfxEngine(Simulator &sim, SimObject *parent,
                     power::PStateTable pstates)
    : SimObject(sim, parent, "gfx"), pstates_(std::move(pstates)),
      freq_(pstates_.min().freq), voltage_(pstates_.min().voltage),
      frames_(this, "frames", "frames rendered"),
      pstateChanges_(this, "pstate_changes", "P-state transitions"),
      fpsAvg_(this, "fps", "achieved frame rate")
{
}

void
GfxEngine::setPState(const power::PState &state)
{
    if (state.freq != freq_ || state.voltage != voltage_)
        ++pstateChanges_;
    freq_ = state.freq;
    voltage_ = state.voltage;
}

double
GfxEngine::shaderLimitedFps(const GfxWork &work) const
{
    if (work.idle())
        return 0.0;
    double fps = freq_ / work.cyclesPerFrame;
    if (work.targetFps > 0.0)
        fps = std::min(fps, work.targetFps);
    return fps;
}

BytesPerSec
GfxEngine::bandwidthDemand(const GfxWork &work) const
{
    return shaderLimitedFps(work) * work.bytesPerFrame;
}

GfxResult
GfxEngine::render(const GfxWork &work, BytesPerSec granted_bw,
                  Tick interval)
{
    SYSSCALE_ASSERT(interval > 0, "zero-length render interval");

    GfxResult res;
    if (work.idle())
        return res;

    const double fps_shader = shaderLimitedFps(work);
    double fps = fps_shader;
    if (work.bytesPerFrame > 0.0) {
        const double fps_bw = granted_bw / work.bytesPerFrame;
        if (fps_bw < fps) {
            fps = fps_bw;
            res.bandwidthLimited = true;
        }
    }

    res.fps = fps;
    res.frames = fps * secondsFromTicks(interval);

    frames_ += res.frames;
    fpsAvg_.sample(fps);
    return res;
}

Watt
GfxEngine::power(const GfxWork &work) const
{
    const Watt leak =
        power::leakagePower(pstates_.leakK(), voltage_,
                            pstates_.temperature());
    if (work.idle())
        return leak;
    return power::dynamicPower(pstates_.cdyn(), voltage_, freq_,
                               work.activity) +
           leak;
}

void
GfxEngine::saveState(SnapshotWriter &w) const
{
    w.putDouble("freq", freq_);
    w.putDouble("voltage", voltage_);
}

void
GfxEngine::loadState(SnapshotReader &r)
{
    freq_ = r.getDouble("freq");
    voltage_ = r.getDouble("voltage");
}

} // namespace compute
} // namespace sysscale
