/**
 * @file
 * Analytic CPU core model.
 *
 * Per-interval interval analysis in the spirit of first-order
 * processor models: a thread's cycles-per-instruction decompose into
 * a core component (CPI at ideal memory) and a memory component
 * (exposed LLC-miss latency). The memory component responds to the
 * loaded latency the memory subsystem reports, which is how memory
 * DVFS hurts latency-bound workloads (Fig. 2); a bandwidth clamp
 * models streaming workloads whose retirement rate tracks achieved
 * bandwidth (lbm in Fig. 2).
 */

#ifndef SYSSCALE_COMPUTE_CPU_HH
#define SYSSCALE_COMPUTE_CPU_HH

#include <cstdint>

#include "power/pbm.hh"
#include "power/power_model.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace compute {

/** What one hardware thread is asked to execute in an interval. */
struct CoreWork
{
    /** Cycles per instruction with an ideal memory system. */
    double cpiBase = 1.0;

    /** LLC misses per kilo-instruction. */
    double mpki = 0.0;

    /**
     * Fraction of each miss's latency that stalls retirement
     * (the inverse of the exploitable memory-level parallelism).
     */
    double blockingFactor = 0.5;

    /**
     * Main-memory traffic per instruction in bytes, including
     * hardware prefetch (exceeds mpki * 64 on streaming codes).
     */
    double bytesPerInstr = 0.0;

    /** Switching activity factor for the power model. */
    double activity = 0.7;

    bool
    operator==(const CoreWork &o) const
    {
        return cpiBase == o.cpiBase && mpki == o.mpki &&
               blockingFactor == o.blockingFactor &&
               bytesPerInstr == o.bytesPerInstr &&
               activity == o.activity;
    }
};

/** Outcome of one interval on one thread. */
struct CoreResult
{
    double instructions = 0.0;  //!< Instructions retired.
    double ipc = 0.0;           //!< Achieved instructions per cycle.
    double stallCycles = 0.0;   //!< Cycles stalled on LLC misses.
    bool bandwidthLimited = false;
};

/**
 * A cluster of identical CPU cores behind one voltage rail.
 *
 * Frequency/voltage is one P-state for the whole cluster (the cores
 * and LLC share a regulator, Sec. 2.1).
 */
class CpuCluster : public SimObject
{
  public:
    /**
     * @param sim Simulation context.
     * @param parent Owning SimObject.
     * @param cores Physical core count (2 on the paper's SoC).
     * @param threads_per_core SMT width (2 on the paper's SoC).
     * @param pstates P-state table built from the core V/F curve.
     */
    CpuCluster(Simulator &sim, SimObject *parent, std::size_t cores,
               std::size_t threads_per_core,
               power::PStateTable pstates);

    std::size_t numCores() const { return cores_; }
    std::size_t threadsPerCore() const { return threadsPerCore_; }
    std::size_t numThreads() const { return cores_ * threadsPerCore_; }

    /** @name Operating point. @{ */
    Hertz frequency() const { return freq_; }
    Volt voltage() const { return voltage_; }

    /** Apply a P-state (PBM grant). Snaps to the table. */
    void setPState(const power::PState &state);

    const power::PStateTable &pstates() const { return pstates_; }
    /** @} */

    /**
     * IPC of one thread under @p work at @p mem_latency_ns, before
     * any bandwidth clamp.
     */
    double ipcAt(const CoreWork &work, double mem_latency_ns) const;

    /**
     * Unconstrained memory bandwidth demand of one thread under
     * @p work at @p mem_latency_ns.
     */
    BytesPerSec bandwidthDemand(const CoreWork &work,
                                double mem_latency_ns) const;

    /**
     * Retire one interval of work on one thread.
     *
     * @param work Thread characteristics.
     * @param mem_latency_ns Loaded memory latency this interval.
     * @param bw_grant_ratio Achieved/demanded bandwidth in (0, 1].
     * @param interval Interval length in ticks.
     */
    CoreResult retire(const CoreWork &work, double mem_latency_ns,
                      double bw_grant_ratio, Tick interval);

    /**
     * Cluster power with @p active_threads running at @p activity.
     * Idle cores burn leakage only.
     */
    Watt power(std::size_t active_threads, double activity) const;

    /** Leakage of the whole cluster at the current voltage. */
    Watt leakage() const;

    /** Instructions retired since construction. */
    double totalInstructions() const { return instructions_.value(); }

    /** SMT throughput factor: 2 threads on a core yield this much. */
    static constexpr double kSmtYield = 1.45;

    /** @name Snapshot support: the applied P-state. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    std::size_t cores_;
    std::size_t threadsPerCore_;
    power::PStateTable pstates_;
    Hertz freq_;
    Volt voltage_;

    stats::Scalar instructions_;
    stats::Scalar stallCycles_;
    stats::Scalar pstateChanges_;
};

} // namespace compute
} // namespace sysscale

#endif // SYSSCALE_COMPUTE_CPU_HH
