/**
 * @file
 * Graphics engine model.
 *
 * Frame throughput is the minimum of the shader-limited rate (engine
 * frequency over cycles of work per frame) and the bandwidth-limited
 * rate (granted memory bandwidth over bytes touched per frame).
 * Graphics performance is "highly scalable with the graphics engine
 * frequency" (Sec. 7.2), which is what makes the budget SysScale
 * frees valuable for 3DMark.
 */

#ifndef SYSSCALE_COMPUTE_GFX_HH
#define SYSSCALE_COMPUTE_GFX_HH

#include "power/power_model.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace compute {

/** What the graphics engine is asked to render. */
struct GfxWork
{
    /** Engine cycles to render one frame. */
    double cyclesPerFrame = 0.0;

    /** Memory bytes touched per frame (textures, targets). */
    double bytesPerFrame = 0.0;

    /** Frame-rate cap (vsync); 0 means uncapped. */
    double targetFps = 0.0;

    /** Switching activity while rendering. */
    double activity = 0.8;

    bool idle() const { return cyclesPerFrame <= 0.0; }

    bool
    operator==(const GfxWork &o) const
    {
        return cyclesPerFrame == o.cyclesPerFrame &&
               bytesPerFrame == o.bytesPerFrame &&
               targetFps == o.targetFps && activity == o.activity;
    }
};

/** Outcome of one interval of rendering. */
struct GfxResult
{
    double fps = 0.0;            //!< Achieved frame rate.
    double frames = 0.0;         //!< Frames completed this interval.
    bool bandwidthLimited = false;
};

/**
 * The SoC graphics engine (own rail, Sec. 2.1).
 */
class GfxEngine : public SimObject
{
  public:
    GfxEngine(Simulator &sim, SimObject *parent,
              power::PStateTable pstates);

    /** @name Operating point. @{ */
    Hertz frequency() const { return freq_; }
    Volt voltage() const { return voltage_; }

    /** Apply a P-state (PBM grant). */
    void setPState(const power::PState &state);

    const power::PStateTable &pstates() const { return pstates_; }
    /** @} */

    /** Frame rate sustainable at the current clock, ignoring memory. */
    double shaderLimitedFps(const GfxWork &work) const;

    /** Unconstrained memory bandwidth demand of @p work. */
    BytesPerSec bandwidthDemand(const GfxWork &work) const;

    /**
     * Render one interval.
     *
     * @param work Frame characteristics.
     * @param granted_bw Memory bandwidth granted to the engine.
     * @param interval Interval length in ticks.
     */
    GfxResult render(const GfxWork &work, BytesPerSec granted_bw,
                     Tick interval);

    /** Engine power while rendering with @p activity (0 when idle). */
    Watt power(const GfxWork &work) const;

    /** Frames rendered since construction. */
    double totalFrames() const { return frames_.value(); }

    /** @name Snapshot support: the applied P-state. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    power::PStateTable pstates_;
    Hertz freq_;
    Volt voltage_;

    stats::Scalar frames_;
    stats::Scalar pstateChanges_;
    stats::Average fpsAvg_;
};

} // namespace compute
} // namespace sysscale

#endif // SYSSCALE_COMPUTE_GFX_HH
