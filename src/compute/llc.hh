/**
 * @file
 * Last-level cache model.
 *
 * The LLC is shared by CPU cores and graphics (Sec. 2.1) and sits on
 * the core rail. Workload profiles carry their miss statistics at the
 * reference 4MB capacity; the model provides the capacity-scaling
 * rule, tracks the stall/occupancy observables behind the paper's new
 * performance counters (Sec. 4.2), and contributes cache power.
 */

#ifndef SYSSCALE_COMPUTE_LLC_HH
#define SYSSCALE_COMPUTE_LLC_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace compute {

/**
 * The shared last-level cache.
 */
class Llc : public SimObject
{
  public:
    /**
     * @param sim Simulation context.
     * @param parent Owning SimObject.
     * @param capacity_bytes Cache capacity (4MB per Table 2).
     */
    Llc(Simulator &sim, SimObject *parent, std::size_t capacity_bytes);

    std::size_t capacityBytes() const { return capacityBytes_; }

    /**
     * Miss-rate multiplier for a profile characterized at
     * @p reference_bytes, using the square-root capacity rule.
     */
    double missScale(std::size_t reference_bytes) const;

    /**
     * Record one interval of LLC activity (feeds the counters).
     *
     * @param cpu_misses CPU-side misses this interval.
     * @param gfx_misses Graphics-side misses this interval.
     * @param stall_cycles Core cycles stalled on LLC misses.
     * @param pending_occupancy Average requests waiting on the MC.
     */
    void recordInterval(double cpu_misses, double gfx_misses,
                        double stall_cycles,
                        double pending_occupancy);

    /** @name Last-interval observables (counter sources). @{ */
    double lastGfxMisses() const { return lastGfxMisses_; }
    double lastStallCycles() const { return lastStallCycles_; }
    double lastPendingOccupancy() const { return lastOccupancy_; }
    /** @} */

    /** Cache power at @p voltage with @p utilization. */
    Watt power(Volt voltage, double utilization) const;

    /** Leakage coefficient of the array at (0.8V, 50C). */
    static constexpr double kLeakK = 0.080;

    /** Effective switched capacitance of the array + tags. */
    static constexpr double kCdynFarad = 150e-12;

    /** Access clock assumed for the dynamic component. */
    static constexpr Hertz kAccessClock = 1.0 * kGHz;

    /** @name Snapshot support: last-interval observables. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    std::size_t capacityBytes_;
    double lastGfxMisses_ = 0.0;
    double lastStallCycles_ = 0.0;
    double lastOccupancy_ = 0.0;

    stats::Scalar cpuMisses_;
    stats::Scalar gfxMisses_;
    stats::Scalar stallCycles_;
};

} // namespace compute
} // namespace sysscale

#endif // SYSSCALE_COMPUTE_LLC_HH
