#include "compute/cstates.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace compute {

const CStateTraits &
cstateTraits(CState c)
{
    // computeDyn, computeLeak, uncore, dramActive
    static const std::array<CStateTraits, kNumCStates> traits = {{
        {1.00, 1.00, 1.00, true},  // C0: executing.
        {0.00, 0.85, 0.75, true},  // C2: clock-gated, DRAM active.
        {0.00, 0.12, 0.22, false}, // C6: cores power-gated.
        {0.00, 0.08, 0.12, false}, // C7: LLC flushed/shrunk.
        {0.00, 0.04, 0.025, false}, // C8: deepest, DRAM self-refresh.
    }};
    return traits[cstateIndex(c)];
}

CStateResidency::CStateResidency()
{
    fractions_.fill(0.0);
    fractions_[cstateIndex(CState::C0)] = 1.0;
}

CStateResidency::CStateResidency(
    const std::array<double, kNumCStates> &fractions)
    : fractions_(fractions)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        if (fractions_[i] < 0.0) {
            SYSSCALE_FATAL("negative C-state residency %.3f",
                           fractions_[i]);
        }
        sum += fractions_[i];
    }
    if (std::fabs(sum - 1.0) > 1e-6)
        SYSSCALE_FATAL("C-state residencies sum to %.6f, not 1", sum);
}

double
CStateResidency::fraction(CState c) const
{
    return fractions_[cstateIndex(c)];
}

double
CStateResidency::dramActiveFraction() const
{
    double f = 0.0;
    for (CState c : kAllCStates) {
        if (cstateTraits(c).dramActive)
            f += fraction(c);
    }
    return f;
}

double
CStateResidency::computeDynWeight() const
{
    double w = 0.0;
    for (CState c : kAllCStates)
        w += fraction(c) * cstateTraits(c).computeDynFactor;
    return w;
}

double
CStateResidency::computeLeakWeight() const
{
    double w = 0.0;
    for (CState c : kAllCStates)
        w += fraction(c) * cstateTraits(c).computeLeakFactor;
    return w;
}

double
CStateResidency::uncoreWeight() const
{
    double w = 0.0;
    for (CState c : kAllCStates)
        w += fraction(c) * cstateTraits(c).uncoreFactor;
    return w;
}

CStateResidency
overlayResidency(const CStateResidency &a, const CStateResidency &b)
{
    // Walk the states shallow-to-deep keeping P(deeper than s) for
    // each occupant; the combined fraction of s telescopes out of
    // the product of those tails. The final state takes whatever
    // tail remains so the fractions sum to exactly 1.
    std::array<double, kNumCStates> out{};
    double tail_a = 1.0, tail_b = 1.0, prev = 1.0;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        if (i + 1 == kNumCStates) {
            out[i] = prev;
            break;
        }
        tail_a = std::max(0.0, tail_a - a.fraction(kAllCStates[i]));
        tail_b = std::max(0.0, tail_b - b.fraction(kAllCStates[i]));
        const double deeper = tail_a * tail_b;
        out[i] = std::max(0.0, prev - deeper);
        prev = deeper;
    }
    return CStateResidency(out);
}

HardwareDutyCycle::HardwareDutyCycle(Watt tdp)
{
    if (tdp <= 0.0)
        SYSSCALE_FATAL("HardwareDutyCycle: non-positive TDP %.2f", tdp);

    if (tdp >= kEngageTdp) {
        duty_ = 1.0;
        return;
    }

    // Linear ramp from kMinDuty at 3.5W to 1.0 at the engage TDP.
    const double lo = 3.5;
    const double t = std::clamp((tdp - lo) / (kEngageTdp - lo), 0.0,
                                1.0);
    duty_ = kMinDuty + (1.0 - kMinDuty) * t;
}

} // namespace compute
} // namespace sysscale
