#include "dist/worker.hh"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace dist {

namespace {

/**
 * Refreshes a claim's lease on a background thread for as long as
 * the owning scope lives — keeping the lease fresh through
 * arbitrarily long simulations without the simulator needing to know
 * about leases at all.
 */
class LeaseKeeper
{
  public:
    LeaseKeeper(WorkQueue &queue, const Claim &claim,
                std::chrono::milliseconds period)
        : thread_([this, &queue, &claim, period] {
              std::unique_lock<std::mutex> lock(mutex_);
              while (!cv_.wait_for(lock, period,
                                   [this] { return stop_; })) {
                  queue.heartbeat(claim);
              }
          })
    {}

    ~LeaseKeeper()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Exact shared completion budget for a capacity pool: maxCells is
 * reserved before a claim is attempted and released when no claim
 * materializes, so N concurrent loops complete exactly maxCells
 * cells between them — never maxCells + capacity - 1.
 */
class CellBudget
{
  public:
    explicit CellBudget(std::size_t max) : max_(max) {}

    /** Reserve one completion slot; false = budget exhausted. */
    bool
    tryTake()
    {
        if (max_ == 0)
            return true; // Unlimited.
        if (taken_.fetch_add(1, std::memory_order_relaxed) < max_)
            return true;
        taken_.fetch_sub(1, std::memory_order_relaxed);
        return false;
    }

    /** Return an unused slot (the claim scan came up empty). */
    void
    putBack()
    {
        if (max_ != 0)
            taken_.fetch_sub(1, std::memory_order_relaxed);
    }

  private:
    std::size_t max_;
    std::atomic<std::size_t> taken_{0};
};

/**
 * Whether @p claim's output snapshot is already published and valid
 * (right cell, right tick). A readable-but-wrong file — torn write
 * survivor, stale format, different spec — counts as absent: the
 * slice re-simulates rather than trusting it.
 */
bool
sliceAlreadyDone(const WorkQueue &queue, const Claim &claim)
{
    try {
        SnapshotReader r(readSnapshotFile(
            queue.snapshotPath(claim.baseKey, claim.t1)));
        return r.specKey() == exp::snapshotSpecKey(claim.spec) &&
               r.tick() == claim.t1;
    } catch (const SnapshotError &) {
        return false;
    }
}

/** One claim → cache-check → simulate → publish loop. */
WorkerStats
runWorkerLoop(const std::string &queueDir, exp::ResultCache &cache,
              const WorkerOptions &opts, const std::string &id,
              CellBudget &budget)
{
    WorkQueue queue(queueDir);
    queue.onEvent = opts.onEvent;

    auto log = [&](const std::string &line) {
        if (opts.onEvent)
            opts.onEvent(line);
    };

    WorkerStats stats;
    double sim_seconds = 0.0;
    double wall_seconds = 0.0;

    // Campaign telemetry: rewrite this worker's metrics file after
    // every resolved claim so dashboards (sweep_queue watch/status)
    // see progress and throughput without touching the worker.
    auto publish = [&] {
        WorkerMetrics m;
        m.workerId = id;
        m.claimed = stats.claimed;
        m.simulated = stats.simulated;
        m.cacheHits = stats.cacheHits;
        m.failures = stats.failures;
        m.simSeconds = sim_seconds;
        m.wallSeconds = wall_seconds;
        queue.publishMetrics(m);
    };

    for (;;) {
        if (opts.shouldStop && opts.shouldStop())
            break;
        if (!budget.tryTake())
            break;

        // Recover cells whose worker died before claiming new work:
        // the fleet heals itself without a dispatcher.
        stats.reclaims += queue.reclaimStale(opts.leaseTimeout);

        Claim claim;
        if (!queue.tryClaim(id, claim)) {
            budget.putBack();
            if (opts.drain && queue.scan().drained())
                break;
            std::this_thread::sleep_for(opts.poll);
            continue;
        }
        ++stats.claimed;

        // The cache entry is the completion marker: a reclaimed cell
        // whose original worker actually finished must never burn a
        // second simulation.
        exp::RunResult done;
        if (cache.lookup(claim.spec, done)) {
            ++stats.cacheHits;
            queue.release(claim);
            publish();
            log(claim.key + " already completed (cache hit)");
            continue;
        }

        // Checkpoint-chain slices have a second completion marker:
        // the chain snapshot this slice would publish. A reclaimed
        // slice whose worker died *after* publishing it (but before
        // enqueueing the successor or releasing) is not re-simulated
        // — only its bookkeeping is replayed, so a crash never costs
        // duplicate simulation. Validity is checked, not assumed: a
        // torn or stale file re-simulates instead.
        const bool finalSlice =
            claim.isSlice && claim.t1 >= claim.total;
        if (claim.isSlice && !finalSlice &&
            sliceAlreadyDone(queue, claim)) {
            ++stats.cacheHits;
            queue.enqueueSlice(claim.spec, claim.step,
                               claim.index + 1);
            queue.release(claim);
            publish();
            log(claim.key + " slice " +
                std::to_string(claim.index) +
                " already published (snapshot hit)");
            continue;
        }

        exp::RunResult res;
        {
            const LeaseKeeper keeper(queue, claim, opts.heartbeat);
            if (claim.isSlice) {
                exp::SliceOptions so;
                so.t0 = claim.t0;
                so.t1 = claim.t1;
                if (claim.t0 > 0) {
                    so.inSnap = queue.snapshotPath(claim.baseKey,
                                                   claim.t0);
                }
                if (!finalSlice) {
                    so.outSnap = queue.snapshotPath(claim.baseKey,
                                                    claim.t1);
                }
                res = exp::runCellSlice(claim.spec, so);
            } else {
                res = exp::runCell(claim.spec);
            }
        }
        ++stats.simulated;
        sim_seconds += res.metrics.seconds;
        wall_seconds += res.hostSeconds;

        if (res.ok && claim.isSlice && !finalSlice) {
            // Publish order matters for crash recovery: the snapshot
            // is already on disk (runCellSlice renames it in before
            // returning), so enqueue the successor *before* releasing
            // — a death in between is healed by the snapshot-hit path
            // above, never by re-simulation.
            queue.enqueueSlice(claim.spec, claim.step,
                               claim.index + 1);
            queue.release(claim);
            log(claim.key + " slice " + std::to_string(claim.index) +
                " ok (" + claim.spec.id + ", " +
                exp::formatDouble(res.hostSeconds) + "s)");
        } else if (res.ok) {
            cache.store(claim.spec, res);
            queue.release(claim);
            log(claim.key + " ok (" + claim.spec.id + ", " +
                exp::formatDouble(res.hostSeconds) + "s)");
        } else {
            ++stats.failures;
            queue.fail(claim, res);
            log(claim.key + " FAILED (" + claim.spec.id + "): " +
                res.error);
        }
        publish();
    }
    return stats;
}

} // anonymous namespace

WorkerStats
runWorker(const std::string &queueDir, exp::ResultCache &cache,
          const WorkerOptions &opts)
{
    const std::string id =
        opts.workerId.empty() ? makeWorkerId() : opts.workerId;
    CellBudget budget(opts.maxCells);

    if (opts.capacity <= 1)
        return runWorkerLoop(queueDir, cache, opts, id, budget);

    // Capacity pool: N copies of the loop, each claiming under its
    // own sub-identity (claim and lease file names embed it), all
    // drawing on one maxCells budget. Each loop owns a private
    // WorkQueue handle — the queue protocol is already
    // multi-process safe, which makes it multi-thread safe for
    // free.
    std::vector<WorkerStats> stats(opts.capacity);
    std::vector<std::thread> pool;
    std::mutex error_mutex;
    std::string first_error;
    for (std::size_t k = 0; k < opts.capacity; ++k) {
        pool.emplace_back([&, k] {
            try {
                stats[k] = runWorkerLoop(
                    queueDir, cache, opts,
                    id + "-p" + std::to_string(k), budget);
            } catch (const std::exception &e) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error.empty())
                    first_error = e.what();
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (!first_error.empty())
        throw std::runtime_error(first_error);

    WorkerStats total;
    for (const WorkerStats &s : stats) {
        total.claimed += s.claimed;
        total.simulated += s.simulated;
        total.cacheHits += s.cacheHits;
        total.failures += s.failures;
        total.reclaims += s.reclaims;
    }
    return total;
}

} // namespace dist
} // namespace sysscale
