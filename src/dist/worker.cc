#include "dist/worker.hh"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "exp/report.hh"

namespace sysscale {
namespace dist {

namespace {

/**
 * Refreshes a claim's lease on a background thread for as long as
 * the owning scope lives — keeping the lease fresh through
 * arbitrarily long simulations without the simulator needing to know
 * about leases at all.
 */
class LeaseKeeper
{
  public:
    LeaseKeeper(WorkQueue &queue, const Claim &claim,
                std::chrono::milliseconds period)
        : thread_([this, &queue, &claim, period] {
              std::unique_lock<std::mutex> lock(mutex_);
              while (!cv_.wait_for(lock, period,
                                   [this] { return stop_; })) {
                  queue.heartbeat(claim);
              }
          })
    {}

    ~LeaseKeeper()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // anonymous namespace

WorkerStats
runWorker(const std::string &queueDir, exp::ResultCache &cache,
          const WorkerOptions &opts)
{
    WorkQueue queue(queueDir);
    queue.onEvent = opts.onEvent;
    const std::string id =
        opts.workerId.empty() ? makeWorkerId() : opts.workerId;

    auto log = [&](const std::string &line) {
        if (opts.onEvent)
            opts.onEvent(line);
    };

    WorkerStats stats;
    for (;;) {
        if (opts.shouldStop && opts.shouldStop())
            break;
        if (opts.maxCells != 0 &&
            stats.cacheHits + stats.simulated >= opts.maxCells)
            break;

        // Recover cells whose worker died before claiming new work:
        // the fleet heals itself without a dispatcher.
        stats.reclaims += queue.reclaimStale(opts.leaseTimeout);

        Claim claim;
        if (!queue.tryClaim(id, claim)) {
            if (opts.drain && queue.scan().drained())
                break;
            std::this_thread::sleep_for(opts.poll);
            continue;
        }
        ++stats.claimed;

        // The cache entry is the completion marker: a reclaimed cell
        // whose original worker actually finished must never burn a
        // second simulation.
        exp::RunResult done;
        if (cache.lookup(claim.spec, done)) {
            ++stats.cacheHits;
            queue.release(claim);
            log(claim.key + " already completed (cache hit)");
            continue;
        }

        exp::RunResult res;
        {
            const LeaseKeeper keeper(queue, claim, opts.heartbeat);
            res = exp::runCell(claim.spec);
        }
        ++stats.simulated;

        if (res.ok) {
            cache.store(claim.spec, res);
            queue.release(claim);
            log(claim.key + " ok (" + claim.spec.id + ", " +
                exp::formatDouble(res.hostSeconds) + "s)");
        } else {
            ++stats.failures;
            queue.fail(claim, res);
            log(claim.key + " FAILED (" + claim.spec.id + "): " +
                res.error);
        }
    }
    return stats;
}

} // namespace dist
} // namespace sysscale
