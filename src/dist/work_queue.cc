#include "dist/work_queue.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/report.hh"
#include "exp/spec_codec.hh"
#include "sim/snapshot.hh"

namespace fs = std::filesystem;

namespace sysscale {
namespace dist {

namespace {

constexpr std::size_t kKeyLen = 16; //!< specKey() hex digits.
constexpr const char *kFailureHeader = "sysscale-dist-failure v1";

/**
 * Header of a pending slice entry. The framing (base key, slicing
 * period, slice index) precedes the cell's own serialized spec; the
 * spec codec's version guard covers the payload, this header the
 * frame — bump it if the frame's shape changes.
 */
constexpr const char *kSliceHeader = "sysscale-slice v1";

bool
isHexKey(const std::string &s)
{
    if (s.size() != kKeyLen)
        return false;
    for (const char c : s) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

/** Split "<key>.<worker>" claim/lease file names; empty on garbage. */
bool
splitClaimName(const std::string &name, std::string &key,
               std::string &worker)
{
    if (name.size() < kKeyLen + 2 || name[kKeyLen] != '.')
        return false;
    key = name.substr(0, kKeyLen);
    worker = name.substr(kKeyLen + 1);
    return isHexKey(key) && !worker.empty();
}

/** Decoded frame of a pending slice entry (see enqueueSlice). */
struct SliceFrame
{
    std::string baseKey;
    Tick step = 0;
    std::uint64_t index = 0;
    std::string specText;
};

/** Build the pending-file document of one slice entry. */
std::string
formatSliceFrame(const std::string &baseKey, Tick step,
                 std::uint64_t index, const std::string &specText)
{
    std::string doc = std::string(kSliceHeader) + "\n";
    doc += "base = " + baseKey + "\n";
    doc += "step = " + std::to_string(step) + "\n";
    doc += "index = " + std::to_string(index) + "\n";
    doc += "---\n";
    doc += specText;
    return doc;
}

/** Inverse of formatSliceFrame; false (with reason) on garbage. */
bool
parseSliceFrame(const std::string &text, SliceFrame &out,
                std::string &reason)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != kSliceHeader) {
        reason = "bad slice header";
        return false;
    }
    if (!std::getline(is, line) || line.rfind("base = ", 0) != 0 ||
        !isHexKey(line.substr(7))) {
        reason = "bad slice base key";
        return false;
    }
    out.baseKey = line.substr(7);
    if (!std::getline(is, line) || line.rfind("step = ", 0) != 0) {
        reason = "bad slice step";
        return false;
    }
    out.step = std::strtoull(line.c_str() + 7, nullptr, 10);
    if (!std::getline(is, line) || line.rfind("index = ", 0) != 0) {
        reason = "bad slice index";
        return false;
    }
    out.index = std::strtoull(line.c_str() + 8, nullptr, 10);
    if (!std::getline(is, line) || line != "---") {
        reason = "bad slice separator";
        return false;
    }
    std::ostringstream rest;
    rest << is.rdbuf();
    out.specText = rest.str();
    if (out.step == 0) {
        reason = "zero slice step";
        return false;
    }
    return true;
}

/** Whole-file read; false when the file cannot be opened. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    out = buf.str();
    return true;
}

/** @p ref minus @p path's mtime, in (possibly negative) seconds. */
double
ageAgainst(const fs::file_time_type ref, const fs::path &path,
           std::error_code &ec)
{
    const auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return 0.0;
    return std::chrono::duration<double>(ref - mtime).count();
}

} // anonymous namespace

WorkQueue::WorkQueue(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    for (const char *sub :
         {"pending", "claimed", "leases", "failed", "snaps",
          "corrupt", "tmp", "metrics"}) {
        const fs::path p = fs::path(dir_) / sub;
        fs::create_directories(p, ec);
        if (ec || !fs::is_directory(p)) {
            throw std::runtime_error("WorkQueue: cannot create \"" +
                                     p.string() + "\"");
        }
    }
}

bool
WorkQueue::queueable(const exp::ExperimentSpec &spec)
{
    return exp::isSerializableSpec(spec);
}

std::string
WorkQueue::pendingPath(const std::string &key) const
{
    return dir_ + "/pending/" + key + ".spec";
}

std::string
WorkQueue::claimedPath(const std::string &key,
                       const std::string &workerId) const
{
    return dir_ + "/claimed/" + key + "." + workerId;
}

std::string
WorkQueue::leasePath(const std::string &key,
                     const std::string &workerId) const
{
    return dir_ + "/leases/" + key + "." + workerId;
}

std::string
WorkQueue::failedPath(const std::string &key) const
{
    return dir_ + "/failed/" + key;
}

std::string
WorkQueue::metricsPath(const std::string &workerId) const
{
    return dir_ + "/metrics/" + workerId + ".json";
}

void
WorkQueue::note(const std::string &event)
{
    if (onEvent)
        onEvent(event);
}

bool
WorkQueue::quarantine(const std::string &path,
                      const std::string &reason)
{
    std::error_code ec;
    const fs::path src(path);
    const fs::path dst = fs::path(dir_) / "corrupt" /
                         (src.filename().string() + "." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(tmpSerial_++));
    fs::rename(src, dst, ec);
    if (ec) {
        // Someone else moved or claimed it first; nothing to report.
        return false;
    }
    ++counters_.corrupt;
    note("corrupt: " + src.filename().string() + " quarantined to " +
         dst.string() + " (" + reason + ")");
    return true;
}

std::string
WorkQueue::enqueue(const exp::ExperimentSpec &spec)
{
    if (!queueable(spec)) {
        throw std::invalid_argument(
            "WorkQueue: cell \"" + spec.id +
            "\" carries runtime hooks and cannot be serialized");
    }
    const std::string text = exp::serializeSpec(spec);
    const std::string key = exp::specKey(spec);

    std::error_code ec;
    bool present = fs::exists(pendingPath(key), ec) ||
                   fs::exists(failedPath(key), ec);
    if (!present) {
        for (const auto &entry : fs::directory_iterator(
                 fs::path(dir_) / "claimed", ec)) {
            if (entry.path().filename().string().rfind(key + ".",
                                                       0) == 0) {
                present = true;
                break;
            }
        }
    }
    if (present) {
        ++counters_.skipped;
        return key;
    }

    const std::string tmp = dir_ + "/tmp/" + key + "." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSerial_++);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            throw std::runtime_error("WorkQueue: cannot write \"" +
                                     tmp + "\"");
        }
        os << text;
        if (!os.flush()) {
            os.close();
            fs::remove(tmp, ec);
            throw std::runtime_error("WorkQueue: cannot write \"" +
                                     tmp + "\"");
        }
    }
    fs::rename(tmp, pendingPath(key), ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw std::runtime_error("WorkQueue: cannot enqueue \"" +
                                 key + "\"");
    }
    ++counters_.enqueued;
    return key;
}

std::string
WorkQueue::sliceKeyFor(const std::string &baseKey, Tick step,
                       std::uint64_t index)
{
    // Deterministic across processes: every worker and dispatcher
    // derives the same chain keys from the same (cell, period).
    const std::string salt = "slice:" + baseKey + ":" +
                             std::to_string(step) + ":" +
                             std::to_string(index);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      snapshotFnv1a64(salt)));
    return buf;
}

std::uint64_t
WorkQueue::sliceCount(const exp::ExperimentSpec &spec, Tick step)
{
    if (step == 0)
        return 1;
    const Tick total = spec.warmup + spec.window;
    return (total + step - 1) / step;
}

std::string
WorkQueue::snapshotPath(const std::string &baseKey, Tick t) const
{
    return dir_ + "/snaps/" + baseKey + ".t" + std::to_string(t) +
           ".snap";
}

std::string
WorkQueue::enqueueSlice(const exp::ExperimentSpec &spec, Tick step,
                        std::uint64_t index)
{
    if (!queueable(spec)) {
        throw std::invalid_argument(
            "WorkQueue: cell \"" + spec.id +
            "\" carries runtime hooks and cannot be serialized");
    }
    if (step == 0) {
        throw std::invalid_argument(
            "WorkQueue: slice step must be nonzero");
    }
    if (index >= sliceCount(spec, step)) {
        throw std::invalid_argument(
            "WorkQueue: slice index " + std::to_string(index) +
            " past the end of the chain");
    }
    const std::string baseKey = exp::specKey(spec);
    const std::string key = sliceKeyFor(baseKey, step, index);

    // Same idempotence as enqueue(): the slice already pending or
    // claimed — or the whole cell already failed — is a skip, which
    // is what makes the crash-recovery "enqueue successor, then
    // release" order safe to replay.
    std::error_code ec;
    bool present = fs::exists(pendingPath(key), ec) ||
                   fs::exists(failedPath(baseKey), ec);
    if (!present) {
        for (const auto &entry : fs::directory_iterator(
                 fs::path(dir_) / "claimed", ec)) {
            if (entry.path().filename().string().rfind(key + ".",
                                                       0) == 0) {
                present = true;
                break;
            }
        }
    }
    if (present) {
        ++counters_.skipped;
        return key;
    }

    const std::string doc = formatSliceFrame(
        baseKey, step, index, exp::serializeSpec(spec));
    const std::string tmp = dir_ + "/tmp/" + key + "." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSerial_++);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            throw std::runtime_error("WorkQueue: cannot write \"" +
                                     tmp + "\"");
        }
        os << doc;
        if (!os.flush()) {
            os.close();
            fs::remove(tmp, ec);
            throw std::runtime_error("WorkQueue: cannot write \"" +
                                     tmp + "\"");
        }
    }
    fs::rename(tmp, pendingPath(key), ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw std::runtime_error("WorkQueue: cannot enqueue \"" +
                                 key + "\"");
    }
    ++counters_.enqueued;
    return key;
}

bool
WorkQueue::tryClaim(const std::string &workerId, Claim &out)
{
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "pending", ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() != kKeyLen + 5 ||
            name.compare(kKeyLen, 5, ".spec") != 0 ||
            !isHexKey(name.substr(0, kKeyLen))) {
            quarantine(entry.path().string(),
                       "not a <key>.spec file");
            continue;
        }
        const std::string key = name.substr(0, kKeyLen);

        // Lease before rename: a visible claim always has a lease,
        // so reclaimStale() can treat a missing lease as a crash.
        heartbeatPath(leasePath(key, workerId), workerId);
        const std::string claimed = claimedPath(key, workerId);
        fs::rename(entry.path(), claimed, ec);
        if (ec) {
            // Lost the race for this cell; drop the lease and try
            // the next one.
            fs::remove(leasePath(key, workerId), ec);
            continue;
        }

        // The rename is ours. A file that does not parse back into
        // the entry it is named for must never be simulated — move it
        // aside loudly and keep scanning; the dispatcher re-enqueues
        // the cell from its own copy of the spec.
        std::string text;
        bool ok = readFile(claimed, text);
        exp::ExperimentSpec spec;
        SliceFrame frame;
        const bool isSlice =
            ok && text.rfind(kSliceHeader, 0) == 0;
        std::string reason = "unreadable";
        if (ok && isSlice) {
            ok = parseSliceFrame(text, frame, reason);
            if (ok) {
                try {
                    spec = exp::parseSpec(frame.specText);
                    if (exp::specKey(spec) != frame.baseKey) {
                        ok = false;
                        reason = "slice base key mismatch";
                    } else if (sliceKeyFor(frame.baseKey, frame.step,
                                           frame.index) != key) {
                        ok = false;
                        reason = "slice key mismatch";
                    } else if (frame.index >=
                               sliceCount(spec, frame.step)) {
                        ok = false;
                        reason = "slice index past the chain";
                    }
                } catch (const std::exception &e) {
                    ok = false;
                    reason = e.what();
                }
            }
        } else if (ok) {
            try {
                spec = exp::parseSpec(text);
                if (exp::specKey(spec) != key) {
                    ok = false;
                    reason = "content key mismatch";
                }
            } catch (const std::exception &e) {
                ok = false;
                reason = e.what();
            }
        }
        if (!ok) {
            quarantine(claimed, reason);
            fs::remove(leasePath(key, workerId), ec);
            continue;
        }

        out = Claim{};
        out.key = key;
        out.workerId = workerId;
        out.spec = std::move(spec);
        if (isSlice) {
            out.isSlice = true;
            out.baseKey = frame.baseKey;
            out.step = frame.step;
            out.index = frame.index;
            out.total = out.spec.warmup + out.spec.window;
            out.t0 = frame.index * frame.step;
            out.t1 = std::min(out.t0 + frame.step, out.total);
        }
        ++counters_.claims;
        return true;
    }
    return false;
}

void
WorkQueue::heartbeatPath(const std::string &lease,
                         const std::string &workerId)
{
    // Rewritten in place: the mtime is the signal, the content is
    // diagnostic only. A torn write is harmless.
    // lint:allow raw-queue-write -- mtime-only heartbeat; a torn
    // write is harmless by design (content is diagnostic)
    std::ofstream os(lease, std::ios::binary | std::ios::trunc);
    if (os)
        os << workerId << "\n";
}

void
WorkQueue::heartbeat(const Claim &claim)
{
    heartbeatPath(leasePath(claim.key, claim.workerId),
                  claim.workerId);
}

void
WorkQueue::release(const Claim &claim)
{
    std::error_code ec;
    fs::remove(claimedPath(claim.key, claim.workerId), ec);
    fs::remove(leasePath(claim.key, claim.workerId), ec);
    ++counters_.releases;
}

void
WorkQueue::fail(const Claim &claim, const exp::RunResult &res)
{
    std::error_code ec;
    std::string error = res.error;
    for (char &c : error) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    std::string doc = std::string(kFailureHeader) + "\n";
    doc += "governor = " + res.governor + "\n";
    doc += "host_seconds = " + exp::formatDouble(res.hostSeconds) +
           "\n";
    doc += "error = " + error + "\n";

    // A failed slice fails its *cell*: the marker carries the base
    // key the dispatcher is watching, and the rest of the chain is
    // simply never enqueued.
    const std::string cellKey =
        claim.isSlice ? claim.baseKey : claim.key;

    const std::string tmp = dir_ + "/tmp/" + claim.key + ".fail." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSerial_++);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (os)
            os << doc;
    }
    fs::rename(tmp, failedPath(cellKey), ec);
    if (ec)
        fs::remove(tmp, ec);
    else
        ++counters_.failures;
    // Keep the serialized spec next to the marker: retryFailed()
    // can then put the cell back on the queue without needing a
    // dispatcher's copy of the grid. A slice's claimed file is the
    // framed chain entry, not a plain spec — rewrite the spec from
    // the decoded claim instead so a retry re-runs the whole cell.
    if (claim.isSlice) {
        const std::string spec_tmp =
            dir_ + "/tmp/" + claim.key + ".spec." +
            std::to_string(::getpid()) + "." +
            std::to_string(tmpSerial_++);
        {
            std::ofstream os(spec_tmp,
                             std::ios::binary | std::ios::trunc);
            if (os)
                os << exp::serializeSpec(claim.spec);
        }
        fs::rename(spec_tmp, failedPath(cellKey) + ".spec", ec);
        if (ec)
            fs::remove(spec_tmp, ec);
        fs::remove(claimedPath(claim.key, claim.workerId), ec);
    } else {
        fs::rename(claimedPath(claim.key, claim.workerId),
                   failedPath(cellKey) + ".spec", ec);
        if (ec)
            fs::remove(claimedPath(claim.key, claim.workerId), ec);
    }
    fs::remove(leasePath(claim.key, claim.workerId), ec);
}

void
WorkQueue::requeue(const Claim &claim)
{
    std::error_code ec;
    fs::rename(claimedPath(claim.key, claim.workerId),
               pendingPath(claim.key), ec);
    if (!ec)
        ++counters_.requeues;
    fs::remove(leasePath(claim.key, claim.workerId), ec);
}

bool
WorkQueue::failedResult(const std::string &key, std::string &governor,
                        std::string &error,
                        double &hostSeconds) const
{
    std::string text;
    if (!readFile(failedPath(key), text))
        return false;
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != kFailureHeader)
        return false; // Treated as absent; the cell will re-run.
    governor.clear();
    error.clear();
    hostSeconds = 0.0;
    while (std::getline(is, line)) {
        if (line.rfind("governor = ", 0) == 0) {
            governor = line.substr(11);
        } else if (line.rfind("host_seconds = ", 0) == 0) {
            hostSeconds = std::strtod(line.c_str() + 15, nullptr);
        } else if (line.rfind("error = ", 0) == 0) {
            error = line.substr(8);
        }
    }
    return true;
}

void
WorkQueue::clearFailed(const std::string &key)
{
    std::error_code ec;
    fs::remove(failedPath(key), ec);
    fs::remove(failedPath(key) + ".spec", ec);
}

void
WorkQueue::discardResolved(const std::string &key)
{
    std::error_code ec;
    fs::remove(pendingPath(key), ec);
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "claimed", ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(key + ".", 0) != 0)
            continue;
        fs::remove(entry.path(), ec);
        fs::remove(fs::path(dir_) / "leases" / name, ec);
    }
}

std::set<std::string>
WorkQueue::inFlightKeys() const
{
    std::set<std::string> keys;
    std::error_code ec;
    for (const char *sub : {"pending", "claimed"}) {
        for (const auto &entry :
             fs::directory_iterator(fs::path(dir_) / sub, ec)) {
            const std::string name =
                entry.path().filename().string();
            if (name.size() >= kKeyLen &&
                isHexKey(name.substr(0, kKeyLen)))
                keys.insert(name.substr(0, kKeyLen));
        }
    }
    return keys;
}

fs::file_time_type
WorkQueue::probeNow() const
{
    // Rewritten in place, like a lease heartbeat: only the mtime
    // matters. One file per observer process so concurrent
    // inspectors never contend.
    const fs::path probe = fs::path(dir_) / "tmp" /
                           (".probe." + std::to_string(::getpid()));
    {
        // lint:allow raw-queue-write -- mtime-only probe under
        // tmp/; never read as data, only stat'ed for its clock
        std::ofstream os(probe, std::ios::binary | std::ios::trunc);
        if (os)
            os << "probe\n";
    }
    std::error_code ec;
    const auto mtime = fs::last_write_time(probe, ec);
    if (!ec)
        return mtime;
    return wallClock ? wallClock()
                     // lint:allow nondeterminism -- this IS the
                     // injectable wallClock seam's default
                     : fs::file_time_type::clock::now();
}

std::size_t
WorkQueue::reclaimStale(std::chrono::seconds timeout)
{
    std::error_code ec;
    std::size_t reclaimed = 0;

    // One probe touch serves the whole pass: every staleness test
    // compares two mtimes stamped by the filesystem serving the
    // queue, so machines with skewed wall clocks still agree on
    // which leases are dead.
    const fs::file_time_type ref = probeNow();
    const double limit =
        std::chrono::duration<double>(timeout).count();

    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "claimed", ec)) {
        const std::string name = entry.path().filename().string();
        std::string key, worker;
        if (!splitClaimName(name, key, worker)) {
            quarantine(entry.path().string(),
                       "not a <key>.<worker> claim");
            continue;
        }
        const fs::path lease = leasePath(key, worker);
        bool stale;
        if (!fs::exists(lease, ec)) {
            // tryClaim writes the lease before the claim rename, so
            // a claim without one means its worker died in between
            // (or a racing reclaimer already took the lease).
            stale = true;
        } else {
            std::error_code age_ec;
            stale = ageAgainst(ref, lease, age_ec) > limit &&
                    !age_ec;
        }
        if (!stale)
            continue;
        fs::rename(entry.path(), pendingPath(key), ec);
        if (ec)
            continue; // The worker released/failed it meanwhile.
        fs::remove(lease, ec);
        ++reclaimed;
        ++counters_.reclaims;
        note("reclaimed stale claim " + key + " from worker " +
             worker);
    }

    // Orphaned leases: crash between lease write and claim rename.
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "leases", ec)) {
        const std::string name = entry.path().filename().string();
        std::string key, worker;
        if (!splitClaimName(name, key, worker)) {
            fs::remove(entry.path(), ec);
            continue;
        }
        std::error_code age_ec;
        if (!fs::exists(claimedPath(key, worker), ec) &&
            ageAgainst(ref, entry.path(), age_ec) > limit &&
            !age_ec) {
            fs::remove(entry.path(), ec);
        }
    }
    return reclaimed;
}

QueueScan
WorkQueue::scan() const
{
    QueueScan s;
    std::error_code ec;
    for (const auto &entry [[maybe_unused]] :
         fs::directory_iterator(fs::path(dir_) / "pending", ec))
        ++s.pending;
    for (const auto &entry [[maybe_unused]] :
         fs::directory_iterator(fs::path(dir_) / "claimed", ec))
        ++s.claimed;
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "failed", ec)) {
        // Count failure markers only, not the retained .spec files
        // kept alongside them for retryFailed().
        if (isHexKey(entry.path().filename().string()))
            ++s.failed;
    }
    return s;
}

QueueStatus
WorkQueue::status() const
{
    QueueStatus s;
    std::error_code ec;
    const QueueScan counts = scan();
    s.pending = counts.pending;
    s.claimed = counts.claimed;
    s.failed = counts.failed;
    for (const auto &entry [[maybe_unused]] :
         fs::directory_iterator(fs::path(dir_) / "corrupt", ec))
        ++s.corrupt;

    const fs::file_time_type ref = probeNow();
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "leases", ec)) {
        const std::string name = entry.path().filename().string();
        if (onScanFile)
            onScanFile(name);
        std::string key, worker;
        if (!splitClaimName(name, key, worker))
            continue;
        // The lease may have been released between the listing and
        // this stat — a vanished file is normal churn on a live
        // queue, not corruption; skip it silently.
        std::error_code age_ec;
        const double age = ageAgainst(ref, entry.path(), age_ec);
        if (age_ec)
            continue;
        LeaseInfo info;
        info.key = key;
        info.workerId = worker;
        info.ageSeconds = age;
        s.leases.push_back(std::move(info));
    }
    std::sort(s.leases.begin(), s.leases.end(),
              [](const LeaseInfo &a, const LeaseInfo &b) {
                  return a.key != b.key ? a.key < b.key
                                        : a.workerId < b.workerId;
              });
    return s;
}

std::vector<CellInfo>
WorkQueue::listCells() const
{
    std::vector<CellInfo> cells;
    std::error_code ec;
    const fs::file_time_type ref = probeNow();

    // Decode a cell's display id from its serialized spec; strictly
    // read-only — listing a live queue must never quarantine (the
    // claim path owns that) or otherwise perturb the campaign.
    auto decodeId = [&](const std::string &path) -> std::string {
        std::string text;
        if (!readFile(path, text))
            return std::string(); // Vanished mid-scan: skip signal.
        try {
            if (text.rfind(kSliceHeader, 0) == 0) {
                SliceFrame frame;
                std::string reason;
                if (!parseSliceFrame(text, frame, reason))
                    return "(unparsable)";
                return exp::parseSpec(frame.specText).id +
                       " [slice " + std::to_string(frame.index) +
                       "]";
            }
            return exp::parseSpec(text).id;
        } catch (const std::exception &) {
            return "(unparsable)";
        }
    };

    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "pending", ec)) {
        const std::string name = entry.path().filename().string();
        if (onScanFile)
            onScanFile(name);
        if (name.size() != kKeyLen + 5 ||
            name.compare(kKeyLen, 5, ".spec") != 0 ||
            !isHexKey(name.substr(0, kKeyLen)))
            continue;
        const std::string id = decodeId(entry.path().string());
        if (id.empty())
            continue; // Claimed or discarded between ls and read.
        CellInfo cell;
        cell.state = "pending";
        cell.key = name.substr(0, kKeyLen);
        cell.specId = id;
        cells.push_back(std::move(cell));
    }

    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "claimed", ec)) {
        const std::string name = entry.path().filename().string();
        if (onScanFile)
            onScanFile(name);
        std::string key, worker;
        if (!splitClaimName(name, key, worker))
            continue;
        const std::string id = decodeId(entry.path().string());
        if (id.empty())
            continue;
        CellInfo cell;
        cell.state = "claimed";
        cell.key = key;
        cell.workerId = worker;
        cell.specId = id;
        std::error_code age_ec;
        const double age =
            ageAgainst(ref, leasePath(key, worker), age_ec);
        cell.leaseAgeSeconds = age_ec ? -1.0 : age;
        cells.push_back(std::move(cell));
    }

    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "failed", ec)) {
        const std::string name = entry.path().filename().string();
        if (onScanFile)
            onScanFile(name);
        if (!isHexKey(name))
            continue;
        CellInfo cell;
        cell.state = "failed";
        cell.key = name;
        std::string governor;
        double hostSeconds = 0.0;
        if (!failedResult(name, governor, cell.error, hostSeconds))
            continue; // Marker vanished (cleared) mid-scan.
        const std::string id =
            decodeId(entry.path().string() + ".spec");
        cell.specId = id.empty() ? "(spec not retained)" : id;
        cells.push_back(std::move(cell));
    }

    std::sort(cells.begin(), cells.end(),
              [](const CellInfo &a, const CellInfo &b) {
                  return a.state != b.state ? a.state < b.state
                                            : a.key < b.key;
              });
    return cells;
}

namespace {

/**
 * Value of a `"key": value` member in a metrics file (one member
 * per line; quotes stripped). False when absent.
 */
bool
metricsField(const std::string &text, const std::string &key,
             std::string &out)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    auto v = text.find_first_not_of(" \t", pos + needle.size());
    if (v == std::string::npos)
        return false;
    auto end = text.find_first_of(",\n}", v);
    if (end == std::string::npos)
        end = text.size();
    out = text.substr(v, end - v);
    if (out.size() >= 2 && out.front() == '"' && out.back() == '"')
        out = out.substr(1, out.size() - 2);
    return true;
}

} // anonymous namespace

void
WorkQueue::publishMetrics(const WorkerMetrics &m)
{
    std::string doc = "{\n";
    doc += "  \"worker\": \"" + m.workerId + "\",\n";
    doc += "  \"claimed\": " + std::to_string(m.claimed) + ",\n";
    doc +=
        "  \"simulated\": " + std::to_string(m.simulated) + ",\n";
    doc +=
        "  \"cacheHits\": " + std::to_string(m.cacheHits) + ",\n";
    doc += "  \"failures\": " + std::to_string(m.failures) + ",\n";
    doc += "  \"simSeconds\": " + exp::formatDouble(m.simSeconds) +
           ",\n";
    doc += "  \"wallSeconds\": " +
           exp::formatDouble(m.wallSeconds) + "\n";
    doc += "}\n";

    std::error_code ec;
    const std::string tmp = dir_ + "/tmp/" + m.workerId +
                            ".metrics." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSerial_++);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return; // Telemetry never fails a cell.
        os << doc;
        if (!os.flush()) {
            os.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, metricsPath(m.workerId), ec);
    if (ec)
        fs::remove(tmp, ec);
}

std::vector<WorkerMetrics>
WorkQueue::workerMetrics() const
{
    std::vector<WorkerMetrics> all;
    std::error_code ec;
    const fs::file_time_type ref = probeNow();
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "metrics", ec)) {
        const fs::path p = entry.path();
        if (p.extension() != ".json")
            continue;
        std::string text;
        if (!readFile(p.string(), text))
            continue; // Vanished mid-scan.
        WorkerMetrics m;
        std::string v;
        // Publishes are atomic renames, so a file without the
        // "worker" member is not torn — it is garbage; skip it.
        if (!metricsField(text, "worker", v))
            continue;
        // The file name is the identity (publishMetrics names it);
        // the embedded field is diagnostic.
        m.workerId = p.stem().string();
        if (metricsField(text, "claimed", v))
            m.claimed = std::strtoul(v.c_str(), nullptr, 10);
        if (metricsField(text, "simulated", v))
            m.simulated = std::strtoul(v.c_str(), nullptr, 10);
        if (metricsField(text, "cacheHits", v))
            m.cacheHits = std::strtoul(v.c_str(), nullptr, 10);
        if (metricsField(text, "failures", v))
            m.failures = std::strtoul(v.c_str(), nullptr, 10);
        if (metricsField(text, "simSeconds", v))
            m.simSeconds = std::strtod(v.c_str(), nullptr);
        if (metricsField(text, "wallSeconds", v))
            m.wallSeconds = std::strtod(v.c_str(), nullptr);
        std::error_code age_ec;
        m.ageSeconds = ageAgainst(ref, p, age_ec);
        if (age_ec)
            m.ageSeconds = 0.0;
        all.push_back(std::move(m));
    }
    std::sort(all.begin(), all.end(),
              [](const WorkerMetrics &a, const WorkerMetrics &b) {
                  return a.workerId < b.workerId;
              });
    return all;
}

std::size_t
WorkQueue::retryFailed()
{
    std::error_code ec;
    std::vector<std::string> keys;
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "failed", ec)) {
        const std::string name = entry.path().filename().string();
        if (isHexKey(name))
            keys.push_back(name);
    }

    std::size_t cleared = 0;
    for (const std::string &key : keys) {
        // Rename-first so a concurrent retry cannot double-count:
        // exactly one caller wins the spec file. A marker without a
        // retained spec is just cleared — the next dispatch holds
        // the spec and re-enqueues the cell.
        fs::rename(failedPath(key) + ".spec", pendingPath(key), ec);
        const bool requeued = !ec;
        fs::remove(failedPath(key), ec);
        ++cleared;
        note(requeued
                 ? "retry-failed: " + key + " back in pending"
                 : "retry-failed: cleared marker for " + key +
                       " (no retained spec; next dispatch "
                       "re-enqueues it)");
    }
    return cleared;
}

std::size_t
WorkQueue::purge()
{
    std::error_code ec;
    std::size_t removed = 0;
    for (const char *sub :
         {"pending", "claimed", "leases", "failed", "snaps",
          "corrupt", "tmp", "metrics"}) {
        for (const auto &entry :
             fs::directory_iterator(fs::path(dir_) / sub, ec)) {
            if (fs::remove(entry.path(), ec) && !ec)
                ++removed;
        }
    }
    note("purged " + std::to_string(removed) + " file(s)");
    return removed;
}

std::string
makeWorkerId()
{
    static std::atomic<std::size_t> serial{0};
    char host[256] = "host";
    if (::gethostname(host, sizeof(host) - 1) != 0)
        host[0] = '\0';
    host[sizeof(host) - 1] = '\0';
    std::string id(host[0] ? host : "host");
    for (char &c : id) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-';
        if (!ok)
            c = '-';
    }
    id += "-" + std::to_string(::getpid()) + "-" +
          std::to_string(
              serial.fetch_add(1, std::memory_order_relaxed));
    return id;
}

} // namespace dist
} // namespace sysscale
