#include "dist/dispatch.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "exp/spec_codec.hh"

namespace sysscale {
namespace dist {

DispatchOutcome
runDistributed(const std::vector<exp::ExperimentSpec> &specs,
               const std::string &queueDir, exp::ResultCache &cache,
               const DispatchOptions &opts)
{
    WorkQueue queue(queueDir);
    queue.onEvent = opts.onEvent;
    auto log = [&](const std::string &line) {
        if (opts.onEvent)
            opts.onEvent(line);
    };

    DispatchOutcome out;
    out.results.resize(specs.size());

    // Reorder buffer for onResult streaming: rows resolve in
    // whatever order workers finish them, but the callback sees
    // them in spec order — emit the longest resolved prefix each
    // time it grows.
    std::vector<char> resolved(specs.size(), 0);
    std::size_t streamed = 0;
    auto streamReady = [&] {
        while (streamed < specs.size() && resolved[streamed]) {
            if (opts.onResult)
                opts.onResult(streamed, out.results[streamed]);
            ++streamed;
        }
    };

    // Index the grid by content key: duplicate cells (differing only
    // in id/labels) share one queue entry and one simulation but
    // still fill one result row each.
    std::map<std::string, std::vector<std::size_t>> byKey;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!WorkQueue::queueable(specs[i])) {
            throw std::invalid_argument(
                "runDistributed: cell \"" + specs[i].id +
                "\" carries runtime hooks and cannot be "
                "distributed");
        }
        byKey[exp::specKey(specs[i])].push_back(i);
    }

    // Phase 1: resolve what the shared cache already has; enqueue
    // the rest. Stale failure markers from a previous campaign are
    // cleared first — like the single-process runner, every dispatch
    // retries previously failed cells. The counters delta separates
    // real writes from cells another campaign already queued.
    // A cell rides the queue sliced when slicing is on and the cell
    // is longer than one slice (a one-slice chain would only add
    // snapshot overhead for nothing).
    auto sliced = [&](const exp::ExperimentSpec &spec) {
        return opts.sliceTicks > 0 &&
               WorkQueue::sliceCount(spec, opts.sliceTicks) > 1;
    };

    // First queue entry of a lost sliced cell: resume right after
    // the last published chain snapshot rather than from slice 0 —
    // a crashed chain re-pays at most one slice, never the prefix.
    auto enqueueChain = [&](const exp::ExperimentSpec &spec) {
        const std::uint64_t n =
            WorkQueue::sliceCount(spec, opts.sliceTicks);
        const std::string base = exp::specKey(spec);
        std::uint64_t resume = 0;
        for (std::uint64_t i = n - 1; i > 0; --i) {
            std::error_code ec;
            if (std::filesystem::exists(
                    queue.snapshotPath(base,
                                       i * opts.sliceTicks),
                    ec)) {
                resume = i;
                break;
            }
        }
        queue.enqueueSlice(spec, opts.sliceTicks, resume);
    };

    // Sweep a resolved cell's queue leftovers — including, for a
    // sliced cell, any entry of its chain.
    auto discardCell = [&](const std::string &key,
                           const exp::ExperimentSpec &spec) {
        queue.discardResolved(key);
        if (sliced(spec)) {
            const std::uint64_t n =
                WorkQueue::sliceCount(spec, opts.sliceTicks);
            for (std::uint64_t i = 0; i < n; ++i) {
                queue.discardResolved(WorkQueue::sliceKeyFor(
                    key, opts.sliceTicks, i));
            }
        }
    };

    std::vector<std::string> unresolved;
    for (auto &kv : byKey) {
        const std::size_t first = kv.second.front();
        if (cache.lookup(specs[first], out.results[first])) {
            for (std::size_t j = 1; j < kv.second.size(); ++j) {
                cache.lookup(specs[kv.second[j]],
                             out.results[kv.second[j]]);
            }
            for (const std::size_t i : kv.second)
                resolved[i] = 1;
            out.alreadyCached += kv.second.size();
            // A worker that died between publishing and releasing
            // (this campaign or a previous one) leaves its claim
            // behind; sweep it so the queue cannot accrete garbage.
            discardCell(kv.first, specs[first]);
            continue;
        }
        queue.clearFailed(kv.first);
        const std::size_t before = queue.counters().enqueued;
        if (sliced(specs[first]))
            enqueueChain(specs[first]);
        else
            queue.enqueue(specs[first]);
        out.enqueued += queue.counters().enqueued - before;
        unresolved.push_back(kv.first);
    }
    log("enqueued " + std::to_string(out.enqueued) + " cell(s) (" +
        std::to_string(out.alreadyCached) +
        " already cached) on queue " + queue.dir());
    streamReady();

    // Phase 2: local workers, if requested — the same loop the
    // sweep_worker daemon runs, one thread each. They serve (not
    // drain): a drain worker could observe the queue momentarily
    // empty while the dispatcher is re-enqueueing a corrupt-
    // recovered cell and exit with work left, so the dispatcher
    // stops them explicitly once every cell has resolved.
    std::atomic<bool> stopWorkers{false};
    std::vector<std::thread> workers;
    std::vector<WorkerStats> workerStats(opts.spawnWorkers);
    for (std::size_t w = 0; w < opts.spawnWorkers; ++w) {
        workers.emplace_back([&, w] {
            // A throw escaping a std::thread is terminate(): treat
            // a dying local worker like a dying remote one — report
            // and let lease reclamation reroute its cells.
            try {
                WorkerOptions wo;
                wo.poll = opts.poll;
                wo.heartbeat = opts.heartbeat;
                wo.leaseTimeout = opts.leaseTimeout;
                wo.onEvent = opts.onEvent;
                wo.shouldStop = [&] {
                    return stopWorkers.load(
                        std::memory_order_relaxed);
                };
                workerStats[w] = runWorker(queueDir, cache, wo);
            } catch (const std::exception &e) {
                if (opts.onEvent)
                    opts.onEvent(std::string("local worker died: ") +
                                 e.what());
            }
        });
    }
    auto joinWorkers = [&] {
        stopWorkers.store(true, std::memory_order_relaxed);
        for (auto &t : workers)
            t.join();
    };

    // Phase 3: watch until every key resolves. The cache entry is
    // the completion marker; failed/ markers resolve error rows; a
    // key missing everywhere was quarantined as corrupt and is
    // re-enqueued from our own spec. The whole watch runs under one
    // try so the spawned workers are always joined before an error
    // propagates (a joinable std::thread destructor is terminate()).
    try {
        // lint:allow nondeterminism -- host-side stall clock for the
        // watch loop; never feeds a simulated quantity
        auto lastProgress = std::chrono::steady_clock::now();
        while (!unresolved.empty()) {
            // One listing of pending/ + claimed/ per poll serves
            // every key's in-flight check, instead of a directory
            // scan per unresolved cell.
            const std::set<std::string> onQueue =
                queue.inFlightKeys();

            bool progressed = false;
            for (std::size_t u = 0; u < unresolved.size();) {
                const std::string key = unresolved[u];
                const auto &indices = byKey[key];
                const std::size_t first = indices.front();

                if (cache.lookup(specs[first],
                                 out.results[first])) {
                    for (std::size_t j = 1; j < indices.size();
                         ++j) {
                        cache.lookup(specs[indices[j]],
                                     out.results[indices[j]]);
                    }
                    for (const std::size_t i : indices)
                        resolved[i] = 1;
                    // Sweep any queue leftovers of the resolved
                    // cell — a re-enqueue race's pending file, or
                    // the claim of a worker that died between
                    // publishing and releasing — so a finished
                    // sweep leaves an empty queue.
                    discardCell(key, specs[first]);
                    unresolved[u] = unresolved.back();
                    unresolved.pop_back();
                    progressed = true;
                    continue;
                }

                std::string governor, error;
                double hostSeconds = 0.0;
                if (queue.failedResult(key, governor, error,
                                       hostSeconds)) {
                    for (const std::size_t i : indices) {
                        exp::RunResult &res = out.results[i];
                        res.id = specs[i].id;
                        res.governor = governor;
                        res.workload = specs[i].workload.name();
                        res.labels = specs[i].labels;
                        res.ok = false;
                        res.error = error;
                        res.hostSeconds = hostSeconds;
                        ++out.failedCells;
                        resolved[i] = 1;
                    }
                    unresolved[u] = unresolved.back();
                    unresolved.pop_back();
                    progressed = true;
                    continue;
                }

                // Neither finished nor in flight? The queue file
                // was quarantined (corrupt) or lost — re-enqueue
                // from the spec we hold. enqueue() itself re-checks
                // pending/claimed/failed, so a cell that moved
                // between the listing and here is skipped, not
                // duplicated. A sliced cell is in flight if *any*
                // entry of its chain is; losing the chain costs at
                // most one slice — the resume scan picks up right
                // after the last published snapshot.
                bool inFlight = onQueue.count(key) > 0;
                if (!inFlight && sliced(specs[first])) {
                    const std::uint64_t n = WorkQueue::sliceCount(
                        specs[first], opts.sliceTicks);
                    for (std::uint64_t i = 0; i < n && !inFlight;
                         ++i) {
                        inFlight =
                            onQueue.count(WorkQueue::sliceKeyFor(
                                key, opts.sliceTicks, i)) > 0;
                    }
                }
                if (!inFlight) {
                    const std::size_t before =
                        queue.counters().enqueued;
                    if (sliced(specs[first]))
                        enqueueChain(specs[first]);
                    else
                        queue.enqueue(specs[first]);
                    if (queue.counters().enqueued != before) {
                        ++out.reenqueued;
                        log("re-enqueued " + key +
                            " (queue entry was lost or "
                            "quarantined)");
                    }
                }
                ++u;
            }
            if (progressed)
                streamReady();
            if (unresolved.empty())
                break;

            queue.reclaimStale(opts.leaseTimeout);

            // lint:allow nondeterminism -- host-side stall clock
            const auto now = std::chrono::steady_clock::now();
            if (progressed) {
                lastProgress = now;
                std::size_t left = 0;
                for (const auto &k : unresolved)
                    left += byKey[k].size();
                log(std::to_string(specs.size() - left) + "/" +
                    std::to_string(specs.size()) +
                    " cells resolved");
            } else if (opts.stallTimeout.count() > 0 &&
                       now - lastProgress > opts.stallTimeout) {
                throw std::runtime_error(
                    "runDistributed: no cell completed within the "
                    "stall timeout — are any workers serving queue "
                    "\"" +
                    queue.dir() + "\"?");
            }
            std::this_thread::sleep_for(opts.poll);
        }
    } catch (...) {
        joinWorkers();
        throw;
    }

    joinWorkers();
    for (const WorkerStats &ws : workerStats) {
        out.localWork.claimed += ws.claimed;
        out.localWork.simulated += ws.simulated;
        out.localWork.cacheHits += ws.cacheHits;
        out.localWork.failures += ws.failures;
        out.localWork.reclaims += ws.reclaims;
    }
    return out;
}

} // namespace dist
} // namespace sysscale
