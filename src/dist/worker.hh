/**
 * @file
 * The sweep worker loop: claim → cache check → simulate → publish.
 *
 * runWorker() drains (or serves, in daemon mode) a WorkQueue
 * directory: it claims pending cells one at a time, consults the
 * shared exp::ResultCache immediately after each claim (a cell
 * another worker already completed is *never* re-simulated), runs
 * the cell through exp::runCell() — the same execution path as the
 * in-process ExperimentRunner — while a background thread refreshes
 * the claim's lease, and publishes the result: ok rows into the
 * cache (the completion marker the dispatcher watches), error rows
 * into the queue's failed/ directory.
 *
 * WorkerOptions::capacity > 1 turns one runWorker() call into an
 * internal pool: N copies of the same loop on N threads, each
 * holding and heartbeating its own leased cell, so a big machine
 * claims proportionally more of the campaign than a laptop sharing
 * the queue (capacity-weighted claims).
 *
 * The loop also performs lease reclamation between cells, so a fleet
 * of workers collectively recovers cells whose worker died — no
 * dispatcher involvement needed.
 *
 * tools/sweep_worker.cc is the CLI daemon around this function;
 * sweep_grid --distributed --spawn-workers N runs it on local
 * threads. Both share every line of the loop.
 */

#ifndef SYSSCALE_DIST_WORKER_HH
#define SYSSCALE_DIST_WORKER_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

#include "dist/work_queue.hh"
#include "exp/cache.hh"

namespace sysscale {
namespace dist {

struct WorkerOptions
{
    /** Claim/lease identity; empty = makeWorkerId(). */
    std::string workerId;

    /**
     * Exit once the queue is fully drained (no pending and no
     * claimed cells). Without it the worker idles and keeps serving
     * — the multi-machine daemon mode.
     */
    bool drain = false;

    /** Idle sleep between empty claim scans. */
    std::chrono::milliseconds poll{500};

    /** Lease refresh period while simulating a cell. */
    std::chrono::milliseconds heartbeat{1000};

    /**
     * Lease age past which another worker's claim counts as dead.
     * Must comfortably exceed @ref heartbeat (a reclaimed live claim
     * costs a duplicate — deterministic — simulation, never a wrong
     * result).
     */
    std::chrono::seconds leaseTimeout{30};

    /** Stop after completing this many cells (0 = unlimited). */
    std::size_t maxCells = 0;

    /**
     * Concurrent cells this worker holds — the capacity weight of
     * the machine. N > 1 runs N claim → simulate loops on an
     * internal thread pool, each leasing (and heartbeating) its own
     * cell under the sub-identity "<workerId>-pK", so one daemon on
     * a 32-core box can drain like 32 capacity-1 workers while
     * @ref maxCells, @ref drain, and @ref shouldStop apply to the
     * pool as a whole (maxCells is an exact shared budget, never
     * overshot).
     */
    std::size_t capacity = 1;

    /** Cooperative stop; checked between cells. May be null. */
    std::function<bool()> shouldStop;

    /** Progress/event log lines (not serialized). May be null. */
    std::function<void(const std::string &)> onEvent;
};

struct WorkerStats
{
    std::size_t claimed = 0;   //!< Cells claimed.
    std::size_t simulated = 0; //!< Cells actually run through runCell.
    std::size_t cacheHits = 0; //!< Claims already completed elsewhere.
    std::size_t failures = 0;  //!< Error rows published.
    std::size_t reclaims = 0;  //!< Stale claims recovered for others.
};

/**
 * Run the worker loop against the queue at @p queueDir, publishing
 * through @p cache (which both must be the directories shared by the
 * dispatcher and every other worker). Returns when the queue drains
 * (drain mode), maxCells is reached, or shouldStop() says so. Throws
 * std::runtime_error only for setup failures (unusable queue
 * directory); per-cell failures become failed/ entries.
 */
WorkerStats runWorker(const std::string &queueDir,
                      exp::ResultCache &cache,
                      const WorkerOptions &opts = {});

} // namespace dist
} // namespace sysscale

#endif // SYSSCALE_DIST_WORKER_HH
