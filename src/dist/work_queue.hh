/**
 * @file
 * Filesystem work-stealing queue for distributed sweeps.
 *
 * One grid fans out across machines through a shared directory (NFS
 * or any POSIX filesystem with atomic rename — no locks, no server):
 *
 *     <queue>/pending/<key>.spec        cells waiting for a worker
 *     <queue>/claimed/<key>.<worker>    cells being simulated
 *     <queue>/leases/<key>.<worker>     heartbeat files (mtime = alive)
 *     <queue>/failed/<key>              published error rows
 *     <queue>/failed/<key>.spec         retained specs (retry-failed)
 *     <queue>/snaps/<key>.t<tick>.snap  checkpoint-chain snapshots
 *     <queue>/corrupt/                  quarantined unreadable files
 *     <queue>/tmp/                      staging for atomic writes
 *                                       + the lease-staleness probe
 *
 * A pending cell is its serialized exp::ExperimentSpec (format
 * docs/EXPERIMENTS.md), named by its content key (exp::specKey), so
 * the queue inherits the cache's identity rules: duplicate cells
 * collapse to one file and renaming/relabeling never re-enqueues.
 *
 * Claiming is one atomic rename(pending -> claimed): exactly one
 * worker wins a cell, with no coordination beyond the filesystem.
 * While simulating, the winner refreshes its lease file; a claim
 * whose lease goes stale (crashed or partitioned worker) is renamed
 * back into pending/ by whoever notices first, so no cell is ever
 * lost. Results are published through the shared exp::ResultCache —
 * the cache entry *is* the completion marker — and workers check the
 * cache immediately after claiming, so a reclaimed cell whose
 * original worker actually finished is never simulated twice.
 *
 * Corrupt or truncated files never produce a claim (and therefore
 * never a wrong result): they are moved into corrupt/ and reported
 * loudly; the dispatcher re-enqueues the cell from its own spec.
 */

#ifndef SYSSCALE_DIST_WORK_QUEUE_HH
#define SYSSCALE_DIST_WORK_QUEUE_HH

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace sysscale {
namespace dist {

/**
 * One claimed queue entry, owned by a worker until release/fail/
 * requeue: either a whole cell or one time-slice of a cell's
 * checkpoint chain (see @ref WorkQueue::enqueueSlice).
 */
struct Claim
{
    std::string key;      //!< File key: specKey, or sliceKeyFor().
    std::string workerId; //!< Worker holding the claim.
    exp::ExperimentSpec spec;

    /** @name Slice claims only. @{ */

    /** Entry is one slice of a checkpoint chain, not a whole cell. */
    bool isSlice = false;

    std::string baseKey;   //!< exp::specKey of the sliced cell.
    Tick step = 0;         //!< Chain slicing period (ticks).
    std::uint64_t index = 0; //!< Slice number, 0-based.
    Tick t0 = 0;           //!< Slice start = index * step.
    Tick t1 = 0;           //!< Slice end = min(t0 + step, total).
    Tick total = 0;        //!< Cell length (warmup + window).
    /** @} */
};

/** Directory occupancy from one scan (point-in-time, racy by design). */
struct QueueScan
{
    std::size_t pending = 0;
    std::size_t claimed = 0;
    std::size_t failed = 0;

    /** No cell waiting or in flight (failed cells are finished). */
    bool drained() const { return pending == 0 && claimed == 0; }
};

/**
 * One live lease, aged against the queue filesystem's own clock (a
 * probe file touched next to the leases — see @ref
 * WorkQueue::status), so the age is meaningful even when observer
 * and worker clocks disagree.
 */
struct LeaseInfo
{
    std::string key;      //!< Cell the lease covers.
    std::string workerId; //!< Worker refreshing it.
    double ageSeconds = 0.0; //!< Probe mtime minus lease mtime.
};

/**
 * One cell visible on the queue, with its spec decoded for display
 * (read-only: inspection never quarantines, claims, or reclaims).
 */
struct CellInfo
{
    /** "pending", "claimed", or "failed". */
    std::string state;
    std::string key;
    std::string workerId; //!< Claimed cells only.

    /**
     * Cell id decoded from the serialized spec via the spec codec;
     * "(unparsable)" when the file does not decode (the claim path
     * will quarantine it — inspection only reports).
     */
    std::string specId;

    /** Failed cells only: the published error text. */
    std::string error;

    /** Claimed cells only; negative when the lease is missing. */
    double leaseAgeSeconds = -1.0;
};

/** Point-in-time queue health, assembled by @ref WorkQueue::status. */
struct QueueStatus
{
    std::size_t pending = 0;
    std::size_t claimed = 0;
    std::size_t failed = 0;
    std::size_t corrupt = 0; //!< Files quarantined under corrupt/.

    /** Every live lease, sorted by key then worker. */
    std::vector<LeaseInfo> leases;
};

/**
 * One worker's self-published campaign telemetry. Workers rewrite
 * their own metrics file (metrics/<workerId>.json, atomic staged
 * rename) after every completed cell; observers read the whole
 * directory back with @ref WorkQueue::workerMetrics. Ages are
 * measured against the queue filesystem's probe clock, like lease
 * ages, so "last heartbeat" is meaningful across skewed machines.
 */
struct WorkerMetrics
{
    std::string workerId;
    std::size_t claimed = 0;   //!< Cells claimed so far.
    std::size_t simulated = 0; //!< Cells actually simulated.
    std::size_t cacheHits = 0; //!< Claims already completed elsewhere.
    std::size_t failures = 0;  //!< Error rows published.

    /** Simulated (model) seconds completed, summed over cells. */
    double simSeconds = 0.0;

    /** Host wall seconds those simulations took (hostSeconds sum). */
    double wallSeconds = 0.0;

    /**
     * Readers only: probe mtime minus metrics-file mtime — how long
     * since this worker last finished a cell. Ignored on publish.
     */
    double ageSeconds = 0.0;
};

/** Monotonic per-instance counters. */
struct QueueCounters
{
    std::size_t enqueued = 0;  //!< Cells newly written to pending/.
    std::size_t skipped = 0;   //!< Enqueues already present somewhere.
    std::size_t claims = 0;    //!< Successful tryClaim calls.
    std::size_t releases = 0;  //!< Claims completed.
    std::size_t failures = 0;  //!< Error rows published.
    std::size_t requeues = 0;  //!< Claims returned via requeue().
    std::size_t reclaims = 0;  //!< Stale claims recovered.
    std::size_t corrupt = 0;   //!< Files quarantined to corrupt/.
};

class WorkQueue
{
  public:
    /**
     * @param dir Queue root; the subdirectory tree is created
     *        (recursively) if absent. Throws std::runtime_error when
     *        it cannot be created.
     */
    explicit WorkQueue(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Whether @p spec can ride the queue (= content-addressable). */
    static bool queueable(const exp::ExperimentSpec &spec);

    /**
     * Put @p spec into pending/ (atomic write) and return its key.
     * A cell already pending, claimed, or failed is skipped (its key
     * is still returned). Throws std::invalid_argument for specs
     * carrying runtime hooks (governorFactory/borrowedPolicy), which
     * cannot be serialized.
     */
    std::string enqueue(const exp::ExperimentSpec &spec);

    /**
     * @name Checkpoint-chained slices.
     *
     * A cell longer than a dispatcher's --slice-s rides the queue as
     * a *chain* of slice entries instead of one monolithic cell:
     * slice i simulates [i*step, min((i+1)*step, total)] of the
     * cell's warmup+window timeline via exp::runCellSlice, restoring
     * the chain's snapshot at t0 and publishing one at t1 under
     * snaps/ (tmp+rename, so observers never read a torn snapshot).
     * Only slice i is on the queue at a time; the worker that
     * completes it enqueues slice i+1 before releasing, and the
     * published snapshot doubles as the slice's completion marker —
     * a reclaimed slice whose snapshot already exists is never
     * simulated twice. A missing or corrupt chain snapshot degrades
     * to a cache miss inside runCellSlice (re-simulate from tick 0),
     * so a damaged chain heals itself instead of wedging; the final
     * slice publishes the cell's RunResult through the shared cache
     * exactly like an unsliced cell, byte-identical to the unsliced
     * run (tests/test_snapshot.cc pins the equivalence, test_dist.cc
     * the queue protocol).
     * @{
     */

    /**
     * File key of slice @p index of the cell with content key
     * @p baseKey under slicing period @p step: 16 hex digits,
     * deterministic across processes (the whole fleet derives the
     * same chain from the same spec).
     */
    static std::string sliceKeyFor(const std::string &baseKey,
                                   Tick step, std::uint64_t index);

    /** Slices in @p spec's chain under period @p step (>= 1). */
    static std::uint64_t sliceCount(const exp::ExperimentSpec &spec,
                                    Tick step);

    /**
     * Put slice @p index of @p spec's chain into pending/ and return
     * its slice key. Idempotent like enqueue(): an entry already
     * pending or claimed — or a cell already failed — is skipped.
     * Throws std::invalid_argument for unserializable specs, a zero
     * @p step, or an index at or past the end of the chain.
     */
    std::string enqueueSlice(const exp::ExperimentSpec &spec,
                             Tick step, std::uint64_t index);

    /**
     * Path of the chain snapshot published at tick @p t of cell
     * @p baseKey (snaps/<baseKey>.t<t>.snap). Existence = the slice
     * ending at @p t completed; validity is re-checked on read.
     */
    std::string snapshotPath(const std::string &baseKey,
                             Tick t) const;
    /** @} */

    /**
     * Claim any pending cell for @p workerId: the lease file is
     * written first, then the cell is renamed into claimed/ — an
     * atomic operation only one contender can win. On success fills
     * @p out and returns true; returns false when nothing claimable
     * remains. Unparsable or key-mismatched files are quarantined
     * (never claimed, never a wrong result) and the scan continues.
     */
    bool tryClaim(const std::string &workerId, Claim &out);

    /** Refresh @p claim's lease (call periodically while simulating). */
    void heartbeat(const Claim &claim);

    /**
     * Drop a finished claim (the result has been published through
     * the shared cache). Idempotent; a concurrently reclaimed claim
     * releases as a no-op.
     */
    void release(const Claim &claim);

    /**
     * Publish an error row for @p claim into failed/ and drop the
     * claim. Failed cells count as finished: they are not retried
     * until a dispatcher explicitly clears them (error rows are
     * never cached, matching the single-process runner). The cell's
     * serialized spec is kept alongside the marker (failed/<key>.spec)
     * so @ref retryFailed can put the cell back on the queue without
     * a dispatcher.
     */
    void fail(const Claim &claim, const exp::RunResult &res);

    /** Return an unfinished claim to pending/ (graceful shutdown). */
    void requeue(const Claim &claim);

    /**
     * Read the error row published for @p key, if any. Fills
     * @p governor / @p error / @p hostSeconds and returns true when
     * a failure marker exists.
     */
    bool failedResult(const std::string &key, std::string &governor,
                      std::string &error, double &hostSeconds) const;

    /** Remove the failure marker of @p key (fresh dispatch attempt). */
    void clearFailed(const std::string &key);

    /**
     * Drop every queue file of a cell that has resolved through the
     * cache: its pending file (re-enqueue race leftovers) and any
     * claim + lease a worker that died between publishing and
     * releasing left behind. Always safe once the result is cached
     * — a live claim holder's store and release are both
     * idempotent. Dispatcher cleanup so a finished sweep leaves an
     * empty queue.
     */
    void discardResolved(const std::string &key);

    /**
     * Keys currently in pending/ or claimed/ — one directory
     * listing, for the dispatcher's in-flight check.
     */
    std::set<std::string> inFlightKeys() const;

    /**
     * Recover cells whose worker died: every claim whose lease file
     * is missing or older than @p timeout is renamed back into
     * pending/, and orphaned lease files (crash between lease write
     * and claim rename) older than @p timeout are removed. Safe to
     * call from any process at any time; rename arbitrates races.
     * Returns the number of claims reclaimed.
     *
     * @p timeout must comfortably exceed the heartbeat interval: a
     * live-but-slow worker whose claim is reclaimed causes a
     * duplicate (deterministic, so still correct) simulation, never
     * a wrong or lost result.
     */
    std::size_t reclaimStale(std::chrono::seconds timeout);

    /** Count the queue directories (racy snapshot). */
    QueueScan scan() const;

    /** @name Read-only inspection (sweep_queue, dashboards). @{ */

    /**
     * Occupancy counts plus every live lease's age. Ages are
     * measured against a probe file touched in tmp/ — the queue
     * filesystem's own clock — so they are exact across machines
     * with skewed wall clocks. Tolerates concurrent mutation: a
     * file that vanishes between the directory listing and its
     * stat (claimed, released, reclaimed meanwhile) is skipped,
     * never misreported as corrupt.
     */
    QueueStatus status() const;

    /**
     * Every cell on the queue (pending, claimed, failed) with its
     * spec id decoded via the spec codec, sorted by state then key.
     * Strictly read-only: an unparsable file is reported as
     * "(unparsable)" but never quarantined, and vanishing files are
     * skipped — safe to run against a live campaign.
     */
    std::vector<CellInfo> listCells() const;

    /** @} */

    /** @name Worker telemetry (campaign dashboards). @{ */

    /**
     * Publish @p m as this worker's metrics file
     * (metrics/<m.workerId>.json), staged under tmp/ and atomically
     * renamed so observers never read a torn write. Best-effort: a
     * publish that cannot complete is dropped silently (telemetry
     * must never fail a cell).
     */
    void publishMetrics(const WorkerMetrics &m);

    /**
     * Read back every published worker metrics file, sorted by
     * worker id, with @ref WorkerMetrics::ageSeconds filled from the
     * probe clock. Unreadable or torn files are skipped.
     */
    std::vector<WorkerMetrics> workerMetrics() const;

    /** @} */

    /**
     * Put every failed cell back on the queue: its retained spec
     * (failed/<key>.spec) is renamed into pending/ and the failure
     * marker removed. Markers without a retained spec (failures
     * published by older builds) are cleared so the next dispatch
     * re-enqueues them. Returns the number of markers cleared.
     */
    std::size_t retryFailed();

    /**
     * Remove every file in the queue (pending, claimed, leases,
     * failed, corrupt, tmp) — a destructive reset for abandoned
     * campaigns. Returns the number of files removed.
     */
    std::size_t purge();

    const QueueCounters &counters() const { return counters_; }

    /**
     * Loud-degradation hook: corrupt quarantines and stale reclaims
     * are reported here (and are visible in @ref counters either
     * way). Not serialized; set before sharing across threads.
     */
    std::function<void(const std::string &)> onEvent;

    /**
     * Test-only race injection: called with each file name during
     * status()/listCells() after the directory listing and before
     * the file is stat'ed or read — lets tests delete a file at
     * exactly that point to pin vanish tolerance. Null in
     * production.
     */
    std::function<void(const std::string &)> onScanFile;

    /**
     * Fallback "now" used only when the staleness probe file cannot
     * be written (read-only queue filesystem). Defaults to the
     * observer's wall clock; injectable so tests can pin that a
     * skewed observer clock never changes staleness decisions —
     * lease ages come from the probe, not from here.
     */
    std::function<std::filesystem::file_time_type()> wallClock;

    /** @name Path helpers (tests and tools). @{ */
    std::string pendingPath(const std::string &key) const;
    std::string claimedPath(const std::string &key,
                            const std::string &workerId) const;
    std::string leasePath(const std::string &key,
                          const std::string &workerId) const;
    std::string failedPath(const std::string &key) const;
    std::string metricsPath(const std::string &workerId) const;
    /** @} */

  private:
    void note(const std::string &event);
    bool quarantine(const std::string &path,
                    const std::string &reason);
    void heartbeatPath(const std::string &lease,
                       const std::string &workerId);

    /**
     * The queue filesystem's own "now": touch a probe file under
     * tmp/ and read its mtime back, so staleness decisions compare
     * two timestamps stamped by the same clock — the filesystem
     * serving the queue — regardless of any machine's wall clock.
     * Falls back to @ref wallClock when the probe cannot be
     * written.
     */
    std::filesystem::file_time_type probeNow() const;

    std::string dir_;
    QueueCounters counters_;
    std::size_t tmpSerial_ = 0;
};

/**
 * A process-unique worker identity: "<host>-<pid>-<serial>",
 * sanitized to filename-safe characters (claim and lease file names
 * embed it after the 16-hex-digit cell key).
 */
std::string makeWorkerId();

} // namespace dist
} // namespace sysscale

#endif // SYSSCALE_DIST_WORK_QUEUE_HH
