/**
 * @file
 * Distributed grid dispatch: enqueue, watch, assemble.
 *
 * runDistributed() is the fan-out counterpart of
 * exp::ExperimentRunner::run(): it takes the same spec vector and
 * returns the same result vector in the same spec order — but the
 * cells are simulated by whatever sweep workers (local threads
 * spawned here, sweep_worker daemons on this machine, or daemons on
 * other machines sharing the queue and cache directories) drain the
 * queue.
 *
 * The protocol is deliberately thin:
 *
 *  1. Cells already in the shared cache are *not* enqueued — a
 *     distributed sweep resumes exactly like a local one.
 *  2. The rest are enqueued by content key (duplicate cells collapse
 *     onto one queue entry; each still gets its own result row).
 *  3. The dispatcher polls: a cache entry resolves a cell, a failed/
 *     marker resolves it as an error row, and a cell that vanished
 *     entirely (its queue file was quarantined as corrupt) is
 *     re-enqueued from the dispatcher's own spec — loud, lossless,
 *     and never a wrong result. Stale leases are reclaimed while
 *     waiting, so a dead worker cannot stall the sweep.
 *  4. Assembly reads every row back from the cache in spec order,
 *     which makes the output *byte-identical* to a single-process
 *     ExperimentRunner run of the same grid over the same cache.
 *  5. Optionally, resolved rows stream out mid-campaign through
 *     DispatchOptions::onResult — in spec order via a reorder
 *     buffer, so an incrementally written CSV ends up
 *     byte-identical to one written from the assembled vector.
 */

#ifndef SYSSCALE_DIST_DISPATCH_HH
#define SYSSCALE_DIST_DISPATCH_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "dist/worker.hh"
#include "exp/cache.hh"
#include "exp/experiment.hh"

namespace sysscale {
namespace dist {

struct DispatchOptions
{
    /**
     * Local worker threads to spawn for the duration of the
     * dispatch (each runs the exact runWorker() loop in drain mode).
     * 0 = rely entirely on external sweep_worker processes.
     */
    std::size_t spawnWorkers = 0;

    /** Poll period of the completion watch. */
    std::chrono::milliseconds poll{500};

    /** Forwarded to the spawned workers and the watch loop. */
    std::chrono::milliseconds heartbeat{1000};
    std::chrono::seconds leaseTimeout{30};

    /**
     * Give up after this long without a single cell completing
     * (0 = wait forever). Guards CI against a queue nobody serves;
     * expiry throws std::runtime_error.
     */
    std::chrono::seconds stallTimeout{0};

    /**
     * Checkpoint-chain slicing period in simulated ticks (0 = off,
     * the sweep_grid --slice-s flag). Cells longer than this are
     * dispatched as a chain of WorkQueue::enqueueSlice entries —
     * each slice a separate claim, leased and crash-recovered on its
     * own, handing its state to the next through a snapshot under
     * the queue's snaps/ directory — so one enormous cell spreads
     * its latency across the fleet's failure domain instead of
     * pinning one worker for hours. Assembly is unchanged and
     * byte-identical to unsliced dispatch: the final slice publishes
     * the cell's RunResult through the shared cache like any other
     * cell.
     */
    Tick sliceTicks = 0;

    /** Progress/event log lines. May be null. */
    std::function<void(const std::string &)> onEvent;

    /**
     * Mid-campaign result streaming: called once per input spec,
     * **in spec order**, as soon as the row and every row before it
     * have resolved (a reorder buffer holds rows that finish out of
     * order). Feeding these rows to a CSV writer therefore yields a
     * file byte-identical to writing the assembled result vector at
     * the end — just incrementally. Called from the dispatcher
     * thread only. May be null.
     */
    std::function<void(std::size_t index, const exp::RunResult &)>
        onResult;
};

struct DispatchOutcome
{
    /** One row per input spec, in spec order. */
    std::vector<exp::RunResult> results;

    std::size_t enqueued = 0;      //!< Cells put on the queue.
    std::size_t alreadyCached = 0; //!< Cells resolved before enqueue.
    std::size_t reenqueued = 0;    //!< Corrupt-recovery re-enqueues.
    std::size_t failedCells = 0;   //!< Error rows assembled.

    /** Work done by the locally spawned workers (summed). */
    WorkerStats localWork;
};

/**
 * Fan @p specs out through the queue at @p queueDir and assemble the
 * results from @p cache. Blocks until every cell is resolved. Throws
 * std::invalid_argument when a spec cannot be serialized (runtime
 * hooks) and std::runtime_error on an expired stallTimeout.
 */
DispatchOutcome runDistributed(
    const std::vector<exp::ExperimentSpec> &specs,
    const std::string &queueDir, exp::ResultCache &cache,
    const DispatchOptions &opts = {});

} // namespace dist
} // namespace sysscale

#endif // SYSSCALE_DIST_DISPATCH_HH
