#include "obs/trace.hh"

#include <cstdio>
#include <cstring>

#include "sim/snapshot.hh"

namespace sysscale {
namespace obs {

namespace {

/**
 * Local shortest-round-trip double formatter. Deliberately a twin of
 * exp::formatDouble rather than an include: obs sits below exp in the
 * layering (exp installs sinks, obs must not depend back on it).
 */
std::string
formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec <= 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v) {
            std::memcpy(buf, probe, sizeof(probe));
            break;
        }
    }
    return buf;
}

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Ticks (integer picoseconds) as exact decimal microseconds — the
 * trace-event clock unit — without a float round trip.
 */
std::string
tickToUs(Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / kTicksPerUs),
                  static_cast<unsigned long long>(t % kTicksPerUs));
    return buf;
}

/** Stable Perfetto track (tid) per category. */
int
tidForCat(const char *cat)
{
    if (std::strcmp(cat, kCatTransition) == 0) return 1;
    if (std::strcmp(cat, kCatGovernor) == 0) return 2;
    if (std::strcmp(cat, kCatScenario) == 0) return 3;
    if (std::strcmp(cat, kCatReplay) == 0) return 4;
    if (std::strcmp(cat, kCatPower) == 0) return 5;
    return 6; // kCatOpPoint and anything future.
}

void
writeThreadName(std::ostream &os, int tid, const char *name,
                bool first)
{
    os << (first ? "" : ",") << "{\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << name << "\"}}\n";
}

} // namespace

std::string
kv(const char *key, const std::string &value)
{
    return "\"" + std::string(key) + "\":\"" + jsonEscape(value) + "\"";
}

std::string
kv(const char *key, const char *value)
{
    return kv(key, std::string(value));
}

std::string
kv(const char *key, double value)
{
    return "\"" + std::string(key) + "\":" + formatNumber(value);
}

std::string
kv(const char *key, std::uint64_t value)
{
    return "\"" + std::string(key) + "\":" + std::to_string(value);
}

std::string
kv(const char *key, int value)
{
    return "\"" + std::string(key) + "\":" + std::to_string(value);
}

bool
TraceSink::push(TraceEvent ev)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return false;
    }
    events_.push_back(std::move(ev));
    return true;
}

void
TraceSink::span(const char *cat, const std::string &name, Tick begin,
                Tick end, const std::string &args)
{
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Span;
    ev.cat = cat;
    ev.name = name;
    ev.ts = begin;
    ev.dur = end >= begin ? end - begin : 0;
    ev.args = args;
    push(std::move(ev));
}

void
TraceSink::instant(const char *cat, const std::string &name, Tick ts,
                   const std::string &args)
{
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Instant;
    ev.cat = cat;
    ev.name = name;
    ev.ts = ts;
    ev.args = args;
    push(std::move(ev));
}

void
TraceSink::counter(const char *cat, const std::string &name, Tick ts,
                   double value)
{
    const std::string series = std::string(cat) + "/" + name;
    const auto it = lastCounter_.find(series);
    if (it != lastCounter_.end() && it->second == value)
        return;

    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Counter;
    ev.cat = cat;
    ev.name = name;
    ev.ts = ts;
    ev.value = value;
    if (push(std::move(ev)))
        lastCounter_[series] = value;
}

void
TraceSink::writeJson(std::ostream &os) const
{
    // One element per line, comma *leading* each element after the
    // first: removing any subset of event lines (e.g. grep -v a
    // category) leaves a valid JSON document, and line-level diffs
    // never trip over a trailing-comma artifact. The metadata lines
    // always precede the events, so every event line starts with a
    // comma.
    os << "{\"traceEvents\":[\n";
    writeThreadName(os, 1, "transition-flow", true);
    writeThreadName(os, 2, "governor", false);
    writeThreadName(os, 3, "scenario", false);
    writeThreadName(os, 4, "skip-ahead", false);
    writeThreadName(os, 5, "power", false);
    writeThreadName(os, 6, "op-point", false);

    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &ev = events_[i];
        os << ",{";
        switch (ev.kind) {
          case TraceEvent::Kind::Span:
            os << "\"ph\":\"X\"";
            break;
          case TraceEvent::Kind::Instant:
            os << "\"ph\":\"i\",\"s\":\"t\"";
            break;
          case TraceEvent::Kind::Counter:
            os << "\"ph\":\"C\"";
            break;
        }
        os << ",\"pid\":1,\"tid\":" << tidForCat(ev.cat)
           << ",\"cat\":\"" << ev.cat << "\",\"name\":\""
           << jsonEscape(ev.name) << "\",\"ts\":" << tickToUs(ev.ts);
        if (ev.kind == TraceEvent::Kind::Span)
            os << ",\"dur\":" << tickToUs(ev.dur);
        if (ev.kind == TraceEvent::Kind::Counter) {
            os << ",\"args\":{\"value\":" << formatNumber(ev.value)
               << "}";
        } else if (!ev.args.empty()) {
            os << ",\"args\":{" << ev.args << "}";
        }
        os << "}\n";
    }

    os << "],\n\"displayTimeUnit\":\"ms\",\n"
       << "\"otherData\":{\"clock\":\"sim-ticks\",\"ticksPerUs\":\""
       << kTicksPerUs << "\",\"dropped\":\"" << dropped_ << "\"}}\n";
}

namespace {

/**
 * Map a serialized category string back onto the kCat* registry so
 * restored events keep pointer-comparable, static-lifetime categories.
 */
const char *
internCategory(const std::string &cat)
{
    if (cat == kCatTransition) return kCatTransition;
    if (cat == kCatGovernor) return kCatGovernor;
    if (cat == kCatOpPoint) return kCatOpPoint;
    if (cat == kCatPower) return kCatPower;
    if (cat == kCatScenario) return kCatScenario;
    if (cat == kCatReplay) return kCatReplay;
    throw SnapshotError("trace: unknown category \"" + cat + "\"");
}

} // namespace

void
TraceSink::saveState(SnapshotWriter &w) const
{
    w.putU64("dropped", dropped_);
    w.putU64("event_count", events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &ev = events_[i];
        w.push("e" + std::to_string(i));
        w.putU64("kind", static_cast<std::uint64_t>(ev.kind));
        w.putString("cat", ev.cat);
        w.putString("name", ev.name);
        w.putU64("ts", ev.ts);
        w.putU64("dur", ev.dur);
        w.putDouble("value", ev.value);
        w.putString("args", ev.args);
        w.pop();
    }
    w.putU64("counter_series", lastCounter_.size());
    std::size_t i = 0;
    for (const auto &series : lastCounter_) {
        w.push("c" + std::to_string(i++));
        w.putString("series", series.first);
        w.putDouble("last", series.second);
        w.pop();
    }
}

void
TraceSink::loadState(SnapshotReader &r)
{
    dropped_ = r.getU64("dropped");
    const std::uint64_t count = r.getU64("event_count");
    events_.clear();
    events_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        r.push("e" + std::to_string(i));
        TraceEvent ev;
        const std::uint64_t kind = r.getU64("kind");
        if (kind > static_cast<std::uint64_t>(
                       TraceEvent::Kind::Counter))
            throw SnapshotError("trace: bad event kind");
        ev.kind = static_cast<TraceEvent::Kind>(kind);
        ev.cat = internCategory(r.getString("cat"));
        ev.name = r.getString("name");
        ev.ts = r.getU64("ts");
        ev.dur = r.getU64("dur");
        ev.value = r.getDouble("value");
        ev.args = r.getString("args");
        events_.push_back(std::move(ev));
        r.pop();
    }
    const std::uint64_t nseries = r.getU64("counter_series");
    lastCounter_.clear();
    for (std::uint64_t i = 0; i < nseries; ++i) {
        r.push("c" + std::to_string(i));
        const std::string series = r.getString("series");
        lastCounter_[series] = r.getDouble("last");
        r.pop();
    }
}

} // namespace obs
} // namespace sysscale
