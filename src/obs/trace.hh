/**
 * @file
 * Deterministic trace emitter (Chrome trace-event / Perfetto).
 *
 * A TraceSink records sim-clock-stamped events — never wall clock, so
 * traced runs stay bit-reproducible — into a bounded in-memory buffer
 * and serializes them to Chrome trace-event JSON (load the file at
 * https://ui.perfetto.dev or chrome://tracing). Three event kinds:
 *
 *  - span:    a phase with a begin and end tick (ph:"X"),
 *  - instant: a point event (ph:"i"),
 *  - counter: a numeric time series (ph:"C"), change-filtered so a
 *             value re-reported every step costs one event per change.
 *
 * Instrumentation sites use the TRACE_* macros below, which compile
 * to a null/enabled check when tracing is off and to nothing at all
 * under -DSYSSCALE_NO_TRACING. Because macro arguments may therefore
 * never be evaluated, they must be side-effect free — enforced by the
 * `trace-side-effect` repo-invariant lint.
 *
 * Categories are the registry check_docs.sh section 9 walks; every
 * kCat* constant must be documented in docs/OBSERVABILITY.md.
 */

#ifndef SYSSCALE_OBS_TRACE_HH
#define SYSSCALE_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {
namespace obs {

/** @name Trace categories (documented in docs/OBSERVABILITY.md). @{ */

/** Transition-flow phases (paper Fig. 5 steps). */
constexpr char kCatTransition[] = "transition";

/** Governor decisions, grants, and latency-budget denials. */
constexpr char kCatGovernor[] = "governor";

/** Per-domain operating-point counters (DRAM bin, fabric, rails). */
constexpr char kCatOpPoint[] = "oppoint";

/** PBM/TDP rebalances and per-rail power counters. */
constexpr char kCatPower[] = "power";

/** Scenario script actions (TDP steps, display/camera toggles). */
constexpr char kCatScenario[] = "scenario";

/** Skip-ahead replay batches (one span per batch). */
constexpr char kCatReplay[] = "replay";
/** @} */

/** One recorded event (see TraceSink). */
struct TraceEvent
{
    enum class Kind { Span, Instant, Counter };

    Kind kind = Kind::Instant;
    const char *cat = "";   //!< One of the kCat* constants.
    std::string name;
    Tick ts = 0;            //!< Event (or span begin) tick.
    Tick dur = 0;           //!< Span length; 0 otherwise.
    double value = 0.0;     //!< Counter value; unused otherwise.

    /**
     * Extra JSON object members ("\"k\":v" fragments, comma-joined),
     * built with the kv() helpers. Empty for most events.
     */
    std::string args;
};

/** @name JSON argument helpers for TRACE_* args parameters. @{ */
std::string kv(const char *key, const std::string &value);
std::string kv(const char *key, const char *value);
std::string kv(const char *key, double value);
std::string kv(const char *key, std::uint64_t value);
std::string kv(const char *key, int value);
/** @} */

/**
 * Bounded, deterministic trace buffer.
 *
 * Not a SimObject: one sink serves one Simulator (install it with
 * Simulator::setTraceSink before constructing the model so every
 * construction-time site sees it). Events are appended in execution
 * order; once @p capacity events are buffered further events are
 * counted as dropped rather than evicting earlier ones, so the head
 * of a trace is always trustworthy.
 */
class TraceSink
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit TraceSink(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Record a completed phase spanning [@p begin, @p end]. */
    void span(const char *cat, const std::string &name, Tick begin,
              Tick end, const std::string &args = std::string());

    /** Record a point event at @p ts. */
    void instant(const char *cat, const std::string &name, Tick ts,
                 const std::string &args = std::string());

    /**
     * Record a counter sample. Change-filtered: a sample equal to the
     * series' previous value is dropped, so per-step re-reports of a
     * steady signal emit nothing — which is also what makes traces
     * byte-identical across skip-ahead on/off (replayed steps are
     * fingerprint-identical, so their counters never change).
     */
    void counter(const char *cat, const std::string &name, Tick ts,
                 double value);

    std::size_t size() const { return events_.size(); }
    std::size_t dropped() const { return dropped_; }
    const std::vector<TraceEvent> &events() const { return events_; }

    /**
     * Serialize as Chrome trace-event JSON, one event per line (so
     * line filters can drop a category without a JSON parser).
     */
    void writeJson(std::ostream &os) const;

    /** @name Snapshot support: the buffered events, the drop count,
     *  and the counter change-filter. Loading overwrites the buffer
     *  wholesale; categories are re-interned onto the kCat* registry
     *  (an unknown category throws SnapshotError). @{ */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    bool push(TraceEvent ev);

    std::size_t capacity_;
    bool enabled_ = true;
    std::size_t dropped_ = 0;
    std::vector<TraceEvent> events_;

    /** Last value per counter series ("cat/name"), for the filter. */
    std::map<std::string, double> lastCounter_;
};

} // namespace obs
} // namespace sysscale

/**
 * Instrumentation macros. @p sink is an obs::TraceSink pointer and
 * may be null; arguments are evaluated only when the sink is present
 * and enabled (and never under -DSYSSCALE_NO_TRACING), so they must
 * be side-effect free (`trace-side-effect` lint).
 */
#ifndef SYSSCALE_NO_TRACING

#define TRACE_ACTIVE(sink) ((sink) != nullptr && (sink)->enabled())

#define TRACE_SPAN(sink, cat, name, begin, end, args)                  \
    do {                                                               \
        if (TRACE_ACTIVE(sink))                                        \
            (sink)->span((cat), (name), (begin), (end), (args));       \
    } while (0)

#define TRACE_INSTANT(sink, cat, name, ts, args)                       \
    do {                                                               \
        if (TRACE_ACTIVE(sink))                                        \
            (sink)->instant((cat), (name), (ts), (args));              \
    } while (0)

#define TRACE_COUNTER(sink, cat, name, ts, value)                      \
    do {                                                               \
        if (TRACE_ACTIVE(sink))                                        \
            (sink)->counter((cat), (name), (ts), (value));             \
    } while (0)

#else // SYSSCALE_NO_TRACING

#define TRACE_ACTIVE(sink) (false)
#define TRACE_SPAN(sink, cat, name, begin, end, args) do { } while (0)
#define TRACE_INSTANT(sink, cat, name, ts, args) do { } while (0)
#define TRACE_COUNTER(sink, cat, name, ts, value) do { } while (0)

#endif // SYSSCALE_NO_TRACING

#endif // SYSSCALE_OBS_TRACE_HH
