#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace sysscale {

namespace {

/** SplitMix64 step, used for seed expansion and stream forking. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    SYSSCALE_ASSERT(lo <= hi, "uniform(%f, %f): inverted range", lo, hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SYSSCALE_ASSERT(lo <= hi, "uniformInt(%lld, %lld): inverted range",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: span << 2^64 so bias is
    // below measurement noise for simulation purposes.
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    // Box-Muller; draw both uniforms every call so the consumption
    // pattern is independent of call history.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::exponential(double lambda)
{
    SYSSCALE_ASSERT(lambda > 0.0, "exponential rate must be positive");
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / lambda;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace sysscale
