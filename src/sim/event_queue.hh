/**
 * @file
 * Discrete-event kernel.
 *
 * A single EventQueue orders events by (tick, priority, insertion
 * sequence). Components either subclass Event or use
 * EventFunctionWrapper to run a lambda at a given time, mirroring the
 * gem5 kernel at a much smaller scale.
 */

#ifndef SYSSCALE_SIM_EVENT_QUEUE_HH
#define SYSSCALE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {

class EventQueue;

/**
 * An occurrence scheduled at a point in simulated time.
 *
 * Events are owned by their creators (typically as members of
 * SimObjects); the queue never deletes them. An event may be scheduled
 * on at most one queue at a time and may be rescheduled after it fires.
 */
class Event
{
  public:
    /** Relative ordering for events that share a tick (lower first). */
    enum Priority
    {
        kPrioMinimum = 0,
        kPrioDvfsFlow = 10,     //!< PMU transition-flow steps.
        kPrioDefault = 50,
        kPrioStatsSample = 80,  //!< Counter sampling after model updates.
        kPrioMaximum = 100,
    };

    explicit Event(std::string name, int priority = kPrioDefault);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event's tick is reached. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event will fire at (valid only while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t generation_ = 0; //!< Invalidates stale queue entries.
};

/**
 * Convenience event that runs a std::function.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::string name, std::function<void()> fn,
                         int priority = kPrioDefault)
        : Event(std::move(name), priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The kernel: a time-ordered queue of events plus the current tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev at absolute time @p when (>= now()).
     * Panics if the event is already scheduled or when is in the past.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now_ + delta); }

    /** Remove a scheduled event (no-op panic if not scheduled). */
    void deschedule(Event *ev);

    /** Deschedule-if-needed then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /** Number of pending events. */
    std::size_t pending() const { return live_; }

    bool empty() const { return live_ == 0; }

    /**
     * Run until the queue empties or @p limit is passed.
     *
     * @param limit Absolute tick bound (inclusive); events scheduled
     *              beyond it remain pending and now() advances to limit.
     * @return Number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run a single event if one is pending. @return true if fired. */
    bool step();

    /** Total number of events processed over the queue's lifetime. */
    std::uint64_t processedCount() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *ev;
    };

    struct EntryGreater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Pop dead (descheduled/rescheduled) entries off the heap top. */
    void skim();

    std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t live_ = 0;
};

} // namespace sysscale

#endif // SYSSCALE_SIM_EVENT_QUEUE_HH
