/**
 * @file
 * Discrete-event kernel.
 *
 * A single EventQueue orders events by (tick, priority, insertion
 * sequence). Components either subclass Event or use
 * EventFunctionWrapper to run a lambda at a given time, mirroring the
 * gem5 kernel at a much smaller scale.
 *
 * Storage is a calendar queue: an array of buckets, each holding the
 * events of the "days" (fixed-width tick ranges) that alias onto it.
 * The day width is sized to the SoC step interval — the cadence that
 * dominates every simulation — so the common dequeue touches exactly
 * one bucket holding a handful of entries instead of re-heapifying a
 * binary heap. Dequeue scans the current day's bucket for the
 * (tick, priority, seq)-minimum; when no event lives within one full
 * rotation of the calendar (a sparse queue between PMU evaluations or
 * after a skip-ahead), a single global scan over the few live entries
 * finds the minimum directly. Descheduled events are invalidated
 * lazily by a generation counter, exactly as the old heap did, and
 * swept out of whichever bucket a scan next visits.
 */

#ifndef SYSSCALE_SIM_EVENT_QUEUE_HH
#define SYSSCALE_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {

class EventQueue;

/**
 * An occurrence scheduled at a point in simulated time.
 *
 * Events are owned by their creators (typically as members of
 * SimObjects); the queue never deletes them. An event may be scheduled
 * on at most one queue at a time and may be rescheduled after it fires.
 */
class Event
{
  public:
    /** Relative ordering for events that share a tick (lower first). */
    enum Priority
    {
        kPrioMinimum = 0,
        kPrioDvfsFlow = 10,     //!< PMU transition-flow steps.
        kPrioDefault = 50,
        kPrioStatsSample = 80,  //!< Counter sampling after model updates.
        kPrioMaximum = 100,
    };

    explicit Event(std::string name, int priority = kPrioDefault);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event's tick is reached. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event will fire at (valid only while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t generation_ = 0; //!< Invalidates stale queue entries.
};

/**
 * Convenience event that runs a std::function.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::string name, std::function<void()> fn,
                         int priority = kPrioDefault)
        : Event(std::move(name), priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The kernel: a time-ordered calendar of events plus the current tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev at absolute time @p when (>= now()).
     * Panics if the event is already scheduled or when is in the past.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now_ + delta); }

    /** Remove a scheduled event (no-op panic if not scheduled). */
    void deschedule(Event *ev);

    /** Deschedule-if-needed then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /** Number of pending events. */
    std::size_t pending() const { return live_; }

    bool empty() const { return live_ == 0; }

    /**
     * Run until the queue empties or @p limit is passed.
     *
     * @param limit Absolute tick bound (inclusive); events scheduled
     *              beyond it remain pending and now() advances to limit.
     * @return Number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run a single event if one is pending. @return true if fired. */
    bool step();

    /**
     * Tick of the earliest pending event, kMaxTick when the queue is
     * empty. Prunes dead entries as a side effect, hence non-const.
     */
    Tick nextPendingTick();

    /**
     * Jump now() forward to @p when without firing anything. The
     * caller asserts that nothing observable happens in the skipped
     * span: @p when must not lie beyond the next pending event.
     * This is the kernel half of the SoC's idle skip-ahead.
     */
    void advanceNow(Tick when);

    /**
     * Inclusive limit of the innermost runUntil() in progress, or 0
     * when none is active. Event handlers that advance time
     * themselves (skip-ahead batching) must not advance past it —
     * the caller of runUntil() expects now() == limit on return.
     */
    Tick runLimit() const { return runLimit_; }

    /** Total number of events processed over the queue's lifetime. */
    std::uint64_t processedCount() const { return processed_; }

    /** @name Snapshot support.
     *
     * Saving records every live event as (name, when, priority) in
     * exact seq order. Restoring never serializes Event objects:
     * the restoring cell constructs its components (whose startup
     * hooks schedule the same named events), then clearScheduled()
     * empties the queue, restoreNow() jumps the clock, and the saved
     * list is re-scheduled by name in saved-seq order — which
     * preserves every relative (tick, priority, seq) ordering
     * without serializing nextSeq_ itself.
     * @{ */

    /** One live event as serialized into a snapshot. */
    struct SavedEvent
    {
        std::string name;
        Tick when;
        int priority;
    };

    /** All live events in ascending seq order. */
    std::vector<SavedEvent> saveEvents();

    /** Live Event pointers in ascending seq order (restore harvest). */
    std::vector<Event *> scheduledEvents();

    /** Deschedule every live event. */
    void clearScheduled();

    /**
     * Jump now() to @p when on an empty queue (restore only). Panics
     * when events are still pending or @p when is in the past.
     */
    void restoreNow(Tick when);
    /** @} */

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *ev;
    };

    /** Bucket and slot of a located entry. */
    struct EntryRef
    {
        std::size_t bucket;
        std::size_t slot;
        bool found;
    };

    /**
     * Calendar geometry. The day width (2^kDayShift ticks ≈ 134 µs)
     * brackets the 100 µs SoC step interval, so consecutive steps
     * land in the same or adjacent buckets; 64 buckets cover one
     * PMU sample interval (1 ms) several times over before aliasing.
     */
    static constexpr int kDayShift = 27;
    static constexpr std::size_t kNumBuckets = 64;
    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    static std::uint64_t dayOf(Tick when) { return when >> kDayShift; }

    static bool entryLess(const Entry &a, const Entry &b);

    bool isLive(const Entry &e) const;

    /** Swap-remove every dead (descheduled/stale) entry. */
    void pruneBucket(std::vector<Entry> &bucket);

    /** Locate the (tick, priority, seq)-minimum live entry. */
    EntryRef findMin();

    /** Remove the entry at @p ref, advance time, and fire it. */
    void fireAt(const EntryRef &ref);

    std::array<std::vector<Entry>, kNumBuckets> buckets_;
    Tick now_ = 0;
    Tick runLimit_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t live_ = 0;
    std::size_t dead_ = 0; //!< Lazily-deleted entries still in buckets.
};

} // namespace sysscale

#endif // SYSSCALE_SIM_EVENT_QUEUE_HH
