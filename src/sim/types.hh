/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The kernel counts time in integer picoseconds ("ticks", as in gem5)
 * so that event ordering is exact and platform independent. All
 * user-facing helpers convert between ticks and SI units.
 */

#ifndef SYSSCALE_SIM_TYPES_HH
#define SYSSCALE_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sysscale {

// Snapshot machinery (sim/snapshot.hh), forward-declared here so any
// component header can declare saveState/loadState hooks without
// pulling the full codec in.
class SnapshotWriter;
class SnapshotReader;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** @name Tick scale constants. @{ */
constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000 * kTicksPerPs;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;
/** @} */

/** @name Conversions from SI time to ticks. @{ */
constexpr Tick
ticksFromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

constexpr Tick
ticksFromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

constexpr Tick
ticksFromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerMs) + 0.5);
}

constexpr Tick
ticksFromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSec) + 0.5);
}
/** @} */

/** @name Conversions from ticks to SI time. @{ */
constexpr double
nsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

constexpr double
usFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

constexpr double
msFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}
/** @} */

/** Frequency in hertz. Stored as double; mobile SoC clocks are < 2^53. */
using Hertz = double;

constexpr Hertz kKHz = 1e3;
constexpr Hertz kMHz = 1e6;
constexpr Hertz kGHz = 1e9;

/** Period of a clock in ticks (rounded to nearest picosecond). */
constexpr Tick
periodFromFreq(Hertz f)
{
    return static_cast<Tick>(
        static_cast<double>(kTicksPerSec) / f + 0.5);
}

/** Voltage in volts. */
using Volt = double;

/** Power in watts. */
using Watt = double;

/** Energy in joules. */
using Joule = double;

/** Temperature in degrees Celsius. */
using Celsius = double;

/** Bandwidth in bytes per second. */
using BytesPerSec = double;

constexpr BytesPerSec kGBps = 1e9;
constexpr BytesPerSec kMBps = 1e6;

} // namespace sysscale

#endif // SYSSCALE_SIM_TYPES_HH
