#include "sim/sim_object.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {

Simulator::Simulator(std::uint64_t seed)
    : statsRoot_(nullptr, ""), rootRng_(seed)
{
}

void
Simulator::registerObject(SimObject *obj)
{
    objects_.push_back(obj);
}

void
Simulator::unregisterObject(SimObject *obj)
{
    auto it = std::find(objects_.begin(), objects_.end(), obj);
    if (it != objects_.end())
        objects_.erase(it);
}

void
Simulator::startAll()
{
    if (started_)
        return;
    started_ = true;
    // Objects may register children during startup; index loop on
    // purpose.
    for (std::size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
}

std::uint64_t
Simulator::run(Tick limit)
{
    startAll();
    return eventq_.runUntil(limit);
}

SimObject *
Simulator::find(const std::string &name) const
{
    for (auto *obj : objects_) {
        if (obj->path() == name || obj->name() == name)
            return obj;
    }
    return nullptr;
}

SimObject::SimObject(Simulator &sim, SimObject *parent, std::string name)
    : stats::StatGroup(parent ? static_cast<stats::StatGroup *>(parent)
                              : &sim.statsRoot(),
                       std::move(name)),
      sim_(sim)
{
    sim_.registerObject(this);
}

SimObject::~SimObject()
{
    sim_.unregisterObject(this);
}

} // namespace sysscale
