#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace sysscale {

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::~Event()
{
    // Owners must deschedule before destruction; a scheduled event
    // dying would leave a dangling pointer in the queue.
    SYSSCALE_ASSERT(!scheduled_,
                    "event '%s' destroyed while scheduled",
                    name_.c_str());
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    SYSSCALE_ASSERT(ev != nullptr, "schedule(nullptr)");
    SYSSCALE_ASSERT(!ev->scheduled_,
                    "event '%s' double-scheduled", ev->name().c_str());
    SYSSCALE_ASSERT(when >= now_,
                    "event '%s' scheduled in the past (%llu < %llu)",
                    ev->name().c_str(),
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now_));

    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ++ev->generation_;
    heap_.push(Entry{when, ev->priority(), ev->seq_,
                     ev->generation_, ev});
    ++live_;
}

void
EventQueue::deschedule(Event *ev)
{
    SYSSCALE_ASSERT(ev != nullptr, "deschedule(nullptr)");
    SYSSCALE_ASSERT(ev->scheduled_,
                    "event '%s' descheduled while not scheduled",
                    ev->name().c_str());
    // Lazy deletion: bump the generation so the heap entry is skipped.
    ev->scheduled_ = false;
    ++ev->generation_;
    --live_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::skim()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.ev->generation_ == top.generation &&
            top.ev->scheduled_) {
            return;
        }
        heap_.pop();
    }
}

bool
EventQueue::step()
{
    skim();
    if (heap_.empty())
        return false;

    Entry top = heap_.top();
    heap_.pop();
    SYSSCALE_ASSERT(top.when >= now_, "event queue went backwards");
    now_ = top.when;

    Event *ev = top.ev;
    ev->scheduled_ = false;
    --live_;
    ++processed_;
    ev->process();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t fired = 0;
    while (true) {
        skim();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit)
            break;
        step();
        ++fired;
    }
    if (now_ < limit)
        now_ = limit;
    return fired;
}

} // namespace sysscale
