#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {

Event::Event(std::string name, int priority)
    : name_(std::move(name)), priority_(priority)
{
}

Event::~Event()
{
    // Owners must deschedule before destruction; a scheduled event
    // dying would leave a dangling pointer in the queue.
    SYSSCALE_ASSERT(!scheduled_,
                    "event '%s' destroyed while scheduled",
                    name_.c_str());
}

bool
EventQueue::entryLess(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.seq < b.seq;
}

bool
EventQueue::isLive(const Entry &e) const
{
    return e.ev->generation_ == e.generation && e.ev->scheduled_;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    SYSSCALE_ASSERT(ev != nullptr, "schedule(nullptr)");
    SYSSCALE_ASSERT(!ev->scheduled_,
                    "event '%s' double-scheduled", ev->name().c_str());
    SYSSCALE_ASSERT(when >= now_,
                    "event '%s' scheduled in the past (%llu < %llu)",
                    ev->name().c_str(),
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now_));

    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ++ev->generation_;
    buckets_[dayOf(when) % kNumBuckets].push_back(
        Entry{when, ev->priority(), ev->seq_, ev->generation_, ev});
    ++live_;
}

void
EventQueue::deschedule(Event *ev)
{
    SYSSCALE_ASSERT(ev != nullptr, "deschedule(nullptr)");
    SYSSCALE_ASSERT(ev->scheduled_,
                    "event '%s' descheduled while not scheduled",
                    ev->name().c_str());
    // Lazy deletion: bump the generation so the bucket entry is
    // skipped (and swept) by the next scan that visits it.
    ev->scheduled_ = false;
    ++ev->generation_;
    --live_;
    ++dead_;

    // Pathological churn into far-future buckets could otherwise pile
    // up corpses faster than day-by-day scanning sweeps them.
    if (dead_ > kNumBuckets && dead_ > 4 * live_) {
        for (auto &bucket : buckets_)
            pruneBucket(bucket);
    }
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::pruneBucket(std::vector<Entry> &bucket)
{
    for (std::size_t i = 0; i < bucket.size();) {
        if (isLive(bucket[i])) {
            ++i;
            continue;
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        --dead_;
    }
}

EventQueue::EntryRef
EventQueue::findMin()
{
    if (live_ == 0)
        return EntryRef{0, 0, false};

    // Walk days forward from now; all events of a day share one
    // bucket, so the first day with a live entry yields the global
    // minimum.
    std::uint64_t day = dayOf(now_);
    for (std::size_t probes = 0; probes < kNumBuckets; ++probes, ++day) {
        const std::size_t bi = day % kNumBuckets;
        std::vector<Entry> &bucket = buckets_[bi];
        pruneBucket(bucket);
        std::size_t best = kNpos;
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (dayOf(bucket[i].when) != day)
                continue; // different rotation of the calendar
            if (best == kNpos || entryLess(bucket[i], bucket[best]))
                best = i;
        }
        if (best != kNpos)
            return EntryRef{bi, best, true};
    }

    // Sparse queue: nothing within one calendar rotation of now.
    // live_ > 0, so a direct scan over the few survivors finds the
    // minimum without day filtering.
    EntryRef ref{0, 0, false};
    for (std::size_t bi = 0; bi < kNumBuckets; ++bi) {
        std::vector<Entry> &bucket = buckets_[bi];
        pruneBucket(bucket);
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (!ref.found ||
                entryLess(bucket[i],
                          buckets_[ref.bucket][ref.slot])) {
                ref = EntryRef{bi, i, true};
            }
        }
    }
    SYSSCALE_ASSERT(ref.found, "live events but none found");
    return ref;
}

void
EventQueue::fireAt(const EntryRef &ref)
{
    std::vector<Entry> &bucket = buckets_[ref.bucket];
    const Entry top = bucket[ref.slot];
    bucket[ref.slot] = bucket.back();
    bucket.pop_back();

    SYSSCALE_ASSERT(top.when >= now_, "event queue went backwards");
    now_ = top.when;

    Event *ev = top.ev;
    ev->scheduled_ = false;
    --live_;
    ++processed_;
    ev->process();
}

bool
EventQueue::step()
{
    const EntryRef ref = findMin();
    if (!ref.found)
        return false;
    fireAt(ref);
    return true;
}

Tick
EventQueue::nextPendingTick()
{
    const EntryRef ref = findMin();
    return ref.found ? buckets_[ref.bucket][ref.slot].when : kMaxTick;
}

void
EventQueue::advanceNow(Tick when)
{
    SYSSCALE_ASSERT(when >= now_, "advanceNow() into the past");
    SYSSCALE_ASSERT(when <= nextPendingTick(),
                    "advanceNow() past a pending event");
    now_ = when;
}

std::vector<EventQueue::SavedEvent>
EventQueue::saveEvents()
{
    std::vector<Entry> live;
    for (auto &bucket : buckets_) {
        pruneBucket(bucket);
        for (const Entry &e : bucket)
            live.push_back(e);
    }
    std::sort(live.begin(), live.end(),
              [](const Entry &a, const Entry &b) {
                  return a.seq < b.seq;
              });
    std::vector<SavedEvent> out;
    out.reserve(live.size());
    for (const Entry &e : live)
        out.push_back(SavedEvent{e.ev->name(), e.when, e.priority});
    return out;
}

std::vector<Event *>
EventQueue::scheduledEvents()
{
    std::vector<Entry> live;
    for (auto &bucket : buckets_) {
        pruneBucket(bucket);
        for (const Entry &e : bucket)
            live.push_back(e);
    }
    std::sort(live.begin(), live.end(),
              [](const Entry &a, const Entry &b) {
                  return a.seq < b.seq;
              });
    std::vector<Event *> out;
    out.reserve(live.size());
    for (const Entry &e : live)
        out.push_back(e.ev);
    return out;
}

void
EventQueue::clearScheduled()
{
    for (Event *ev : scheduledEvents())
        deschedule(ev);
    for (auto &bucket : buckets_)
        pruneBucket(bucket);
    SYSSCALE_ASSERT(live_ == 0 && dead_ == 0,
                    "clearScheduled left entries behind");
}

void
EventQueue::restoreNow(Tick when)
{
    SYSSCALE_ASSERT(live_ == 0,
                    "restoreNow() with %zu events still pending", live_);
    SYSSCALE_ASSERT(when >= now_, "restoreNow() into the past");
    now_ = when;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    const Tick prev_limit = runLimit_;
    runLimit_ = limit;

    std::uint64_t fired = 0;
    while (true) {
        const EntryRef ref = findMin();
        if (!ref.found)
            break;
        if (buckets_[ref.bucket][ref.slot].when > limit)
            break;
        fireAt(ref);
        ++fired;
    }
    if (now_ < limit)
        now_ = limit;

    runLimit_ = prev_limit;
    return fired;
}

} // namespace sysscale
