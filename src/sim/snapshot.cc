#include "sim/snapshot.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sysscale {

namespace {

const char kMagic[] = "sysscale-snap v";

std::string
escapeValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] != '\\') {
            out += v[i];
            continue;
        }
        if (i + 1 >= v.size())
            throw SnapshotError("dangling escape in string value");
        ++i;
        switch (v[i]) {
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            throw SnapshotError("unknown escape in string value");
        }
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

std::uint64_t
parseHex16(const std::string &text, const char *what)
{
    if (text.size() != 16)
        throw SnapshotError(std::string(what) + " is not 16 hex digits: \"" +
                            text + "\"");
    std::uint64_t v = 0;
    for (const char c : text) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw SnapshotError(std::string(what) +
                                " has a non-hex digit: \"" + text + "\"");
    }
    return v;
}

std::uint64_t
parseU64(const std::string &text, const std::string &key)
{
    if (text.empty())
        throw SnapshotError("empty integer for key \"" + key + "\"");
    std::uint64_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            throw SnapshotError("non-decimal integer for key \"" + key +
                                "\": \"" + text + "\"");
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            throw SnapshotError("integer overflow for key \"" + key +
                                "\": \"" + text + "\"");
        v = v * 10 + digit;
    }
    return v;
}

} // anonymous namespace

std::uint64_t
snapshotFnv1a64(std::string_view data)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
encodeDouble(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return hex16(bits);
}

double
decodeDouble(const std::string &text)
{
    const std::uint64_t bits = parseHex16(text, "double");
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

SnapshotWriter::SnapshotWriter(std::string spec_key, Tick tick)
    : specKey_(std::move(spec_key)), tick_(tick)
{
}

void
SnapshotWriter::push(const std::string &scope)
{
    prefixLens_.push_back(prefix_.size());
    prefix_ += scope;
    prefix_ += '.';
}

void
SnapshotWriter::pop()
{
    if (prefixLens_.empty())
        throw SnapshotError("SnapshotWriter::pop with empty scope stack");
    prefix_.resize(prefixLens_.back());
    prefixLens_.pop_back();
}

void
SnapshotWriter::emit(const std::string &key, const std::string &value)
{
    const std::string full = prefix_ + key;
    if (!seen_.insert(full).second)
        throw SnapshotError("duplicate snapshot key \"" + full + "\"");
    body_ += full;
    body_ += " = ";
    body_ += value;
    body_ += '\n';
}

void
SnapshotWriter::putU64(const std::string &key, std::uint64_t v)
{
    emit(key, std::to_string(v));
}

void
SnapshotWriter::putBool(const std::string &key, bool v)
{
    emit(key, v ? "1" : "0");
}

void
SnapshotWriter::putDouble(const std::string &key, double v)
{
    emit(key, encodeDouble(v));
}

void
SnapshotWriter::putString(const std::string &key, const std::string &v)
{
    emit(key, escapeValue(v));
}

std::string
SnapshotWriter::str() const
{
    std::string out = kMagic + std::to_string(kSnapFormatVersion) + "\n";
    out += "spec = " + specKey_ + "\n";
    out += "tick = " + std::to_string(tick_) + "\n";
    out += body_;
    out += "checksum = " + hex16(snapshotFnv1a64(out)) + "\n";
    return out;
}

SnapshotReader::SnapshotReader(const std::string &text)
{
    // Validate the trailing checksum first: it covers every byte up
    // to its own line, so truncation and bit flips both fail here
    // before any value is interpreted.
    const std::string marker = "checksum = ";
    const std::size_t pos = text.rfind(marker);
    if (pos == std::string::npos ||
        (pos != 0 && text[pos - 1] != '\n')) {
        throw SnapshotError("snapshot has no checksum line");
    }
    const std::size_t value_at = pos + marker.size();
    std::size_t end = text.find('\n', value_at);
    if (end == std::string::npos)
        end = text.size();
    if (text.find('\n', end + 1) != std::string::npos)
        throw SnapshotError("trailing data after snapshot checksum");
    const std::uint64_t want =
        parseHex16(text.substr(value_at, end - value_at), "checksum");
    const std::uint64_t got =
        snapshotFnv1a64(std::string_view(text).substr(0, pos));
    if (want != got) {
        throw SnapshotError("snapshot checksum mismatch (stored " +
                            hex16(want) + ", computed " + hex16(got) +
                            "): truncated or corrupted file");
    }

    std::istringstream is(text.substr(0, pos));
    std::string line;

    if (!std::getline(is, line) ||
        line.compare(0, sizeof(kMagic) - 1, kMagic) != 0) {
        throw SnapshotError(
            "not a sysscale snapshot (bad magic line)");
    }
    const std::string ver = line.substr(sizeof(kMagic) - 1);
    if (ver != std::to_string(kSnapFormatVersion)) {
        throw SnapshotError(
            "snapshot format v" + ver + " does not match this build's v" +
            std::to_string(kSnapFormatVersion) +
            "; stale snapshots must be re-simulated");
    }

    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            throw SnapshotError("empty snapshot line " +
                                std::to_string(lineno));
        const std::size_t sep = line.find(" = ");
        if (sep == std::string::npos)
            throw SnapshotError("malformed snapshot line " +
                                std::to_string(lineno) + ": \"" + line +
                                "\"");
        const std::string key = line.substr(0, sep);
        const std::string value = line.substr(sep + 3);
        if (!values_.emplace(key, value).second)
            throw SnapshotError("duplicate snapshot key \"" + key + "\"");
    }

    if (values_.count("spec") == 0 || values_.count("tick") == 0)
        throw SnapshotError("snapshot missing spec/tick header keys");
    specKey_ = values_["spec"];
    tick_ = parseU64(values_["tick"], "tick");
    consumed_.insert("spec");
    consumed_.insert("tick");
}

void
SnapshotReader::push(const std::string &scope)
{
    prefixLens_.push_back(prefix_.size());
    prefix_ += scope;
    prefix_ += '.';
}

void
SnapshotReader::pop()
{
    if (prefixLens_.empty())
        throw SnapshotError("SnapshotReader::pop with empty scope stack");
    prefix_.resize(prefixLens_.back());
    prefixLens_.pop_back();
}

std::string
SnapshotReader::full(const std::string &key) const
{
    return prefix_ + key;
}

bool
SnapshotReader::has(const std::string &key) const
{
    return values_.count(full(key)) != 0;
}

const std::string &
SnapshotReader::consume(const std::string &key)
{
    const std::string f = full(key);
    const auto it = values_.find(f);
    if (it == values_.end())
        throw SnapshotError("snapshot is missing key \"" + f + "\"");
    consumed_.insert(f);
    return it->second;
}

std::uint64_t
SnapshotReader::getU64(const std::string &key)
{
    return parseU64(consume(key), full(key));
}

bool
SnapshotReader::getBool(const std::string &key)
{
    const std::string &v = consume(key);
    if (v == "1")
        return true;
    if (v == "0")
        return false;
    throw SnapshotError("non-boolean value for key \"" + full(key) +
                        "\": \"" + v + "\"");
}

double
SnapshotReader::getDouble(const std::string &key)
{
    try {
        return decodeDouble(consume(key));
    } catch (const SnapshotError &) {
        throw SnapshotError("malformed double for key \"" + full(key) +
                            "\"");
    }
}

std::string
SnapshotReader::getString(const std::string &key)
{
    return unescapeValue(consume(key));
}

void
SnapshotReader::skipScope(const std::string &scope)
{
    const std::string p = prefix_ + scope + ".";
    for (auto it = values_.lower_bound(p);
         it != values_.end() && it->first.compare(0, p.size(), p) == 0;
         ++it) {
        consumed_.insert(it->first);
    }
}

void
SnapshotReader::finish() const
{
    for (const auto &kv : values_) {
        if (consumed_.count(kv.first) == 0)
            throw SnapshotError(
                "snapshot key \"" + kv.first +
                "\" was never consumed: field-set mismatch "
                "(kSnapFormatVersion should have been bumped)");
    }
}

void
writeSnapshotFile(const std::string &path, const std::string &text)
{
    // lint:allow nondeterminism -- pid/serial only name the temp file
    static std::atomic<std::uint64_t> serial{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(serial.fetch_add(1));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw SnapshotError("cannot open \"" + tmp +
                                "\" for writing");
        os << text;
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            throw SnapshotError("short write to \"" + tmp + "\"");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename \"" + tmp + "\" to \"" +
                            path + "\"");
    }
}

std::string
readSnapshotFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SnapshotError("cannot open snapshot \"" + path + "\"");
    std::ostringstream os;
    os << is.rdbuf();
    if (is.bad())
        throw SnapshotError("read error on snapshot \"" + path + "\"");
    return os.str();
}

} // namespace sysscale
