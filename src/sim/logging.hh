/**
 * @file
 * Error/status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts so debuggers/core dumps catch it.
 * fatal()  — the user asked for something unsupportable (bad config);
 *            exits with an error code.
 * warn()   — something is approximated; simulation continues.
 * inform() — plain status output.
 *
 * All helpers accept printf-style format strings.
 */

#ifndef SYSSCALE_SIM_LOGGING_HH
#define SYSSCALE_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sysscale {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Global verbosity control (default Inform). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Abort the simulation due to an internal error. Never returns.
 *
 * @param file Source file of the failed invariant.
 * @param line Source line of the failed invariant.
 * @param fmt printf-style message.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Exit the simulation due to a user/configuration error. Never returns.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Emit a warning (suppressed when logLevel() < Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a status message (suppressed when logLevel() < Inform). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (suppressed when logLevel() < Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Number of warnings emitted so far (for tests). */
std::uint64_t warnCount();

} // namespace sysscale

#define SYSSCALE_PANIC(...) \
    ::sysscale::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define SYSSCALE_FATAL(...) \
    ::sysscale::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** gem5-style assert that survives NDEBUG and reports context. */
#define SYSSCALE_ASSERT(cond, ...)                                      \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::sysscale::panicImpl(__FILE__, __LINE__, __VA_ARGS__);     \
        }                                                               \
    } while (0)

#endif // SYSSCALE_SIM_LOGGING_HH
