/**
 * @file
 * Deterministic random number generation.
 *
 * The simulator must be bit-reproducible across platforms, so we avoid
 * std::mt19937 + libstdc++ distributions (whose outputs are not
 * standardized) and implement xoshiro256** seeded via SplitMix64, with
 * our own uniform / normal / exponential transforms.
 */

#ifndef SYSSCALE_SIM_RANDOM_HH
#define SYSSCALE_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace sysscale {

/**
 * Deterministic PRNG (xoshiro256**), seeded with SplitMix64.
 *
 * Every stochastic element in the simulator draws from an instance of
 * this class with an explicit seed; there is no global RNG state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5ca1eULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Exponential with given rate lambda. */
    double exponential(double lambda);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Derive an independent child stream (for per-object streams). */
    Rng fork();

    /** @name Snapshot support: the raw xoshiro256** state. @{ */
    std::array<std::uint64_t, 4>
    saveState() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    void
    loadState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[i];
    }
    /** @} */

  private:
    std::uint64_t state_[4];
};

} // namespace sysscale

#endif // SYSSCALE_SIM_RANDOM_HH
