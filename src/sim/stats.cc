#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace stats {

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    SYSSCALE_ASSERT(parent != nullptr,
                    "stat '%s' created without a group", name_.c_str());
    parent->registerStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

void
Scalar::saveState(SnapshotWriter &w) const
{
    w.putDouble("value", value_);
}

void
Scalar::loadState(SnapshotReader &r)
{
    value_ = r.getDouble("value");
}

void
Average::sample(double v, double weight)
{
    SYSSCALE_ASSERT(weight >= 0.0, "negative sample weight");
    sum_ += v * weight;
    weight_ += weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++count_;
}

double
Average::mean() const
{
    return weight_ > 0.0 ? sum_ / weight_ : 0.0;
}

void
Average::reset()
{
    sum_ = 0.0;
    weight_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    count_ = 0;
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << mean()
       << " # " << desc() << "\n";
    os << prefix << name() << "::min " << min() << " # min sample\n";
    os << prefix << name() << "::max " << max() << " # max sample\n";
    os << prefix << name() << "::count " << count()
       << " # sample count\n";
}

void
Average::saveState(SnapshotWriter &w) const
{
    w.putDouble("sum", sum_);
    w.putDouble("weight", weight_);
    w.putDouble("min", min_);
    w.putDouble("max", max_);
    w.putU64("count", count_);
}

void
Average::loadState(SnapshotReader &r)
{
    sum_ = r.getDouble("sum");
    weight_ = r.getDouble("weight");
    min_ = r.getDouble("min");
    max_ = r.getDouble("max");
    count_ = r.getU64("count");
}

void
TimeAverage::set(double value, Tick now)
{
    if (started_) {
        SYSSCALE_ASSERT(now >= lastSet_,
                        "TimeAverage '%s' set in the past",
                        name().c_str());
        integral_ += current_ * static_cast<double>(now - lastSet_);
        elapsed_ += now - lastSet_;
    }
    current_ = value;
    lastSet_ = now;
    started_ = true;
}

void
TimeAverage::finish(Tick now)
{
    set(current_, now);
}

double
TimeAverage::mean() const
{
    return elapsed_ > 0 ?
        integral_ / static_cast<double>(elapsed_) : current_;
}

void
TimeAverage::reset()
{
    integral_ = 0.0;
    elapsed_ = 0;
    current_ = 0.0;
    lastSet_ = 0;
    started_ = false;
}

void
TimeAverage::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::tmean " << mean()
       << " # " << desc() << "\n";
}

void
TimeAverage::saveState(SnapshotWriter &w) const
{
    w.putDouble("integral", integral_);
    w.putU64("elapsed", elapsed_);
    w.putDouble("current", current_);
    w.putU64("last_set", lastSet_);
    w.putBool("started", started_);
}

void
TimeAverage::loadState(SnapshotReader &r)
{
    integral_ = r.getDouble("integral");
    elapsed_ = r.getU64("elapsed");
    current_ = r.getDouble("current");
    lastSet_ = r.getU64("last_set");
    started_ = r.getBool("started");
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double lo, double hi,
                           std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    SYSSCALE_ASSERT(hi > lo && buckets > 0,
                    "Distribution '%s': bad bucket spec",
                    this->name().c_str());
}

void
Distribution::sample(double v, std::uint64_t count)
{
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1; // fp rounding at the top edge
        buckets_[idx] += count;
    }
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << samples_
       << " # " << desc() << "\n";
    os << prefix << name() << "::mean " << mean() << " # mean sample\n";
    os << prefix << name() << "::underflow " << underflow_
       << " # samples < " << lo_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double blo = lo_ + width_ * static_cast<double>(i);
        os << prefix << name() << "::bucket[" << std::setprecision(4)
           << blo << "," << (blo + width_) << ") " << buckets_[i]
           << "\n";
    }
    os << prefix << name() << "::overflow " << overflow_
       << " # samples >= " << hi_ << "\n";
}

void
Distribution::saveState(SnapshotWriter &w) const
{
    // lo/hi/width are construction-fixed; only the counts move.
    w.putU64("buckets", buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        w.putU64("bucket" + std::to_string(i), buckets_[i]);
    w.putU64("underflow", underflow_);
    w.putU64("overflow", overflow_);
    w.putU64("samples", samples_);
    w.putDouble("sum", sum_);
}

void
Distribution::loadState(SnapshotReader &r)
{
    const std::uint64_t n = r.getU64("buckets");
    if (n != buckets_.size())
        throw SnapshotError("Distribution '" + name() +
                            "': bucket count mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] = r.getU64("bucket" + std::to_string(i));
    underflow_ = r.getU64("underflow");
    overflow_ = r.getU64("overflow");
    samples_ = r.getU64("samples");
    sum_ = r.getDouble("sum");
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->registerChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->unregisterChild(this);
}

void
StatGroup::unregisterChild(StatGroup *g)
{
    auto it = std::find(children_.begin(), children_.end(), g);
    if (it != children_.end())
        children_.erase(it);
}

std::string
StatGroup::path() const
{
    if (!parent_ || parent_->name_.empty())
        return name_;
    const std::string parent_path = parent_->path();
    return parent_path.empty() ? name_ : parent_path + "." + name_;
}

void
StatGroup::resetStats()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *g : children_)
        g->resetStats();
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    const std::string p = path();
    const std::string prefix = p.empty() ? "" : p + ".";
    for (const auto *s : stats_)
        s->dump(os, prefix);
    for (const auto *g : children_)
        g->dumpStats(os);
}

void
StatGroup::saveStats(SnapshotWriter &w) const
{
    for (const auto *s : stats_) {
        w.push(s->name());
        s->saveState(w);
        w.pop();
    }
    for (const auto *g : children_) {
        w.push(g->name());
        g->saveStats(w);
        w.pop();
    }
}

void
StatGroup::loadStats(SnapshotReader &r)
{
    for (auto *s : stats_) {
        r.push(s->name());
        s->loadState(r);
        r.pop();
    }
    for (auto *g : children_) {
        r.push(g->name());
        g->loadStats(r);
        r.pop();
    }
}

} // namespace stats
} // namespace sysscale
