/**
 * @file
 * Small statistics package in the spirit of gem5's Stats.
 *
 * Statistics attach to a StatGroup (usually owned by a SimObject) and
 * are dumped hierarchically. Supported kinds:
 *  - Scalar: monotonically accumulated value (counts, joules, ...).
 *  - Average: sample-weighted mean with min/max.
 *  - TimeAverage: time-weighted mean of a piecewise-constant signal.
 *  - Distribution: fixed-bucket histogram with overflow/underflow.
 */

#ifndef SYSSCALE_SIM_STATS_HH
#define SYSSCALE_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {
namespace stats {

class StatGroup;

/** Base class for all statistics: name, description, reset/dump. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Zero out the statistic. */
    virtual void reset() = 0;

    /** Print one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /** @name Snapshot support: bit-exact round trip of the
     *  accumulator state (keys are scoped under the stat's name by
     *  StatGroup::saveStats). @{ */
    virtual void saveState(SnapshotWriter &w) const = 0;
    virtual void loadState(SnapshotReader &r) = 0;
    /** @} */

  private:
    std::string name_;
    std::string desc_;
};

/** Accumulating scalar. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    void dump(std::ostream &os,
              const std::string &prefix) const override;
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double value_ = 0.0;
};

/** Sample-weighted average with extrema. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v, double weight = 1.0);

    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    std::uint64_t count() const { return count_; }

    void reset() override;
    void dump(std::ostream &os,
              const std::string &prefix) const override;
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double sum_ = 0.0;
    double weight_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::uint64_t count_ = 0;
};

/**
 * Time-weighted mean of a piecewise-constant signal.
 *
 * Call set(value, now) whenever the signal changes; the interval since
 * the previous set() is credited to the previous value.
 */
class TimeAverage : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double value, Tick now);
    /** Close the pending interval without changing the value. */
    void finish(Tick now);

    double mean() const;
    double current() const { return current_; }

    void reset() override;
    void dump(std::ostream &os,
              const std::string &prefix) const override;
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double integral_ = 0.0;
    Tick elapsed_ = 0;
    double current_ = 0.0;
    Tick lastSet_ = 0;
    bool started_ = false;
};

/** Fixed-bucket histogram. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

    void reset() override;
    void dump(std::ostream &os,
              const std::string &prefix) const override;
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of statistics and child groups.
 */
class StatGroup
{
  public:
    StatGroup(StatGroup *parent, std::string name);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Fully qualified dotted path (root excluded). */
    std::string path() const;

    /** Recursively reset all stats in this group and children. */
    void resetStats();

    /** Recursively dump "path.stat value # desc" lines. */
    void dumpStats(std::ostream &os) const;

    /** @name Snapshot support.
     *
     * Recursively round-trip every statistic in this group and its
     * children, scoping keys by group and stat name in registration
     * order. Because registration order is construction order (and
     * construction is deterministic), save and load walk identical
     * sequences.
     * @{ */
    void saveStats(SnapshotWriter &w) const;
    void loadStats(SnapshotReader &r);
    /** @} */

  private:
    friend class StatBase;
    void registerStat(StatBase *s) { stats_.push_back(s); }
    void registerChild(StatGroup *g) { children_.push_back(g); }
    void unregisterChild(StatGroup *g);

    StatGroup *parent_;
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace sysscale

#endif // SYSSCALE_SIM_STATS_HH
