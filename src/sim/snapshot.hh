/**
 * @file
 * Versioned, deterministic simulator snapshots.
 *
 * A snapshot is a line-oriented text image of the full simulator
 * state at one tick — every component's private state, the whole
 * stats hierarchy, the pending event queue in exact
 * `(tick, priority, seq)` order, the RNG stream, the installed PMU
 * policy, and (optionally) the trace buffer. Restoring a snapshot
 * into a freshly constructed cell and resuming is byte-identical to
 * never having stopped; `tests/test_snapshot.cc` pins that with a
 * randomized differential battery.
 *
 * Format (all text, one `key = value` pair per line):
 *
 *     sysscale-snap v<kSnapFormatVersion>
 *     spec = <16-hex spec key>
 *     tick = <decimal tick>
 *     <dotted.scoped.key> = <value>
 *     ...
 *     checksum = <16-hex FNV-1a of everything above>
 *
 * Doubles are encoded as the 16-hex IEEE-754 bit pattern so round
 * trips are bit-exact (NaNs, infinities and signed zeros included).
 * The trailing checksum catches truncation and bit flips; the
 * version line is rejected loudly on mismatch, exactly like the spec
 * codec. Writers are strict about duplicate keys and readers are
 * strict about *unconsumed* keys, so a divergence bisects to a named
 * field instead of silently misaligning (`tools/snap_inspect` dumps
 * the decoded view).
 *
 * Bump kSnapFormatVersion whenever the serialized field set changes
 * shape OR the meaning of any serialized field changes in the model;
 * the golden fixture check (`snap_inspect --check`) plus the
 * repo-invariant linter enforce that the committed fixture always
 * matches the in-tree version.
 */

#ifndef SYSSCALE_SIM_SNAPSHOT_HH
#define SYSSCALE_SIM_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace sysscale {

/**
 * Snapshot encoding version. Bump on any change to the serialized
 * field set or the semantics behind a serialized field.
 */
constexpr int kSnapFormatVersion = 1;

/**
 * Every snapshot failure mode — unreadable file, bad header, stale
 * version, checksum mismatch, missing/duplicate/unconsumed keys,
 * unparsable values, wrong spec — throws this. Callers that want
 * "degrade to a cache miss" catch it and re-simulate from scratch.
 */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** FNV-1a/64 (local copy so sim/ stays dependency-free). */
std::uint64_t snapshotFnv1a64(std::string_view data);

/** Bit-exact double encoding: 16 lowercase hex of the bit pattern. */
std::string encodeDouble(double v);

/** Invert encodeDouble(). Throws SnapshotError on malformed input. */
double decodeDouble(const std::string &text);

/**
 * Builds the snapshot text. Scopes nest via push()/pop() and turn
 * into dotted key prefixes; duplicate full keys throw.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter(std::string spec_key, Tick tick);

    /** Enter a key scope (becomes a dotted prefix). */
    void push(const std::string &scope);
    void pop();

    void putU64(const std::string &key, std::uint64_t v);
    void putBool(const std::string &key, bool v);
    void putDouble(const std::string &key, double v);
    /** Strings are escaped (\\n, \\r, \\\\) so values stay one line. */
    void putString(const std::string &key, const std::string &v);

    /** Full snapshot text: header + body + checksum line. */
    std::string str() const;

  private:
    void emit(const std::string &key, const std::string &value);

    std::string specKey_;
    Tick tick_;
    std::string prefix_;
    std::vector<std::size_t> prefixLens_;
    std::set<std::string> seen_;
    std::string body_;
};

/**
 * Parses and fully validates a snapshot text up front (header,
 * version, checksum), then serves typed key lookups. Every get
 * consumes its key; finish() throws if any key was never consumed,
 * so adding a field without bumping the version cannot pass
 * silently. skipScope() consumes a whole optional section (e.g. the
 * trace buffer when the restoring cell is not tracing).
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::string &text);

    const std::string &specKey() const { return specKey_; }
    Tick tick() const { return tick_; }

    void push(const std::string &scope);
    void pop();

    bool has(const std::string &key) const;

    std::uint64_t getU64(const std::string &key);
    bool getBool(const std::string &key);
    double getDouble(const std::string &key);
    std::string getString(const std::string &key);

    /** Consume every key under @p scope (relative to the prefix). */
    void skipScope(const std::string &scope);

    /** Throw SnapshotError when any key remains unconsumed. */
    void finish() const;

  private:
    const std::string &consume(const std::string &key);
    std::string full(const std::string &key) const;

    std::string specKey_;
    Tick tick_ = 0;
    std::string prefix_;
    std::vector<std::size_t> prefixLens_;
    std::map<std::string, std::string> values_;
    std::set<std::string> consumed_;
};

/**
 * Write @p text to @p path via the repo's tmp + atomic-rename
 * protocol, so concurrent readers never observe a partial snapshot.
 * Throws SnapshotError on any IO failure.
 */
void writeSnapshotFile(const std::string &path,
                       const std::string &text);

/** Read a whole snapshot file. Throws SnapshotError on IO failure. */
std::string readSnapshotFile(const std::string &path);

} // namespace sysscale

#endif // SYSSCALE_SIM_SNAPSHOT_HH
