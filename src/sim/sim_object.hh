/**
 * @file
 * SimObject and Simulator: naming, registration, and shared kernel
 * services (event queue, root RNG, stats root).
 */

#ifndef SYSSCALE_SIM_SIM_OBJECT_HH
#define SYSSCALE_SIM_SIM_OBJECT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sysscale {

namespace obs { class TraceSink; }

class SimObject;

/**
 * Top-level simulation context.
 *
 * Owns the event queue, the root statistics group, and the root RNG.
 * SimObjects register themselves at construction; startup() is called
 * on each before the first event fires.
 */
class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1);

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }

    stats::StatGroup &statsRoot() { return statsRoot_; }

    /**
     * The installed trace sink, or nullptr (the default: tracing
     * off). The sink is borrowed, not owned — install it before
     * constructing the model so construction-time trace sites see
     * it, and keep it alive for the simulator's lifetime.
     */
    obs::TraceSink *traceSink() const { return traceSink_; }
    void setTraceSink(obs::TraceSink *sink) { traceSink_ = sink; }

    /** Fork a deterministic per-component RNG stream. */
    Rng forkRng() { return rootRng_.fork(); }

    /** The root RNG stream itself (snapshot save/restore). */
    Rng &rootRng() { return rootRng_; }
    const Rng &rootRng() const { return rootRng_; }

    Tick now() const { return eventq_.now(); }

    /** Call startup() on all registered objects (idempotent). */
    void startAll();

    /** Run the kernel until @p limit, calling startAll() first. */
    std::uint64_t run(Tick limit);

    /** Look up a registered object by name (nullptr if absent). */
    SimObject *find(const std::string &name) const;

    const std::vector<SimObject *> &objects() const { return objects_; }

  private:
    friend class SimObject;
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);

    EventQueue eventq_;
    stats::StatGroup statsRoot_;
    Rng rootRng_;
    std::vector<SimObject *> objects_;
    obs::TraceSink *traceSink_ = nullptr;
    bool started_ = false;
};

/**
 * Base class for every named model component.
 */
class SimObject : public stats::StatGroup
{
  public:
    SimObject(Simulator &sim, SimObject *parent, std::string name);
    ~SimObject() override;

    /** Hook called once before simulation begins. */
    virtual void startup() {}

    /** @name Snapshot support.
     *
     * Serialize (and restore) the object's *non-statistic* mutable
     * state; statistics round-trip generically through the StatGroup
     * walk and scheduled events through the EventQueue, so overrides
     * only handle plain members. Keys are scoped under the object's
     * path by the snapshot walk. Restores run on a freshly
     * constructed, started cell, so construction-derived members
     * need no encoding.
     * @{ */
    virtual void saveState(SnapshotWriter &w) const { (void)w; }
    virtual void loadState(SnapshotReader &r) { (void)r; }
    /** @} */

    Simulator &sim() { return sim_; }
    const Simulator &sim() const { return sim_; }

    EventQueue &eventq() { return sim_.eventq(); }
    Tick now() const { return sim_.now(); }

    /** The simulator's trace sink (nullptr when tracing is off). */
    obs::TraceSink *traceSink() const { return sim_.traceSink(); }

  private:
    Simulator &sim_;
};

} // namespace sysscale

#endif // SYSSCALE_SIM_SIM_OBJECT_HH
