#include "sim/logging.hh"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace sysscale {

namespace {

LogLevel gLevel = LogLevel::Inform;
std::uint64_t gWarnCount = 0;

void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    ++gWarnCount;
    if (gLevel < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Inform)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

std::uint64_t
warnCount()
{
    return gWarnCount;
}

} // namespace sysscale
