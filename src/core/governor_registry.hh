/**
 * @file
 * Named governor registry — the single place a governor gains a
 * name that experiments, sweeps, and spec files can refer to.
 *
 * Every governor in the zoo registers exactly once in
 * governor_registry.cc via the greppable addEntry() idiom; the
 * experiment layer (exp::governorFactory), the sweep console's
 * --governors validation, and check_docs.sh all derive their name
 * lists from here, so a governor cannot be runnable-but-undocumented
 * or documented-but-unrunnable.
 */

#ifndef SYSSCALE_CORE_GOVERNOR_REGISTRY_HH
#define SYSSCALE_CORE_GOVERNOR_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/governor.hh"

namespace sysscale {
namespace core {

/** One registry row: a name, a one-line summary, and a factory. */
struct GovernorEntry
{
    std::string name;
    std::string summary;
    std::function<std::unique_ptr<Governor>(const GovernorParams &)>
        make;
};

/** The full registry, in registration (display) order. */
const std::vector<GovernorEntry> &governorRegistry();

/** Registered names, in registration order. */
std::vector<std::string> governorNames();

/** True when @p name is registered. */
bool isRegisteredGovernor(const std::string &name);

/**
 * Construct governor @p name with @p params.
 *
 * Throws std::invalid_argument when the name is unknown (the message
 * enumerates every registered name) or when the governor rejects the
 * parameters.
 */
std::unique_ptr<Governor> makeGovernor(
    const std::string &name, const GovernorParams &params = {});

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNOR_REGISTRY_HH
