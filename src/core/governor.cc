#include "core/governor.hh"

#include "core/governor_driver.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace core {

GovernorHost::GovernorHost(std::unique_ptr<Governor> gov)
    : owned_(std::move(gov)), gov_(owned_.get())
{
    SYSSCALE_ASSERT(gov_ != nullptr,
                    "governor host needs a policy instance");
}

GovernorHost::GovernorHost(Governor &gov) : gov_(&gov) {}

GovernorHost::~GovernorHost()
{
    if (inited_)
        gov_->teardown();
}

const char *
GovernorHost::name() const
{
    return gov_->name();
}

std::size_t
GovernorHost::firmwareBytes() const
{
    return gov_->firmwareBytes();
}

void
GovernorHost::reset(soc::Soc &soc)
{
    if (inited_)
        gov_->teardown();

    // One fresh driver per installation: mechanics state (flow,
    // latency accounting, constraints) can never leak between SoCs
    // even if the policy object itself is reused.
    driver_ = std::make_unique<GovernorDriver>(
        soc, gov_->flowOptions(), gov_->redistributes());
    stats_ = TransitionStats{};

    driver_->subscribePre([this](const TransitionRecord &rec) {
        (void)rec;
        ++stats_.requested;
    });
    driver_->subscribePost([this](const TransitionRecord &rec) {
        if (rec.executed) {
            ++stats_.executed;
            if (rec.increased)
                ++stats_.increases;
            else
                ++stats_.decreases;
            stats_.totalLatency += rec.latency;
            if (rec.latency > stats_.maxLatency)
                stats_.maxLatency = rec.latency;
        }
        gov_->notify(rec);
    });

    gov_->init(*driver_, soc);
    inited_ = true;
    driver_->refreshBudget();
}

void
GovernorHost::evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
{
    SYSSCALE_ASSERT(driver_ != nullptr,
                    "governor '%s' evaluated before reset",
                    gov_->name());
    gov_->decide(*driver_, soc, avg);
}

void
GovernorHost::saveState(SnapshotWriter &w) const
{
    w.putU64("requested", stats_.requested);
    w.putU64("executed", stats_.executed);
    w.putU64("increases", stats_.increases);
    w.putU64("decreases", stats_.decreases);
    w.putU64("total_latency", stats_.totalLatency);
    w.putU64("max_latency", stats_.maxLatency);
    w.push("driver");
    driver().saveState(w);
    w.pop();
    w.push("gov");
    gov_->saveState(w);
    w.pop();
}

void
GovernorHost::loadState(SnapshotReader &r)
{
    stats_.requested = r.getU64("requested");
    stats_.executed = r.getU64("executed");
    stats_.increases = r.getU64("increases");
    stats_.decreases = r.getU64("decreases");
    stats_.totalLatency = r.getU64("total_latency");
    stats_.maxLatency = r.getU64("max_latency");
    r.push("driver");
    driver().loadState(r);
    r.pop();
    r.push("gov");
    gov_->loadState(r);
    r.pop();
}

GovernorDriver &
GovernorHost::driver()
{
    SYSSCALE_ASSERT(driver_ != nullptr,
                    "governor '%s' has no driver before reset",
                    gov_->name());
    return *driver_;
}

const GovernorDriver &
GovernorHost::driver() const
{
    SYSSCALE_ASSERT(driver_ != nullptr,
                    "governor '%s' has no driver before reset",
                    gov_->name());
    return *driver_;
}

} // namespace core
} // namespace sysscale
