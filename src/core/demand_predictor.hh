/**
 * @file
 * SysScale's dynamic demand predictor (paper Sec. 4.2, 4.3).
 *
 * The predictor answers one question every evaluation interval: will
 * moving the IO and memory domains to the lower operating point
 * degrade the running workload by more than the bound (1% by
 * default)? It compares the window-averaged values of the four
 * dedicated performance counters against trained thresholds, and the
 * aggregated static demand against a capacity threshold. Any counter
 * above its threshold keeps (or returns) the SoC at the high point
 * — the paper's five conditions.
 *
 * A linear regression model over the same four counters produces the
 * *predicted performance impact* plotted in Fig. 6; the thresholds
 * gate the decision so that no false positives occur (predicting
 * "safe to scale down" when it is not).
 */

#ifndef SYSSCALE_CORE_DEMAND_PREDICTOR_HH
#define SYSSCALE_CORE_DEMAND_PREDICTOR_HH

#include <array>

#include "soc/counters.hh"

namespace sysscale {
namespace core {

/** Per-counter decision thresholds plus the static-demand gate. */
struct Thresholds
{
    /** Counter thresholds (events/ms), Sec. 4.3 conditions 2-5. */
    std::array<double, soc::kNumCounters> counter{};

    /**
     * STATIC_BW_THR (condition 1): the static demand above which the
     * low point cannot guarantee isochronous QoS.
     */
    BytesPerSec staticBw = 0.0;
};

/** Linear model over the four counters: predicted perf at low point. */
struct LinearImpactModel
{
    std::array<double, soc::kNumCounters> weight{};
    double bias = 1.0;

    /** Predicted normalized performance (1.0 = no degradation). */
    double
    predict(const soc::CounterSnapshot &c) const
    {
        double v = bias;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            v += weight[i] * c.values[i];
        return v;
    }
};

/** Which of the five conditions fired (Sec. 4.3). */
struct ConditionVector
{
    bool staticBw = false;      //!< 1: aggregated static demand.
    bool gfxBandwidth = false;  //!< 2: GFX_LLC_MISSES > GFX_THR.
    bool cpuBandwidth = false;  //!< 3: LLC_Occupancy > Core_THR.
    bool memLatency = false;    //!< 4: LLC_STALLS > LAT_THR.
    bool ioLatency = false;     //!< 5: IO_RPQ > IO_THR.

    bool
    any() const
    {
        return staticBw || gfxBandwidth || cpuBandwidth ||
               memLatency || ioLatency;
    }
};

/**
 * The trained predictor.
 */
class DemandPredictor
{
  public:
    DemandPredictor() = default;

    DemandPredictor(Thresholds thresholds, LinearImpactModel model)
        : thresholds_(thresholds), model_(model)
    {}

    const Thresholds &thresholds() const { return thresholds_; }
    const LinearImpactModel &model() const { return model_; }

    /** Evaluate the five conditions. */
    ConditionVector conditions(const soc::CounterSnapshot &avg,
                               BytesPerSec static_demand) const;

    /**
     * True when the SoC must be at (or move to) the high operating
     * point — i.e. any condition fired.
     */
    bool demandsHighPoint(const soc::CounterSnapshot &avg,
                          BytesPerSec static_demand) const
    {
        return conditions(avg, static_demand).any();
    }

    /** Fig. 6 regression output: predicted normalized performance. */
    double
    predictedImpact(const soc::CounterSnapshot &avg) const
    {
        return model_.predict(avg);
    }

  private:
    Thresholds thresholds_;
    LinearImpactModel model_;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_DEMAND_PREDICTOR_HH
