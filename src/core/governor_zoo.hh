/**
 * @file
 * Real-world-shaped governors (the "zoo").
 *
 * Analogues of the Linux CPUFreq governor family, recast onto the
 * SysScale operating-point table and driven through the
 * policy/driver split of core/governor.hh:
 *
 *  - OndemandGovernor: load-based, jumps to the high point under
 *    pressure and drops straight low when projected low-point
 *    utilization has headroom (CPUFreq "ondemand").
 *  - ConservativeGovernor: like ondemand but steps one table entry
 *    at a time in both directions (CPUFreq "conservative").
 *  - UserspaceTableGovernor: no policy at all — the operating point
 *    is dictated by parameters, either a fixed table index or a
 *    time-indexed schedule (CPUFreq "userspace", made declarative).
 *  - LatencyBudgetGovernor: ondemand-style targets, but downward
 *    transitions spend from a per-window transition-latency budget
 *    enforced by the driver's latency constraint; upward (QoS-
 *    critical) moves are never constrained.
 *  - OnlineAdaptiveGovernor: SysScale's five-condition decision with
 *    thresholds that keep learning *during* the run — per-window
 *    mu+sigma updates over windows observed safe, plus the trainer's
 *    zero-false-positive clamp whenever an unsafe window would have
 *    slipped under every threshold (Sec. 4.2, made online).
 *
 * Each constructor validates its GovernorParams and throws
 * std::invalid_argument on unknown keys or malformed values, so a
 * bad --governors token fails at parse/validate time, not mid-cell.
 */

#ifndef SYSSCALE_CORE_GOVERNOR_ZOO_HH
#define SYSSCALE_CORE_GOVERNOR_ZOO_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/demand_predictor.hh"
#include "core/governors.hh"
#include "core/static_table.hh"

namespace sysscale {
namespace core {

/**
 * CPUFreq-ondemand analogue. Params: up (projected low-point
 * utilization above which the high point is demanded, default 0.80),
 * stall-gate (LLC stall cycles/ms treated as pressure, default 1e6).
 */
class OndemandGovernor : public PolicyBase
{
  public:
    explicit OndemandGovernor(const GovernorParams &params = {});

    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 128; }

    static constexpr double kDefaultUpThreshold = 0.80;
    static constexpr double kDefaultStallGate = 1.0e6;

  private:
    double up_;
    double stallGate_;
};

/**
 * CPUFreq-conservative analogue: one table step per evaluation.
 * Params: up (utilization that steps toward high, default 0.65),
 * down (utilization that steps toward low, default 0.30).
 */
class ConservativeGovernor : public PolicyBase
{
  public:
    explicit ConservativeGovernor(const GovernorParams &params = {});

    void init(GovernorDriver &drv, soc::Soc &soc) override;
    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 144; }

    static constexpr double kDefaultUpThreshold = 0.65;
    static constexpr double kDefaultDownThreshold = 0.30;

    /** @name Snapshot support: the current table index. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    double up_;
    double down_;
    std::size_t idx_ = 0; //!< Current table index (0 = high).
};

/**
 * CPUFreq-userspace analogue, made declarative: the operating point
 * is a parameter, not a decision. Params: point (table index,
 * default 0 = high), and/or repeatable schedule entries
 * at=<ms>@<index> (non-decreasing times; the last entry at or before
 * the current evaluation time wins).
 */
class UserspaceTableGovernor : public PolicyBase
{
  public:
    explicit UserspaceTableGovernor(
        const GovernorParams &params = {});

    void init(GovernorDriver &drv, soc::Soc &soc) override;
    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 96; }

    /** @name Snapshot support: the evaluation clock. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    std::size_t pointIdx_ = 0;
    std::vector<std::pair<Tick, std::size_t>> schedule_;
    std::uint64_t evals_ = 0;
};

/**
 * Latency-budget governor: ondemand-style targets, but each
 * evaluation window only accrues budget-us microseconds of
 * transition-latency budget, and a downward flow may only run when
 * the accrued budget covers its estimated latency (enforced by the
 * driver's transition-latency constraint). Params: budget-us
 * (default 20), burst (accrual cap in windows, default 4), up /
 * stall-gate as in ondemand.
 */
class LatencyBudgetGovernor : public PolicyBase
{
  public:
    explicit LatencyBudgetGovernor(
        const GovernorParams &params = {});

    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 160; }

    static constexpr double kDefaultBudgetUs = 20.0;
    static constexpr double kDefaultBurstWindows = 4.0;

    /** Accrued, unspent transition-latency budget (diagnostics). */
    Tick accruedBudget() const { return accrued_; }

    /** @name Snapshot support: the accrued budget. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    double up_;
    double stallGate_;
    Tick perWindow_;
    Tick cap_;
    Tick accrued_ = 0;
};

/**
 * Online-adaptive governor: SysScale's decision rule with thresholds
 * trained *during* the scenario. Windows whose observed bandwidth
 * demand fits the low point (with the degradation bound) feed
 * per-counter running mu+sigma thresholds; any unsafe window that
 * would have slipped under every threshold pulls the most prominent
 * threshold below that window's counter value (the zero-false-
 * positive clamp of Sec. 4.2, applied per evaluation). Params:
 * margin (low-point capacity share for the static gate, default
 * 0.85), bound (degradation bound, default 0.02), min-samples
 * (windows before learned thresholds replace the defaults,
 * default 8).
 */
class OnlineAdaptiveGovernor : public PolicyBase
{
  public:
    explicit OnlineAdaptiveGovernor(
        const GovernorParams &params = {});

    void init(GovernorDriver &drv, soc::Soc &soc) override;
    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    /** Thresholds + running stats live in PMU SRAM; still within
     *  the 640-byte firmware budget. */
    std::size_t firmwareBytes() const override { return 632; }

    /** Current (learning) thresholds, for tests/introspection. */
    const Thresholds &thresholds() const { return thresholds_; }

    /** Safe windows absorbed so far. */
    std::uint64_t safeSamples() const { return safeSamples_; }

    /** Zero-false-positive clamps applied so far. */
    std::uint64_t clamps() const { return clamps_; }

    static constexpr double kDefaultMargin = 0.85;
    static constexpr double kDefaultBound = 0.02;
    static constexpr std::uint64_t kDefaultMinSamples = 8;

    /** Learned thresholds never drop below this share of the
     *  hand-tuned defaults (a quiet corpus must not collapse a
     *  counter's threshold to zero and pin the SoC high). */
    static constexpr double kFloorShare = 0.25;

    /** @name Snapshot support: the learning state — thresholds,
     *  running mu/sigma sums, safe-sample and clamp counts. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    double margin_;
    double bound_;
    std::uint64_t minSamples_;

    Thresholds defaults_;
    Thresholds thresholds_;
    StaticDemandTable table_;

    std::uint64_t safeSamples_ = 0;
    std::uint64_t clamps_ = 0;
    std::array<double, soc::kNumCounters> sum_{};
    std::array<double, soc::kNumCounters> sumSq_{};
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNOR_ZOO_HH
