/**
 * @file
 * The paper's governors, re-homed on the policy layer.
 *
 * Every class here is pure policy (core/governor.hh): it reads
 * counters and SoC state and requests operating points through the
 * GovernorDriver, which owns the transition flow and the budget
 * arithmetic. What distinguishes the governors is which FlowOptions
 * knobs they unlock and how they decide:
 *
 *  - FixedGovernor: the paper's baseline — IO and memory domains
 *    pinned at the high operating point, worst-case budgets.
 *  - SysScaleGovernor: the paper's contribution — the five-condition
 *    algorithm of Sec. 4.3 over the four counters plus the static
 *    demand table, full multi-domain scaling, SRAM-cached per-bin
 *    MRC, and power-budget redistribution.
 *  - MemScaleGovernor: memory-domain-only DVFS [Deng+, ASPLOS'11]:
 *    scales the DRAM bin and MC clock but cannot touch the fabric
 *    clock, the shared V_SA, or V_IO, and runs lower bins on
 *    boot-trained (unoptimized) registers. The -Redist variant the
 *    paper compares against adds budget redistribution.
 *  - CoScaleGovernor: coordinated CPU + memory DVFS [Deng+,
 *    MICRO'12]: MemScale's memory handling plus a CPU frequency cap
 *    when the workload is memory bound. -Redist likewise.
 *
 * The real-world-shaped governors (ondemand, conservative,
 * userspace, latency-budget, adaptive) live in governor_zoo.hh; all
 * of them register by name in governor_registry.hh.
 */

#ifndef SYSSCALE_CORE_GOVERNORS_HH
#define SYSSCALE_CORE_GOVERNORS_HH

#include <string>

#include "core/demand_predictor.hh"
#include "core/governor.hh"
#include "core/static_table.hh"
#include "core/transition_flow.hh"

namespace sysscale {
namespace core {

/**
 * Shared policy plumbing: name, flow knobs, redistribution flag.
 */
class PolicyBase : public Governor
{
  public:
    PolicyBase(std::string name, FlowOptions opts, bool redistribute)
        : name_(std::move(name)), opts_(opts),
          redistribute_(redistribute)
    {
    }

    const char *name() const override { return name_.c_str(); }
    FlowOptions flowOptions() const override { return opts_; }
    bool redistributes() const override { return redistribute_; }

  protected:
    std::string name_;
    FlowOptions opts_;
    bool redistribute_;
};

/**
 * The paper's baseline: domains pinned at the high point.
 */
class FixedGovernor : public PolicyBase
{
  public:
    FixedGovernor();

    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 64; }
};

/**
 * SysScale (paper Sec. 4).
 */
class SysScaleGovernor : public PolicyBase
{
  public:
    /**
     * @param thresholds Trained counter thresholds (Sec. 4.2); the
     *        static-demand gate is derived from the low point's
     *        capacity at init when left at zero.
     * @param model Fig. 6 linear impact model (diagnostics only).
     * @param opts Feature knobs (defaults = full SysScale; ablations
     *        toggle individual features).
     */
    explicit SysScaleGovernor(Thresholds thresholds =
                                  defaultThresholds(),
                              LinearImpactModel model = {},
                              FlowOptions opts = {});

    void init(GovernorDriver &drv, soc::Soc &soc) override;
    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    /** Sec. 5: ~0.6KB of PMU firmware. */
    std::size_t firmwareBytes() const override { return 600; }

    const DemandPredictor &predictor() const { return predictor_; }
    const StaticDemandTable &staticTable() const { return table_; }

    /** Conditions fired at the last evaluation (introspection). */
    const ConditionVector &lastConditions() const { return lastCond_; }

    /**
     * Hand-tuned fallback thresholds for running without an offline
     * training pass (events per millisecond).
     */
    static Thresholds defaultThresholds();

    /** Safety margin on the low point's capacity for the static
     *  demand gate (condition 1). */
    static constexpr double kStaticMargin = 0.85;

    /**
     * Up-transition hysteresis: counters read higher at the low
     * point (latency-scaled observables), so the thresholds that
     * pull the SoC back up are scaled by this factor — the "dedicated
     * thresholds" per adjacent-point pair of Sec. 4.3.
     */
    static constexpr double kUpHysteresis = 1.6;

  private:
    Thresholds thresholds_;
    LinearImpactModel model_;
    DemandPredictor predictor_;
    DemandPredictor upPredictor_;
    StaticDemandTable table_;
    ConditionVector lastCond_;
};

/**
 * MemScale [16] with optional budget redistribution (MemScale-R).
 */
class MemScaleGovernor : public PolicyBase
{
  public:
    explicit MemScaleGovernor(bool redistribute);

    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 256; }

    /** Memory-side stall gate (cycles/ms). */
    static constexpr double kMemStallThr = 3.5e5;

    /** Memory-side MC occupancy gate. */
    static constexpr double kMemOccThr = 4.0;

    /** Up-transition hysteresis of the epoch model. */
    static constexpr double kEpochHysteresis = 1.6;

    /** Projected low-point utilization ceiling. */
    static constexpr double kMemMaxLowRho = 0.45;

  protected:
    /** Build the memory-only low point (boot fabric/voltages/MRC). */
    soc::OperatingPoint memOnlyLowPoint(soc::Soc &soc) const;

    /**
     * Epoch decision shared by MemScale and CoScale: move low when
     * both gates pass, with exponential backoff after a low sojourn
     * that had to be reverted quickly (epoch governors thrash on
     * phased workloads otherwise).
     */
    void epochDecision(GovernorDriver &drv, soc::Soc &soc,
                       const soc::CounterSnapshot &avg,
                       double stall_thr, double occ_thr,
                       double max_low_rho);

  public:
    /** @name Snapshot support: the epoch/backoff machine (CoScale
     *  inherits it unchanged). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    std::uint64_t evalCount_ = 0;
    std::uint64_t lastWentLow_ = 0;
    std::uint64_t backoffUntil_ = 0;
    std::uint64_t backoffLen_ = 2;
};

/**
 * CoScale [14] with optional budget redistribution (CoScale-R).
 */
class CoScaleGovernor : public MemScaleGovernor
{
  public:
    explicit CoScaleGovernor(bool redistribute);

    void decide(GovernorDriver &drv, soc::Soc &soc,
                const soc::CounterSnapshot &avg) override;

    std::size_t firmwareBytes() const override { return 384; }

    /** Joint-model stall gate: looser than MemScale's because the
     *  joint model also sees the CPU side. */
    static constexpr double kJointStallThr = 5.5e5;

    /** Joint-model MC occupancy gate. */
    static constexpr double kJointOccThr = 5.0;

    /** Joint model tolerates more congestion (it sees CPU slack). */
    static constexpr double kJointMaxLowRho = 0.50;

    /** LLC_STALLS level (cycles/ms) treated as fully memory bound. */
    static constexpr double kStallRef = 1.5e6;

    /** Core-clock share kept when fully memory bound. */
    static constexpr double kBoundCapShare = 0.85;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNORS_HH
