/**
 * @file
 * Power-management governors.
 *
 * All governors plug into the PMU behind soc::PmuPolicy and drive
 * the same TransitionFlow; what distinguishes them is which knobs
 * their FlowOptions unlock and how they decide:
 *
 *  - FixedGovernor: the paper's baseline — IO and memory domains
 *    pinned at the high operating point, worst-case budgets.
 *  - SysScaleGovernor: the paper's contribution — the five-condition
 *    algorithm of Sec. 4.3 over the four counters plus the static
 *    demand table, full multi-domain scaling, SRAM-cached per-bin
 *    MRC, and power-budget redistribution.
 *  - MemScaleGovernor: memory-domain-only DVFS [Deng+, ASPLOS'11]:
 *    scales the DRAM bin and MC clock but cannot touch the fabric
 *    clock, the shared V_SA, or V_IO, and runs lower bins on
 *    boot-trained (unoptimized) registers. The -Redist variant the
 *    paper compares against adds budget redistribution.
 *  - CoScaleGovernor: coordinated CPU + memory DVFS [Deng+,
 *    MICRO'12]: MemScale's memory handling plus a CPU frequency cap
 *    when the workload is memory bound. -Redist likewise.
 */

#ifndef SYSSCALE_CORE_GOVERNORS_HH
#define SYSSCALE_CORE_GOVERNORS_HH

#include <memory>
#include <string>

#include "core/demand_predictor.hh"
#include "core/static_table.hh"
#include "core/transition_flow.hh"
#include "soc/pmu.hh"
#include "soc/soc.hh"

namespace sysscale {
namespace core {

/**
 * Shared governor plumbing: flow ownership and budget arithmetic.
 */
class GovernorBase : public soc::PmuPolicy
{
  public:
    GovernorBase(std::string name, FlowOptions opts,
                 bool redistribute);

    const char *name() const override { return name_.c_str(); }

    void reset(soc::Soc &soc) override;

    bool redistributes() const { return redistribute_; }
    const FlowOptions &flowOptions() const { return opts_; }

    /** Flow executions performed (diagnostics). */
    std::uint64_t flowRuns() const { return flowRuns_; }

    /** Latency of the most recent flow execution. */
    Tick lastFlowLatency() const { return lastFlowLatency_; }

  protected:
    /**
     * Move the SoC to @p target (no-op if already there) and update
     * the compute budget according to the redistribution setting.
     */
    void moveTo(soc::Soc &soc, const soc::OperatingPoint &target);

    /** Recompute the compute-domain budget. */
    void updateBudget(soc::Soc &soc);

    std::string name_;
    FlowOptions opts_;
    bool redistribute_;
    std::unique_ptr<TransitionFlow> flow_;
    std::uint64_t flowRuns_ = 0;
    Tick lastFlowLatency_ = 0;
};

/**
 * The paper's baseline: domains pinned at the high point.
 */
class FixedGovernor : public GovernorBase
{
  public:
    FixedGovernor();

    void evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
        override;

    std::size_t firmwareBytes() const override { return 64; }
};

/**
 * SysScale (paper Sec. 4).
 */
class SysScaleGovernor : public GovernorBase
{
  public:
    /**
     * @param thresholds Trained counter thresholds (Sec. 4.2); the
     *        static-demand gate is derived from the low point's
     *        capacity at reset when left at zero.
     * @param model Fig. 6 linear impact model (diagnostics only).
     * @param opts Feature knobs (defaults = full SysScale; ablations
     *        toggle individual features).
     */
    explicit SysScaleGovernor(Thresholds thresholds =
                                  defaultThresholds(),
                              LinearImpactModel model = {},
                              FlowOptions opts = {});

    void reset(soc::Soc &soc) override;
    void evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
        override;

    /** Sec. 5: ~0.6KB of PMU firmware. */
    std::size_t firmwareBytes() const override { return 600; }

    const DemandPredictor &predictor() const { return predictor_; }
    const StaticDemandTable &staticTable() const { return table_; }

    /** Conditions fired at the last evaluation (introspection). */
    const ConditionVector &lastConditions() const { return lastCond_; }

    /**
     * Hand-tuned fallback thresholds for running without an offline
     * training pass (events per millisecond).
     */
    static Thresholds defaultThresholds();

    /** Safety margin on the low point's capacity for the static
     *  demand gate (condition 1). */
    static constexpr double kStaticMargin = 0.85;

    /**
     * Up-transition hysteresis: counters read higher at the low
     * point (latency-scaled observables), so the thresholds that
     * pull the SoC back up are scaled by this factor — the "dedicated
     * thresholds" per adjacent-point pair of Sec. 4.3.
     */
    static constexpr double kUpHysteresis = 1.6;

  private:
    Thresholds thresholds_;
    LinearImpactModel model_;
    DemandPredictor predictor_;
    DemandPredictor upPredictor_;
    StaticDemandTable table_;
    ConditionVector lastCond_;
};

/**
 * MemScale [16] with optional budget redistribution (MemScale-R).
 */
class MemScaleGovernor : public GovernorBase
{
  public:
    explicit MemScaleGovernor(bool redistribute);

    void evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
        override;

    std::size_t firmwareBytes() const override { return 256; }

    /** Memory-side stall gate (cycles/ms). */
    static constexpr double kMemStallThr = 3.5e5;

    /** Memory-side MC occupancy gate. */
    static constexpr double kMemOccThr = 4.0;

    /** Up-transition hysteresis of the epoch model. */
    static constexpr double kEpochHysteresis = 1.6;

    /** Projected low-point utilization ceiling. */
    static constexpr double kMemMaxLowRho = 0.45;

  protected:
    /** Build the memory-only low point (boot fabric/voltages/MRC). */
    soc::OperatingPoint memOnlyLowPoint(soc::Soc &soc) const;

    /**
     * Epoch decision shared by MemScale and CoScale: move low when
     * both gates pass, with exponential backoff after a low sojourn
     * that had to be reverted quickly (epoch governors thrash on
     * phased workloads otherwise).
     */
    void epochDecision(soc::Soc &soc, const soc::CounterSnapshot &avg,
                       double stall_thr, double occ_thr,
                       double max_low_rho);

  private:
    std::uint64_t evalCount_ = 0;
    std::uint64_t lastWentLow_ = 0;
    std::uint64_t backoffUntil_ = 0;
    std::uint64_t backoffLen_ = 2;
};

/**
 * CoScale [14] with optional budget redistribution (CoScale-R).
 */
class CoScaleGovernor : public MemScaleGovernor
{
  public:
    explicit CoScaleGovernor(bool redistribute);

    void evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
        override;

    std::size_t firmwareBytes() const override { return 384; }

    /** Joint-model stall gate: looser than MemScale's because the
     *  joint model also sees the CPU side. */
    static constexpr double kJointStallThr = 5.5e5;

    /** Joint-model MC occupancy gate. */
    static constexpr double kJointOccThr = 5.0;

    /** Joint model tolerates more congestion (it sees CPU slack). */
    static constexpr double kJointMaxLowRho = 0.50;

    /** LLC_STALLS level (cycles/ms) treated as fully memory bound. */
    static constexpr double kStallRef = 1.5e6;

    /** Core-clock share kept when fully memory bound. */
    static constexpr double kBoundCapShare = 0.85;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNORS_HH
