#include "core/governor_driver.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace core {

GovernorDriver::GovernorDriver(soc::Soc &soc, FlowOptions opts,
                               bool redistribute)
    : soc_(soc), opts_(opts), redistribute_(redistribute),
      flow_(soc, opts)
{
}

void
GovernorDriver::subscribePre(TransitionCallback cb)
{
    pre_.push_back(std::move(cb));
}

void
GovernorDriver::subscribePost(TransitionCallback cb)
{
    post_.push_back(std::move(cb));
}

Tick
GovernorDriver::estimateTransitionLatency(
    const soc::OperatingPoint &target) const
{
    return flow_.estimate(target);
}

bool
GovernorDriver::requestOpPoint(const soc::OperatingPoint &target)
{
    const soc::OperatingPoint from = soc_.currentOpPoint();
    const bool changes = !(from == target);

    if (changes && latencyLimit_ != 0 &&
        flow_.estimate(target) > latencyLimit_) {
        ++denied_;
        TRACE_INSTANT(soc_.traceSink(), obs::kCatGovernor, "denied",
                      soc_.now(),
                      obs::kv("target", target.name) + "," +
                          obs::kv("estimate_ns",
                                  nsFromTicks(flow_.estimate(target))) +
                          "," +
                          obs::kv("limit_ns",
                                  nsFromTicks(latencyLimit_)));
        debugLog("governor: denied %s (estimate above budget)",
                 target.name.c_str());
        refreshBudget();
        return false;
    }

    TransitionRecord rec;
    rec.from = from;
    rec.to = target;
    if (changes) {
        for (const TransitionCallback &cb : pre_)
            cb(rec);
    }

    const FlowReport report = flow_.execute(target);
    if (report.executed) {
        ++flowRuns_;
        lastFlowLatency_ = report.totalLatency;
        totalFlowLatency_ += report.totalLatency;
    }

    rec.latency = report.totalLatency;
    rec.increased = report.increased;
    rec.executed = report.executed;
    if (changes) {
        for (const TransitionCallback &cb : post_)
            cb(rec);
    }
    if (report.executed) {
        TRACE_INSTANT(soc_.traceSink(), obs::kCatGovernor, "grant",
                      soc_.now(),
                      obs::kv("from", from.name) + "," +
                          obs::kv("to", target.name) + "," +
                          obs::kv("latency_ns",
                                  nsFromTicks(report.totalLatency)));
    }

    refreshBudget();
    return true;
}

void
GovernorDriver::refreshBudget()
{
    // Without redistribution the compute domain keeps the worst-case
    // allocation of the *high* point — saved IO/memory power is
    // simply not spent (pure MemScale/CoScale, Sec. 6).
    const soc::OperatingPoint &billing =
        redistribute_ ? soc_.currentOpPoint()
                      : soc_.opPoints().high();

    // PMU budget tables cost a trained interface; a governor running
    // unoptimized MRC (MemScale/CoScale) physically draws more than
    // it budgets, which is part of why the paper calls unoptimized
    // registers able to "negate potential benefits" (Sec. 3).
    const Watt iomem =
        soc::ioMemBudgetDemand(soc_.config(), billing, true);
    const Watt compute = soc_.pbm().computeBudget(iomem, 0.0);
    soc_.setComputeBudget(compute);
    TRACE_COUNTER(soc_.traceSink(), obs::kCatPower, "compute_budget_w",
                  soc_.now(), compute);
    TRACE_COUNTER(soc_.traceSink(), obs::kCatPower, "iomem_budget_w",
                  soc_.now(), iomem);
}

void
GovernorDriver::setCoreFreqCap(Hertz cap)
{
    soc_.setCoreFreqCap(cap);
}

void
GovernorDriver::saveState(SnapshotWriter &w) const
{
    w.putU64("latency_limit", latencyLimit_);
    w.putU64("flow_runs", flowRuns_);
    w.putU64("last_flow_latency", lastFlowLatency_);
    w.putU64("total_flow_latency", totalFlowLatency_);
    w.putU64("denied", denied_);
}

void
GovernorDriver::loadState(SnapshotReader &r)
{
    latencyLimit_ = r.getU64("latency_limit");
    flowRuns_ = r.getU64("flow_runs");
    lastFlowLatency_ = r.getU64("last_flow_latency");
    totalFlowLatency_ = r.getU64("total_flow_latency");
    denied_ = r.getU64("denied");
}

} // namespace core
} // namespace sysscale
