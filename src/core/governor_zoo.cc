#include "core/governor_zoo.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/governor_driver.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace core {

namespace {

[[noreturn]] void
badParam(const char *gov, const std::string &key, const char *known)
{
    throw std::invalid_argument(
        std::string("governor \"") + gov + "\": unknown parameter \"" +
        key + "\" (known: " + known + ")");
}

double
parseNum(const char *gov, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size()) {
        throw std::invalid_argument(
            std::string("governor \"") + gov + "\": bad value \"" +
            value + "\" for parameter \"" + key + "\"");
    }
    return v;
}

std::uint64_t
parseU64(const char *gov, const std::string &key,
         const std::string &value)
{
    if (value.empty() || value[0] < '0' || value[0] > '9') {
        throw std::invalid_argument(
            std::string("governor \"") + gov + "\": bad value \"" +
            value + "\" for parameter \"" + key + "\"");
    }
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size()) {
        throw std::invalid_argument(
            std::string("governor \"") + gov + "\": bad value \"" +
            value + "\" for parameter \"" + key + "\"");
    }
    return v;
}

/** Optimized-interface bandwidth capacity of table point @p op. */
double
pointCapacity(soc::Soc &soc, const soc::OperatingPoint &op)
{
    return soc.config().dramSpec.peakBandwidth(op.dramBin) *
           soc.mrc().optimizedSet(op.dramBin).interfaceEfficiency;
}

} // anonymous namespace

// ---------------------------------------------------------------
// ondemand
// ---------------------------------------------------------------

OndemandGovernor::OndemandGovernor(const GovernorParams &params)
    : PolicyBase("ondemand", FlowOptions{}, /*redistribute=*/true),
      up_(kDefaultUpThreshold), stallGate_(kDefaultStallGate)
{
    for (const auto &kv : params) {
        if (kv.first == "up")
            up_ = parseNum("ondemand", kv.first, kv.second);
        else if (kv.first == "stall-gate")
            stallGate_ = parseNum("ondemand", kv.first, kv.second);
        else
            badParam("ondemand", kv.first, "up, stall-gate");
    }
}

void
OndemandGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                         const soc::CounterSnapshot &avg)
{
    // CPUFreq ondemand: any pressure jumps straight to the fastest
    // point; otherwise pick the saving point if its projected
    // utilization leaves headroom.
    const soc::OperatingPoint &low = soc.opPoints().low();
    const double low_rho =
        soc.recentBandwidth() / pointCapacity(soc, low);
    const bool pressure =
        low_rho > up_ ||
        avg[soc::Counter::LlcStalls] > stallGate_;
    drv.requestOpPoint(pressure ? soc.opPoints().high() : low);
}

// ---------------------------------------------------------------
// conservative
// ---------------------------------------------------------------

ConservativeGovernor::ConservativeGovernor(
    const GovernorParams &params)
    : PolicyBase("conservative", FlowOptions{},
                 /*redistribute=*/true),
      up_(kDefaultUpThreshold), down_(kDefaultDownThreshold)
{
    for (const auto &kv : params) {
        if (kv.first == "up")
            up_ = parseNum("conservative", kv.first, kv.second);
        else if (kv.first == "down")
            down_ = parseNum("conservative", kv.first, kv.second);
        else
            badParam("conservative", kv.first, "up, down");
    }
    if (down_ >= up_) {
        throw std::invalid_argument(
            "governor \"conservative\": down threshold must be "
            "below up threshold");
    }
}

void
ConservativeGovernor::init(GovernorDriver &drv, soc::Soc &soc)
{
    (void)drv;
    (void)soc;
    idx_ = 0; // boot point is the table's high entry
}

void
ConservativeGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                             const soc::CounterSnapshot &avg)
{
    (void)avg;
    // CPUFreq conservative: graceful single-step walks in both
    // directions, judged on the utilization of the *current* point.
    const soc::OpPointTable &pts = soc.opPoints();
    const double rho = soc.recentBandwidth() /
                       pointCapacity(soc, pts.point(idx_));
    if (rho > up_ && idx_ > 0)
        --idx_;
    else if (rho < down_ && idx_ + 1 < pts.size())
        ++idx_;
    drv.requestOpPoint(pts.point(idx_));
}

// ---------------------------------------------------------------
// userspace
// ---------------------------------------------------------------

UserspaceTableGovernor::UserspaceTableGovernor(
    const GovernorParams &params)
    : PolicyBase("userspace", FlowOptions{}, /*redistribute=*/true)
{
    for (const auto &kv : params) {
        if (kv.first == "point") {
            pointIdx_ = static_cast<std::size_t>(
                parseU64("userspace", kv.first, kv.second));
        } else if (kv.first == "at") {
            // at=<ms>@<index>
            const std::size_t sep = kv.second.find('@');
            if (sep == std::string::npos) {
                throw std::invalid_argument(
                    "governor \"userspace\": schedule entry \"" +
                    kv.second + "\" is not <ms>@<index>");
            }
            const std::uint64_t ms = parseU64(
                "userspace", kv.first, kv.second.substr(0, sep));
            const std::size_t idx =
                static_cast<std::size_t>(parseU64(
                    "userspace", kv.first, kv.second.substr(sep + 1)));
            if (!schedule_.empty() &&
                schedule_.back().first >
                    static_cast<Tick>(ms) * kTicksPerMs) {
                throw std::invalid_argument(
                    "governor \"userspace\": schedule times must be "
                    "non-decreasing");
            }
            schedule_.emplace_back(
                static_cast<Tick>(ms) * kTicksPerMs, idx);
        } else {
            badParam("userspace", kv.first, "point, at");
        }
    }
}

void
UserspaceTableGovernor::init(GovernorDriver &drv, soc::Soc &soc)
{
    (void)drv;
    evals_ = 0;
    const std::size_t n = soc.opPoints().size();
    if (pointIdx_ >= n) {
        throw std::invalid_argument(
            "governor \"userspace\": point index " +
            std::to_string(pointIdx_) + " outside the " +
            std::to_string(n) + "-entry table");
    }
    for (const auto &entry : schedule_) {
        if (entry.second >= n) {
            throw std::invalid_argument(
                "governor \"userspace\": schedule index " +
                std::to_string(entry.second) + " outside the " +
                std::to_string(n) + "-entry table");
        }
    }
}

void
UserspaceTableGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                               const soc::CounterSnapshot &avg)
{
    (void)avg;
    // Evaluation count x interval is deterministic simulated time —
    // the schedule replays identically on any worker.
    ++evals_;
    const Tick now = evals_ * soc.config().evaluationInterval;
    std::size_t idx = pointIdx_;
    for (const auto &entry : schedule_) {
        if (entry.first <= now)
            idx = entry.second;
        else
            break;
    }
    drv.requestOpPoint(soc.opPoints().point(idx));
}

// ---------------------------------------------------------------
// latency-budget
// ---------------------------------------------------------------

LatencyBudgetGovernor::LatencyBudgetGovernor(
    const GovernorParams &params)
    : PolicyBase("latency-budget", FlowOptions{},
                 /*redistribute=*/true),
      up_(OndemandGovernor::kDefaultUpThreshold),
      stallGate_(OndemandGovernor::kDefaultStallGate)
{
    double budget_us = kDefaultBudgetUs;
    double burst = kDefaultBurstWindows;
    for (const auto &kv : params) {
        if (kv.first == "budget-us")
            budget_us =
                parseNum("latency-budget", kv.first, kv.second);
        else if (kv.first == "burst")
            burst = parseNum("latency-budget", kv.first, kv.second);
        else if (kv.first == "up")
            up_ = parseNum("latency-budget", kv.first, kv.second);
        else if (kv.first == "stall-gate")
            stallGate_ =
                parseNum("latency-budget", kv.first, kv.second);
        else
            badParam("latency-budget", kv.first,
                     "budget-us, burst, up, stall-gate");
    }
    if (budget_us <= 0.0 || burst < 1.0) {
        throw std::invalid_argument(
            "governor \"latency-budget\": budget-us must be positive "
            "and burst at least 1");
    }
    perWindow_ = static_cast<Tick>(budget_us * kTicksPerUs);
    cap_ = static_cast<Tick>(burst * perWindow_);
}

void
LatencyBudgetGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                              const soc::CounterSnapshot &avg)
{
    accrued_ = std::min(accrued_ + perWindow_, cap_);

    const soc::OperatingPoint &low = soc.opPoints().low();
    const soc::OperatingPoint &high = soc.opPoints().high();
    const double low_rho =
        soc.recentBandwidth() / pointCapacity(soc, low);
    const bool pressure =
        low_rho > up_ ||
        avg[soc::Counter::LlcStalls] > stallGate_;

    if (pressure) {
        // Upward moves are QoS-critical and never constrained.
        drv.requestOpPoint(high);
        return;
    }

    // Downward moves spend from the budget: the driver denies the
    // flow when its estimated latency exceeds what is accrued.
    drv.setTransitionLatencyLimit(accrued_);
    const std::uint64_t runs_before = drv.flowRuns();
    drv.requestOpPoint(low);
    drv.setTransitionLatencyLimit(0);
    if (drv.flowRuns() > runs_before) {
        const Tick spent = drv.lastFlowLatency();
        accrued_ = spent >= accrued_ ? 0 : accrued_ - spent;
    }
}

// ---------------------------------------------------------------
// adaptive
// ---------------------------------------------------------------

OnlineAdaptiveGovernor::OnlineAdaptiveGovernor(
    const GovernorParams &params)
    : PolicyBase("adaptive", FlowOptions{}, /*redistribute=*/true),
      margin_(kDefaultMargin), bound_(kDefaultBound),
      minSamples_(kDefaultMinSamples),
      defaults_(SysScaleGovernor::defaultThresholds()),
      thresholds_(defaults_)
{
    for (const auto &kv : params) {
        if (kv.first == "margin")
            margin_ = parseNum("adaptive", kv.first, kv.second);
        else if (kv.first == "bound")
            bound_ = parseNum("adaptive", kv.first, kv.second);
        else if (kv.first == "min-samples")
            minSamples_ = parseU64("adaptive", kv.first, kv.second);
        else
            badParam("adaptive", kv.first,
                     "margin, bound, min-samples");
    }
    if (!(margin_ > 0.0 && margin_ <= 1.0) ||
        !(bound_ >= 0.0 && bound_ < 1.0)) {
        throw std::invalid_argument(
            "governor \"adaptive\": margin must be in (0,1] and "
            "bound in [0,1)");
    }
}

void
OnlineAdaptiveGovernor::init(GovernorDriver &drv, soc::Soc &soc)
{
    (void)drv;
    // Same static gate as SysScale: the bandwidth the low point can
    // carry while honoring isochronous QoS.
    const soc::OperatingPoint &low = soc.opPoints().low();
    const BytesPerSec low_capacity =
        soc.config().dramSpec.peakBandwidth(low.dramBin) *
        soc.mrc().optimizedSet(low.dramBin).interfaceEfficiency;
    defaults_.staticBw = low_capacity * margin_;
    thresholds_ = defaults_;
    safeSamples_ = 0;
    clamps_ = 0;
    sum_.fill(0.0);
    sumSq_.fill(0.0);
}

void
OnlineAdaptiveGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                               const soc::CounterSnapshot &avg)
{
    // --- Learn from the window just observed (Sec. 4.2, online). --
    // A window is "safe to run low" when its observed bandwidth fits
    // under the low point's guaranteed capacity with the degradation
    // bound to spare — the online proxy for the offline corpus's
    // normPerf >= 1 - bound label.
    const bool window_safe =
        soc.recentBandwidth() <=
        thresholds_.staticBw * (1.0 - bound_);

    if (window_safe) {
        ++safeSamples_;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
            sum_[i] += avg.values[i];
            sumSq_[i] += avg.values[i] * avg.values[i];
        }
        if (safeSamples_ >= minSamples_) {
            const double n = static_cast<double>(safeSamples_);
            for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
                const double mean = sum_[i] / n;
                const double var =
                    std::max(0.0, sumSq_[i] / n - mean * mean);
                // Threshold = mu + sigma, floored so an all-quiet
                // corpus cannot collapse a counter's gate to zero.
                thresholds_.counter[i] =
                    std::max(mean + std::sqrt(var),
                             defaults_.counter[i] * kFloorShare);
            }
        }
    } else {
        // Zero-false-positive clamp: an unsafe window that would
        // slip under every counter threshold pulls the most
        // prominent threshold below that window's value.
        const DemandPredictor check(thresholds_, {});
        const ConditionVector cond = check.conditions(
            avg, table_.staticDemand(soc.csr()));
        if (!cond.any()) {
            std::size_t worst = 0;
            double worst_ratio = -1.0;
            for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
                if (thresholds_.counter[i] <= 0.0)
                    continue;
                const double ratio =
                    avg.values[i] / thresholds_.counter[i];
                if (ratio > worst_ratio) {
                    worst_ratio = ratio;
                    worst = i;
                }
            }
            if (avg.values[worst] > 0.0) {
                thresholds_.counter[worst] =
                    avg.values[worst] * 0.999;
                ++clamps_;
            }
        }
    }

    // --- Decide with the current thresholds (Sec. 4.3 rule). ------
    const BytesPerSec static_demand =
        table_.staticDemand(soc.csr());
    Thresholds active = thresholds_;
    const bool at_high =
        soc.currentOpPoint() == soc.opPoints().high();
    if (!at_high) {
        for (double &t : active.counter)
            t *= SysScaleGovernor::kUpHysteresis;
    }
    const DemandPredictor pred(active, {});
    const ConditionVector cond =
        pred.conditions(avg, static_demand);
    drv.requestOpPoint(cond.any() ? soc.opPoints().high()
                                  : soc.opPoints().low());
}

void
ConservativeGovernor::saveState(SnapshotWriter &w) const
{
    w.putU64("idx", idx_);
}

void
ConservativeGovernor::loadState(SnapshotReader &r)
{
    idx_ = r.getU64("idx");
}

void
UserspaceTableGovernor::saveState(SnapshotWriter &w) const
{
    w.putU64("evals", evals_);
}

void
UserspaceTableGovernor::loadState(SnapshotReader &r)
{
    evals_ = r.getU64("evals");
}

void
LatencyBudgetGovernor::saveState(SnapshotWriter &w) const
{
    w.putU64("accrued", accrued_);
}

void
LatencyBudgetGovernor::loadState(SnapshotReader &r)
{
    accrued_ = r.getU64("accrued");
}

void
OnlineAdaptiveGovernor::saveState(SnapshotWriter &w) const
{
    for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
        const std::string n = std::to_string(i);
        w.putDouble("thr_counter" + n, thresholds_.counter[i]);
        w.putDouble("sum" + n, sum_[i]);
        w.putDouble("sum_sq" + n, sumSq_[i]);
    }
    w.putDouble("thr_static_bw", thresholds_.staticBw);
    w.putU64("safe_samples", safeSamples_);
    w.putU64("clamps", clamps_);
}

void
OnlineAdaptiveGovernor::loadState(SnapshotReader &r)
{
    for (std::size_t i = 0; i < soc::kNumCounters; ++i) {
        const std::string n = std::to_string(i);
        thresholds_.counter[i] = r.getDouble("thr_counter" + n);
        sum_[i] = r.getDouble("sum" + n);
        sumSq_[i] = r.getDouble("sum_sq" + n);
    }
    thresholds_.staticBw = r.getDouble("thr_static_bw");
    safeSamples_ = r.getU64("safe_samples");
    clamps_ = r.getU64("clamps");
}

} // namespace core
} // namespace sysscale
