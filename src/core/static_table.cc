#include "core/static_table.hh"

#include "io/display.hh"
#include "io/isp.hh"
#include "sim/logging.hh"

namespace sysscale {
namespace core {

StaticDemandTable::StaticDemandTable()
{
    // Entries are computed once from the display-engine model at
    // 60Hz — the firmware equivalent ships these as constants.
    const io::PanelResolution res[4] = {
        io::PanelResolution::HD, io::PanelResolution::FHD,
        io::PanelResolution::QHD, io::PanelResolution::UHD4K,
    };
    for (std::size_t i = 0; i < 4; ++i) {
        io::PanelConfig cfg;
        cfg.resolution = res[i];
        cfg.refreshHz = 60.0;
        panelTable_[i] = io::DisplayEngine::panelBandwidth(cfg);
    }
}

BytesPerSec
StaticDemandTable::panelEntry(std::uint64_t resolution_code) const
{
    SYSSCALE_ASSERT(resolution_code >= 1 && resolution_code <= 4,
                    "panel resolution code %llu out of range",
                    static_cast<unsigned long long>(resolution_code));
    return panelTable_[resolution_code - 1];
}

BytesPerSec
StaticDemandTable::staticDemand(const io::CsrSpace &csr) const
{
    BytesPerSec total = 0.0;

    for (std::size_t i = 0; i < io::DisplayEngine::kMaxPanels; ++i) {
        const std::uint64_t code =
            csr.read(io::DisplayEngine::csrResolution(i));
        if (code == 0)
            continue;
        const double refresh = static_cast<double>(
            csr.read(io::DisplayEngine::csrRefresh(i)));
        total += panelEntry(code) * (refresh / 60.0);
    }

    if (csr.read(io::IspEngine::kCsrActive) != 0) {
        const double pixel_rate = static_cast<double>(
            csr.read(io::IspEngine::kCsrPixelRate));
        total += pixel_rate * kIspBytesPerPixel;
    }

    return total;
}

std::size_t
StaticDemandTable::firmwareBytes() const
{
    // 4 panel entries x 8B, refresh scaling code, ISP coefficient.
    return panelTable_.size() * 8 + 24;
}

} // namespace core
} // namespace sysscale
