/**
 * @file
 * Offline threshold training (paper Sec. 4.2).
 *
 * "We set a bound on the performance degradation (e.g., 1%) when
 * operating in MD-DVFS. We mark all the runs that have a performance
 * degradation below this bound, and for the corresponding
 * performance counter values, we calculate the mean and the standard
 * deviation. We set the threshold for each performance counter as
 * Threshold = mu + sigma."
 *
 * The trainer additionally enforces the paper's zero-false-positive
 * property ("there are no predictions where the algorithm decides to
 * move the SoC to a lower DVFS operating point while the actual
 * performance degradation is more than the bound"): any unsafe
 * training run that would slip under every threshold pulls the most
 * discriminative threshold down below that run's counter value.
 *
 * A least-squares linear model over the same counters provides the
 * predicted-performance series of Fig. 6.
 */

#ifndef SYSSCALE_CORE_THRESHOLD_TRAINER_HH
#define SYSSCALE_CORE_THRESHOLD_TRAINER_HH

#include <vector>

#include "core/demand_predictor.hh"

namespace sysscale {
namespace core {

/** One corpus run: counters at the high point, measured outcome. */
struct TrainingSample
{
    soc::CounterSnapshot counters;

    /** Performance at the low point normalized to the high point. */
    double normPerf = 1.0;
};

/** Predictor quality metrics (Fig. 6 panel annotations). */
struct PredictionStats
{
    /** Pearson correlation of predicted vs. actual normPerf. */
    double correlation = 0.0;

    /** Fraction of correct safe/unsafe decisions. */
    double accuracy = 0.0;

    /** Decisions "safe" where the run was actually unsafe. */
    std::size_t falsePositives = 0;

    /** Decisions "unsafe" where the run was actually safe. */
    std::size_t falseNegatives = 0;

    std::size_t samples = 0;
};

/**
 * The offline training pass.
 */
class ThresholdTrainer
{
  public:
    /**
     * Train counter thresholds at @p degradation_bound (default 1%,
     * i.e. runs with normPerf >= 0.99 are "safe").
     */
    static Thresholds train(const std::vector<TrainingSample> &corpus,
                            double degradation_bound = 0.01);

    /** Fit the Fig. 6 linear impact model by least squares. */
    static LinearImpactModel
    fitLinear(const std::vector<TrainingSample> &corpus);

    /** Evaluate a trained predictor against a corpus. */
    static PredictionStats
    evaluate(const DemandPredictor &predictor,
             const std::vector<TrainingSample> &corpus,
             double degradation_bound = 0.01);

    /** Pearson correlation between two equal-length series. */
    static double correlation(const std::vector<double> &a,
                              const std::vector<double> &b);
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_THRESHOLD_TRAINER_HH
