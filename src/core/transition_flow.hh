/**
 * @file
 * The SysScale power-management transition flow (paper Fig. 5).
 *
 * Nine steps carry the SoC from one IO/memory operating point to
 * another:
 *
 *   1. demand prediction selects target frequencies/voltages,
 *   2. when increasing frequency: raise voltages first,
 *   3. block and drain the IO interconnect and LLC-to-MC traffic,
 *   4. DRAM enters self-refresh,
 *   5. load optimized MRC values from on-chip SRAM into the MC,
 *      DDRIO, and DRAM configuration registers,
 *   6. relock PLLs/DLLs to the new frequencies,
 *   7. when decreasing frequency: reduce voltages now,
 *   8. DRAM exits self-refresh,
 *   9. release the interconnect and LLC traffic.
 *
 * SysScale bounds the whole flow below 10us (Sec. 5) by overlapping
 * the per-domain DVFS latencies and caching the MRC register images
 * in SRAM. Baseline governors that lack those features pay a
 * firmware MRC path and a full interface retrain — the FlowOptions
 * knobs reproduce exactly that gap.
 */

#ifndef SYSSCALE_CORE_TRANSITION_FLOW_HH
#define SYSSCALE_CORE_TRANSITION_FLOW_HH

#include <array>
#include <cstdint>

#include "soc/soc.hh"

namespace sysscale {
namespace core {

/** Feature knobs distinguishing SysScale from prior mechanisms. */
struct FlowOptions
{
    /** Scale the IO interconnect clock with the memory bin. */
    bool scaleFabric = true;

    /** Ramp the shared V_SA rail (requires fabric scaling). */
    bool scaleVsa = true;

    /** Ramp the DDRIO-digital / IO PHY rail. */
    bool scaleVio = true;

    /** Program the target bin's trained MRC registers. */
    bool useOptimizedMrc = true;

    /** Load register images from SRAM (else firmware recompute). */
    bool sramMrc = true;
};

/** One timed flow step. */
struct FlowStep
{
    const char *name = "";
    Tick latency = 0;
};

/** Flow steps, indexed as in Fig. 5. */
constexpr std::size_t kNumFlowSteps = 9;

/** Outcome of one flow execution. */
struct FlowReport
{
    Tick totalLatency = 0;
    std::array<FlowStep, kNumFlowSteps> steps{};
    bool increased = false; //!< Frequency went up.
    bool executed = false;  //!< False when already at the target.
};

/**
 * Executes operating-point transitions against a live SoC.
 */
class TransitionFlow
{
  public:
    explicit TransitionFlow(soc::Soc &soc, FlowOptions opts = {});

    const FlowOptions &options() const { return opts_; }

    /**
     * Run the flow to @p target. Applies all hardware changes,
     * charges the stall to the SoC (Soc::noteTransition), and
     * returns the per-step latency decomposition.
     */
    FlowReport execute(const soc::OperatingPoint &target);

    /**
     * Model estimate of what execute(@p target) would cost, without
     * touching the hardware: fixed step latencies + the voltage ramp
     * at the configured slew rate + the MRC path (SRAM load or
     * firmware recompute). The traffic-dependent block-and-drain
     * step is excluded (it depends on in-flight transactions), so
     * this is a tight lower bound — the right shape for a latency-
     * budget constraint. Returns 0 when already at @p target.
     */
    Tick estimate(const soc::OperatingPoint &target) const;

    /** @name Fixed step latencies (Sec. 5). @{ */

    /** Firmware decision/dispatch overhead (step 1 + glue, <1us). */
    static constexpr Tick kFirmwareLatency = 500 * kTicksPerNs;

    /** DRAM self-refresh entry (step 4). */
    static constexpr Tick kSrEntryLatency = 200 * kTicksPerNs;

    /** Fabric/MC PLL relock (step 6, overlapped with DDRIO DLL). */
    static constexpr Tick kPllRelockLatency = 1 * kTicksPerUs;

    /** Unblock/release (step 9). */
    static constexpr Tick kReleaseLatency = 100 * kTicksPerNs;

    /**
     * MRC register derivation without SysScale's SRAM cache: the
     * firmware must recompute/retrain values (tens of us).
     */
    static constexpr Tick kMrcFirmwareRecalc = 60 * kTicksPerUs;
    /** @} */

  private:
    soc::Soc &soc_;
    FlowOptions opts_;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_TRANSITION_FLOW_HH
