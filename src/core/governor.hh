/**
 * @file
 * The governor policy-layer interface (CPUFreq-style split).
 *
 * Mirroring the Linux CPUFreq architecture, power-management policy
 * and mechanics live in separate layers:
 *
 *  - A Governor (this file) is pure *policy*: it looks at counters
 *    and SoC state and decides which operating point it wants. It
 *    never touches SoC mutators directly (the repo-invariant linter
 *    enforces this) — every grant goes through the driver.
 *  - The GovernorDriver (governor_driver.hh) owns *mechanics*:
 *    executing the Fig. 5 transition flow, enforcing transition-
 *    latency constraints, recomputing power budgets, and publishing
 *    pre/post transition notifiers that stats subscribe to.
 *  - The GovernorHost (below) adapts a Governor onto the PMU's
 *    PmuPolicy slot: it builds one driver per installation, wires
 *    the governor's notify() hook to the post-transition notifier,
 *    and accounts per-governor transition statistics.
 *
 * Concrete policies register by name in governor_registry.hh; see
 * docs/ARCHITECTURE.md for the layer diagram and docs/EXPERIMENTS.md
 * for the "adding a governor" cookbook.
 */

#ifndef SYSSCALE_CORE_GOVERNOR_HH
#define SYSSCALE_CORE_GOVERNOR_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/transition_flow.hh"
#include "soc/pmu.hh"
#include "soc/soc.hh"

namespace sysscale {
namespace core {

class GovernorDriver;

/**
 * Key=value parameters a governor is constructed with. Serialized
 * through the spec codec (format v5) so parameterized governors are
 * first-class grid axes with stable cache keys.
 */
using GovernorParams =
    std::vector<std::pair<std::string, std::string>>;

/**
 * One operating-point transition, as seen by the notifier chain.
 * Pre-transition subscribers observe the intent (latency fields
 * still zero); post-transition subscribers observe the outcome.
 */
struct TransitionRecord
{
    soc::OperatingPoint from;
    soc::OperatingPoint to;

    /** Flow latency (post only; 0 in the pre notification). */
    Tick latency = 0;

    /** Frequency went up (post only). */
    bool increased = false;

    /** The flow actually ran (post only). */
    bool executed = false;
};

/**
 * Uniform policy interface: init / decide / notify / teardown.
 */
class Governor
{
  public:
    virtual ~Governor() = default;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Firmware bytes this policy adds to the PMU image (Sec. 5). */
    virtual std::size_t firmwareBytes() const { return 0; }

    /** Transition-flow feature knobs this policy runs with. */
    virtual FlowOptions flowOptions() const { return FlowOptions{}; }

    /** Whether saved IO/memory budget is redistributed to compute. */
    virtual bool redistributes() const { return true; }

    /** Called once when installed, before the first decide(). */
    virtual void
    init(GovernorDriver &drv, soc::Soc &soc)
    {
        (void)drv;
        (void)soc;
    }

    /**
     * Evaluation-interval hook: request an operating point through
     * the driver from the window-averaged counters.
     */
    virtual void decide(GovernorDriver &drv, soc::Soc &soc,
                        const soc::CounterSnapshot &avg) = 0;

    /** Post-transition notification (after the flow applied). */
    virtual void notify(const TransitionRecord &rec) { (void)rec; }

    /** @name Snapshot support: stateless policies need nothing. @{ */
    virtual void saveState(SnapshotWriter &w) const { (void)w; }
    virtual void loadState(SnapshotReader &r) { (void)r; }
    /** @} */

    /** Called when the policy is uninstalled or the host dies. */
    virtual void teardown() {}
};

/** Per-governor transition accounting fed by the notifiers. */
struct TransitionStats
{
    std::uint64_t requested = 0; //!< Pre notifications seen.
    std::uint64_t executed = 0;  //!< Flows that actually ran.
    std::uint64_t increases = 0; //!< Executed upward transitions.
    std::uint64_t decreases = 0; //!< Executed downward transitions.
    Tick totalLatency = 0;       //!< Sum of executed flow latencies.
    Tick maxLatency = 0;         //!< Slowest executed flow.
};

/**
 * Adapts a Governor onto the PMU's PmuPolicy slot. Owns (or borrows)
 * the policy and owns one GovernorDriver per installation; the
 * driver is rebuilt on every reset() so cached policy objects can
 * never leak mechanics state between SoCs.
 */
class GovernorHost : public soc::PmuPolicy
{
  public:
    /** Own @p gov (registry path). */
    explicit GovernorHost(std::unique_ptr<Governor> gov);

    /** Borrow @p gov (tests/benches that inspect policy state). */
    explicit GovernorHost(Governor &gov);

    ~GovernorHost() override;

    const char *name() const override;
    std::size_t firmwareBytes() const override;

    void reset(soc::Soc &soc) override;
    void evaluate(soc::Soc &soc,
                  const soc::CounterSnapshot &avg) override;

    Governor &governor() { return *gov_; }
    const Governor &governor() const { return *gov_; }

    /** The mechanics layer; valid after reset() installed it. */
    GovernorDriver &driver();
    const GovernorDriver &driver() const;

    /** Per-governor transition accounting (notifier-fed). */
    const TransitionStats &transitionStats() const { return stats_; }

    /** @name Snapshot support: host accounting + driver mechanics +
     *  the policy's own state (delegated). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    std::unique_ptr<Governor> owned_;
    Governor *gov_;
    std::unique_ptr<GovernorDriver> driver_;
    TransitionStats stats_;
    bool inited_ = false;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNOR_HH
