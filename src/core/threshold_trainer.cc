#include "core/threshold_trainer.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace core {

namespace {

constexpr std::size_t kN = soc::kNumCounters;

bool
safeSample(const TrainingSample &s, double bound)
{
    return s.normPerf >= 1.0 - bound;
}

bool
underAllThresholds(const TrainingSample &s, const Thresholds &thr)
{
    for (std::size_t i = 0; i < kN; ++i) {
        if (s.counters.values[i] > thr.counter[i])
            return false;
    }
    return true;
}

/**
 * Solve the symmetric system A x = b (dim n) by Gaussian elimination
 * with partial pivoting. Returns false on singularity.
 */
bool
solveLinearSystem(std::vector<std::vector<double>> &a,
                  std::vector<double> &b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        if (std::fabs(a[pivot][col]) < 1e-12)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    for (std::size_t col = n; col-- > 0;) {
        for (std::size_t k = col + 1; k < n; ++k)
            b[col] -= a[col][k] * b[k];
        b[col] /= a[col][col];
    }
    return true;
}

} // namespace

Thresholds
ThresholdTrainer::train(const std::vector<TrainingSample> &corpus,
                        double degradation_bound)
{
    if (corpus.empty())
        SYSSCALE_FATAL("threshold training on an empty corpus");

    Thresholds thr;

    // Mean and standard deviation of each counter over safe runs.
    std::array<double, kN> sum{};
    std::array<double, kN> sumsq{};
    std::size_t safe = 0;
    for (const TrainingSample &s : corpus) {
        if (!safeSample(s, degradation_bound))
            continue;
        ++safe;
        for (std::size_t i = 0; i < kN; ++i) {
            sum[i] += s.counters.values[i];
            sumsq[i] += s.counters.values[i] * s.counters.values[i];
        }
    }
    if (safe == 0)
        SYSSCALE_FATAL("no safe runs below the %.1f%% bound",
                       degradation_bound * 100.0);

    for (std::size_t i = 0; i < kN; ++i) {
        const double mu = sum[i] / static_cast<double>(safe);
        const double var = std::max(
            0.0, sumsq[i] / static_cast<double>(safe) - mu * mu);
        thr.counter[i] = mu + std::sqrt(var);
    }

    // Zero-false-positive pass: every unsafe run must exceed at
    // least one threshold. When one slips under all of them, clamp
    // the threshold of its most prominent counter (relative to the
    // current threshold) just below that run's value.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const TrainingSample &s : corpus) {
            if (safeSample(s, degradation_bound))
                continue;
            if (!underAllThresholds(s, thr))
                continue;

            std::size_t best = 0;
            double best_ratio = -1.0;
            for (std::size_t i = 0; i < kN; ++i) {
                const double ratio =
                    thr.counter[i] > 0.0
                        ? s.counters.values[i] / thr.counter[i]
                        : 0.0;
                if (ratio > best_ratio) {
                    best_ratio = ratio;
                    best = i;
                }
            }
            thr.counter[best] =
                std::max(0.0, s.counters.values[best] * 0.999);
            changed = true;
        }
    }

    return thr;
}

LinearImpactModel
ThresholdTrainer::fitLinear(const std::vector<TrainingSample> &corpus)
{
    if (corpus.size() < kN + 1)
        SYSSCALE_FATAL("linear fit needs more than %zu samples",
                       kN + 1);

    // The raw counters span six orders of magnitude (stall cycles
    // vs queue occupancies), which makes the raw normal equations
    // numerically hopeless. Standardize each feature first, solve a
    // lightly ridged system in z-score space, then map the weights
    // back. Dead features (e.g. GFX misses in a CPU-only corpus)
    // get sigma = 0 and a zero weight.
    const double n = static_cast<double>(corpus.size());
    std::array<double, kN> mean{};
    std::array<double, kN> sigma{};
    for (const TrainingSample &s : corpus) {
        for (std::size_t i = 0; i < kN; ++i)
            mean[i] += s.counters.values[i];
    }
    for (std::size_t i = 0; i < kN; ++i)
        mean[i] /= n;
    for (const TrainingSample &s : corpus) {
        for (std::size_t i = 0; i < kN; ++i) {
            const double d = s.counters.values[i] - mean[i];
            sigma[i] += d * d;
        }
    }
    for (std::size_t i = 0; i < kN; ++i)
        sigma[i] = std::sqrt(sigma[i] / n);

    constexpr std::size_t dim = kN + 1;
    std::vector<std::vector<double>> a(dim,
                                       std::vector<double>(dim, 0.0));
    std::vector<double> b(dim, 0.0);

    for (const TrainingSample &s : corpus) {
        std::array<double, dim> x;
        for (std::size_t i = 0; i < kN; ++i) {
            x[i] = sigma[i] > 0.0
                       ? (s.counters.values[i] - mean[i]) / sigma[i]
                       : 0.0;
        }
        x[kN] = 1.0;
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j)
                a[i][j] += x[i] * x[j];
            b[i] += x[i] * s.normPerf;
        }
    }

    for (std::size_t i = 0; i < dim; ++i)
        a[i][i] += 1e-6 * n;

    LinearImpactModel model;
    if (!solveLinearSystem(a, b)) {
        // Degenerate corpus (e.g. constant counters): predict the
        // mean performance.
        double perf_mean = 0.0;
        for (const TrainingSample &s : corpus)
            perf_mean += s.normPerf;
        model.bias = perf_mean / n;
        return model;
    }

    model.bias = b[kN];
    for (std::size_t i = 0; i < kN; ++i) {
        if (sigma[i] > 0.0) {
            model.weight[i] = b[i] / sigma[i];
            model.bias -= b[i] * mean[i] / sigma[i];
        }
    }
    return model;
}

double
ThresholdTrainer::correlation(const std::vector<double> &a,
                              const std::vector<double> &b)
{
    SYSSCALE_ASSERT(a.size() == b.size() && !a.empty(),
                    "correlation needs equal non-empty series");
    const double n = static_cast<double>(a.size());
    double sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0, sab = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sa += a[i];
        sb += b[i];
        saa += a[i] * a[i];
        sbb += b[i] * b[i];
        sab += a[i] * b[i];
    }
    const double cov = sab / n - (sa / n) * (sb / n);
    const double va = saa / n - (sa / n) * (sa / n);
    const double vb = sbb / n - (sb / n) * (sb / n);
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

PredictionStats
ThresholdTrainer::evaluate(const DemandPredictor &predictor,
                           const std::vector<TrainingSample> &corpus,
                           double degradation_bound)
{
    PredictionStats stats;
    stats.samples = corpus.size();

    std::vector<double> actual, predicted;
    actual.reserve(corpus.size());
    predicted.reserve(corpus.size());

    std::size_t correct = 0;
    for (const TrainingSample &s : corpus) {
        const bool is_safe = safeSample(s, degradation_bound);
        const bool predicted_high =
            predictor.demandsHighPoint(s.counters, 0.0);
        const bool predicted_safe = !predicted_high;

        if (predicted_safe == is_safe) {
            ++correct;
        } else if (predicted_safe && !is_safe) {
            ++stats.falsePositives;
        } else {
            ++stats.falseNegatives;
        }

        actual.push_back(s.normPerf);
        predicted.push_back(
            std::clamp(predictor.predictedImpact(s.counters), 0.0,
                       1.2));
    }

    stats.accuracy =
        corpus.empty()
            ? 0.0
            : static_cast<double>(correct) /
                  static_cast<double>(corpus.size());
    stats.correlation = correlation(actual, predicted);
    return stats;
}

} // namespace core
} // namespace sysscale
