#include "core/governor_registry.hh"

#include <stdexcept>

#include "core/governor_zoo.hh"
#include "core/governors.hh"

namespace sysscale {
namespace core {

namespace {

/** Throw when a parameterless governor receives parameters. */
void
rejectParams(const char *name, const GovernorParams &params)
{
    if (!params.empty()) {
        throw std::invalid_argument(
            std::string("governor \"") + name +
            "\" takes no parameters");
    }
}

/**
 * Registration idiom. Keep each call on one line starting with
 * `addEntry(reg, "<name>"` — check_docs.sh greps this file for that
 * pattern to enforce that every registered name appears in the docs.
 */
void
addEntry(std::vector<GovernorEntry> &reg, const char *name,
         const char *summary,
         std::function<std::unique_ptr<Governor>(
             const GovernorParams &)> make)
{
    reg.push_back(GovernorEntry{name, summary, std::move(make)});
}

std::vector<GovernorEntry>
buildRegistry()
{
    std::vector<GovernorEntry> reg;

    addEntry(reg, "fixed",
             "paper baseline: IO/memory domains pinned at the high "
             "point, worst-case budgets",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("fixed", p);
                 return std::make_unique<FixedGovernor>();
             });

    addEntry(reg, "sysscale",
             "the paper's five-condition multi-domain governor "
             "(Sec. 4) with budget redistribution",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("sysscale", p);
                 return std::make_unique<SysScaleGovernor>();
             });

    addEntry(reg, "memscale",
             "memory-domain-only DVFS [Deng+, ASPLOS'11]",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("memscale", p);
                 return std::make_unique<MemScaleGovernor>(false);
             });

    addEntry(reg, "memscale-r",
             "MemScale plus power-budget redistribution",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("memscale-r", p);
                 return std::make_unique<MemScaleGovernor>(true);
             });

    addEntry(reg, "coscale",
             "coordinated CPU+memory DVFS [Deng+, MICRO'12]",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("coscale", p);
                 return std::make_unique<CoScaleGovernor>(false);
             });

    addEntry(reg, "coscale-r",
             "CoScale plus power-budget redistribution",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 rejectParams("coscale-r", p);
                 return std::make_unique<CoScaleGovernor>(true);
             });

    addEntry(reg, "ondemand",
             "CPUFreq-style load governor: high under pressure, low "
             "when the low point has headroom",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 return std::make_unique<OndemandGovernor>(p);
             });

    addEntry(reg, "conservative",
             "CPUFreq-style graceful governor: one table step per "
             "evaluation in either direction",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 return std::make_unique<ConservativeGovernor>(p);
             });

    addEntry(reg, "userspace",
             "declarative operating point: fixed table index or a "
             "time-indexed schedule",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 return std::make_unique<UserspaceTableGovernor>(p);
             });

    addEntry(reg, "latency-budget",
             "ondemand targets under a per-window transition-latency "
             "budget enforced by the driver",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 return std::make_unique<LatencyBudgetGovernor>(p);
             });

    addEntry(reg, "adaptive",
             "SysScale decision rule with thresholds that keep "
             "learning (mu+sigma + clamp) during the run",
             [](const GovernorParams &p) -> std::unique_ptr<Governor> {
                 return std::make_unique<OnlineAdaptiveGovernor>(p);
             });

    return reg;
}

} // anonymous namespace

const std::vector<GovernorEntry> &
governorRegistry()
{
    static const std::vector<GovernorEntry> reg = buildRegistry();
    return reg;
}

std::vector<std::string>
governorNames()
{
    std::vector<std::string> names;
    for (const GovernorEntry &e : governorRegistry())
        names.push_back(e.name);
    return names;
}

bool
isRegisteredGovernor(const std::string &name)
{
    for (const GovernorEntry &e : governorRegistry()) {
        if (e.name == name)
            return true;
    }
    return false;
}

std::unique_ptr<Governor>
makeGovernor(const std::string &name, const GovernorParams &params)
{
    for (const GovernorEntry &e : governorRegistry()) {
        if (e.name == name)
            return e.make(params);
    }
    std::string known;
    for (const GovernorEntry &e : governorRegistry()) {
        if (!known.empty())
            known += ", ";
        known += e.name;
    }
    throw std::invalid_argument("unknown governor \"" + name +
                                "\" (registered: " + known + ")");
}

} // namespace core
} // namespace sysscale
