#include "core/transition_flow.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace sysscale {
namespace core {

TransitionFlow::TransitionFlow(soc::Soc &soc, FlowOptions opts)
    : soc_(soc), opts_(opts)
{
    if (opts_.scaleVsa && !opts_.scaleFabric) {
        SYSSCALE_FATAL("V_SA cannot be lowered without scaling the "
                       "fabric that shares the rail (Fig. 1)");
    }
}

Tick
TransitionFlow::estimate(const soc::OperatingPoint &target) const
{
    const soc::OperatingPoint current = soc_.currentOpPoint();
    if (current == target)
        return 0;

    // Rails ramp in parallel; the larger swing dominates.
    const Volt vsa_target =
        opts_.scaleVsa ? target.vSa : current.vSa;
    const Volt vio_target =
        opts_.scaleVio ? target.vIo : current.vIo;
    const double dv = std::max(std::fabs(vsa_target - current.vSa),
                               std::fabs(vio_target - current.vIo));
    const Tick ramp = static_cast<Tick>(
        dv / soc_.config().vrSlewRate * kTicksPerSec);

    Tick total = kFirmwareLatency + ramp + kSrEntryLatency;
    total += opts_.sramMrc ? soc_.mrc().loadLatency()
                           : kMrcFirmwareRecalc;
    total += std::max(kPllRelockLatency,
                      soc_.mc().ddrio().relockLatency());
    // Self-refresh exit relocks at SR-entry scale; drain excluded.
    total += kSrEntryLatency + kReleaseLatency;
    return total;
}

FlowReport
TransitionFlow::execute(const soc::OperatingPoint &target)
{
    FlowReport report;
    const soc::OperatingPoint current = soc_.currentOpPoint();
    if (current == target)
        return report;

    report.executed = true;

    const dram::DramSpec &spec = soc_.config().dramSpec;
    const Hertz cur_clock = spec.bin(current.dramBin).busClock();
    const Hertz new_clock = spec.bin(target.dramBin).busClock();
    report.increased = new_clock > cur_clock ||
                       (new_clock == cur_clock &&
                        target.fabricFreq > current.fabricFreq);

    const Tick t0 = soc_.now();
    auto &steps = report.steps;

    // Step 1: demand prediction / firmware dispatch.
    steps[0] = {"predict", kFirmwareLatency};

    // Voltage targets honoring the feature knobs.
    const Volt vsa_target =
        opts_.scaleVsa ? target.vSa : current.vSa;
    const Volt vio_target =
        opts_.scaleVio ? target.vIo : current.vIo;

    auto ramp_rails = [&]() -> Tick {
        Tick ramp = 0;
        ramp = std::max(ramp,
                        soc_.vsaRegulator().rampTo(vsa_target, t0));
        ramp = std::max(ramp,
                        soc_.vioRegulator().rampTo(vio_target, t0));
        return ramp;
    };

    // Step 2: increasing frequency raises voltages first.
    steps[1] = {"raise_voltages",
                report.increased ? ramp_rails() : 0};

    // Step 3: block and drain the fabric and LLC-to-MC traffic
    // (performed in parallel; the slower drain dominates).
    const Tick drain = std::max(soc_.fabric().blockAndDrain(),
                                soc_.mc().blockAndDrain());
    steps[2] = {"block_drain", drain};

    // Step 4: DRAM enters self-refresh.
    soc_.dram().enterSelfRefresh();
    steps[3] = {"sr_entry", kSrEntryLatency};

    // Step 5: program MC/DDRIO/DRAM configuration registers.
    soc_.dram().setBin(target.dramBin);
    const mem::MrcRegisterSet regs =
        opts_.useOptimizedMrc
            ? soc_.mrc().optimizedSet(target.dramBin)
            : soc_.mrc().crossBinSet(target.mrcTrainedBin,
                                     target.dramBin);
    soc_.mc().programRegisters(regs);
    steps[4] = {"load_mrc", opts_.sramMrc ? soc_.mrc().loadLatency()
                                          : kMrcFirmwareRecalc};

    // Step 6: relock PLLs/DLLs to the new clocks (overlapped).
    if (opts_.scaleFabric)
        soc_.fabric().setFrequency(target.fabricFreq);
    steps[5] = {"relock",
                std::max(kPllRelockLatency,
                         soc_.mc().ddrio().relockLatency())};

    // Step 7: decreasing frequency lowers voltages now.
    steps[6] = {"reduce_voltages",
                report.increased ? 0 : ramp_rails()};

    // Static rail bookkeeping follows the regulators' end state.
    soc_.mc().setVsa(vsa_target);
    soc_.fabric().setVsa(vsa_target);
    soc_.mc().ddrio().setVio(vio_target);

    // Step 8: DRAM exits self-refresh (fast relock with SRAM state).
    steps[7] = {"sr_exit",
                soc_.dram().exitSelfRefresh(opts_.sramMrc)};

    // Step 9: release the interconnect and LLC traffic.
    soc_.fabric().release();
    soc_.mc().release();
    steps[8] = {"release", kReleaseLatency};

    for (const FlowStep &s : steps)
        report.totalLatency += s.latency;

    // The stall is charged to the SoC after the fact (sim time does
    // not advance inside execute), so the Fig. 5 decomposition is
    // laid out forward from t0: each phase span starts where the
    // previous one ended.
    obs::TraceSink *sink = soc_.traceSink();
    if (TRACE_ACTIVE(sink)) {
        TRACE_SPAN(sink, obs::kCatTransition, "flow", t0,
                   t0 + report.totalLatency,
                   obs::kv("from", current.name) + "," +
                       obs::kv("to", target.name) + "," +
                       obs::kv("increased",
                               report.increased ? "yes" : "no"));
        Tick cursor = t0;
        for (const FlowStep &s : steps) {
            if (s.latency == 0)
                continue;
            TRACE_SPAN(sink, obs::kCatTransition, s.name, cursor,
                       cursor + s.latency,
                       obs::kv("latency_ns", nsFromTicks(s.latency)));
            cursor += s.latency;
        }
    }
    debugLog("flow: %s -> %s in %.3f us", current.name.c_str(),
             target.name.c_str(), usFromTicks(report.totalLatency));

    // Record the applied point with the options' effective values so
    // budget arithmetic sees what the hardware actually runs at.
    soc::OperatingPoint applied = target;
    applied.vSa = vsa_target;
    applied.vIo = vio_target;
    if (!opts_.scaleFabric)
        applied.fabricFreq = current.fabricFreq;
    if (!opts_.useOptimizedMrc)
        applied.mrcTrainedBin = target.mrcTrainedBin;

    soc_.noteTransition(applied, report.totalLatency);
    return report;
}

} // namespace core
} // namespace sysscale
