/**
 * @file
 * The governor driver layer (CPUFreq-style split, mechanics half).
 *
 * The driver is the only component that applies operating-point
 * grants to the SoC. It owns the Fig. 5 TransitionFlow, recomputes
 * the compute-domain power budget after every request, enforces an
 * optional transition-latency constraint, and publishes pre/post
 * transition notifiers so stats and policies can account transitions
 * without touching mechanics.
 *
 * Policies (core/governor.hh implementations) must route every SoC
 * mutation through this class; the repo-invariant linter's
 * governor-driver-only check rejects direct Soc mutator calls from
 * policy files.
 */

#ifndef SYSSCALE_CORE_GOVERNOR_DRIVER_HH
#define SYSSCALE_CORE_GOVERNOR_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/governor.hh"
#include "core/transition_flow.hh"
#include "soc/soc.hh"

namespace sysscale {
namespace core {

/**
 * Mechanics layer: applies policy decisions to one SoC.
 */
class GovernorDriver
{
  public:
    using TransitionCallback =
        std::function<void(const TransitionRecord &)>;

    GovernorDriver(soc::Soc &soc, FlowOptions opts,
                   bool redistribute);

    /** @name Transition notifiers.
     *
     * Pre callbacks fire before the flow touches the hardware (the
     * record carries the intent; latency fields are zero); post
     * callbacks fire after the flow applied, with the outcome.
     * Same-point requests notify nobody. Callbacks run in
     * subscription order on the requesting thread.
     * @{ */
    void subscribePre(TransitionCallback cb);
    void subscribePost(TransitionCallback cb);
    /** @} */

    /**
     * Apply @p target: run the transition flow (a no-op if already
     * there) and recompute the compute budget. Returns false when
     * the transition-latency constraint denied the request (budgets
     * are still refreshed so the billing cadence never skips).
     */
    bool requestOpPoint(const soc::OperatingPoint &target);

    /** Recompute the compute-domain budget without transitioning. */
    void refreshBudget();

    /** Cap the CPU core clock (0 = uncapped). Mechanics passthrough
     *  so policies never call Soc mutators directly. */
    void setCoreFreqCap(Hertz cap);

    /** @name Transition-latency constraint.
     *
     * With a non-zero limit, requestOpPoint() denies any transition
     * whose estimated flow latency exceeds it (the estimate is
     * TransitionFlow::estimate(): fixed step costs + voltage ramp +
     * MRC path, excluding traffic-dependent drain). 0 disables the
     * constraint.
     * @{ */
    void setTransitionLatencyLimit(Tick limit) { latencyLimit_ = limit; }
    Tick transitionLatencyLimit() const { return latencyLimit_; }
    Tick estimateTransitionLatency(
        const soc::OperatingPoint &target) const;
    /** @} */

    bool redistributes() const { return redistribute_; }
    const FlowOptions &flowOptions() const { return opts_; }

    /** @name Transition accounting (diagnostics). @{ */
    std::uint64_t flowRuns() const { return flowRuns_; }
    Tick lastFlowLatency() const { return lastFlowLatency_; }
    Tick totalFlowLatency() const { return totalFlowLatency_; }
    std::uint64_t deniedRequests() const { return denied_; }
    /** @} */

    /** @name Snapshot support: the latency constraint + accounting
     *  (the flow itself is synchronous and holds no cross-eval
     *  state). @{ */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    soc::Soc &soc_;
    FlowOptions opts_;
    bool redistribute_;
    TransitionFlow flow_;

    std::vector<TransitionCallback> pre_;
    std::vector<TransitionCallback> post_;

    Tick latencyLimit_ = 0;
    std::uint64_t flowRuns_ = 0;
    Tick lastFlowLatency_ = 0;
    Tick totalFlowLatency_ = 0;
    std::uint64_t denied_ = 0;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_GOVERNOR_DRIVER_HH
