#include "core/demand_predictor.hh"

namespace sysscale {
namespace core {

ConditionVector
DemandPredictor::conditions(const soc::CounterSnapshot &avg,
                            BytesPerSec static_demand) const
{
    using soc::Counter;

    ConditionVector v;
    v.staticBw = static_demand > thresholds_.staticBw;
    v.gfxBandwidth = avg[Counter::GfxLlcMisses] >
                     thresholds_.counter[soc::counterIndex(
                         Counter::GfxLlcMisses)];
    v.cpuBandwidth = avg[Counter::LlcOccupancyTracer] >
                     thresholds_.counter[soc::counterIndex(
                         Counter::LlcOccupancyTracer)];
    v.memLatency = avg[Counter::LlcStalls] >
                   thresholds_.counter[soc::counterIndex(
                       Counter::LlcStalls)];
    v.ioLatency = avg[Counter::IoRpq] >
                  thresholds_.counter[soc::counterIndex(
                      Counter::IoRpq)];
    return v;
}

} // namespace core
} // namespace sysscale
