#include "core/governors.hh"

#include <algorithm>

#include "core/governor_driver.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace core {

FixedGovernor::FixedGovernor()
    : PolicyBase("baseline", FlowOptions{}, /*redistribute=*/false)
{
}

void
FixedGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                      const soc::CounterSnapshot &avg)
{
    (void)avg;
    // Pinned at the high point; budgets never move.
    drv.requestOpPoint(soc.opPoints().high());
}

Thresholds
SysScaleGovernor::defaultThresholds()
{
    using soc::Counter;
    Thresholds thr;
    thr.counter[soc::counterIndex(Counter::GfxLlcMisses)] = 1.7e5;
    thr.counter[soc::counterIndex(Counter::LlcOccupancyTracer)] = 5.0;
    thr.counter[soc::counterIndex(Counter::LlcStalls)] = 4.5e5;
    thr.counter[soc::counterIndex(Counter::IoRpq)] = 6.0;
    thr.staticBw = 0.0; // derived from the low point at init
    return thr;
}

SysScaleGovernor::SysScaleGovernor(Thresholds thresholds,
                                   LinearImpactModel model,
                                   FlowOptions opts)
    : PolicyBase("sysscale", opts, /*redistribute=*/true),
      thresholds_(thresholds), model_(model)
{
}

void
SysScaleGovernor::init(GovernorDriver &drv, soc::Soc &soc)
{
    (void)drv;
    if (thresholds_.staticBw <= 0.0) {
        // Condition 1 gate: static demand the low point can carry
        // while honoring isochronous QoS.
        const soc::OperatingPoint &low = soc.opPoints().low();
        const BytesPerSec low_capacity =
            soc.config().dramSpec.peakBandwidth(low.dramBin) *
            soc.mrc().optimizedSet(low.dramBin).interfaceEfficiency;
        thresholds_.staticBw = low_capacity * kStaticMargin;
    }
    predictor_ = DemandPredictor(thresholds_, model_);

    Thresholds up = thresholds_;
    for (double &t : up.counter)
        t *= kUpHysteresis;
    upPredictor_ = DemandPredictor(up, model_);
}

void
SysScaleGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                         const soc::CounterSnapshot &avg)
{
    const BytesPerSec static_demand =
        table_.staticDemand(soc.csr());

    // Counters read higher while running at the low point, so the
    // pair of adjacent points uses dedicated thresholds (Sec. 4.3).
    const bool at_high =
        soc.currentOpPoint() == soc.opPoints().high();
    const DemandPredictor &pred =
        at_high ? predictor_ : upPredictor_;
    lastCond_ = pred.conditions(avg, static_demand);

    // Sec. 4.3: any condition -> high point; none -> low point.
    const soc::OperatingPoint &target =
        lastCond_.any() ? soc.opPoints().high()
                        : soc.opPoints().low();
    drv.requestOpPoint(target);
}

MemScaleGovernor::MemScaleGovernor(bool redistribute)
    : PolicyBase(redistribute ? "memscale-r" : "memscale",
                 FlowOptions{/*scaleFabric=*/false,
                             /*scaleVsa=*/false,
                             /*scaleVio=*/false,
                             /*useOptimizedMrc=*/false,
                             /*sramMrc=*/false},
                 redistribute)
{
}

soc::OperatingPoint
MemScaleGovernor::memOnlyLowPoint(soc::Soc &soc) const
{
    // Memory-domain-only scaling: the DRAM bin and MC clock drop,
    // everything else keeps its boot value and the registers stay
    // trained for the boot bin (Fig. 4 penalties apply).
    soc::OperatingPoint op = soc.opPoints().low();
    const soc::OperatingPoint &high = soc.opPoints().high();
    op.name = "mem-only-low";
    op.fabricFreq = high.fabricFreq;
    op.vSa = high.vSa;
    op.vIo = high.vIo;
    op.mrcTrainedBin = high.dramBin;
    return op;
}

void
MemScaleGovernor::epochDecision(GovernorDriver &drv, soc::Soc &soc,
                                const soc::CounterSnapshot &avg,
                                double stall_thr, double occ_thr,
                                double max_low_rho)
{
    ++evalCount_;

    const bool at_high =
        soc.currentOpPoint().dramBin == soc.opPoints().high().dramBin;
    const double h = at_high ? 1.0 : kEpochHysteresis;

    // Epoch governors model queueing slack before committing to a
    // lower frequency: the projected utilization of the low point
    // must leave headroom, or loaded latency explodes.
    const double low_capacity =
        soc.config().dramSpec.peakBandwidth(
            soc.opPoints().low().dramBin) *
        0.90 * 0.89; // boot-trained registers at the low bin
    const double low_rho = soc.recentBandwidth() / low_capacity;

    const bool bound =
        avg[soc::Counter::LlcStalls] > stall_thr * h ||
        avg[soc::Counter::LlcOccupancyTracer] > occ_thr * h ||
        low_rho > max_low_rho * (at_high ? 1.0 : 1.15);

    if (bound) {
        if (!at_high) {
            // A low sojourn that reverts quickly means the epoch
            // model mispredicted; back off exponentially before
            // trying again (epoch governors thrash on phased
            // workloads otherwise).
            if (evalCount_ - lastWentLow_ <= 3) {
                backoffLen_ = std::min<std::uint64_t>(
                    64, backoffLen_ * 2);
                backoffUntil_ = evalCount_ + backoffLen_;
            } else {
                backoffLen_ = 2;
            }
        }
        drv.requestOpPoint(soc.opPoints().high());
        return;
    }

    if (at_high && evalCount_ < backoffUntil_) {
        drv.refreshBudget();
        return;
    }

    if (at_high)
        lastWentLow_ = evalCount_;
    drv.requestOpPoint(memOnlyLowPoint(soc));
}

void
MemScaleGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                         const soc::CounterSnapshot &avg)
{
    // Memory-side epoch model: conservative gates because MemScale
    // only observes the memory subsystem [Deng+, ASPLOS'11].
    epochDecision(drv, soc, avg, kMemStallThr, kMemOccThr,
                  kMemMaxLowRho);
}

CoScaleGovernor::CoScaleGovernor(bool redistribute)
    : MemScaleGovernor(redistribute)
{
    name_ = redistribute ? "coscale-r" : "coscale";
}

void
CoScaleGovernor::decide(GovernorDriver &drv, soc::Soc &soc,
                        const soc::CounterSnapshot &avg)
{
    // Joint CPU+memory epoch model: looser gates than MemScale
    // because the joint model also sees CPU slack — but still no IO
    // or graphics visibility and no static demand table.
    epochDecision(drv, soc, avg, kJointStallThr, kJointOccThr,
                  kJointMaxLowRho);

    // Joint CPU coordination: a heavily memory-bound workload gains
    // almost nothing from the top core clocks, so CoScale shaves
    // them within its performance bound and banks the energy. The
    // cap is deliberately gentle — CoScale guarantees bounded
    // slowdown [Deng+, MICRO'12].
    const double stalls = avg[soc::Counter::LlcStalls];
    const double boundness = std::min(1.0, stalls / kStallRef);
    if (boundness > 0.9) {
        const Hertz fmax = soc.cpu().pstates().max().freq;
        drv.setCoreFreqCap(fmax * kBoundCapShare);
    } else {
        drv.setCoreFreqCap(0.0);
    }
}

void
MemScaleGovernor::saveState(SnapshotWriter &w) const
{
    w.putU64("eval_count", evalCount_);
    w.putU64("last_went_low", lastWentLow_);
    w.putU64("backoff_until", backoffUntil_);
    w.putU64("backoff_len", backoffLen_);
}

void
MemScaleGovernor::loadState(SnapshotReader &r)
{
    evalCount_ = r.getU64("eval_count");
    lastWentLow_ = r.getU64("last_went_low");
    backoffUntil_ = r.getU64("backoff_until");
    backoffLen_ = r.getU64("backoff_len");
}

} // namespace core
} // namespace sysscale
