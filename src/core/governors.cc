#include "core/governors.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace core {

GovernorBase::GovernorBase(std::string name, FlowOptions opts,
                           bool redistribute)
    : name_(std::move(name)), opts_(opts), redistribute_(redistribute)
{
}

void
GovernorBase::reset(soc::Soc &soc)
{
    flow_ = std::make_unique<TransitionFlow>(soc, opts_);
    updateBudget(soc);
}

void
GovernorBase::moveTo(soc::Soc &soc, const soc::OperatingPoint &target)
{
    SYSSCALE_ASSERT(flow_ != nullptr, "governor '%s' not reset",
                    name_.c_str());
    const FlowReport report = flow_->execute(target);
    if (report.executed) {
        ++flowRuns_;
        lastFlowLatency_ = report.totalLatency;
    }
    updateBudget(soc);
}

void
GovernorBase::updateBudget(soc::Soc &soc)
{
    // Without redistribution the compute domain keeps the worst-case
    // allocation of the *high* point — saved IO/memory power is
    // simply not spent (pure MemScale/CoScale, Sec. 6).
    const soc::OperatingPoint &billing =
        redistribute_ ? soc.currentOpPoint() : soc.opPoints().high();

    // PMU budget tables cost a trained interface; a governor running
    // unoptimized MRC (MemScale/CoScale) physically draws more than
    // it budgets, which is part of why the paper calls unoptimized
    // registers able to "negate potential benefits" (Sec. 3).
    const Watt iomem =
        soc::ioMemBudgetDemand(soc.config(), billing, true);
    soc.setComputeBudget(soc.pbm().computeBudget(iomem, 0.0));
}

FixedGovernor::FixedGovernor()
    : GovernorBase("baseline", FlowOptions{}, /*redistribute=*/false)
{
}

void
FixedGovernor::evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg)
{
    (void)avg;
    // Pinned at the high point; budgets never move.
    moveTo(soc, soc.opPoints().high());
}

Thresholds
SysScaleGovernor::defaultThresholds()
{
    using soc::Counter;
    Thresholds thr;
    thr.counter[soc::counterIndex(Counter::GfxLlcMisses)] = 1.7e5;
    thr.counter[soc::counterIndex(Counter::LlcOccupancyTracer)] = 5.0;
    thr.counter[soc::counterIndex(Counter::LlcStalls)] = 4.5e5;
    thr.counter[soc::counterIndex(Counter::IoRpq)] = 6.0;
    thr.staticBw = 0.0; // derived from the low point at reset
    return thr;
}

SysScaleGovernor::SysScaleGovernor(Thresholds thresholds,
                                   LinearImpactModel model,
                                   FlowOptions opts)
    : GovernorBase("sysscale", opts, /*redistribute=*/true),
      thresholds_(thresholds), model_(model)
{
}

void
SysScaleGovernor::reset(soc::Soc &soc)
{
    if (thresholds_.staticBw <= 0.0) {
        // Condition 1 gate: static demand the low point can carry
        // while honoring isochronous QoS.
        const soc::OperatingPoint &low = soc.opPoints().low();
        const BytesPerSec low_capacity =
            soc.config().dramSpec.peakBandwidth(low.dramBin) *
            soc.mrc().optimizedSet(low.dramBin).interfaceEfficiency;
        thresholds_.staticBw = low_capacity * kStaticMargin;
    }
    predictor_ = DemandPredictor(thresholds_, model_);

    Thresholds up = thresholds_;
    for (double &t : up.counter)
        t *= kUpHysteresis;
    upPredictor_ = DemandPredictor(up, model_);

    GovernorBase::reset(soc);
}

void
SysScaleGovernor::evaluate(soc::Soc &soc,
                           const soc::CounterSnapshot &avg)
{
    const BytesPerSec static_demand =
        table_.staticDemand(soc.csr());

    // Counters read higher while running at the low point, so the
    // pair of adjacent points uses dedicated thresholds (Sec. 4.3).
    const bool at_high =
        soc.currentOpPoint() == soc.opPoints().high();
    const DemandPredictor &pred =
        at_high ? predictor_ : upPredictor_;
    lastCond_ = pred.conditions(avg, static_demand);

    // Sec. 4.3: any condition -> high point; none -> low point.
    const soc::OperatingPoint &target =
        lastCond_.any() ? soc.opPoints().high()
                        : soc.opPoints().low();
    moveTo(soc, target);
}

MemScaleGovernor::MemScaleGovernor(bool redistribute)
    : GovernorBase(redistribute ? "memscale-r" : "memscale",
                   FlowOptions{/*scaleFabric=*/false,
                               /*scaleVsa=*/false,
                               /*scaleVio=*/false,
                               /*useOptimizedMrc=*/false,
                               /*sramMrc=*/false},
                   redistribute)
{
}

soc::OperatingPoint
MemScaleGovernor::memOnlyLowPoint(soc::Soc &soc) const
{
    // Memory-domain-only scaling: the DRAM bin and MC clock drop,
    // everything else keeps its boot value and the registers stay
    // trained for the boot bin (Fig. 4 penalties apply).
    soc::OperatingPoint op = soc.opPoints().low();
    const soc::OperatingPoint &high = soc.opPoints().high();
    op.name = "mem-only-low";
    op.fabricFreq = high.fabricFreq;
    op.vSa = high.vSa;
    op.vIo = high.vIo;
    op.mrcTrainedBin = high.dramBin;
    return op;
}

void
MemScaleGovernor::epochDecision(soc::Soc &soc,
                                const soc::CounterSnapshot &avg,
                                double stall_thr, double occ_thr,
                                double max_low_rho)
{
    ++evalCount_;

    const bool at_high =
        soc.currentOpPoint().dramBin == soc.opPoints().high().dramBin;
    const double h = at_high ? 1.0 : kEpochHysteresis;

    // Epoch governors model queueing slack before committing to a
    // lower frequency: the projected utilization of the low point
    // must leave headroom, or loaded latency explodes.
    const double low_capacity =
        soc.config().dramSpec.peakBandwidth(
            soc.opPoints().low().dramBin) *
        0.90 * 0.89; // boot-trained registers at the low bin
    const double low_rho = soc.recentBandwidth() / low_capacity;

    const bool bound =
        avg[soc::Counter::LlcStalls] > stall_thr * h ||
        avg[soc::Counter::LlcOccupancyTracer] > occ_thr * h ||
        low_rho > max_low_rho * (at_high ? 1.0 : 1.15);

    if (bound) {
        if (!at_high) {
            // A low sojourn that reverts quickly means the epoch
            // model mispredicted; back off exponentially before
            // trying again (epoch governors thrash on phased
            // workloads otherwise).
            if (evalCount_ - lastWentLow_ <= 3) {
                backoffLen_ = std::min<std::uint64_t>(
                    64, backoffLen_ * 2);
                backoffUntil_ = evalCount_ + backoffLen_;
            } else {
                backoffLen_ = 2;
            }
        }
        moveTo(soc, soc.opPoints().high());
        return;
    }

    if (at_high && evalCount_ < backoffUntil_) {
        updateBudget(soc);
        return;
    }

    if (at_high)
        lastWentLow_ = evalCount_;
    moveTo(soc, memOnlyLowPoint(soc));
}

void
MemScaleGovernor::evaluate(soc::Soc &soc,
                           const soc::CounterSnapshot &avg)
{
    // Memory-side epoch model: conservative gates because MemScale
    // only observes the memory subsystem [Deng+, ASPLOS'11].
    epochDecision(soc, avg, kMemStallThr, kMemOccThr, kMemMaxLowRho);
}

CoScaleGovernor::CoScaleGovernor(bool redistribute)
    : MemScaleGovernor(redistribute)
{
    name_ = redistribute ? "coscale-r" : "coscale";
}

void
CoScaleGovernor::evaluate(soc::Soc &soc,
                          const soc::CounterSnapshot &avg)
{
    // Joint CPU+memory epoch model: looser gates than MemScale
    // because the joint model also sees CPU slack — but still no IO
    // or graphics visibility and no static demand table.
    epochDecision(soc, avg, kJointStallThr, kJointOccThr,
                  kJointMaxLowRho);

    // Joint CPU coordination: a heavily memory-bound workload gains
    // almost nothing from the top core clocks, so CoScale shaves
    // them within its performance bound and banks the energy. The
    // cap is deliberately gentle — CoScale guarantees bounded
    // slowdown [Deng+, MICRO'12].
    const double stalls = avg[soc::Counter::LlcStalls];
    const double boundness = std::min(1.0, stalls / kStallRef);
    if (boundness > 0.9) {
        const Hertz fmax = soc.cpu().pstates().max().freq;
        soc.setCoreFreqCap(fmax * kBoundCapShare);
    } else {
        soc.setCoreFreqCap(0.0);
    }
}

} // namespace core
} // namespace sysscale
