/**
 * @file
 * Static performance-demand estimation (paper Sec. 4.2).
 *
 * "SysScale maintains a table inside the firmware of the PMU that
 * maps every possible configuration of peripherals connected to the
 * processor to IO and memory bandwidth/latency demand values. The
 * firmware obtains the current configuration from control and status
 * registers (CSRs) of these peripherals."
 *
 * The estimate is exact by construction: a peripheral configuration
 * has a known, deterministic bandwidth demand. The table is keyed on
 * the CSRs the display engine and ISP publish; its per-configuration
 * entries reproduce Fig. 3(b).
 */

#ifndef SYSSCALE_CORE_STATIC_TABLE_HH
#define SYSSCALE_CORE_STATIC_TABLE_HH

#include <array>

#include "io/csr.hh"
#include "sim/types.hh"

namespace sysscale {
namespace core {

/**
 * The PMU-firmware static demand table.
 */
class StaticDemandTable
{
  public:
    StaticDemandTable();

    /**
     * Total isochronous bandwidth demand implied by the peripheral
     * configuration currently published in @p csr.
     */
    BytesPerSec staticDemand(const io::CsrSpace &csr) const;

    /**
     * Per-panel bandwidth entry for a resolution code as published
     * in the display CSRs (1=HD .. 4=4K) at 60Hz; scaled linearly by
     * refresh rate.
     */
    BytesPerSec panelEntry(std::uint64_t resolution_code) const;

    /** ISP demand per unit pixel rate (bytes per pixel per pass). */
    static constexpr double kIspBytesPerPixel = 2.0 * 3.0;

    /** Modeled table footprint in firmware bytes. */
    std::size_t firmwareBytes() const;

  private:
    /** 60Hz per-panel demand, indexed by resolution code - 1. */
    std::array<BytesPerSec, 4> panelTable_;
};

} // namespace core
} // namespace sysscale

#endif // SYSSCALE_CORE_STATIC_TABLE_HH
