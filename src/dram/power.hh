/**
 * @file
 * Micron-style DRAM power model (paper Sec. 2.3).
 *
 * Decomposes DRAM power into background, refresh, array operation,
 * IO, register, and termination components. The frequency/voltage
 * sensitivities follow Sec. 2.4 of the paper:
 *  - background power scales ~linearly with bus clock,
 *  - per-bit IO/termination *energy* rises as frequency drops
 *    (the burst occupies the interface longer),
 *  - termination power tracks interface utilization, not frequency.
 */

#ifndef SYSSCALE_DRAM_POWER_HH
#define SYSSCALE_DRAM_POWER_HH

#include "dram/spec.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace sysscale {
namespace dram {

/** Per-component average power over an accounting interval. */
struct DramPowerBreakdown
{
    Watt background = 0.0;  //!< Standby peripheral circuitry.
    Watt refresh = 0.0;     //!< Periodic refresh bursts.
    Watt array = 0.0;       //!< Bank/row/column operation power.
    Watt io = 0.0;          //!< Device-side drivers/receivers/DLL.
    Watt registers = 0.0;   //!< Clock/command-address registers.
    Watt termination = 0.0; //!< ODT power, utilization-driven.

    Watt total() const
    {
        return background + refresh + array + io + registers +
               termination;
    }
};

/**
 * Power characterization of a DRAM configuration.
 *
 * All coefficients are per-device and referenced to the device's
 * nominal VDDQ; system totals multiply by DramSpec::totalDevices().
 */
class DramPowerModel
{
  public:
    explicit DramPowerModel(const DramSpec &spec, Volt vddq = 1.2);

    /**
     * Average power while the devices are in self-refresh.
     */
    Watt selfRefreshPower() const;

    /**
     * Average power over an active interval.
     *
     * @param bin_index Current frequency bin.
     * @param read_bytes Bytes read during the interval.
     * @param write_bytes Bytes written during the interval.
     * @param interval_s Interval length in seconds.
     * @param termination_factor Multiplier on termination/IO power for
     *        unoptimized ODT/drive MRC settings (1.0 = trained).
     */
    DramPowerBreakdown activePower(std::size_t bin_index,
                                   double read_bytes,
                                   double write_bytes,
                                   double interval_s,
                                   double termination_factor = 1.0)
        const;

    Volt vddq() const { return vddq_; }
    const DramSpec &spec() const { return spec_; }

  private:
    DramSpec spec_;
    Volt vddq_;

    // Per-device coefficients (referenced to LPDDR3 x32 @ 1.2V).
    double bgStandbyMwAtRef_;   //!< Background at the reference clock.
    double bgFloorMw_;          //!< Clock-independent background floor.
    double selfRefreshMw_;      //!< Per-device self-refresh power.
    double arrayPjPerBitRead_;
    double arrayPjPerBitWrite_;
    double ioPjPerBitAtRef_;    //!< IO energy/bit at the reference clock.
    double termMwPerDevice_;    //!< ODT at 100% utilization.
    double registerMwAtRef_;
    double refClockMhz_;        //!< Bus clock the coefficients reference.
};

} // namespace dram
} // namespace sysscale

#endif // SYSSCALE_DRAM_POWER_HH
