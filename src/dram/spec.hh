/**
 * @file
 * DRAM device specifications and frequency bins.
 *
 * Commercial mobile DRAM supports only a few discrete frequency bins
 * (paper Sec. 3 footnote 4: LPDDR3 supports 1600, 1066, and 800 MT/s;
 * the paper's DDR4 sensitivity study uses 1866 and 1333 MT/s). A
 * DramSpec carries the bin list plus geometry, from which channel
 * bandwidth and clock relationships are derived.
 */

#ifndef SYSSCALE_DRAM_SPEC_HH
#define SYSSCALE_DRAM_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {
namespace dram {

/** DRAM family. */
enum class DramType : std::uint8_t { LPDDR3, DDR4 };

std::string dramTypeName(DramType t);

/** One supported frequency bin. */
struct FreqBin
{
    /** Data rate in mega-transfers per second (e.g. 1600). */
    double dataRateMTs;

    /** DRAM/DDRIO bus clock (half the data rate for DDR). */
    Hertz busClock() const { return dataRateMTs * 0.5 * kMHz; }

    /** Memory-controller clock ("half the DDR frequency", Sec. 3). */
    Hertz mcClock() const { return dataRateMTs * 0.5 * kMHz; }

    /** Data-rate expressed as Hertz of transfers. */
    Hertz transferRate() const { return dataRateMTs * kMHz; }

    bool
    operator==(const FreqBin &o) const
    {
        return dataRateMTs == o.dataRateMTs;
    }
};

/**
 * A DRAM configuration: family, geometry, and its frequency bins
 * sorted from highest (the default boot bin) to lowest.
 */
class DramSpec
{
  public:
    DramSpec(DramType type, std::vector<FreqBin> bins,
             std::size_t channels, std::size_t bytes_per_channel,
             std::size_t ranks_per_channel,
             std::size_t devices_per_rank, std::size_t banks);

    DramType type() const { return type_; }
    const std::string &name() const { return name_; }

    std::size_t numBins() const { return bins_.size(); }
    const FreqBin &bin(std::size_t i) const;

    /** Index of the highest-frequency (default) bin: always 0. */
    static constexpr std::size_t kDefaultBin = 0;

    /** Find the bin index with the given data rate (fatal if absent). */
    std::size_t binIndexFor(double data_rate_mts) const;

    std::size_t channels() const { return channels_; }
    std::size_t bytesPerChannel() const { return bytesPerChannel_; }
    std::size_t ranksPerChannel() const { return ranksPerChannel_; }
    std::size_t devicesPerRank() const { return devicesPerRank_; }
    std::size_t banks() const { return banks_; }

    /** Total DRAM devices across the system. */
    std::size_t totalDevices() const;

    /** Theoretical peak bandwidth at @p bin across all channels. */
    BytesPerSec peakBandwidth(std::size_t bin_index) const;

    bool
    operator==(const DramSpec &o) const
    {
        return type_ == o.type_ && bins_ == o.bins_ &&
               channels_ == o.channels_ &&
               bytesPerChannel_ == o.bytesPerChannel_ &&
               ranksPerChannel_ == o.ranksPerChannel_ &&
               devicesPerRank_ == o.devicesPerRank_ &&
               banks_ == o.banks_;
    }

  private:
    DramType type_;
    std::string name_;
    std::vector<FreqBin> bins_;
    std::size_t channels_;
    std::size_t bytesPerChannel_; //!< Channel data-bus width in bytes.
    std::size_t ranksPerChannel_;
    std::size_t devicesPerRank_;
    std::size_t banks_;
};

/**
 * Dual-channel LPDDR3-1600 as in the paper's Skylake system
 * (Table 2): 25.6 GB/s peak at the 1600 bin.
 */
DramSpec lpddr3Spec();

/** DDR4-1866 configuration used in the Sec. 7.4 sensitivity study. */
DramSpec ddr4Spec();

} // namespace dram
} // namespace sysscale

#endif // SYSSCALE_DRAM_SPEC_HH
