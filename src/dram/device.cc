#include "dram/device.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace dram {

DramDevice::DramDevice(Simulator &sim, SimObject *parent, DramSpec spec,
                       Volt vddq)
    : SimObject(sim, parent, "dram"),
      spec_(std::move(spec)),
      powerModel_(spec_, vddq),
      timings_(optimizedTimings(spec_, binIndex_)),
      readBytes_(this, "read_bytes", "bytes read from DRAM"),
      writeBytes_(this, "write_bytes", "bytes written to DRAM"),
      energyJ_(this, "energy_j", "DRAM energy consumed"),
      srEntries_(this, "self_refresh_entries",
                 "self-refresh entry count"),
      binSwitches_(this, "bin_switches", "frequency bin switches")
{
}

void
DramDevice::setBin(std::size_t bin_index)
{
    SYSSCALE_ASSERT(mode_ == DramMode::SelfRefresh,
                    "DRAM bin switched outside self-refresh");
    SYSSCALE_ASSERT(bin_index < spec_.numBins(),
                    "bin index %zu out of range", bin_index);
    if (bin_index == binIndex_)
        return;
    binIndex_ = bin_index;
    timings_ = optimizedTimings(spec_, binIndex_);
    ++binSwitches_;
}

void
DramDevice::enterSelfRefresh()
{
    SYSSCALE_ASSERT(mode_ == DramMode::Active,
                    "self-refresh entered twice");
    mode_ = DramMode::SelfRefresh;
    ++srEntries_;
}

Tick
DramDevice::exitSelfRefresh(bool fast_relock)
{
    SYSSCALE_ASSERT(mode_ == DramMode::SelfRefresh,
                    "self-refresh exited while active");
    mode_ = DramMode::Active;

    // tXSR covers the array side; the interface needs retraining or,
    // with SysScale's SRAM-restored state, only a fast relock. The
    // paper bounds the fast path below 5us (Sec. 5, item 3) while a
    // full retrain is on the order of tens of microseconds.
    const double training_ns = fast_relock ? 3000.0 : 40000.0;
    return ticksFromNs(timings_.tXSRNs + training_ns);
}

DramPowerBreakdown
DramDevice::accountTraffic(double read_bytes, double write_bytes,
                           Tick interval, double termination_factor)
{
    SYSSCALE_ASSERT(mode_ == DramMode::Active,
                    "traffic while in self-refresh");
    readBytes_ += read_bytes;
    writeBytes_ += write_bytes;

    const DramPowerBreakdown bd = powerModel_.activePower(
        binIndex_, read_bytes, write_bytes,
        secondsFromTicks(interval), termination_factor);
    energyJ_ += bd.total() * secondsFromTicks(interval);
    return bd;
}

void
DramDevice::saveState(SnapshotWriter &w) const
{
    w.putU64("bin", binIndex_);
    w.putBool("self_refresh", mode_ == DramMode::SelfRefresh);
}

void
DramDevice::loadState(SnapshotReader &r)
{
    // Not setBin(): that asserts SelfRefresh mode and counts a
    // switch; a restore reproduces state, it is not a transition.
    binIndex_ = r.getU64("bin");
    if (binIndex_ >= spec_.numBins())
        throw SnapshotError("dram: bin index out of range");
    timings_ = optimizedTimings(spec_, binIndex_);
    mode_ = r.getBool("self_refresh") ? DramMode::SelfRefresh
                                      : DramMode::Active;
}

} // namespace dram
} // namespace sysscale
