#include "dram/power.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace dram {

DramPowerModel::DramPowerModel(const DramSpec &spec, Volt vddq)
    : spec_(spec), vddq_(vddq)
{
    if (vddq <= 0.0)
        SYSSCALE_FATAL("DramPowerModel: non-positive VDDQ");

    switch (spec_.type()) {
      case DramType::LPDDR3:
        refClockMhz_ = 800.0;        // 1600 MT/s bus clock
        bgStandbyMwAtRef_ = 100.0;
        bgFloorMw_ = 20.0;
        selfRefreshMw_ = 1.6;
        arrayPjPerBitRead_ = 4.0;
        arrayPjPerBitWrite_ = 4.6;
        ioPjPerBitAtRef_ = 1.8;
        termMwPerDevice_ = 0.0;      // LPDDR3 is unterminated
        registerMwAtRef_ = 8.0;
        break;
      case DramType::DDR4:
        refClockMhz_ = 933.0;        // 1866 MT/s bus clock
        bgStandbyMwAtRef_ = 30.0;
        bgFloorMw_ = 10.0;
        selfRefreshMw_ = 2.2;
        arrayPjPerBitRead_ = 3.2;
        arrayPjPerBitWrite_ = 3.8;
        ioPjPerBitAtRef_ = 2.4;
        termMwPerDevice_ = 16.0;     // ODT burns real power on DDR4
        registerMwAtRef_ = 4.0;
        break;
    }
}

Watt
DramPowerModel::selfRefreshPower() const
{
    return selfRefreshMw_ * 1e-3 *
           static_cast<double>(spec_.totalDevices());
}

DramPowerBreakdown
DramPowerModel::activePower(std::size_t bin_index, double read_bytes,
                            double write_bytes, double interval_s,
                            double termination_factor) const
{
    SYSSCALE_ASSERT(interval_s > 0.0, "non-positive interval");
    SYSSCALE_ASSERT(read_bytes >= 0.0 && write_bytes >= 0.0,
                    "negative traffic");
    SYSSCALE_ASSERT(termination_factor >= 1.0,
                    "termination factor below trained value");

    const FreqBin &bin = spec_.bin(bin_index);
    const double devices =
        static_cast<double>(spec_.totalDevices());
    const double clock_ratio = (bin.busClock() / kMHz) / refClockMhz_;
    const double vscale = (vddq_ / 1.2) * (vddq_ / 1.2);

    const TimingSet timings = optimizedTimings(spec_, bin_index);

    DramPowerBreakdown out;

    // Background: clock-tree + peripheral standby scales with the bus
    // clock; a floor remains for always-on circuits.
    out.background = devices * 1e-3 *
        (bgFloorMw_ + bgStandbyMwAtRef_ * clock_ratio) * vscale;

    // Refresh: modeled as its duty-cycle share of an active-burst
    // power level (tRFC every tREFI).
    const double refresh_burst_mw = 60.0; // per device during tRFC
    out.refresh = devices * 1e-3 * refresh_burst_mw *
                  timings.refreshOverhead() * vscale;

    // Array operation energy: charge per accessed bit.
    const double read_bits = read_bytes * 8.0;
    const double write_bits = write_bytes * 8.0;
    out.array = (read_bits * arrayPjPerBitRead_ +
                 write_bits * arrayPjPerBitWrite_) * 1e-12 *
                vscale / interval_s;

    // IO energy: per-bit cost grows as the clock drops because each
    // burst occupies the drivers longer (Sec. 2.4, point 3).
    const double io_pj_per_bit =
        ioPjPerBitAtRef_ / std::max(clock_ratio, 1e-6);
    out.io = (read_bits + write_bits) * io_pj_per_bit * 1e-12 *
             vscale * termination_factor / interval_s;

    // Termination: proportional to interface utilization, not
    // directly to frequency (Sec. 2.3).
    const double peak_bytes =
        spec_.peakBandwidth(bin_index) * interval_s;
    const double util = std::min(
        1.0, (read_bytes + write_bytes) / std::max(peak_bytes, 1.0));
    out.termination = devices * 1e-3 * termMwPerDevice_ * util *
                      termination_factor;

    // Registers/clock buffers on the command-address interface.
    out.registers = devices * 1e-3 * registerMwAtRef_ * clock_ratio *
                    vscale;

    return out;
}

} // namespace dram
} // namespace sysscale
