#include "dram/spec.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace dram {

std::string
dramTypeName(DramType t)
{
    switch (t) {
      case DramType::LPDDR3: return "LPDDR3";
      case DramType::DDR4: return "DDR4";
    }
    return "?";
}

DramSpec::DramSpec(DramType type, std::vector<FreqBin> bins,
                   std::size_t channels, std::size_t bytes_per_channel,
                   std::size_t ranks_per_channel,
                   std::size_t devices_per_rank, std::size_t banks)
    : type_(type), bins_(std::move(bins)), channels_(channels),
      bytesPerChannel_(bytes_per_channel),
      ranksPerChannel_(ranks_per_channel),
      devicesPerRank_(devices_per_rank), banks_(banks)
{
    if (bins_.empty())
        SYSSCALE_FATAL("DramSpec: no frequency bins");
    if (channels_ == 0 || bytesPerChannel_ == 0 ||
        ranksPerChannel_ == 0 || devicesPerRank_ == 0 || banks_ == 0) {
        SYSSCALE_FATAL("DramSpec: zero geometry field");
    }

    std::sort(bins_.begin(), bins_.end(),
              [](const FreqBin &a, const FreqBin &b) {
                  return a.dataRateMTs > b.dataRateMTs;
              });

    name_ = dramTypeName(type_) + "-" +
            std::to_string(static_cast<int>(bins_.front().dataRateMTs));
}

const FreqBin &
DramSpec::bin(std::size_t i) const
{
    SYSSCALE_ASSERT(i < bins_.size(), "bin index %zu out of range", i);
    return bins_[i];
}

std::size_t
DramSpec::binIndexFor(double data_rate_mts) const
{
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (std::fabs(bins_[i].dataRateMTs - data_rate_mts) < 1.0)
            return i;
    }
    SYSSCALE_FATAL("%s: unsupported data rate %.0f MT/s",
                   name_.c_str(), data_rate_mts);
}

std::size_t
DramSpec::totalDevices() const
{
    return channels_ * ranksPerChannel_ * devicesPerRank_;
}

BytesPerSec
DramSpec::peakBandwidth(std::size_t bin_index) const
{
    const FreqBin &b = bin(bin_index);
    return static_cast<BytesPerSec>(channels_) *
           static_cast<BytesPerSec>(bytesPerChannel_) *
           b.transferRate();
}

DramSpec
lpddr3Spec()
{
    // Dual-channel, 64-bit channels, 8GB total; x32 devices, 2 per
    // rank, 1 rank per channel, 8 banks (JESD209-3).
    return DramSpec(DramType::LPDDR3,
                    {FreqBin{1600.0}, FreqBin{1066.0}, FreqBin{800.0}},
                    /*channels=*/2, /*bytes_per_channel=*/8,
                    /*ranks_per_channel=*/1, /*devices_per_rank=*/2,
                    /*banks=*/8);
}

DramSpec
ddr4Spec()
{
    // Dual-channel DDR4: x8 devices, 8 per rank, 16 banks (JESD79-4).
    return DramSpec(DramType::DDR4,
                    {FreqBin{1866.0}, FreqBin{1333.0}},
                    /*channels=*/2, /*bytes_per_channel=*/8,
                    /*ranks_per_channel=*/1, /*devices_per_rank=*/8,
                    /*banks=*/16);
}

} // namespace dram
} // namespace sysscale
