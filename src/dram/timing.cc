#include "dram/timing.hh"

#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace dram {

Cycles
TimingSet::cyclesOf(double ns) const
{
    SYSSCALE_ASSERT(tCKNs > 0.0, "timing set with zero tCK");
    return static_cast<Cycles>(std::ceil(ns / tCKNs - 1e-9));
}

TimingSet
optimizedTimings(const DramSpec &spec, std::size_t bin_index)
{
    const FreqBin &bin = spec.bin(bin_index);
    const double tck = 1e3 / bin.dataRateMTs * 2.0; // ns per bus clock

    TimingSet t{};
    t.tCKNs = tck;

    switch (spec.type()) {
      case DramType::LPDDR3:
        // JESD209-3 class values. Analog timings are roughly constant
        // in ns; CL is binned to the data rate.
        t.tRCDNs = 18.0;
        t.tRPNs = 18.0;
        t.tRASNs = 42.0;
        t.tWRNs = 15.0;
        t.tRFCNs = 130.0;
        t.tREFINs = 3900.0;
        t.tXSRNs = 140.0;
        t.tFAWNs = 50.0;
        if (bin.dataRateMTs >= 1600.0 - 1.0) {
            t.tCLNs = 12 * tck; // CL12 @ 1.25ns
        } else if (bin.dataRateMTs >= 1066.0 - 1.0) {
            t.tCLNs = 10 * tck; // CL10 @ 1.875ns
        } else {
            t.tCLNs = 8 * tck;  // CL8 @ 2.5ns
        }
        break;

      case DramType::DDR4:
        t.tRCDNs = 13.92;
        t.tRPNs = 13.92;
        t.tRASNs = 34.0;
        t.tWRNs = 15.0;
        t.tRFCNs = 260.0;
        t.tREFINs = 7800.0;
        t.tXSRNs = 270.0;
        t.tFAWNs = 30.0;
        if (bin.dataRateMTs >= 1866.0 - 1.0) {
            t.tCLNs = 13 * tck; // CL13 @ ~1.07ns
        } else {
            t.tCLNs = 10 * tck; // CL10 @ 1.5ns
        }
        break;
    }

    return t;
}

} // namespace dram
} // namespace sysscale
