/**
 * @file
 * JEDEC-style timing parameter sets per frequency bin.
 *
 * Timings are stored in nanoseconds (analog constraints) and converted
 * to bus-clock cycles on demand. The MRC (mem/mrc.hh) decides which
 * TimingSet is actually programmed into the controller; an unoptimized
 * set carries guard-banded values.
 */

#ifndef SYSSCALE_DRAM_TIMING_HH
#define SYSSCALE_DRAM_TIMING_HH

#include <cstdint>

#include "dram/spec.hh"
#include "sim/types.hh"

namespace sysscale {
namespace dram {

/**
 * Core timing parameters for one frequency bin.
 */
struct TimingSet
{
    double tCKNs;   //!< Bus clock period.
    double tCLNs;   //!< CAS (read) latency.
    double tRCDNs;  //!< RAS-to-CAS delay.
    double tRPNs;   //!< Row precharge.
    double tRASNs;  //!< Row active time.
    double tWRNs;   //!< Write recovery.
    double tRFCNs;  //!< Refresh cycle time.
    double tREFINs; //!< Refresh interval.
    double tXSRNs;  //!< Self-refresh exit (to first command).
    double tFAWNs;  //!< Four-activate window.

    /** Random-access (closed-page) latency: tRP + tRCD + tCL. */
    double randomAccessNs() const { return tRPNs + tRCDNs + tCLNs; }

    /** Convert a nanosecond constraint to bus-clock cycles. */
    Cycles cyclesOf(double ns) const;

    /** Fraction of time unavailable due to refresh: tRFC/tREFI. */
    double refreshOverhead() const { return tRFCNs / tREFINs; }
};

/**
 * The JEDEC-optimized timing set for @p spec at @p bin_index — the
 * values a correct MRC training run would produce.
 */
TimingSet optimizedTimings(const DramSpec &spec, std::size_t bin_index);

} // namespace dram
} // namespace sysscale

#endif // SYSSCALE_DRAM_TIMING_HH
