/**
 * @file
 * DRAM device-array model: frequency-bin state, self-refresh entry and
 * exit, refresh bookkeeping, and traffic/energy statistics.
 *
 * The cycle-level bank state machine is abstracted into the timing
 * parameters consumed by the memory controller's service model; what
 * this class owns is the *mode* of the devices (which bin, whether in
 * self-refresh) and the latency contract of mode changes — exactly
 * the pieces SysScale's transition flow manipulates (Fig. 5, steps
 * 4 and 8).
 */

#ifndef SYSSCALE_DRAM_DEVICE_HH
#define SYSSCALE_DRAM_DEVICE_HH

#include "dram/power.hh"
#include "dram/spec.hh"
#include "dram/timing.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace dram {

/** Device-array operating mode. */
enum class DramMode { Active, SelfRefresh };

/**
 * The DRAM rank population of one SoC.
 */
class DramDevice : public SimObject
{
  public:
    DramDevice(Simulator &sim, SimObject *parent, DramSpec spec,
               Volt vddq = 1.2);

    const DramSpec &spec() const { return spec_; }
    const DramPowerModel &powerModel() const { return powerModel_; }

    /** @name Frequency bin. @{ */
    std::size_t binIndex() const { return binIndex_; }
    const FreqBin &bin() const { return spec_.bin(binIndex_); }
    const TimingSet &timings() const { return timings_; }

    /**
     * Switch the device clock to another bin. Only legal while in
     * self-refresh (the JEDEC-required sequence the paper's flow
     * follows); panics otherwise.
     */
    void setBin(std::size_t bin_index);
    /** @} */

    /** @name Self-refresh. @{ */
    DramMode mode() const { return mode_; }

    /** Enter self-refresh (requires Active mode). */
    void enterSelfRefresh();

    /**
     * Leave self-refresh.
     * @param fast_relock True when DDRIO retraining is replaced by a
     *        SRAM-restored state (SysScale); bounds exit below 5us.
     * @return Exit latency in ticks (tXSR plus interface training).
     */
    Tick exitSelfRefresh(bool fast_relock);
    /** @} */

    /**
     * Account an interval of serviced traffic.
     *
     * @param read_bytes Bytes read in the interval.
     * @param write_bytes Bytes written.
     * @param interval Interval length in ticks.
     * @param termination_factor MRC-dependent ODT/drive multiplier.
     * @return Average power breakdown over the interval.
     */
    DramPowerBreakdown accountTraffic(double read_bytes,
                                      double write_bytes,
                                      Tick interval,
                                      double termination_factor);

    /** Average power while parked in self-refresh. */
    Watt selfRefreshPower() const
    {
        return powerModel_.selfRefreshPower();
    }

    /** Peak bandwidth at the current bin. */
    BytesPerSec peakBandwidth() const
    {
        return spec_.peakBandwidth(binIndex_);
    }

    /** Total bytes transferred since construction. */
    double totalBytes() const
    {
        return readBytes_.value() + writeBytes_.value();
    }

    std::uint64_t selfRefreshEntries() const
    {
        return static_cast<std::uint64_t>(srEntries_.value());
    }

    /** @name Snapshot support: bin + mode (timings re-derived). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    DramSpec spec_;
    DramPowerModel powerModel_;
    std::size_t binIndex_ = DramSpec::kDefaultBin;
    TimingSet timings_;
    DramMode mode_ = DramMode::Active;

    stats::Scalar readBytes_;
    stats::Scalar writeBytes_;
    stats::Scalar energyJ_;
    stats::Scalar srEntries_;
    stats::Scalar binSwitches_;
};

} // namespace dram
} // namespace sysscale

#endif // SYSSCALE_DRAM_DEVICE_HH
