/**
 * @file
 * Generic best-effort DMA client (storage, network, USB).
 *
 * Unlike display/camera traffic, DMA traffic tolerates latency; it
 * rides the fabric's best-effort class and shows up in the IO_RPQ
 * performance counter when the fabric is too slow for it (Sec. 4.2,
 * condition 5 of the power-management algorithm).
 */

#ifndef SYSSCALE_IO_DMA_HH
#define SYSSCALE_IO_DMA_HH

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace io {

/**
 * A bulk-transfer IO client with a configurable offered rate.
 */
class DmaDevice : public SimObject
{
  public:
    DmaDevice(Simulator &sim, SimObject *parent, std::string name,
              BytesPerSec offered_rate = 0.0);

    /** Current offered transfer rate. */
    BytesPerSec offeredRate() const { return offeredRate_; }

    /** Retarget the offered rate (e.g. a file copy starting). */
    void setOfferedRate(BytesPerSec rate);

    /**
     * Record the bandwidth the fabric actually granted during an
     * interval; the shortfall accumulates as backlog.
     */
    void recordService(BytesPerSec granted, Tick interval);

    /** Unserviced bytes queued behind the device. */
    double backlogBytes() const { return backlog_; }

    /** Device power at a given achieved rate. */
    Watt power(BytesPerSec achieved) const;

    /** Energy cost per transferred byte (controller + PHY). */
    static constexpr double kJoulePerByte = 20e-12;

    /** Idle controller power while the device is enabled. */
    static constexpr Watt kIdlePower = 0.01;

    /** @name Snapshot support. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    BytesPerSec offeredRate_;
    double backlog_ = 0.0;

    stats::Scalar transferred_;
    stats::Scalar stalledBytes_;
};

} // namespace io
} // namespace sysscale

#endif // SYSSCALE_IO_DMA_HH
