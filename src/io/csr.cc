#include "io/csr.hh"

#include "sim/logging.hh"

namespace sysscale {
namespace io {

void
CsrSpace::define(const std::string &name, std::uint64_t reset_value)
{
    auto [it, inserted] =
        regs_.emplace(name, Reg{reset_value, reset_value});
    (void)it;
    if (!inserted)
        SYSSCALE_FATAL("CSR '%s' defined twice", name.c_str());
}

bool
CsrSpace::defined(const std::string &name) const
{
    return regs_.count(name) != 0;
}

std::uint64_t
CsrSpace::read(const std::string &name) const
{
    auto it = regs_.find(name);
    if (it == regs_.end())
        SYSSCALE_FATAL("read of undefined CSR '%s'", name.c_str());
    return it->second.value;
}

void
CsrSpace::write(const std::string &name, std::uint64_t value)
{
    auto it = regs_.find(name);
    if (it == regs_.end())
        SYSSCALE_FATAL("write of undefined CSR '%s'", name.c_str());
    it->second.value = value;
}

void
CsrSpace::reset()
{
    for (auto &[name, reg] : regs_)
        reg.value = reg.resetValue;
}

std::vector<std::string>
CsrSpace::names() const
{
    std::vector<std::string> out;
    out.reserve(regs_.size());
    for (const auto &[name, reg] : regs_)
        out.push_back(name);
    return out;
}

} // namespace io
} // namespace sysscale
