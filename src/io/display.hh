/**
 * @file
 * Display engine model.
 *
 * The display controller continuously scans out every active panel's
 * frame buffer — isochronous traffic that must never be starved
 * (Sec. 1). Its bandwidth demand is *static*: fully determined by the
 * panel configuration published in CSRs (Sec. 4.2), which is exactly
 * what SysScale's static demand table keys on.
 *
 * Fig. 3(b) anchors the model: one HD panel consumes ~17% of the
 * 25.6GB/s dual-channel LPDDR3-1600 peak and a single 4K panel ~70%.
 * Scan-out traffic exceeds the raw front-buffer rate because the
 * pipeline fetches overlay planes, composes, and writes intermediate
 * surfaces; we model that with a fixed per-pixel composition factor
 * plus a resolution-independent base (cursor and control plane
 * fetches), fitted to the two anchors.
 */

#ifndef SYSSCALE_IO_DISPLAY_HH
#define SYSSCALE_IO_DISPLAY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "io/csr.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace io {

/** Supported panel resolutions (modern laptops, Sec. 4.2). */
enum class PanelResolution : std::uint8_t { HD, FHD, QHD, UHD4K };

/** Horizontal pixel count of @p r. */
std::size_t panelWidth(PanelResolution r);

/** Vertical pixel count of @p r. */
std::size_t panelHeight(PanelResolution r);

/** Human-readable name of @p r. */
const char *panelResolutionName(PanelResolution r);

/** One attached display panel. */
struct PanelConfig
{
    PanelResolution resolution = PanelResolution::HD;
    double refreshHz = 60.0;
    std::size_t bytesPerPixel = 4;
};

/**
 * The laptop HD panel every paper experiment runs with (Sec. 6).
 * Shared by the experiment layer (ExperimentSpec::hdPanel) and the
 * scenario DisplayOn action, so a display-blank scenario always
 * reattaches exactly the panel the cell started with.
 */
inline constexpr PanelConfig kDefaultHdPanel{PanelResolution::HD,
                                             60.0, 4};

/**
 * The SoC display controller (up to three panels, Sec. 4.2).
 */
class DisplayEngine : public SimObject
{
  public:
    /** Maximum simultaneously active panels. */
    static constexpr std::size_t kMaxPanels = 3;

    DisplayEngine(Simulator &sim, SimObject *parent, CsrSpace &csr);

    /**
     * Attach a panel to slot @p index (hot-plug). Updates the CSRs
     * the PMU's static table reads.
     */
    void attachPanel(std::size_t index, const PanelConfig &cfg);

    /** Detach the panel in slot @p index. */
    void detachPanel(std::size_t index);

    /** Number of active panels. */
    std::size_t activePanels() const;

    /** Panel in slot @p index, if attached. */
    std::optional<PanelConfig> panel(std::size_t index) const;

    /** Isochronous scan-out bandwidth of one panel. */
    static BytesPerSec panelBandwidth(const PanelConfig &cfg);

    /** Total isochronous bandwidth demand of all active panels. */
    BytesPerSec bandwidthDemand() const;

    /** Engine power while scanning (per active panel pipe). */
    Watt power() const;

    /** @name Fig. 3(b) calibration. @{ */

    /**
     * Composition/scan factor: effective memory traffic per displayed
     * byte. Fitted with kBaseBandwidth so HD = ~17% and 4K = ~70% of
     * the 25.6GB/s LPDDR3-1600 peak.
     */
    static constexpr double kCompositionFactor = 7.8;

    /** Resolution-independent pipe overhead per active panel. */
    static constexpr BytesPerSec kBaseBandwidth = 2.39 * kGBps;

    /** Power of one active display pipe. */
    static constexpr Watt kPipePower = 0.055;
    /** @} */

    /** @name CSR names published by the engine. @{ */

    /** Count of attached panels. */
    static constexpr const char *kCsrActivePanels =
        "display.active_panels";

    /** Per-slot resolution register name ("display.panelN.res"). */
    static std::string csrResolution(std::size_t index);

    /** Per-slot refresh-rate register name. */
    static std::string csrRefresh(std::size_t index);
    /** @} */

    /** @name Snapshot support: panel slots (CSR values round-trip
     *  through the Soc's own CSR-space section). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    void publishCsrs();

    CsrSpace &csr_;
    std::array<std::optional<PanelConfig>, kMaxPanels> panels_;

    stats::Scalar hotplugs_;
};

} // namespace io
} // namespace sysscale

#endif // SYSSCALE_IO_DISPLAY_HH
