/**
 * @file
 * Image signal processor (camera) model.
 *
 * The ISP streams sensor frames through memory while a camera is
 * active (video conferencing in the paper's battery-life suite).
 * Like the display engine its demand is static — a function of the
 * sensor configuration published in CSRs (Fig. 3b shows the ISP bars
 * per configuration) — and its traffic is isochronous: a dropped
 * sensor frame is a glitch.
 */

#ifndef SYSSCALE_IO_ISP_HH
#define SYSSCALE_IO_ISP_HH

#include <cstdint>
#include <optional>

#include "io/csr.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace io {

/** One active camera stream. */
struct CameraConfig
{
    std::size_t width = 1280;
    std::size_t height = 720;
    double fps = 30.0;
    std::size_t bytesPerPixel = 2; //!< Raw sensor data (YUV422).
};

/**
 * The camera/ISP engine.
 */
class IspEngine : public SimObject
{
  public:
    IspEngine(Simulator &sim, SimObject *parent, CsrSpace &csr);

    /** Start streaming from a camera. */
    void startCamera(const CameraConfig &cfg);

    /** Stop the camera stream. */
    void stopCamera();

    bool active() const { return camera_.has_value(); }

    std::optional<CameraConfig> camera() const { return camera_; }

    /**
     * Isochronous bandwidth demand: sensor write + ISP read +
     * processed write (each frame crosses memory kPassCount times).
     */
    BytesPerSec bandwidthDemand() const;

    /** Engine power while streaming. */
    Watt power() const;

    /** Memory passes per frame (capture, process, encode source). */
    static constexpr double kPassCount = 3.0;

    /** ISP compute power while streaming. */
    static constexpr Watt kStreamPower = 0.12;

    /** @name CSR names published by the engine. @{ */
    static constexpr const char *kCsrActive = "isp.active";
    static constexpr const char *kCsrPixelRate = "isp.pixel_rate";
    /** @} */

    /** @name Snapshot support. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    void publishCsrs();

    CsrSpace &csr_;
    std::optional<CameraConfig> camera_;

    stats::Scalar sessions_;
};

} // namespace io
} // namespace sysscale

#endif // SYSSCALE_IO_ISP_HH
