#include "io/isp.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace io {

IspEngine::IspEngine(Simulator &sim, SimObject *parent, CsrSpace &csr)
    : SimObject(sim, parent, "isp"), csr_(csr),
      sessions_(this, "sessions", "camera start events")
{
    csr_.define(kCsrActive, 0);
    csr_.define(kCsrPixelRate, 0);
}

void
IspEngine::startCamera(const CameraConfig &cfg)
{
    if (cfg.width == 0 || cfg.height == 0)
        SYSSCALE_FATAL("camera with zero geometry");
    if (cfg.fps <= 0.0)
        SYSSCALE_FATAL("camera fps %.1f not positive", cfg.fps);
    if (cfg.bytesPerPixel == 0)
        SYSSCALE_FATAL("camera with zero bytes per pixel");

    camera_ = cfg;
    ++sessions_;
    publishCsrs();
}

void
IspEngine::stopCamera()
{
    camera_.reset();
    publishCsrs();
}

BytesPerSec
IspEngine::bandwidthDemand() const
{
    if (!camera_)
        return 0.0;
    const double pixel_rate = static_cast<double>(camera_->width) *
                              static_cast<double>(camera_->height) *
                              camera_->fps;
    return pixel_rate *
           static_cast<double>(camera_->bytesPerPixel) * kPassCount;
}

Watt
IspEngine::power() const
{
    return camera_ ? kStreamPower : 0.0;
}

void
IspEngine::publishCsrs()
{
    csr_.write(kCsrActive, camera_ ? 1 : 0);
    const double pixel_rate =
        camera_ ? static_cast<double>(camera_->width) *
                      static_cast<double>(camera_->height) *
                      camera_->fps
                : 0.0;
    csr_.write(kCsrPixelRate, static_cast<std::uint64_t>(pixel_rate));
}

void
IspEngine::saveState(SnapshotWriter &w) const
{
    w.putBool("active", camera_.has_value());
    if (camera_) {
        w.putU64("width", camera_->width);
        w.putU64("height", camera_->height);
        w.putDouble("fps", camera_->fps);
        w.putU64("bytes_per_pixel", camera_->bytesPerPixel);
    }
}

void
IspEngine::loadState(SnapshotReader &r)
{
    // No publishCsrs(): CSR values restore with the Soc; and no
    // startCamera(), which would count a session.
    if (r.getBool("active")) {
        CameraConfig cfg;
        cfg.width = r.getU64("width");
        cfg.height = r.getU64("height");
        cfg.fps = r.getDouble("fps");
        cfg.bytesPerPixel = r.getU64("bytes_per_pixel");
        camera_ = cfg;
    } else {
        camera_.reset();
    }
}

} // namespace io
} // namespace sysscale
