#include "io/isp.hh"

#include "sim/logging.hh"

namespace sysscale {
namespace io {

IspEngine::IspEngine(Simulator &sim, SimObject *parent, CsrSpace &csr)
    : SimObject(sim, parent, "isp"), csr_(csr),
      sessions_(this, "sessions", "camera start events")
{
    csr_.define(kCsrActive, 0);
    csr_.define(kCsrPixelRate, 0);
}

void
IspEngine::startCamera(const CameraConfig &cfg)
{
    if (cfg.width == 0 || cfg.height == 0)
        SYSSCALE_FATAL("camera with zero geometry");
    if (cfg.fps <= 0.0)
        SYSSCALE_FATAL("camera fps %.1f not positive", cfg.fps);
    if (cfg.bytesPerPixel == 0)
        SYSSCALE_FATAL("camera with zero bytes per pixel");

    camera_ = cfg;
    ++sessions_;
    publishCsrs();
}

void
IspEngine::stopCamera()
{
    camera_.reset();
    publishCsrs();
}

BytesPerSec
IspEngine::bandwidthDemand() const
{
    if (!camera_)
        return 0.0;
    const double pixel_rate = static_cast<double>(camera_->width) *
                              static_cast<double>(camera_->height) *
                              camera_->fps;
    return pixel_rate *
           static_cast<double>(camera_->bytesPerPixel) * kPassCount;
}

Watt
IspEngine::power() const
{
    return camera_ ? kStreamPower : 0.0;
}

void
IspEngine::publishCsrs()
{
    csr_.write(kCsrActive, camera_ ? 1 : 0);
    const double pixel_rate =
        camera_ ? static_cast<double>(camera_->width) *
                      static_cast<double>(camera_->height) *
                      camera_->fps
                : 0.0;
    csr_.write(kCsrPixelRate, static_cast<std::uint64_t>(pixel_rate));
}

} // namespace io
} // namespace sysscale
