#include "io/dma.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace io {

DmaDevice::DmaDevice(Simulator &sim, SimObject *parent,
                     std::string name, BytesPerSec offered_rate)
    : SimObject(sim, parent, std::move(name)),
      offeredRate_(offered_rate),
      transferred_(this, "transferred_bytes", "bytes transferred"),
      stalledBytes_(this, "stalled_bytes",
                    "bytes delayed by fabric backpressure")
{
    if (offered_rate < 0.0)
        SYSSCALE_FATAL("DMA offered rate %.1f negative", offered_rate);
}

void
DmaDevice::setOfferedRate(BytesPerSec rate)
{
    if (rate < 0.0)
        SYSSCALE_FATAL("DMA offered rate %.1f negative", rate);
    offeredRate_ = rate;
}

void
DmaDevice::recordService(BytesPerSec granted, Tick interval)
{
    SYSSCALE_ASSERT(interval > 0, "zero-length DMA interval");
    const double secs = secondsFromTicks(interval);
    const double offered = offeredRate_ * secs + backlog_;
    const double moved = std::min(offered, granted * secs);

    transferred_ += moved;
    backlog_ = offered - moved;
    stalledBytes_ += backlog_;
}

Watt
DmaDevice::power(BytesPerSec achieved) const
{
    return kIdlePower + achieved * kJoulePerByte;
}

void
DmaDevice::saveState(SnapshotWriter &w) const
{
    w.putDouble("offered_rate", offeredRate_);
    w.putDouble("backlog", backlog_);
}

void
DmaDevice::loadState(SnapshotReader &r)
{
    offeredRate_ = r.getDouble("offered_rate");
    backlog_ = r.getDouble("backlog");
}

} // namespace io
} // namespace sysscale
