#include "io/display.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace io {

std::size_t
panelWidth(PanelResolution r)
{
    switch (r) {
      case PanelResolution::HD: return 1366;
      case PanelResolution::FHD: return 1920;
      case PanelResolution::QHD: return 2560;
      case PanelResolution::UHD4K: return 3840;
    }
    SYSSCALE_PANIC("bad PanelResolution %d", static_cast<int>(r));
}

std::size_t
panelHeight(PanelResolution r)
{
    switch (r) {
      case PanelResolution::HD: return 768;
      case PanelResolution::FHD: return 1080;
      case PanelResolution::QHD: return 1440;
      case PanelResolution::UHD4K: return 2160;
    }
    SYSSCALE_PANIC("bad PanelResolution %d", static_cast<int>(r));
}

const char *
panelResolutionName(PanelResolution r)
{
    switch (r) {
      case PanelResolution::HD: return "HD";
      case PanelResolution::FHD: return "FHD";
      case PanelResolution::QHD: return "QHD";
      case PanelResolution::UHD4K: return "4K";
    }
    SYSSCALE_PANIC("bad PanelResolution %d", static_cast<int>(r));
}

std::string
DisplayEngine::csrResolution(std::size_t index)
{
    return "display.panel" + std::to_string(index) + ".res";
}

std::string
DisplayEngine::csrRefresh(std::size_t index)
{
    return "display.panel" + std::to_string(index) + ".refresh";
}

DisplayEngine::DisplayEngine(Simulator &sim, SimObject *parent,
                             CsrSpace &csr)
    : SimObject(sim, parent, "display"), csr_(csr),
      hotplugs_(this, "hotplugs", "panel attach/detach events")
{
    csr_.define(kCsrActivePanels, 0);
    for (std::size_t i = 0; i < kMaxPanels; ++i) {
        csr_.define(csrResolution(i), 0);
        csr_.define(csrRefresh(i), 0);
    }
}

void
DisplayEngine::attachPanel(std::size_t index, const PanelConfig &cfg)
{
    if (index >= kMaxPanels)
        SYSSCALE_FATAL("panel slot %zu out of range (max %zu)", index,
                       kMaxPanels);
    if (cfg.refreshHz <= 0.0)
        SYSSCALE_FATAL("panel refresh %.1f Hz not positive",
                       cfg.refreshHz);
    if (cfg.bytesPerPixel == 0)
        SYSSCALE_FATAL("panel with zero bytes per pixel");

    panels_[index] = cfg;
    ++hotplugs_;
    publishCsrs();
}

void
DisplayEngine::detachPanel(std::size_t index)
{
    if (index >= kMaxPanels)
        SYSSCALE_FATAL("panel slot %zu out of range (max %zu)", index,
                       kMaxPanels);
    panels_[index].reset();
    ++hotplugs_;
    publishCsrs();
}

std::size_t
DisplayEngine::activePanels() const
{
    std::size_t n = 0;
    for (const auto &p : panels_)
        n += p.has_value() ? 1 : 0;
    return n;
}

std::optional<PanelConfig>
DisplayEngine::panel(std::size_t index) const
{
    SYSSCALE_ASSERT(index < kMaxPanels, "panel slot %zu out of range",
                    index);
    return panels_[index];
}

BytesPerSec
DisplayEngine::panelBandwidth(const PanelConfig &cfg)
{
    const double pixels =
        static_cast<double>(panelWidth(cfg.resolution)) *
        static_cast<double>(panelHeight(cfg.resolution));
    const double surface_rate = pixels * cfg.refreshHz *
                                static_cast<double>(cfg.bytesPerPixel);
    return kBaseBandwidth + surface_rate * kCompositionFactor;
}

BytesPerSec
DisplayEngine::bandwidthDemand() const
{
    BytesPerSec total = 0.0;
    for (const auto &p : panels_) {
        if (p)
            total += panelBandwidth(*p);
    }
    return total;
}

Watt
DisplayEngine::power() const
{
    return kPipePower * static_cast<double>(activePanels());
}

void
DisplayEngine::publishCsrs()
{
    csr_.write(kCsrActivePanels, activePanels());
    for (std::size_t i = 0; i < kMaxPanels; ++i) {
        if (panels_[i]) {
            csr_.write(csrResolution(i),
                       static_cast<std::uint64_t>(
                           panels_[i]->resolution) + 1);
            csr_.write(csrRefresh(i),
                       static_cast<std::uint64_t>(
                           panels_[i]->refreshHz));
        } else {
            csr_.write(csrResolution(i), 0);
            csr_.write(csrRefresh(i), 0);
        }
    }
}

void
DisplayEngine::saveState(SnapshotWriter &w) const
{
    for (std::size_t i = 0; i < kMaxPanels; ++i) {
        w.push("panel" + std::to_string(i));
        const auto &p = panels_[i];
        w.putBool("attached", p.has_value());
        if (p) {
            w.putU64("resolution",
                     static_cast<std::uint64_t>(p->resolution));
            w.putDouble("refresh_hz", p->refreshHz);
            w.putU64("bytes_per_pixel", p->bytesPerPixel);
        }
        w.pop();
    }
}

void
DisplayEngine::loadState(SnapshotReader &r)
{
    // No publishCsrs(): the Soc restores the CSR space wholesale, and
    // attachPanel() would count hotplug events that never happened.
    for (std::size_t i = 0; i < kMaxPanels; ++i) {
        r.push("panel" + std::to_string(i));
        if (r.getBool("attached")) {
            PanelConfig cfg;
            const std::uint64_t res = r.getU64("resolution");
            if (res > static_cast<std::uint64_t>(
                          PanelResolution::UHD4K))
                throw SnapshotError("display: bad panel resolution");
            cfg.resolution = static_cast<PanelResolution>(res);
            cfg.refreshHz = r.getDouble("refresh_hz");
            cfg.bytesPerPixel = r.getU64("bytes_per_pixel");
            panels_[i] = cfg;
        } else {
            panels_[i].reset();
        }
        r.pop();
    }
}

} // namespace io
} // namespace sysscale
