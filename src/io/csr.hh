/**
 * @file
 * Control and status register (CSR) space.
 *
 * Peripherals expose their configuration through CSRs; the PMU
 * firmware reads them to estimate static performance demand (paper
 * Sec. 4.2: "the number of active displays and the resolution and
 * refresh rate for each display are available in the CSRs of the
 * display engine"). The space is a small named register file so the
 * firmware side (core/static_table) can be written against the same
 * interface the real Pcode uses.
 */

#ifndef SYSSCALE_IO_CSR_HH
#define SYSSCALE_IO_CSR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sysscale {
namespace io {

/**
 * A flat, named 64-bit register file.
 */
class CsrSpace
{
  public:
    CsrSpace() = default;

    /**
     * Define a register. Fatal if the name is already taken — CSR
     * maps are fixed at SoC integration time.
     */
    void define(const std::string &name, std::uint64_t reset_value = 0);

    /** True if @p name exists. */
    bool defined(const std::string &name) const;

    /** Read a register (fatal if undefined). */
    std::uint64_t read(const std::string &name) const;

    /** Write a register (fatal if undefined). */
    void write(const std::string &name, std::uint64_t value);

    /** Restore every register to its reset value. */
    void reset();

    /** Number of defined registers. */
    std::size_t size() const { return regs_.size(); }

    /** Sorted list of register names (for dumps/tests). */
    std::vector<std::string> names() const;

  private:
    struct Reg
    {
        std::uint64_t value;
        std::uint64_t resetValue;
    };

    std::map<std::string, Reg> regs_;
};

} // namespace io
} // namespace sysscale

#endif // SYSSCALE_IO_CSR_HH
