#include "workloads/profile.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace workloads {

const char *
workloadClassName(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::CpuSingleThread: return "cpu-st";
      case WorkloadClass::CpuMultiThread: return "cpu-mt";
      case WorkloadClass::Graphics: return "graphics";
      case WorkloadClass::BatteryLife: return "battery";
      case WorkloadClass::Micro: return "micro";
    }
    return "?";
}

WorkloadProfile::WorkloadProfile(std::string name, WorkloadClass klass,
                                 std::vector<Phase> phases,
                                 double perf_scalability)
    : name_(std::move(name)), klass_(klass),
      phases_(std::move(phases)), perfScalability_(perf_scalability)
{
    if (phases_.empty())
        SYSSCALE_FATAL("profile '%s' has no phases", name_.c_str());
    if (perf_scalability < 0.0 || perf_scalability > 1.0)
        SYSSCALE_FATAL("profile '%s': scalability %.2f out of [0,1]",
                       name_.c_str(), perf_scalability);

    period_ = 0;
    for (const Phase &p : phases_) {
        if (p.duration == 0)
            SYSSCALE_FATAL("profile '%s' has a zero-length phase",
                           name_.c_str());
        period_ += p.duration;
    }
}

const Phase &
WorkloadProfile::phase(std::size_t i) const
{
    SYSSCALE_ASSERT(i < phases_.size(), "phase %zu out of range", i);
    return phases_[i];
}

const Phase &
WorkloadProfile::phaseAt(Tick offset) const
{
    SYSSCALE_ASSERT(period_ > 0, "profile '%s' has zero period",
                    name_.c_str());
    Tick t = offset % period_;
    for (const Phase &p : phases_) {
        if (t < p.duration)
            return p;
        t -= p.duration;
    }
    return phases_.back(); // unreachable
}

BytesPerSec
WorkloadProfile::peakBandwidthHint(double mem_latency_ns,
                                   Hertz core_freq) const
{
    BytesPerSec peak = 0.0;
    for (const Phase &p : phases_) {
        if (p.work.cpiBase <= 0.0)
            continue;
        const double lat_cycles = mem_latency_ns * 1e-9 * core_freq;
        const double cpi =
            p.work.cpiBase + p.work.mpki / 1000.0 *
                                 p.work.blockingFactor * lat_cycles;
        const double rate = core_freq / cpi;
        peak = std::max(peak,
                        rate * p.work.bytesPerInstr *
                            static_cast<double>(p.activeThreads));
    }
    return peak;
}

ProfileAgent::ProfileAgent(WorkloadProfile profile, std::size_t repeats)
    : profile_(std::move(profile)), repeats_(repeats)
{
}

const Phase &
ProfileAgent::currentPhase(Tick offset)
{
    const Tick period = profile_.period();
    SYSSCALE_ASSERT(period > 0, "profile '%s' has zero period",
                    profile_.name().c_str());
    const Tick t = offset % period;
    if (t < cursorBegin_) {
        cursorIndex_ = 0;
        cursorBegin_ = 0;
    }
    // t < period, so the scan always lands inside the phase list.
    while (t >= cursorBegin_ + profile_.phase(cursorIndex_).duration) {
        cursorBegin_ += profile_.phase(cursorIndex_).duration;
        ++cursorIndex_;
    }
    return profile_.phase(cursorIndex_);
}

void
ProfileAgent::demandAt(Tick now, soc::IntervalDemand &demand)
{
    const Tick offset = now >= start_ ? now - start_ : 0;
    const Phase &p = currentPhase(offset);

    demand.threadWork.assign(p.activeThreads, p.work);
    demand.gfxWork = p.gfxWork;
    demand.ioBestEffort = p.ioBestEffort;
    demand.residency = p.residency;
    demand.coreFreqRequest = p.coreFreqRequest;
    demand.gfxFreqRequest = p.gfxFreqRequest;
}

bool
ProfileAgent::finished(Tick now) const
{
    if (repeats_ == 0)
        return false;
    const Tick offset = now >= start_ ? now - start_ : 0;
    return offset >= profile_.period() * repeats_;
}

Tick
ProfileAgent::demandHorizon(Tick now)
{
    // Before the phase clock starts, demandAt() pins the offset at 0;
    // conservatively promise constancy only up to the start.
    if (now < start_)
        return start_;

    const Tick period = profile_.period();
    const Tick offset = now - start_;

    // A finished profile never produces demand again, and finished()
    // is monotone — the horizon is unbounded.
    Tick finish = kMaxTick;
    if (repeats_ != 0) {
        const Tick finish_offset = period * repeats_;
        if (offset >= finish_offset)
            return kMaxTick;
        finish = start_ + finish_offset;
    }

    // A single-phase profile presents the same demand every tick of
    // every repetition; only the finish edge remains.
    if (profile_.numPhases() == 1)
        return finish;

    // The demand next changes at the current phase's end boundary.
    const Tick t = offset % period;
    (void)currentPhase(offset); // position the cursor
    const Tick boundary =
        offset - t + cursorBegin_ + profile_.phase(cursorIndex_).duration;
    return std::min(start_ + boundary, finish);
}

} // namespace workloads
} // namespace sysscale
