/**
 * @file
 * Battery-life workload profiles (paper Sec. 7.3).
 *
 * These workloads have *fixed* performance demands (a 60fps video
 * frame must be ready every 16.67ms) and long idle windows: active
 * (C0) residency is 10-40%, with the SoC parked in deep idle states
 * otherwise. The compute domain requests its most-efficient P-state
 * (Pn) rather than racing. SysScale's win here is pure average-power
 * reduction while in C0/C2 (the states with DRAM active), Fig. 9.
 *
 * The experiment harness attaches the HD laptop panel (and, for
 * video conferencing, the camera) before running these profiles.
 */

#ifndef SYSSCALE_WORKLOADS_BATTERY_HH
#define SYSSCALE_WORKLOADS_BATTERY_HH

#include <vector>

#include "workloads/profile.hh"

namespace sysscale {
namespace workloads {

/** Web browsing: bursty scrolling/rendering, ~25% active. */
WorkloadProfile webBrowsing();

/** Light gaming: capped 60fps rendering, ~40% active. */
WorkloadProfile lightGaming();

/** Video conferencing: camera + encode, ~30% active. */
WorkloadProfile videoConferencing();

/** Video playback: decode + scan-out, C0/C2/C8 = 10/5/85%. */
WorkloadProfile videoPlayback();

/** All four in Fig. 9 order. */
std::vector<WorkloadProfile> batterySuite();

/** The Pn-style frequency battery workloads request of the cores. */
constexpr Hertz kBatteryCoreFreq = 0.6 * kGHz;

/** The frequency battery workloads request of the graphics engine. */
constexpr Hertz kBatteryGfxFreq = 0.45 * kGHz;

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_BATTERY_HH
