#include "workloads/graphics.hh"

namespace sysscale {
namespace workloads {

namespace {

WorkloadProfile
gfxProfile(const char *name, double cycles_per_frame,
           double bytes_per_frame)
{
    Phase p;
    p.duration = 250 * kTicksPerMs;

    // Driver feed thread: light, mildly bandwidth-consuming.
    p.work.cpiBase = 0.80;
    p.work.mpki = 1.0;
    p.work.blockingFactor = 0.5;
    p.work.bytesPerInstr = 0.8;
    p.work.activity = 0.60;
    p.activeThreads = 1;

    p.gfxWork.cyclesPerFrame = cycles_per_frame;
    p.gfxWork.bytesPerFrame = bytes_per_frame;
    p.gfxWork.targetFps = 0.0; // benchmark mode: uncapped
    p.gfxWork.activity = 0.85;

    return WorkloadProfile(name, WorkloadClass::Graphics, {p},
                           /*perf_scalability=*/0.2);
}

} // namespace

WorkloadProfile
threeDMark06()
{
    return gfxProfile("3DMark06", 21e6, 150e6);
}

WorkloadProfile
threeDMark11()
{
    return gfxProfile("3DMark11", 30e6, 260e6);
}

WorkloadProfile
threeDMarkVantage()
{
    return gfxProfile("3DMarkVantage", 25e6, 240e6);
}

std::vector<WorkloadProfile>
graphicsSuite()
{
    return {threeDMark06(), threeDMark11(), threeDMarkVantage()};
}

} // namespace workloads
} // namespace sysscale
