/**
 * @file
 * Declarative mixed-activity scenarios.
 *
 * A Scenario describes everything that happens *around* a cell's
 * base workload during a run:
 *
 *  - @ref ScenarioLayer "layers": additional workload profiles
 *    overlaid on the base workload (via workloads::CompositeAgent),
 *    each with an arrival tick and an optional departure tick — the
 *    camera-conference-during-SPEC mixes of paper Secs. 5 and 7;
 *  - @ref ScenarioAction "actions": timed mutations of the SoC
 *    itself — TDP stepping for thermal envelopes, display on/off,
 *    camera start/stop — replayed by a ScenarioScript during the
 *    simulation.
 *
 * Scenarios are plain data: exp::ExperimentSpec carries one, the
 * spec codec serializes it (format v2), and the result cache
 * content-addresses it like every other simulation input. All times
 * are absolute simulation ticks (the warm-up window counts).
 */

#ifndef SYSSCALE_WORKLOADS_SCENARIO_HH
#define SYSSCALE_WORKLOADS_SCENARIO_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_object.hh"
#include "workloads/profile.hh"

namespace sysscale {

namespace soc {
class Soc;
} // namespace soc

namespace workloads {

/** One workload overlaid on the base workload for part of a run. */
struct ScenarioLayer
{
    WorkloadProfile profile;

    /** Arrival tick; the layer's phase clock starts here. */
    Tick start = 0;

    /** Departure tick; 0 = stays until the run ends. */
    Tick stop = 0;

    bool
    operator==(const ScenarioLayer &o) const
    {
        return profile == o.profile && start == o.start &&
               stop == o.stop;
    }
};

/** SoC mutations a scenario can schedule. */
enum class ScenarioActionKind : std::uint8_t
{
    SetTdp,     //!< Step the thermal envelope to @ref ScenarioAction::value watts.
    DisplayOn,  //!< Attach the default HD panel to slot 0.
    DisplayOff, //!< Detach every attached panel.
    CameraOn,   //!< Start the default camera stream on the ISP.
    CameraOff,  //!< Stop the camera stream.
};

/** Every action kind, for iteration (codec token lookup, tests). */
constexpr std::array<ScenarioActionKind, 5> kAllScenarioActionKinds = {
    ScenarioActionKind::SetTdp,     ScenarioActionKind::DisplayOn,
    ScenarioActionKind::DisplayOff, ScenarioActionKind::CameraOn,
    ScenarioActionKind::CameraOff,
};

/** Stable token of @p k (used by the spec codec). */
const char *scenarioActionName(ScenarioActionKind k);

/** One timed SoC mutation. */
struct ScenarioAction
{
    Tick at = 0;
    ScenarioActionKind kind = ScenarioActionKind::SetTdp;

    /** TDP watts for SetTdp; unused (and 0) otherwise. */
    double value = 0.0;

    bool
    operator==(const ScenarioAction &o) const
    {
        return at == o.at && kind == o.kind && value == o.value;
    }
};

/**
 * Everything that happens around the base workload during a run.
 */
struct Scenario
{
    std::vector<ScenarioLayer> layers;

    /** Must be sorted by non-decreasing @ref ScenarioAction::at. */
    std::vector<ScenarioAction> actions;

    bool empty() const { return layers.empty() && actions.empty(); }

    bool
    operator==(const Scenario &o) const
    {
        return layers == o.layers && actions == o.actions;
    }
};

/**
 * Throw std::invalid_argument unless @p s is well-formed: every
 * layer has phases and a departure after its arrival, actions are
 * sorted by time, and SetTdp values are positive.
 */
void validateScenario(const Scenario &s);

/**
 * Replays a scenario's action list against a live SoC.
 *
 * Construct one per run next to the Soc; it schedules itself on the
 * simulator's event queue at startup and applies each action exactly
 * once when simulated time reaches it (actions already in the past
 * at startup are applied at the first opportunity).
 */
class ScenarioScript : public SimObject
{
  public:
    ScenarioScript(Simulator &sim, soc::Soc &soc,
                   std::vector<ScenarioAction> actions);
    ~ScenarioScript() override;

    void startup() override;

    /** Actions applied so far. */
    std::size_t applied() const { return next_; }

    /** @name Snapshot support: the replay cursor (the action list is
     *  construction input). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    void fire();

    soc::Soc &soc_;
    std::vector<ScenarioAction> actions_;
    std::size_t next_ = 0;
    EventFunctionWrapper event_;
};

/** @name Named scenario registry (sweep_grid --scenario). @{ */

/** Registered scenario names, in presentation order. */
const std::vector<std::string> &scenarioNames();

/**
 * The registered scenario called @p name. Throws
 * std::invalid_argument on unknown names; "none" is the empty
 * scenario.
 */
Scenario scenarioByName(const std::string &name);
/** @} */

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_SCENARIO_HH
