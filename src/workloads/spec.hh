/**
 * @file
 * SPEC CPU2006 workload profiles.
 *
 * All 29 benchmarks the paper's Fig. 7 evaluates, as calibrated phase
 * profiles. Characteristics (base CPI, LLC MPKI at 4MB, blocking
 * factor, bytes/instruction including prefetch) encode each
 * benchmark's published bottleneck structure and the paper's own
 * anchors:
 *  - lbm: constant ~10GB/s bandwidth demand (Fig. 3a), bandwidth
 *    bound;
 *  - cactusADM: memory-latency bound, >10% loss under MD-DVFS
 *    (Fig. 2);
 *  - perlbench: core bound, low demand with spikes (Fig. 2, 3a);
 *  - astar: seconds-long alternation between ~1GB/s and ~10GB/s
 *    phases (Sec. 7.1);
 *  - gamess/namd/povray: highly frequency-scalable (Sec. 7.1).
 */

#ifndef SYSSCALE_WORKLOADS_SPEC_HH
#define SYSSCALE_WORKLOADS_SPEC_HH

#include <vector>

#include "workloads/profile.hh"

namespace sysscale {
namespace workloads {

/** All 29 SPEC CPU2006 profiles in suite order. */
std::vector<WorkloadProfile> specSuite();

/** One benchmark by name, e.g. "470.lbm" (fatal if unknown). */
WorkloadProfile specBenchmark(const std::string &name);

/** Names in suite order (for reports). */
std::vector<std::string> specNames();

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_SPEC_HH
