/**
 * @file
 * Workload phase profiles.
 *
 * The paper evaluates real binaries (SPEC CPU2006, 3DMark, battery
 * suites) on lab hardware; this repository substitutes calibrated
 * phase profiles that encode each workload's *bottleneck structure*
 * — base CPI, miss rate, memory-level parallelism, bandwidth demand,
 * graphics frame work, and package idle residency per phase — which
 * is the property every SysScale experiment actually depends on.
 * Profiles loop: a benchmark's phase sequence repeats until the run
 * window closes, so measurement windows of any length see the same
 * phase mix.
 */

#ifndef SYSSCALE_WORKLOADS_PROFILE_HH
#define SYSSCALE_WORKLOADS_PROFILE_HH

#include <string>
#include <vector>

#include "soc/workload_agent.hh"

namespace sysscale {
namespace workloads {

/** Workload taxonomy used by Fig. 6 and the evaluation sections. */
enum class WorkloadClass
{
    CpuSingleThread,
    CpuMultiThread,
    Graphics,
    BatteryLife,
    Micro,
};

const char *workloadClassName(WorkloadClass c);

/** One phase of a workload. */
struct Phase
{
    Tick duration = 100 * kTicksPerMs;

    /** Work per active hardware thread. */
    compute::CoreWork work{};

    /** Threads running this phase (1 = single-thread). */
    std::size_t activeThreads = 1;

    compute::GfxWork gfxWork{};

    BytesPerSec ioBestEffort = 0.0;

    compute::CStateResidency residency{};

    /** OS/driver P-state requests (0 = maximum). */
    Hertz coreFreqRequest = 0.0;
    Hertz gfxFreqRequest = 0.0;

    bool
    operator==(const Phase &o) const
    {
        return duration == o.duration && work == o.work &&
               activeThreads == o.activeThreads &&
               gfxWork == o.gfxWork &&
               ioBestEffort == o.ioBestEffort &&
               residency == o.residency &&
               coreFreqRequest == o.coreFreqRequest &&
               gfxFreqRequest == o.gfxFreqRequest;
    }
};

/**
 * A named, phased workload.
 */
class WorkloadProfile
{
  public:
    WorkloadProfile() = default;

    WorkloadProfile(std::string name, WorkloadClass klass,
                    std::vector<Phase> phases,
                    double perf_scalability = 1.0);

    const std::string &name() const { return name_; }
    WorkloadClass klass() const { return klass_; }

    /**
     * Performance scalability with CPU frequency (Sec. 6): the
     * fraction of a frequency increase that converts to performance.
     */
    double perfScalability() const { return perfScalability_; }

    std::size_t numPhases() const { return phases_.size(); }
    const Phase &phase(std::size_t i) const;
    const std::vector<Phase> &phases() const { return phases_; }

    /** Length of one pass through all phases. */
    Tick period() const { return period_; }

    /** Phase active at @p offset into the (cyclic) profile. */
    const Phase &phaseAt(Tick offset) const;

    /** Peak memory bandwidth demanded across phases (diagnostics). */
    BytesPerSec peakBandwidthHint(double mem_latency_ns,
                                  Hertz core_freq) const;

    bool
    operator==(const WorkloadProfile &o) const
    {
        return name_ == o.name_ && klass_ == o.klass_ &&
               phases_ == o.phases_ &&
               perfScalability_ == o.perfScalability_;
    }

  private:
    std::string name_;
    WorkloadClass klass_ = WorkloadClass::CpuSingleThread;
    std::vector<Phase> phases_;
    double perfScalability_ = 1.0;
    Tick period_ = 0;
};

/**
 * Adapter presenting a WorkloadProfile to the SoC.
 */
class ProfileAgent : public soc::WorkloadAgent
{
  public:
    /**
     * @param profile Profile to run (copied).
     * @param repeats Passes through the profile before finishing;
     *        0 means loop forever.
     */
    explicit ProfileAgent(WorkloadProfile profile,
                          std::size_t repeats = 0);

    void demandAt(Tick now, soc::IntervalDemand &demand) override;
    bool finished(Tick now) const override;
    Tick demandHorizon(Tick now) override;

    const WorkloadProfile &profile() const { return profile_; }

    /** Re-base the phase clock so the profile starts at @p now. */
    void rebase(Tick now) { start_ = now; }

  private:
    const Phase &currentPhase(Tick offset);

    WorkloadProfile profile_;
    std::size_t repeats_;
    Tick start_ = 0;

    /**
     * Cursor over the cyclic phase list. Simulation offsets advance
     * monotonically, so resuming the scan from the last phase makes
     * the per-step lookup O(1) amortized instead of a linear scan of
     * the whole list (WorkloadProfile::phaseAt); an offset that
     * moves backwards just resets the cursor.
     */
    std::size_t cursorIndex_ = 0;
    Tick cursorBegin_ = 0; //!< Offset-in-period where the phase starts.
};

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_PROFILE_HH
