#include "workloads/spec.hh"

#include "sim/logging.hh"

namespace sysscale {
namespace workloads {

namespace {

/** Single-phase characterization of one benchmark. */
struct SpecRow
{
    const char *name;
    double cpiBase;
    double mpki;      //!< LLC misses per kilo-instruction at 4MB.
    double blocking;  //!< Exposed fraction of miss latency.
    double bpi;       //!< Memory bytes per instruction (w/ prefetch).
    double activity;  //!< Core switching activity.
    double scalability;
};

/**
 * Calibrated suite table. Memory-bound rows (high mpki/bpi) have low
 * frequency scalability; core-bound rows scale nearly 1:1.
 */
constexpr SpecRow kSuite[] = {
    // name              cpi   mpki  blk   bpi    act  scal
    {"400.perlbench",    0.70,  0.7, 0.35,  0.45, 0.80, 0.90},
    {"401.bzip2",        0.85,  1.5, 0.25,  1.20, 0.70, 0.72},
    {"403.gcc",          0.90,  2.0, 0.25,  1.80, 0.70, 0.65},
    {"429.mcf",          1.10, 16.5, 0.75,  7.50, 0.50, 0.10},
    {"445.gobmk",        0.95,  0.6, 0.30,  0.50, 0.80, 0.92},
    {"456.hmmer",        0.60,  0.3, 0.25,  0.35, 0.85, 0.95},
    {"458.sjeng",        0.90,  0.4, 0.30,  0.40, 0.80, 0.93},
    {"462.libquantum",   0.70,  8.0, 0.30,  6.00, 0.60, 0.15},
    {"464.h264ref",      0.65,  0.8, 0.30,  0.80, 0.85, 0.88},
    {"471.omnetpp",      1.00,  7.0, 0.70,  4.00, 0.55, 0.25},
    {"473.astar",        0.95,  1.2, 0.45,  1.00, 0.70, 0.65},
    {"483.xalancbmk",    0.85,  1.6, 0.35,  1.50, 0.65, 0.60},
    {"410.bwaves",       0.95, 12.0, 0.45, 10.00, 0.55, 0.08},
    {"416.gamess",       0.55,  0.15, 0.25, 0.20, 0.88, 0.97},
    {"433.milc",         1.00, 10.0, 0.50, 11.00, 0.55, 0.10},
    {"434.zeusmp",       0.85,  3.0, 0.30,  2.80, 0.65, 0.50},
    {"435.gromacs",      0.70,  0.9, 0.30,  0.90, 0.80, 0.88},
    {"436.cactusADM",    0.80,  9.5, 0.85,  5.00, 0.55, 0.15},
    {"437.leslie3d",     0.85,  7.0, 0.45,  8.00, 0.60, 0.20},
    {"444.namd",         0.60,  0.2, 0.25,  0.25, 0.88, 0.96},
    {"447.dealII",       0.70,  1.2, 0.30,  1.00, 0.75, 0.82},
    {"450.soplex",       0.90,  6.5, 0.60,  5.50, 0.60, 0.25},
    {"453.povray",       0.65,  0.1, 0.25,  0.15, 0.90, 0.97},
    {"454.calculix",     0.65,  0.7, 0.30,  0.70, 0.82, 0.90},
    {"459.GemsFDTD",     0.90,  9.0, 0.50,  9.00, 0.55, 0.15},
    {"465.tonto",        0.70,  0.8, 0.30,  0.80, 0.80, 0.87},
    {"470.lbm",          1.00, 20.0, 0.40, 16.00, 0.55, 0.05},
    {"481.wrf",          0.80,  2.2, 0.30,  1.60, 0.70, 0.60},
    {"482.sphinx3",      0.75,  2.8, 0.40,  1.80, 0.70, 0.55},
};

constexpr std::size_t kSuiteSize = sizeof(kSuite) / sizeof(kSuite[0]);

Phase
phaseOf(const SpecRow &row, Tick duration)
{
    Phase p;
    p.duration = duration;
    p.work.cpiBase = row.cpiBase;
    p.work.mpki = row.mpki;
    p.work.blockingFactor = row.blocking;
    p.work.bytesPerInstr = row.bpi;
    p.work.activity = row.activity;
    p.activeThreads = 1;
    return p;
}

WorkloadProfile
buildProfile(const SpecRow &row)
{
    const std::string name = row.name;

    // Benchmarks with documented phase behaviour get explicit phase
    // structure; the rest are steady.
    if (name == "400.perlbench") {
        // Core-bound with occasional bandwidth spikes (Fig. 3a).
        Phase low = phaseOf(row, 260 * kTicksPerMs);
        Phase spike = phaseOf(row, 40 * kTicksPerMs);
        spike.work.mpki = 4.0;
        spike.work.bytesPerInstr = 3.2;
        spike.work.blockingFactor = 0.45;
        return WorkloadProfile(name, WorkloadClass::CpuSingleThread,
                               {low, spike}, row.scalability);
    }
    if (name == "473.astar") {
        // Seconds-long alternation between ~1GB/s and ~10GB/s
        // demand (Sec. 7.1: SysScale tracks the phases).
        Phase low = phaseOf(row, 800 * kTicksPerMs);
        Phase high = phaseOf(row, 800 * kTicksPerMs);
        high.work.mpki = 8.0;
        high.work.bytesPerInstr = 9.0;
        high.work.blockingFactor = 0.45;
        return WorkloadProfile(name, WorkloadClass::CpuSingleThread,
                               {low, high}, row.scalability);
    }

    return WorkloadProfile(name, WorkloadClass::CpuSingleThread,
                           {phaseOf(row, 300 * kTicksPerMs)},
                           row.scalability);
}

} // namespace

std::vector<WorkloadProfile>
specSuite()
{
    std::vector<WorkloadProfile> suite;
    suite.reserve(kSuiteSize);
    for (const SpecRow &row : kSuite)
        suite.push_back(buildProfile(row));
    return suite;
}

WorkloadProfile
specBenchmark(const std::string &name)
{
    for (const SpecRow &row : kSuite) {
        if (name == row.name)
            return buildProfile(row);
    }
    SYSSCALE_FATAL("unknown SPEC benchmark '%s'", name.c_str());
}

std::vector<std::string>
specNames()
{
    std::vector<std::string> names;
    names.reserve(kSuiteSize);
    for (const SpecRow &row : kSuite)
        names.emplace_back(row.name);
    return names;
}

} // namespace workloads
} // namespace sysscale
