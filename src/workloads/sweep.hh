/**
 * @file
 * Synthetic workload sweep (the predictor-training corpus).
 *
 * The paper trains and validates its demand predictor on >1600
 * representative workloads across three classes — single-threaded
 * CPU, multi-threaded CPU, and graphics (Sec. 4.2, Fig. 6). The
 * original corpus (SPEC06 + SYSmark + MobileMark + 3DMark traces) is
 * proprietary; this generator substitutes a deterministic parameter
 * sweep over the same observable space: base CPI, miss rate, memory
 * level parallelism, traffic per instruction, thread count, and
 * frame work. The substitution preserves what the corpus is used
 * for: thresholds are trained on observable counters vs. measured
 * degradation, and the sweep densely covers the degradation range.
 */

#ifndef SYSSCALE_WORKLOADS_SWEEP_HH
#define SYSSCALE_WORKLOADS_SWEEP_HH

#include <cstdint>
#include <vector>

#include "workloads/profile.hh"

namespace sysscale {
namespace workloads {

/** Sweep shape: counts per class (defaults give 1620 > 1600). */
struct SweepSpec
{
    std::size_t cpuSingleThread = 900;
    std::size_t cpuMultiThread = 400;
    std::size_t graphics = 320;
    std::uint64_t seed = 0x5ca1e5ULL;

    std::size_t
    total() const
    {
        return cpuSingleThread + cpuMultiThread + graphics;
    }
};

/**
 * Deterministic synthetic corpus generator.
 */
class SynthSweep
{
  public:
    /** Generate the full corpus for @p spec (same seed, same corpus). */
    static std::vector<WorkloadProfile> generate(const SweepSpec &spec);

    /** Generate only one class, n workloads. */
    static std::vector<WorkloadProfile>
    generateClass(WorkloadClass klass, std::size_t n,
                  std::uint64_t seed);
};

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_SWEEP_HH
