/**
 * @file
 * Microbenchmarks.
 *
 * The STREAM-like kernel exercises the peak memory bandwidth of DRAM
 * (paper Sec. 3, Fig. 4: it isolates the impact of unoptimized MRC
 * values on the memory subsystem). A pointer-chase kernel provides a
 * pure-latency probe for tests and ablations.
 */

#ifndef SYSSCALE_WORKLOADS_MICRO_HH
#define SYSSCALE_WORKLOADS_MICRO_HH

#include "workloads/profile.hh"

namespace sysscale {
namespace workloads {

/**
 * Bandwidth saturator in the spirit of STREAM [McCalpin]: all
 * hardware threads stream with high prefetch efficiency.
 */
WorkloadProfile streamMicro();

/** Dependent-load latency probe: one thread, no MLP. */
WorkloadProfile pointerChaseMicro();

/** Fully core-bound spin kernel (no memory traffic). */
WorkloadProfile spinMicro();

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_MICRO_HH
