#include "workloads/micro.hh"

namespace sysscale {
namespace workloads {

WorkloadProfile
streamMicro()
{
    Phase p;
    p.duration = 200 * kTicksPerMs;
    p.work.cpiBase = 0.60;
    p.work.mpki = 30.0;
    p.work.blockingFactor = 0.35; // deep prefetch, high MLP
    p.work.bytesPerInstr = 40.0;
    p.work.activity = 0.55;
    p.activeThreads = 4;
    return WorkloadProfile("stream", WorkloadClass::Micro, {p}, 0.02);
}

WorkloadProfile
pointerChaseMicro()
{
    Phase p;
    p.duration = 200 * kTicksPerMs;
    p.work.cpiBase = 0.50;
    p.work.mpki = 25.0;
    p.work.blockingFactor = 1.0; // fully serialized misses
    p.work.bytesPerInstr = 1.6;
    p.work.activity = 0.40;
    p.activeThreads = 1;
    return WorkloadProfile("pointer-chase", WorkloadClass::Micro, {p},
                           0.05);
}

WorkloadProfile
spinMicro()
{
    Phase p;
    p.duration = 200 * kTicksPerMs;
    p.work.cpiBase = 0.50;
    p.work.mpki = 0.0;
    p.work.blockingFactor = 0.0;
    p.work.bytesPerInstr = 0.0;
    p.work.activity = 0.95;
    p.activeThreads = 1;
    return WorkloadProfile("spin", WorkloadClass::Micro, {p}, 1.0);
}

} // namespace workloads
} // namespace sysscale
