/**
 * @file
 * 3DMark graphics workload profiles (paper Sec. 7.2).
 *
 * Graphics benchmarks are shader-rate limited at mobile TDPs: the
 * engine runs as fast as its granted frequency allows while a light
 * CPU thread feeds it. Their gains under SysScale come from the
 * power budget freed in the IO/memory domains being converted to
 * graphics frequency (Fig. 8: 3DMark06 +8.9%, 3DMark11 +6.7%,
 * Vantage +8.1%).
 */

#ifndef SYSSCALE_WORKLOADS_GRAPHICS_HH
#define SYSSCALE_WORKLOADS_GRAPHICS_HH

#include <vector>

#include "workloads/profile.hh"

namespace sysscale {
namespace workloads {

/** 3DMark06: lighter frames, moderate texture bandwidth. */
WorkloadProfile threeDMark06();

/** 3DMark11: heaviest frames and textures of the three. */
WorkloadProfile threeDMark11();

/** 3DMark Vantage. */
WorkloadProfile threeDMarkVantage();

/** All three in Fig. 8 order. */
std::vector<WorkloadProfile> graphicsSuite();

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_GRAPHICS_HH
