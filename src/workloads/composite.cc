#include "workloads/composite.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace workloads {

namespace {

/**
 * Merge one P-state request into the running combination over the
 * members that carry the matching kind of work. 0 means "maximum",
 * which dominates; otherwise the highest request wins.
 */
void
mergeFreqRequest(Hertz request, bool &any, Hertz &combined)
{
    if (!any) {
        any = true;
        combined = request;
        return;
    }
    if (combined == 0.0 || request == 0.0)
        combined = 0.0;
    else
        combined = std::max(combined, request);
}

} // anonymous namespace

void
CompositeAgent::addMember(soc::WorkloadAgent &agent, Tick start,
                          Tick stop)
{
    SYSSCALE_ASSERT(stop == 0 || stop > start,
                    "composite member departs before it arrives");
    members_.push_back(Member{&agent, start, stop});
}

bool
CompositeAgent::memberActive(std::size_t i, Tick now) const
{
    SYSSCALE_ASSERT(i < members_.size(), "member %zu out of range", i);
    const Member &m = members_[i];
    if (now < m.start || (m.stop != 0 && now >= m.stop))
        return false;
    return !m.agent->finished(now - m.start);
}

void
CompositeAgent::demandAt(Tick now, soc::IntervalDemand &demand)
{
    // Residency identity: always in the deepest state — an empty
    // composite demands nothing and lets the package sleep.
    std::array<double, compute::kNumCStates> deepest{};
    deepest[compute::kNumCStates - 1] = 1.0;
    demand.residency = compute::CStateResidency(deepest);

    bool any_cpu = false, any_gfx = false;
    double gfx_cycle_sum = 0.0, gfx_activity_weighted = 0.0;

    for (std::size_t i = 0; i < members_.size(); ++i) {
        if (!memberActive(i, now))
            continue;
        scratch_.clear();
        members_[i].agent->demandAt(now - members_[i].start, scratch_);

        demand.threadWork.insert(demand.threadWork.end(),
                                 scratch_.threadWork.begin(),
                                 scratch_.threadWork.end());
        demand.ioBestEffort += scratch_.ioBestEffort;
        demand.residency = compute::overlayResidency(
            demand.residency, scratch_.residency);

        bool has_cpu = false;
        for (const auto &w : scratch_.threadWork)
            has_cpu = has_cpu || w.cpiBase > 0.0;
        if (has_cpu) {
            mergeFreqRequest(scratch_.coreFreqRequest, any_cpu,
                             demand.coreFreqRequest);
        }

        if (!scratch_.gfxWork.idle()) {
            const compute::GfxWork &g = scratch_.gfxWork;
            demand.gfxWork.cyclesPerFrame += g.cyclesPerFrame;
            demand.gfxWork.bytesPerFrame += g.bytesPerFrame;
            // The loosest cap binds the combined stream; 0 (uncapped)
            // dominates.
            if (gfx_cycle_sum == 0.0) {
                demand.gfxWork.targetFps = g.targetFps;
            } else if (demand.gfxWork.targetFps == 0.0 ||
                       g.targetFps == 0.0) {
                demand.gfxWork.targetFps = 0.0;
            } else {
                demand.gfxWork.targetFps =
                    std::max(demand.gfxWork.targetFps, g.targetFps);
            }
            gfx_cycle_sum += g.cyclesPerFrame;
            gfx_activity_weighted += g.activity * g.cyclesPerFrame;
            mergeFreqRequest(scratch_.gfxFreqRequest, any_gfx,
                             demand.gfxFreqRequest);
        }
    }

    if (gfx_cycle_sum > 0.0)
        demand.gfxWork.activity = gfx_activity_weighted / gfx_cycle_sum;
}

Tick
CompositeAgent::demandHorizon(Tick now)
{
    Tick horizon = kMaxTick;
    for (const Member &m : members_) {
        if (now < m.start) {
            // Silent until arrival; the arrival edge changes demand.
            horizon = std::min(horizon, m.start);
            continue;
        }
        if (m.stop != 0 && now >= m.stop)
            continue; // departed for good
        if (m.stop != 0)
            horizon = std::min(horizon, m.stop);

        const Tick local = now - m.start;
        const Tick member_h = m.agent->demandHorizon(local);
        if (member_h <= local)
            return now; // member promises nothing
        // Translate the member's local horizon back to absolute time,
        // saturating (kMaxTick means "never changes").
        const Tick absolute =
            member_h >= kMaxTick - m.start ? kMaxTick
                                           : m.start + member_h;
        horizon = std::min(horizon, absolute);
    }
    return horizon > now ? horizon : now;
}

bool
CompositeAgent::finished(Tick now) const
{
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        if (now < m.start)
            return false; // still to arrive
        if (m.stop != 0 && now >= m.stop)
            continue; // departed
        if (!m.agent->finished(now - m.start))
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace sysscale
