#include "workloads/battery.hh"

namespace sysscale {
namespace workloads {

namespace {

using compute::CState;
using compute::CStateResidency;
using compute::kNumCStates;

CStateResidency
residency(double c0, double c2, double c6, double c7, double c8)
{
    std::array<double, kNumCStates> f{};
    f[compute::cstateIndex(CState::C0)] = c0;
    f[compute::cstateIndex(CState::C2)] = c2;
    f[compute::cstateIndex(CState::C6)] = c6;
    f[compute::cstateIndex(CState::C7)] = c7;
    f[compute::cstateIndex(CState::C8)] = c8;
    return CStateResidency(f);
}

Phase
batteryPhase(Tick duration, double cpi, double mpki, double bpi,
             double activity, const CStateResidency &res)
{
    Phase p;
    p.duration = duration;
    p.work.cpiBase = cpi;
    p.work.mpki = mpki;
    p.work.blockingFactor = 0.55;
    p.work.bytesPerInstr = bpi;
    p.work.activity = activity;
    p.activeThreads = 1;
    p.residency = res;
    p.coreFreqRequest = kBatteryCoreFreq;
    return p;
}

} // namespace

WorkloadProfile
webBrowsing()
{
    // Scroll/render bursts alternating with reading idle.
    Phase burst = batteryPhase(120 * kTicksPerMs, 0.80, 1.8, 1.4,
                               0.60, residency(0.16, 0.06, 0.22,
                                               0.06, 0.50));
    burst.activeThreads = 2;
    Phase readIdle = batteryPhase(180 * kTicksPerMs, 0.80, 0.8, 0.6,
                                  0.45, residency(0.05, 0.04, 0.20,
                                                  0.11, 0.60));
    return WorkloadProfile("web-browsing", WorkloadClass::BatteryLife,
                           {burst, readIdle}, 0.1);
}

WorkloadProfile
lightGaming()
{
    Phase p = batteryPhase(200 * kTicksPerMs, 0.85, 1.5, 1.2, 0.55,
                           residency(0.22, 0.08, 0.25, 0.05, 0.40));
    p.gfxWork.cyclesPerFrame = 5.5e6;
    p.gfxWork.bytesPerFrame = 28e6;
    p.gfxWork.targetFps = 60.0;
    p.gfxWork.activity = 0.55;
    p.gfxFreqRequest = kBatteryGfxFreq;
    return WorkloadProfile("light-gaming", WorkloadClass::BatteryLife,
                           {p}, 0.1);
}

WorkloadProfile
videoConferencing()
{
    // Camera capture (ISP handles the isochronous stream; the CPU
    // encodes) with moderate activity.
    Phase p = batteryPhase(200 * kTicksPerMs, 0.70, 2.2, 1.8, 0.60,
                           residency(0.17, 0.07, 0.20, 0.06, 0.50));
    p.activeThreads = 2;
    return WorkloadProfile("video-conferencing",
                           WorkloadClass::BatteryLife, {p}, 0.1);
}

WorkloadProfile
videoPlayback()
{
    // Sec. 7.3: C0/C2/C8 residencies of 10/5/85% per frame cycle.
    Phase p = batteryPhase(100 * kTicksPerMs, 0.75, 1.2, 1.0, 0.50,
                           residency(0.10, 0.05, 0.00, 0.00, 0.85));
    return WorkloadProfile("video-playback",
                           WorkloadClass::BatteryLife, {p}, 0.1);
}

std::vector<WorkloadProfile>
batterySuite()
{
    return {webBrowsing(), lightGaming(), videoConferencing(),
            videoPlayback()};
}

} // namespace workloads
} // namespace sysscale
