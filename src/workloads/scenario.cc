#include "workloads/scenario.hh"

#include <algorithm>
#include <stdexcept>

#include "io/display.hh"
#include "io/isp.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "soc/soc.hh"
#include "workloads/battery.hh"

namespace sysscale {
namespace workloads {

const char *
scenarioActionName(ScenarioActionKind k)
{
    switch (k) {
      case ScenarioActionKind::SetTdp: return "set_tdp";
      case ScenarioActionKind::DisplayOn: return "display_on";
      case ScenarioActionKind::DisplayOff: return "display_off";
      case ScenarioActionKind::CameraOn: return "camera_on";
      case ScenarioActionKind::CameraOff: return "camera_off";
    }
    return "?";
}

void
validateScenario(const Scenario &s)
{
    for (const ScenarioLayer &layer : s.layers) {
        if (layer.profile.numPhases() == 0)
            throw std::invalid_argument(
                "scenario: layer workload has no phases");
        if (layer.stop != 0 && layer.stop <= layer.start)
            throw std::invalid_argument(
                "scenario: layer departs before it arrives");
    }
    Tick prev = 0;
    for (const ScenarioAction &a : s.actions) {
        if (a.at < prev)
            throw std::invalid_argument(
                "scenario: actions not sorted by time");
        prev = a.at;
        if (a.kind == ScenarioActionKind::SetTdp && !(a.value > 0.0))
            throw std::invalid_argument(
                "scenario: non-positive TDP step");
    }
}

ScenarioScript::ScenarioScript(Simulator &sim, soc::Soc &soc,
                               std::vector<ScenarioAction> actions)
    : SimObject(sim, nullptr, "scenario"), soc_(soc),
      actions_(std::move(actions)),
      event_("scenario.fire", [this] { fire(); })
{
    validateScenario(Scenario{{}, actions_});
}

ScenarioScript::~ScenarioScript()
{
    if (event_.scheduled())
        eventq().deschedule(&event_);
}

void
ScenarioScript::startup()
{
    if (next_ < actions_.size()) {
        eventq().schedule(&event_,
                          std::max(actions_[next_].at, now()));
    }
}

void
ScenarioScript::fire()
{
    while (next_ < actions_.size() && actions_[next_].at <= now()) {
        const ScenarioAction &a = actions_[next_++];
        TRACE_INSTANT(traceSink(), obs::kCatScenario,
                      scenarioActionName(a.kind), now(),
                      obs::kv("value", a.value));
        debugLog("scenario: %s at %.3f ms",
                 scenarioActionName(a.kind), msFromTicks(now()));
        switch (a.kind) {
          case ScenarioActionKind::SetTdp:
            soc_.setTdp(a.value);
            break;
          case ScenarioActionKind::DisplayOn:
            soc_.display().attachPanel(0, io::kDefaultHdPanel);
            break;
          case ScenarioActionKind::DisplayOff:
            for (std::size_t i = 0; i < io::DisplayEngine::kMaxPanels;
                 ++i) {
                if (soc_.display().panel(i))
                    soc_.display().detachPanel(i);
            }
            break;
          case ScenarioActionKind::CameraOn:
            soc_.isp().startCamera(io::CameraConfig{});
            break;
          case ScenarioActionKind::CameraOff:
            soc_.isp().stopCamera();
            break;
        }
    }
    if (next_ < actions_.size())
        eventq().schedule(&event_, actions_[next_].at);
}

void
ScenarioScript::saveState(SnapshotWriter &w) const
{
    w.putU64("next", next_);
}

void
ScenarioScript::loadState(SnapshotReader &r)
{
    next_ = r.getU64("next");
    if (next_ > actions_.size())
        throw SnapshotError("scenario: cursor past the action list");
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = {
        "none",         "videoconf", "thermal-step",
        "display-blank", "app-switch",
    };
    return names;
}

Scenario
scenarioByName(const std::string &name)
{
    Scenario s;
    if (name == "none" || name.empty())
        return s;

    if (name == "videoconf") {
        // Video conference joining a running CPU workload: the
        // camera starts immediately, the conference's decode/render
        // work arrives shortly after, and the platform steps its
        // thermal envelope down and back mid-call.
        s.actions.push_back(
            {0, ScenarioActionKind::CameraOn, 0.0});
        s.layers.push_back(
            {videoConferencing(), 200 * kTicksPerMs, 0});
        s.actions.push_back(
            {800 * kTicksPerMs, ScenarioActionKind::SetTdp, 3.5});
        s.actions.push_back(
            {1400 * kTicksPerMs, ScenarioActionKind::SetTdp, 4.5});
        return s;
    }
    if (name == "thermal-step") {
        // Thermal envelope walk: sustained -> throttled -> recovered.
        s.actions.push_back(
            {500 * kTicksPerMs, ScenarioActionKind::SetTdp, 3.5});
        s.actions.push_back(
            {1100 * kTicksPerMs, ScenarioActionKind::SetTdp, 4.5});
        s.actions.push_back(
            {1700 * kTicksPerMs, ScenarioActionKind::SetTdp, 3.5});
        return s;
    }
    if (name == "app-switch") {
        // Foreground/background app switch: the user works in a
        // browser, then at 1s switches to a game — the browser
        // departs in the same step the game arrives, so the
        // composite hands the demand stream from one app to the
        // other mid-run (the cell's base workload plays whatever
        // keeps running in the background).
        s.layers.push_back({webBrowsing(), 0, kTicksPerSec});
        s.layers.push_back({lightGaming(), kTicksPerSec, 0});
        return s;
    }
    if (name == "display-blank") {
        // Panel self-blank and wake: the display's isochronous
        // demand vanishes mid-run and returns.
        s.actions.push_back(
            {600 * kTicksPerMs, ScenarioActionKind::DisplayOff, 0.0});
        s.actions.push_back(
            {1200 * kTicksPerMs, ScenarioActionKind::DisplayOn, 0.0});
        return s;
    }
    throw std::invalid_argument("unknown scenario \"" + name + "\"");
}

} // namespace workloads
} // namespace sysscale
