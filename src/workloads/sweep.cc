#include "workloads/sweep.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace sysscale {
namespace workloads {

namespace {

/** Log-uniform draw in [lo, hi]. */
double
logUniform(Rng &rng, double lo, double hi)
{
    return lo * std::exp(rng.uniform() * std::log(hi / lo));
}

WorkloadProfile
cpuWorkload(Rng &rng, std::size_t index, bool multi_thread)
{
    Phase p;
    p.duration = 100 * kTicksPerMs;
    p.work.cpiBase = rng.uniform(0.45, 2.2);
    p.work.mpki = logUniform(rng, 0.05, 24.0);
    p.work.blockingFactor = rng.uniform(0.30, 0.90);

    // Traffic correlates with the miss rate plus a prefetch factor;
    // streaming codes move more bytes than their demand misses.
    const double prefetch = rng.uniform(1.0, 3.0);
    p.work.bytesPerInstr = p.work.mpki / 1000.0 * 64.0 * prefetch *
                           rng.uniform(0.8, 1.3) * 10.0;
    p.work.activity = rng.uniform(0.45, 0.90);
    p.activeThreads = multi_thread
                          ? static_cast<std::size_t>(
                                rng.uniformInt(2, 4))
                          : 1;

    const char *cls = multi_thread ? "mt" : "st";
    return WorkloadProfile(
        "synth-" + std::string(cls) + "-" + std::to_string(index),
        multi_thread ? WorkloadClass::CpuMultiThread
                     : WorkloadClass::CpuSingleThread,
        {p}, 1.0 - std::min(1.0, p.work.mpki / 24.0));
}

WorkloadProfile
gfxWorkload(Rng &rng, std::size_t index)
{
    Phase p;
    p.duration = 100 * kTicksPerMs;

    // Light feeder thread.
    p.work.cpiBase = rng.uniform(0.6, 1.1);
    p.work.mpki = logUniform(rng, 0.2, 3.0);
    p.work.blockingFactor = 0.5;
    p.work.bytesPerInstr = p.work.mpki / 1000.0 * 64.0 * 8.0;
    p.work.activity = 0.55;
    p.activeThreads = 1;

    p.gfxWork.cyclesPerFrame = logUniform(rng, 4e6, 40e6);
    p.gfxWork.bytesPerFrame = logUniform(rng, 20e6, 400e6);
    p.gfxWork.activity = rng.uniform(0.6, 0.9);

    return WorkloadProfile("synth-gfx-" + std::to_string(index),
                           WorkloadClass::Graphics, {p}, 0.15);
}

} // namespace

std::vector<WorkloadProfile>
SynthSweep::generateClass(WorkloadClass klass, std::size_t n,
                          std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<WorkloadProfile> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (klass) {
          case WorkloadClass::CpuSingleThread:
            out.push_back(cpuWorkload(rng, i, false));
            break;
          case WorkloadClass::CpuMultiThread:
            out.push_back(cpuWorkload(rng, i, true));
            break;
          case WorkloadClass::Graphics:
            out.push_back(gfxWorkload(rng, i));
            break;
          default:
            SYSSCALE_FATAL("SynthSweep: unsupported class %s",
                           workloadClassName(klass));
        }
    }
    return out;
}

std::vector<WorkloadProfile>
SynthSweep::generate(const SweepSpec &spec)
{
    std::vector<WorkloadProfile> corpus;
    corpus.reserve(spec.total());

    auto append = [&corpus](std::vector<WorkloadProfile> part) {
        for (auto &p : part)
            corpus.push_back(std::move(p));
    };

    append(generateClass(WorkloadClass::CpuSingleThread,
                         spec.cpuSingleThread, spec.seed ^ 0x1));
    append(generateClass(WorkloadClass::CpuMultiThread,
                         spec.cpuMultiThread, spec.seed ^ 0x2));
    append(generateClass(WorkloadClass::Graphics, spec.graphics,
                         spec.seed ^ 0x3));
    return corpus;
}

} // namespace workloads
} // namespace sysscale
