/**
 * @file
 * Overlaying several workloads into one demand stream.
 *
 * SysScale's headline scenarios are *concurrent*: camera streaming
 * plus display refresh plus CPU work is exactly where coordinated
 * multi-domain DVFS pays off (paper Secs. 5 and 7). CompositeAgent
 * makes that a first-class workload: it presents any number of
 * member WorkloadAgents — each with its own arrival/departure window
 * — to the SoC as a single IntervalDemand per step.
 *
 * Merge semantics (per step, across the members active at that
 * tick):
 *
 *  - per-thread work is concatenated (each member keeps its own
 *    threads),
 *  - graphics frame work and best-effort IO demand are summed
 *    (cycles/bytes per frame add; the combined frame-rate cap is the
 *    loosest member cap, and any uncapped member uncaps the whole),
 *  - package idle residencies combine via the independent-overlay
 *    product (compute::overlayResidency): the package only idles as
 *    deeply as its most active member allows,
 *  - OS/driver P-state requests merge over the members that carry
 *    the matching work (CPU threads / graphics frames): any such
 *    member requesting "maximum" (0) wins, otherwise the highest
 *    request does. Members without that kind of work express no
 *    opinion.
 *
 * Members see a local clock that starts at their arrival, so a
 * profile joining mid-run begins at its own phase 0.
 */

#ifndef SYSSCALE_WORKLOADS_COMPOSITE_HH
#define SYSSCALE_WORKLOADS_COMPOSITE_HH

#include <vector>

#include "soc/workload_agent.hh"

namespace sysscale {
namespace workloads {

/**
 * A set of concurrently running workload agents presented to the SoC
 * as one.
 */
class CompositeAgent : public soc::WorkloadAgent
{
  public:
    /**
     * Add a member (not owned; must outlive the composite).
     *
     * @param agent The member workload.
     * @param start Arrival tick; before it the member is silent.
     * @param stop Departure tick; 0 means it never departs.
     */
    void addMember(soc::WorkloadAgent &agent, Tick start = 0,
                   Tick stop = 0);

    std::size_t numMembers() const { return members_.size(); }

    /** Whether member @p i contributes demand at @p now. */
    bool memberActive(std::size_t i, Tick now) const;

    void demandAt(Tick now, soc::IntervalDemand &demand) override;

    /**
     * Finished once every member is past its departure window or
     * reports itself finished; a composite with no members is
     * trivially finished.
     */
    bool finished(Tick now) const override;

    /**
     * Minimum over every member edge that could change the merged
     * demand: pending arrivals, departures, and each active member's
     * own horizon (translated from its local clock).
     */
    Tick demandHorizon(Tick now) override;

  private:
    struct Member
    {
        soc::WorkloadAgent *agent;
        Tick start;
        Tick stop; //!< 0 = never departs.
    };

    std::vector<Member> members_;
    soc::IntervalDemand scratch_; //!< Reused per member per step.
};

} // namespace workloads
} // namespace sysscale

#endif // SYSSCALE_WORKLOADS_COMPOSITE_HH
