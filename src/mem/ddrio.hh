/**
 * @file
 * DRAM interface (DDRIO) model, split per the paper's Fig. 1:
 *
 *  - DDRIO-digital (4): command/data serialization logic on the V_IO
 *    rail; dynamic power follows Cdyn * V_IO^2 * f plus leakage.
 *  - DDRIO-analog (3): drivers, receivers, and DLLs on the VDDQ rail;
 *    the per-bit energy is accounted with DRAM IO power in
 *    dram::DramPowerModel, so here only the DLL/PLL blocks and their
 *    relock latency are modeled.
 *
 * SysScale is the first mechanism to scale the DDRIO-digital voltage
 * during memory DVFS (Sec. 1 and 3 of the paper); baseline governors
 * leave V_IO at its boot value.
 */

#ifndef SYSSCALE_MEM_DDRIO_HH
#define SYSSCALE_MEM_DDRIO_HH

#include "dram/spec.hh"
#include "sim/types.hh"

namespace sysscale {
namespace mem {

/**
 * The physical DRAM interface between memory controller and devices.
 */
class Ddrio
{
  public:
    /**
     * @param spec DRAM configuration (clock relationships).
     * @param v_io Boot voltage of the digital rail.
     * @param cdyn_farad Effective digital switching capacitance.
     * @param leak_k Digital leakage coefficient (see leakagePower()).
     */
    Ddrio(const dram::DramSpec &spec, Volt v_io,
          double cdyn_farad = 200e-12, double leak_k = 0.245);

    /** @name Operating state. @{ */
    std::size_t binIndex() const { return binIndex_; }
    void setBin(std::size_t bin_index);

    Volt vio() const { return vio_; }
    void setVio(Volt v);

    /** Digital interface clock (half the DDR data rate). */
    Hertz clock() const;
    /** @} */

    /**
     * Average digital-rail power over an interval.
     *
     * @param utilization Interface data-bus utilization in [0, 1].
     * @param activity_factor MRC-dependent multiplier (>= 1 when the
     *        registers are unoptimized; see MrcRegisterSet).
     */
    Watt digitalPower(double utilization,
                      double activity_factor = 1.0) const;

    /**
     * DLL/PLL relock latency after a frequency change. The SysScale
     * flow overlaps this with the fabric PLL relock (Fig. 5, step 6).
     */
    Tick relockLatency() const { return kRelockLatency; }

    /**
     * Digital-rail power at an arbitrary (voltage, clock,
     * utilization) triple — used by budget arithmetic.
     */
    static Watt powerAt(Volt v_io, Hertz clock, double utilization,
                        double activity_factor = 1.0);

    /** DLL relock time; sized well inside the flow's 10us budget. */
    static constexpr Tick kRelockLatency = 800 * kTicksPerNs;

  private:
    dram::DramSpec spec_;
    Volt vio_;
    double cdyn_;
    double leakK_;
    std::size_t binIndex_ = dram::DramSpec::kDefaultBin;
};

} // namespace mem
} // namespace sysscale

#endif // SYSSCALE_MEM_DDRIO_HH
