/**
 * @file
 * Memory reference code (MRC) register sets and the on-chip SRAM store.
 *
 * MRC training (BIOS, Sec. 2.5 of the paper) produces configuration
 * register values for the memory controller, DDRIO, and DIMMs that are
 * optimized for one DRAM frequency. SysScale pre-computes the register
 * sets of *every* supported bin at reset and caches them in ~0.5KB of
 * on-chip SRAM so the transition flow can reload them in under 1us
 * (Sec. 5). Running a bin with another bin's registers ("unoptimized
 * MRC") costs both performance and power (Fig. 4: -10% performance,
 * +22% average power on a STREAM-like microbenchmark).
 */

#ifndef SYSSCALE_MEM_MRC_HH
#define SYSSCALE_MEM_MRC_HH

#include <cstdint>
#include <vector>

#include "dram/spec.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace sysscale {
namespace mem {

/**
 * One trained register image: the timing set programmed into MC,
 * DDRIO, and DRAM mode registers plus the interface quality that
 * training achieved.
 */
struct MrcRegisterSet
{
    /** Bin these registers are optimized for. */
    std::size_t trainedBin = 0;

    /** Bin the registers are currently applied to. */
    std::size_t appliedBin = 0;

    /** Timings programmed into the controller. */
    dram::TimingSet timings{};

    /**
     * Fraction of theoretical peak bandwidth the interface sustains
     * (trained eye margins, turnaround guard bands).
     */
    double interfaceEfficiency = 0.90;

    /** Extra interface latency from untrained delay lines. */
    double latencyAdderNs = 0.0;

    /**
     * Multiplier on DRAM termination/IO power (untrained ODT and
     * drive-strength settings burn extra watts, Fig. 4).
     */
    double terminationFactor = 1.0;

    /** Extra DDRIO-digital switching activity from guard banding. */
    double ddrioActivityFactor = 1.0;

    /** True when the registers match the applied bin. */
    bool optimized() const { return trainedBin == appliedBin; }
};

/**
 * The reset-time MRC training result for every supported bin, held in
 * a modeled on-chip SRAM (paper Sec. 5: ~0.5KB, <0.006% of die area).
 */
class MrcStore
{
  public:
    /**
     * Train all bins of @p spec (performed once, at reset).
     *
     * @param spec DRAM configuration to train against.
     */
    explicit MrcStore(const dram::DramSpec &spec);

    /** Number of register sets held (== spec bins). */
    std::size_t numSets() const { return sets_.size(); }

    /** The optimized register image for @p bin_index. */
    const MrcRegisterSet &optimizedSet(std::size_t bin_index) const;

    /**
     * The register image that results from running @p applied_bin
     * with registers trained for @p trained_bin. When the bins match
     * this is the optimized set; otherwise the set carries the paper's
     * Fig. 4 penalties (lower efficiency, extra latency, hotter
     * termination).
     */
    MrcRegisterSet crossBinSet(std::size_t trained_bin,
                               std::size_t applied_bin) const;

    /** SRAM load latency of one register image (< 1us, Sec. 5). */
    Tick loadLatency() const { return kLoadLatency; }

    /** Modeled SRAM footprint of the whole store, in bytes. */
    std::size_t sramBytes() const;

    /** Bytes of one register image in the modeled SRAM. */
    static constexpr std::size_t kBytesPerSet = 168;

    /** SRAM budget the paper reserves for MRC values (Sec. 5). */
    static constexpr std::size_t kSramBudgetBytes = 512;

    /** SRAM-to-CR load latency (Sec. 5 bounds it below 1us). */
    static constexpr Tick kLoadLatency = 500 * kTicksPerNs;

    /** @name Fig. 4 cross-bin penalty calibration. @{ */

    /** Peak-bandwidth efficiency multiplier when unoptimized. */
    static constexpr double kUnoptEfficiency = 0.93;

    /** Extra latency per bin of distance between trained/applied. */
    static constexpr double kUnoptLatencyAdderNs = 6.0;

    /** Termination/IO power multiplier when unoptimized. */
    static constexpr double kUnoptTerminationFactor = 3.2;

    /** DDRIO-digital activity multiplier when unoptimized. */
    static constexpr double kUnoptDdrioActivity = 1.80;
    /** @} */

  private:
    std::vector<MrcRegisterSet> sets_;
};

} // namespace mem
} // namespace sysscale

#endif // SYSSCALE_MEM_MRC_HH
