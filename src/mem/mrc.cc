#include "mem/mrc.hh"

#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace mem {

MrcStore::MrcStore(const dram::DramSpec &spec)
{
    sets_.reserve(spec.numBins());
    for (std::size_t i = 0; i < spec.numBins(); ++i) {
        MrcRegisterSet set;
        set.trainedBin = i;
        set.appliedBin = i;
        set.timings = dram::optimizedTimings(spec, i);
        set.interfaceEfficiency = 0.90;
        set.latencyAdderNs = 0.0;
        set.terminationFactor = 1.0;
        set.ddrioActivityFactor = 1.0;
        sets_.push_back(set);
    }

    if (sramBytes() > kSramBudgetBytes) {
        SYSSCALE_FATAL("MrcStore: %zu bins need %zu bytes of SRAM, "
                       "budget is %zu",
                       sets_.size(), sramBytes(), kSramBudgetBytes);
    }
}

const MrcRegisterSet &
MrcStore::optimizedSet(std::size_t bin_index) const
{
    SYSSCALE_ASSERT(bin_index < sets_.size(),
                    "MRC set %zu out of range", bin_index);
    return sets_[bin_index];
}

MrcRegisterSet
MrcStore::crossBinSet(std::size_t trained_bin,
                      std::size_t applied_bin) const
{
    SYSSCALE_ASSERT(trained_bin < sets_.size(),
                    "trained bin %zu out of range", trained_bin);
    SYSSCALE_ASSERT(applied_bin < sets_.size(),
                    "applied bin %zu out of range", applied_bin);

    if (trained_bin == applied_bin)
        return sets_[trained_bin];

    // Registers trained for one bin but clocked at another: the
    // analog timings stay legal (nanosecond constraints are met by
    // the slower of the two bins) but the interface runs with wrong
    // eye centers, ODT, and drive strength.
    MrcRegisterSet set = sets_[applied_bin];
    set.trainedBin = trained_bin;
    set.appliedBin = applied_bin;

    const double distance = static_cast<double>(
        trained_bin > applied_bin ? trained_bin - applied_bin
                                  : applied_bin - trained_bin);

    set.interfaceEfficiency =
        sets_[applied_bin].interfaceEfficiency * kUnoptEfficiency;
    set.latencyAdderNs = kUnoptLatencyAdderNs * distance;
    set.terminationFactor = kUnoptTerminationFactor;
    set.ddrioActivityFactor = kUnoptDdrioActivity;

    // Guard-banded timings: untrained command/data delays force the
    // controller to pad CAS and turnaround by roughly a clock.
    set.timings.tCLNs += set.timings.tCKNs * distance;
    set.timings.tWRNs += set.timings.tCKNs * distance;

    return set;
}

std::size_t
MrcStore::sramBytes() const
{
    return sets_.size() * kBytesPerSet;
}

} // namespace mem
} // namespace sysscale
