#include "mem/ddrio.hh"

#include "power/power_model.hh"
#include "sim/logging.hh"

namespace sysscale {
namespace mem {

Ddrio::Ddrio(const dram::DramSpec &spec, Volt v_io, double cdyn_farad,
             double leak_k)
    : spec_(spec), vio_(v_io), cdyn_(cdyn_farad), leakK_(leak_k)
{
    if (v_io <= 0.0)
        SYSSCALE_FATAL("Ddrio: non-positive V_IO %.3f", v_io);
}

void
Ddrio::setBin(std::size_t bin_index)
{
    SYSSCALE_ASSERT(bin_index < spec_.numBins(),
                    "Ddrio bin %zu out of range", bin_index);
    binIndex_ = bin_index;
}

void
Ddrio::setVio(Volt v)
{
    SYSSCALE_ASSERT(v > 0.0, "Ddrio: non-positive V_IO %.3f", v);
    vio_ = v;
}

Hertz
Ddrio::clock() const
{
    return spec_.bin(binIndex_).busClock();
}

Watt
Ddrio::digitalPower(double utilization, double activity_factor) const
{
    SYSSCALE_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                    "Ddrio utilization %.3f out of [0,1]", utilization);

    // Clock trees and control logic toggle regardless of traffic;
    // the data path scales with bus utilization.
    const double activity =
        (0.30 + 0.70 * utilization) * activity_factor;
    const Watt dynamic =
        power::dynamicPower(cdyn_, vio_, clock(), activity);
    const Watt leak = power::leakagePower(leakK_, vio_, 50.0);
    return dynamic + leak;
}

Watt
Ddrio::powerAt(Volt v_io, Hertz clock, double utilization,
               double activity_factor)
{
    const double activity =
        (0.30 + 0.70 * utilization) * activity_factor;
    const Watt dynamic =
        power::dynamicPower(200e-12, v_io, clock, activity);
    const Watt leak = power::leakagePower(0.245, v_io, 50.0);
    return dynamic + leak;
}

} // namespace mem
} // namespace sysscale
