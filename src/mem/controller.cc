#include "mem/controller.hh"

#include <algorithm>
#include <cmath>

#include "power/power_model.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace mem {

MemoryController::MemoryController(Simulator &sim, SimObject *parent,
                                   dram::DramDevice &device,
                                   const MrcStore &mrc, Volt v_sa)
    : SimObject(sim, parent, "mc"), device_(device),
      ddrio_(device.spec(), /*v_io=*/1.0), vsa_(v_sa),
      servicedBytes_(this, "serviced_bytes", "total bytes serviced"),
      qosViolations_(this, "qos_violations",
                     "intervals with isochronous demand unmet"),
      drains_(this, "drains", "block-and-drain operations"),
      utilizationAvg_(this, "utilization",
                      "interface utilization per interval"),
      latencyAvg_(this, "loaded_latency_ns",
                  "average loaded CPU read latency")
{
    regs_ = mrc.optimizedSet(dram::DramSpec::kDefaultBin);
    if (v_sa <= 0.0)
        SYSSCALE_FATAL("MemoryController: non-positive V_SA %.3f",
                       v_sa);
}

void
MemoryController::programRegisters(const MrcRegisterSet &regs)
{
    SYSSCALE_ASSERT(blocked_,
                    "programming MC registers while traffic flows");
    SYSSCALE_ASSERT(device_.mode() == dram::DramMode::SelfRefresh,
                    "programming DRAM registers outside self-refresh");
    regs_ = regs;
    ddrio_.setBin(regs.appliedBin);
}

Hertz
MemoryController::clock() const
{
    return device_.spec().bin(regs_.appliedBin).mcClock();
}

void
MemoryController::setVsa(Volt v)
{
    SYSSCALE_ASSERT(v > 0.0, "non-positive V_SA %.3f", v);
    vsa_ = v;
}

Tick
MemoryController::blockAndDrain()
{
    SYSSCALE_ASSERT(!blocked_, "nested block-and-drain");
    blocked_ = true;
    ++drains_;

    // Outstanding bytes are bounded by the queue capacity; draining
    // them takes at most queue-bytes / capacity. With 16KB of queue
    // and >= 8.5GB/s of low-bin capacity this stays under 2us and is
    // typically a few hundred ns (the paper bounds it below 1us).
    const double outstanding =
        kMaxOutstandingBytes * std::min(1.0, lastUtilization_ + 0.05);
    const double seconds = outstanding / capacity();
    return ticksFromSeconds(seconds);
}

void
MemoryController::release()
{
    SYSSCALE_ASSERT(blocked_, "release without block");
    blocked_ = false;
}

BytesPerSec
MemoryController::capacity() const
{
    return device_.spec().peakBandwidth(regs_.appliedBin) *
           regs_.interfaceEfficiency;
}

double
MemoryController::baseLatencyNs() const
{
    const double mc_ns = kPipelineCycles / clock() * 1e9;
    return kFixedPathNs + mc_ns + regs_.timings.randomAccessNs() +
           regs_.latencyAdderNs;
}

double
MemoryController::loadedLatencyAt(double utilization) const
{
    const double rho = std::clamp(utilization, 0.0, kMaxRho);

    // Congestion delay with an M/D/1-flavoured knee: negligible at
    // low utilization (prefetchers and bank parallelism hide it),
    // exploding toward the capacity ceiling. S is the service time
    // of one cache line at the trained interface rate.
    const double service_ns = 64.0 / capacity() * 1e9;
    const double wait_ns =
        rho * rho * rho / (1.0 - rho) * service_ns * kQueueScale;
    return baseLatencyNs() + wait_ns;
}

MemServiceResult
MemoryController::service(const MemDemand &demand, Tick interval)
{
    SYSSCALE_ASSERT(!blocked_, "servicing a blocked controller");
    SYSSCALE_ASSERT(interval > 0, "zero-length service interval");
    SYSSCALE_ASSERT(device_.mode() == dram::DramMode::Active,
                    "servicing DRAM in self-refresh");

    const BytesPerSec cap = capacity();
    MemServiceResult res;

    // Isochronous traffic is guaranteed first: the display engine
    // cannot be stalled (Sec. 1, QoS). A violation means the static
    // demand table put the SoC in too low an operating point.
    res.achievedIso = std::min(demand.ioIso, cap);
    res.qosViolation = demand.ioIso > cap + 1e-3;
    if (res.qosViolation)
        ++qosViolations_;

    // Remaining capacity is shared in proportion to demand.
    const BytesPerSec remaining = cap - res.achievedIso;
    const BytesPerSec rest_demand = demand.cpuRead + demand.cpuWrite +
                                    demand.gfx + demand.ioBestEffort;
    const double grant =
        rest_demand <= remaining || rest_demand <= 0.0
            ? 1.0
            : remaining / rest_demand;

    res.achievedCpuRead = demand.cpuRead * grant;
    res.achievedCpuWrite = demand.cpuWrite * grant;
    res.achievedGfx = demand.gfx * grant;
    res.achievedBestEffort = demand.ioBestEffort * grant;

    res.utilization =
        std::min(1.0, res.achievedTotal() / device_.spec()
                          .peakBandwidth(regs_.appliedBin));

    const double queue_rho =
        std::min(kMaxRho, (res.achievedIso + rest_demand) / cap);
    res.loadedLatencyNs = loadedLatencyAt(queue_rho);

    // Little's law on the CPU read stream.
    res.readPendingOccupancy = demand.cpuRead / 64.0 *
                               (res.loadedLatencyNs * 1e-9);

    // Account DRAM energy for the interval.
    const double secs = secondsFromTicks(interval);
    const double read_bytes =
        (res.achievedCpuRead + res.achievedGfx * 0.7 +
         res.achievedIso * 0.8 + res.achievedBestEffort * 0.5) * secs;
    const double write_bytes =
        (res.achievedCpuWrite + res.achievedGfx * 0.3 +
         res.achievedIso * 0.2 + res.achievedBestEffort * 0.5) * secs;

    const dram::DramPowerBreakdown dram_power = device_.accountTraffic(
        read_bytes, write_bytes, interval, regs_.terminationFactor);
    lastDramPower_ = dram_power.total();

    lastUtilization_ = res.utilization;
    servicedBytes_ += res.achievedTotal() * secs;
    utilizationAvg_.sample(res.utilization);
    latencyAvg_.sample(res.loadedLatencyNs);

    return res;
}

Watt
MemoryController::idleSelfRefresh(Tick interval)
{
    SYSSCALE_ASSERT(interval > 0, "zero-length idle interval");
    lastUtilization_ = 0.0;
    lastDramPower_ = device_.selfRefreshPower();
    return lastDramPower_;
}

Watt
MemoryController::controllerPower(double utilization) const
{
    return powerAt(vsa_, clock(), utilization);
}

Watt
MemoryController::powerAt(Volt v_sa, Hertz clock, double utilization)
{
    SYSSCALE_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                    "MC utilization %.3f out of [0,1]", utilization);
    const double activity = 0.25 + 0.75 * utilization;
    const Watt dynamic =
        power::dynamicPower(kCdynFarad, v_sa, clock, activity);
    const Watt leak = power::leakagePower(kLeakK, v_sa, 50.0);
    return dynamic + leak;
}

Watt
MemoryController::ddrioDigitalPower(double utilization) const
{
    return ddrio_.digitalPower(utilization, regs_.ddrioActivityFactor);
}

void
MemoryController::saveState(SnapshotWriter &w) const
{
    w.push("regs");
    w.putU64("trained_bin", regs_.trainedBin);
    w.putU64("applied_bin", regs_.appliedBin);
    w.putDouble("t_ck_ns", regs_.timings.tCKNs);
    w.putDouble("t_cl_ns", regs_.timings.tCLNs);
    w.putDouble("t_rcd_ns", regs_.timings.tRCDNs);
    w.putDouble("t_rp_ns", regs_.timings.tRPNs);
    w.putDouble("t_ras_ns", regs_.timings.tRASNs);
    w.putDouble("t_wr_ns", regs_.timings.tWRNs);
    w.putDouble("t_rfc_ns", regs_.timings.tRFCNs);
    w.putDouble("t_refi_ns", regs_.timings.tREFINs);
    w.putDouble("t_xsr_ns", regs_.timings.tXSRNs);
    w.putDouble("t_faw_ns", regs_.timings.tFAWNs);
    w.putDouble("interface_efficiency", regs_.interfaceEfficiency);
    w.putDouble("latency_adder_ns", regs_.latencyAdderNs);
    w.putDouble("termination_factor", regs_.terminationFactor);
    w.putDouble("ddrio_activity_factor", regs_.ddrioActivityFactor);
    w.pop();
    w.putDouble("v_sa", vsa_);
    w.putBool("blocked", blocked_);
    w.putDouble("last_utilization", lastUtilization_);
    w.putDouble("last_dram_power", lastDramPower_);
    w.putU64("ddrio_bin", ddrio_.binIndex());
    w.putDouble("ddrio_vio", ddrio_.vio());
}

void
MemoryController::loadState(SnapshotReader &r)
{
    // Not programRegisters(): that asserts a blocked controller and
    // self-refreshed DRAM; a restore reproduces state directly.
    r.push("regs");
    regs_.trainedBin = r.getU64("trained_bin");
    regs_.appliedBin = r.getU64("applied_bin");
    regs_.timings.tCKNs = r.getDouble("t_ck_ns");
    regs_.timings.tCLNs = r.getDouble("t_cl_ns");
    regs_.timings.tRCDNs = r.getDouble("t_rcd_ns");
    regs_.timings.tRPNs = r.getDouble("t_rp_ns");
    regs_.timings.tRASNs = r.getDouble("t_ras_ns");
    regs_.timings.tWRNs = r.getDouble("t_wr_ns");
    regs_.timings.tRFCNs = r.getDouble("t_rfc_ns");
    regs_.timings.tREFINs = r.getDouble("t_refi_ns");
    regs_.timings.tXSRNs = r.getDouble("t_xsr_ns");
    regs_.timings.tFAWNs = r.getDouble("t_faw_ns");
    regs_.interfaceEfficiency = r.getDouble("interface_efficiency");
    regs_.latencyAdderNs = r.getDouble("latency_adder_ns");
    regs_.terminationFactor = r.getDouble("termination_factor");
    regs_.ddrioActivityFactor = r.getDouble("ddrio_activity_factor");
    r.pop();
    vsa_ = r.getDouble("v_sa");
    blocked_ = r.getBool("blocked");
    lastUtilization_ = r.getDouble("last_utilization");
    lastDramPower_ = r.getDouble("last_dram_power");
    ddrio_.setBin(r.getU64("ddrio_bin"));
    ddrio_.setVio(r.getDouble("ddrio_vio"));
}

} // namespace mem
} // namespace sysscale
