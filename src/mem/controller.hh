/**
 * @file
 * Memory controller service model.
 *
 * The controller is the junction where all three SoC domains meet the
 * DRAM: CPU cores and graphics arrive through the LLC, IO engines
 * arrive through the IO interconnect with isochronous (QoS) or
 * best-effort class, and the controller schedules everything onto the
 * device interface.
 *
 * Rather than replaying individual transactions, the model services
 * aggregate per-interval demand: isochronous traffic is guaranteed
 * first (display underruns are never acceptable, Sec. 1), and the
 * remaining interface capacity is shared by the other classes in
 * proportion to demand. Loaded latency rises with utilization through
 * an M/D/1-style queueing term, which is what latency-bound workloads
 * (e.g. cactusADM in Fig. 2) respond to when the bin drops.
 */

#ifndef SYSSCALE_MEM_CONTROLLER_HH
#define SYSSCALE_MEM_CONTROLLER_HH

#include "dram/device.hh"
#include "mem/ddrio.hh"
#include "mem/mrc.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace mem {

/** Aggregate bandwidth demand presented for one interval. */
struct MemDemand
{
    BytesPerSec cpuRead = 0.0;  //!< LLC misses from CPU cores.
    BytesPerSec cpuWrite = 0.0; //!< Dirty evictions / streaming writes.
    BytesPerSec gfx = 0.0;      //!< Graphics engine traffic.
    BytesPerSec ioIso = 0.0;    //!< Isochronous IO (display, camera).
    BytesPerSec ioBestEffort = 0.0; //!< Best-effort IO (DMA, storage).

    BytesPerSec
    total() const
    {
        return cpuRead + cpuWrite + gfx + ioIso + ioBestEffort;
    }
};

/** What the controller delivered for one interval. */
struct MemServiceResult
{
    BytesPerSec achievedCpuRead = 0.0;
    BytesPerSec achievedCpuWrite = 0.0;
    BytesPerSec achievedGfx = 0.0;
    BytesPerSec achievedIso = 0.0;
    BytesPerSec achievedBestEffort = 0.0;

    /** Interface utilization in [0, 1]. */
    double utilization = 0.0;

    /** Average load-to-use latency for CPU-class reads. */
    double loadedLatencyNs = 0.0;

    /**
     * Average number of CPU requests waiting at the controller
     * (Little's law) — the observable behind LLC_Occupancy_Tracer.
     */
    double readPendingOccupancy = 0.0;

    /** True when isochronous demand exceeded capacity (QoS violated). */
    bool qosViolation = false;

    BytesPerSec
    achievedTotal() const
    {
        return achievedCpuRead + achievedCpuWrite + achievedGfx +
               achievedIso + achievedBestEffort;
    }
};

/**
 * The SoC memory controller.
 */
class MemoryController : public SimObject
{
  public:
    /**
     * @param sim Simulation context.
     * @param parent Owning SimObject.
     * @param device DRAM ranks this controller drives.
     * @param mrc Reset-trained register store.
     * @param v_sa Boot voltage of the shared system-agent rail.
     */
    MemoryController(Simulator &sim, SimObject *parent,
                     dram::DramDevice &device, const MrcStore &mrc,
                     Volt v_sa);

    /** @name Operating state (manipulated by the DVFS flows). @{ */

    /** Currently programmed register image. */
    const MrcRegisterSet &registers() const { return regs_; }

    /**
     * Program a register image (flow step 5). Only legal while the
     * controller is blocked and DRAM is in self-refresh.
     */
    void programRegisters(const MrcRegisterSet &regs);

    /** Current frequency bin (follows the programmed registers). */
    std::size_t binIndex() const { return regs_.appliedBin; }

    /** Controller clock: half the DDR data rate (Sec. 3). */
    Hertz clock() const;

    Volt vsa() const { return vsa_; }
    void setVsa(Volt v);
    /** @} */

    /** @name Block and drain (flow steps 3 and 9). @{ */

    /**
     * Stop accepting new requests and report the time to complete all
     * outstanding ones (bounded below 1us, Sec. 5).
     */
    Tick blockAndDrain();

    /** Resume accepting requests. */
    void release();

    bool blocked() const { return blocked_; }
    /** @} */

    /**
     * Service one interval of aggregate demand.
     *
     * Panics if called while blocked: the flow must release first.
     *
     * @param demand Per-class bandwidth demand.
     * @param interval Interval length in ticks.
     */
    MemServiceResult service(const MemDemand &demand, Tick interval);

    /**
     * Idle-interval bookkeeping: DRAM sits in self-refresh (deep SoC
     * idle states park memory, Sec. 7.3). Returns the average power of
     * the parked devices.
     */
    Watt idleSelfRefresh(Tick interval);

    /** Sustainable interface bandwidth at the current registers. */
    BytesPerSec capacity() const;

    /** Unloaded CPU-read latency at the current registers. */
    double baseLatencyNs() const;

    /**
     * Loaded latency at a hypothetical utilization (exposed so the
     * governor comparison and tests can query the latency curve).
     */
    double loadedLatencyAt(double utilization) const;

    /** Average controller power over an interval at @p utilization. */
    Watt controllerPower(double utilization) const;

    /**
     * Controller power at an arbitrary (voltage, clock, utilization)
     * triple — used by budget arithmetic to cost operating points
     * without touching a live controller.
     */
    static Watt powerAt(Volt v_sa, Hertz clock, double utilization);

    /** DDRIO-digital rail power at @p utilization. */
    Watt ddrioDigitalPower(double utilization) const;

    /** DRAM + DDRIO-analog (VDDQ rail) power of the last interval. */
    Watt lastDramPower() const { return lastDramPower_; }

    Ddrio &ddrio() { return ddrio_; }
    const Ddrio &ddrio() const { return ddrio_; }

    dram::DramDevice &device() { return device_; }

    /** @name Snapshot support: registers, rail, block state. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

    /** @name Model calibration constants. @{ */

    /** Controller pipeline depth in MC cycles (queue-empty). */
    static constexpr double kPipelineCycles = 10.0;

    /** Scale of the congestion (queueing) latency term. */
    static constexpr double kQueueScale = 10.0;

    /** Interconnect/LLC-side fixed latency outside the controller. */
    static constexpr double kFixedPathNs = 22.0;

    /** Utilization ceiling for the queueing term. */
    static constexpr double kMaxRho = 0.96;

    /** Effective switched capacitance of the controller. */
    static constexpr double kCdynFarad = 300e-12;

    /** Controller leakage coefficient at (0.8V, 50C). */
    static constexpr double kLeakK = 0.42;

    /** Drain bound: max outstanding bytes the queues can hold. */
    static constexpr double kMaxOutstandingBytes = 16 * 1024.0;
    /** @} */

  private:
    dram::DramDevice &device_;
    Ddrio ddrio_;
    MrcRegisterSet regs_;
    Volt vsa_;
    bool blocked_ = false;
    double lastUtilization_ = 0.0;
    Watt lastDramPower_ = 0.0;

    stats::Scalar servicedBytes_;
    stats::Scalar qosViolations_;
    stats::Scalar drains_;
    stats::Average utilizationAvg_;
    stats::Average latencyAvg_;
};

} // namespace mem
} // namespace sysscale

#endif // SYSSCALE_MEM_CONTROLLER_HH
