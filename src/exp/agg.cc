#include "exp/agg.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sysscale {
namespace exp {
namespace agg {

const std::string *
findLabel(const RunResult &res, const std::string &key)
{
    for (const auto &kv : res.labels) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

std::vector<Group>
groupBy(const std::vector<RunResult> &results,
        const std::string &label)
{
    std::vector<Group> groups;
    for (const RunResult &res : results) {
        const std::string *value = findLabel(res, label);
        const std::string key = value ? *value : std::string();
        Group *group = nullptr;
        for (Group &g : groups) {
            if (g.key == key) {
                group = &g;
                break;
            }
        }
        if (!group) {
            groups.push_back(Group{key, {}});
            group = &groups.back();
        }
        group->rows.push_back(&res);
    }
    return groups;
}

const RunResult *
findRow(const std::vector<const RunResult *> &rows,
        const std::string &label, const std::string &value)
{
    for (const RunResult *row : rows) {
        const std::string *v = findLabel(*row, label);
        if (v && *v == value)
            return row;
    }
    return nullptr;
}

std::vector<double>
collect(const std::vector<const RunResult *> &rows, const Metric &m)
{
    std::vector<double> out;
    out.reserve(rows.size());
    for (const RunResult *row : rows)
        out.push_back(m(*row));
    return out;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(xs.begin(), xs.end());
    if (p <= 0.0)
        return xs.front();
    if (p >= 100.0)
        return xs.back();
    const double rank =
        p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size())
        return xs.back();
    return xs[lo] + (xs[lo + 1] - xs[lo]) * frac;
}

std::vector<Delta>
deltasVsBaseline(const Group &g, const std::string &label,
                 const std::string &baseline_value, const Metric &m)
{
    const RunResult *baseline =
        findRow(g.rows, label, baseline_value);
    if (!baseline)
        return {};
    const double base = m(*baseline);
    std::vector<Delta> out;
    for (const RunResult *row : g.rows) {
        if (row == baseline)
            continue;
        out.push_back(Delta{row, baseline,
                            (m(*row) / base - 1.0) * 100.0});
    }
    return out;
}

double
deltaVs(const Group &g, const std::string &label,
        const std::string &value, const std::string &baseline_value,
        const Metric &m)
{
    const RunResult *row = findRow(g.rows, label, value);
    if (!row)
        throw std::invalid_argument(
            "agg::deltaVs: no row with " + label + "=" + value +
            " in group \"" + g.key + "\"");
    const RunResult *baseline =
        findRow(g.rows, label, baseline_value);
    if (!baseline)
        throw std::invalid_argument(
            "agg::deltaVs: no baseline row with " + label + "=" +
            baseline_value + " in group \"" + g.key + "\"");
    return (m(*row) / m(*baseline) - 1.0) * 100.0;
}

} // namespace agg
} // namespace exp
} // namespace sysscale
