#include "exp/report.hh"

#include <cstdio>

#include "power/dvfs_types.hh"
#include "soc/counters.hh"

namespace sysscale {
namespace exp {

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                out += esc;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

namespace {

/** Local alias keeping the emitter bodies readable. */
std::string
num(double v)
{
    return formatDouble(v);
}

std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

std::string
labelsColumn(const Labels &labels)
{
    std::string out;
    for (const auto &kv : labels) {
        if (!out.empty())
            out += ";";
        out += kv.first + "=" + kv.second;
    }
    return out;
}

} // anonymous namespace

std::string
csvHeader()
{
    std::string head =
        "id,governor,workload,ok,error,host_seconds,seconds,"
        "instructions,ips,frames,fps,avg_power_w,energy_j,edp,"
        "avg_mem_latency_ns,avg_mem_bandwidth,avg_core_freq_hz,"
        "qos_violations,transitions,stall_ticks,low_point_residency";
    for (const auto rail : power::kAllRails) {
        head += ",energy_";
        head += power::railName(rail);
    }
    for (const auto counter : soc::kAllCounters) {
        head += ",ctr_";
        head += soc::counterName(counter);
    }
    head += ",labels";
    return head;
}

std::string
csvRow(const RunResult &res)
{
    const soc::RunMetrics &m = res.metrics;
    std::string row = csvQuote(res.id) + "," +
                      csvQuote(res.governor) + "," +
                      csvQuote(res.workload) + "," +
                      (res.ok ? "1" : "0") + "," +
                      csvQuote(res.error) + "," +
                      num(res.hostSeconds) + "," + num(m.seconds) +
                      "," + num(m.instructions) + "," + num(m.ips) +
                      "," + num(m.frames) + "," + num(m.fps) + "," +
                      num(m.avgPower) + "," + num(m.energy) + "," +
                      num(m.edp) + "," + num(m.avgMemLatencyNs) +
                      "," + num(m.avgMemBandwidth) + "," +
                      num(m.avgCoreFreq) + "," +
                      std::to_string(m.qosViolations) + "," +
                      std::to_string(m.transitions) + "," +
                      std::to_string(m.stallTicks) + "," +
                      num(m.lowPointResidency);
    for (const Joule e : m.railEnergy)
        row += "," + num(e);
    for (const double c : res.counters.values)
        row += "," + num(c);
    row += "," + csvQuote(labelsColumn(res.labels));
    return row;
}

CsvWriter::CsvWriter(std::ostream &os, bool flushEachRow)
    : os_(os), flushEachRow_(flushEachRow)
{
    os_ << csvHeader() << "\n";
    if (flushEachRow_)
        os_.flush();
}

void
CsvWriter::append(const RunResult &res)
{
    os_ << csvRow(res) << "\n";
    if (flushEachRow_)
        os_.flush();
    ++rows_;
}

void
writeCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    CsvWriter writer(os);
    for (const auto &res : results)
        writer.append(res);
}

std::string
jsonObject(const RunResult &res)
{
    const soc::RunMetrics &m = res.metrics;
    std::string obj = "{";
    obj += "\"id\":" + jsonQuote(res.id);
    obj += ",\"governor\":" + jsonQuote(res.governor);
    obj += ",\"workload\":" + jsonQuote(res.workload);
    obj += std::string(",\"ok\":") + (res.ok ? "true" : "false");
    obj += ",\"error\":" + jsonQuote(res.error);
    obj += ",\"host_seconds\":" + num(res.hostSeconds);
    obj += ",\"metrics\":{";
    obj += "\"seconds\":" + num(m.seconds);
    obj += ",\"instructions\":" + num(m.instructions);
    obj += ",\"ips\":" + num(m.ips);
    obj += ",\"frames\":" + num(m.frames);
    obj += ",\"fps\":" + num(m.fps);
    obj += ",\"avg_power_w\":" + num(m.avgPower);
    obj += ",\"energy_j\":" + num(m.energy);
    obj += ",\"edp\":" + num(m.edp);
    obj += ",\"avg_mem_latency_ns\":" + num(m.avgMemLatencyNs);
    obj += ",\"avg_mem_bandwidth\":" + num(m.avgMemBandwidth);
    obj += ",\"avg_core_freq_hz\":" + num(m.avgCoreFreq);
    obj += ",\"qos_violations\":" + std::to_string(m.qosViolations);
    obj += ",\"transitions\":" + std::to_string(m.transitions);
    obj += ",\"stall_ticks\":" + std::to_string(m.stallTicks);
    obj += ",\"low_point_residency\":" + num(m.lowPointResidency);
    obj += ",\"rail_energy_j\":{";
    bool first = true;
    for (const auto rail : power::kAllRails) {
        if (!first)
            obj += ",";
        first = false;
        obj += "\"" + std::string(power::railName(rail)) +
               "\":" + num(m.railEnergy[power::railIndex(rail)]);
    }
    obj += "}},\"counters\":{";
    first = true;
    for (const auto counter : soc::kAllCounters) {
        if (!first)
            obj += ",";
        first = false;
        obj += "\"" + std::string(soc::counterName(counter)) + "\":" +
               num(res.counters.values[soc::counterIndex(counter)]);
    }
    obj += "},\"labels\":{";
    first = true;
    for (const auto &kv : res.labels) {
        if (!first)
            obj += ",";
        first = false;
        obj += jsonQuote(kv.first) + ":" + jsonQuote(kv.second);
    }
    obj += "}}";
    return obj;
}

void
writeJson(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << "  " << jsonObject(results[i]);
        if (i + 1 < results.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

} // namespace exp
} // namespace sysscale
