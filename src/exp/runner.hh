/**
 * @file
 * Parallel experiment-grid execution.
 *
 * ExperimentRunner fans a vector of ExperimentSpec cells out across
 * a pool of worker threads. Each cell runs through exp::runCell(),
 * which owns an isolated Simulator + Soc, so cells share no mutable
 * state and the result vector is bit-identical to a serial sweep of
 * the same specs regardless of the job count or scheduling order —
 * results land at the index of their spec, never in completion
 * order. A cell that fails (bad spec, model exception) produces an
 * ok=false RunResult and leaves its siblings untouched.
 */

#ifndef SYSSCALE_EXP_RUNNER_HH
#define SYSSCALE_EXP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/experiment.hh"

namespace sysscale {
namespace exp {

class ResultCache;

/** Progress hook: one finished cell plus completion counters. */
using ProgressFn = std::function<void(
    const RunResult &result, std::size_t done, std::size_t total)>;

struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t jobs = 0;

    /**
     * Invoked after each cell completes (serialized by the runner;
     * the callback never needs its own locking). Called in
     * completion order, which is nondeterministic for jobs > 1.
     * Cache hits report first, in spec order, before any simulated
     * cell.
     */
    ProgressFn onResult;

    /**
     * Content-addressed result cache, consulted before dispatch:
     * hits become results without touching the simulator, and every
     * ok result of a cacheable cell is stored after it runs. Error
     * rows are never cached. Not owned; may be null.
     */
    ResultCache *cache = nullptr;

    /**
     * Forwarded to runCell() for every simulated cell. Cache hits
     * never touch the simulator, so they write no trace file — use
     * --no-cache (or a cold cache) for a full-grid trace capture.
     */
    RunCellOptions cell;
};

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {});

    /**
     * Execute every cell and return results in spec order.
     *
     * Cells with a borrowedPolicy are only legal at jobs == 1 (a
     * borrowed instance cannot be shared across workers); with more
     * jobs they come back as ok=false results.
     *
     * With a cache configured, cells served from disk never reach a
     * worker, and the pool is sized to the cells that remain — a
     * fully warm cache spawns no threads at all.
     */
    std::vector<RunResult> run(
        const std::vector<ExperimentSpec> &specs) const;

    /**
     * Worker count used for @p cells dispatched cells (clamped so a
     * --jobs value above the cell count cannot spin up idle
     * threads).
     */
    std::size_t jobsFor(std::size_t cells) const;

  private:
    RunnerOptions opts_;
};

} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_RUNNER_HH
